//! End-to-end reproduction checks against the published walk-through,
//! run through the `dbre` facade. These complement the finer-grained
//! golden tests inside `dbre-core::example` by asserting the complete
//! published artifacts in one place.

use dbre::core::example::{
    paper_database, paper_oracle, paper_programs, paper_q, run_paper_example,
};
use dbre::core::pipeline::{run_with_programs, PipelineOptions};
use dbre::core::render::{render_inds, render_schema};
use dbre::relational::normal_forms::{analyze, NormalForm};

#[test]
fn the_whole_paper_in_one_assertion_block() {
    let result = run_paper_example();

    // §6.1 — six inclusion dependencies, one conceptualized relation.
    assert_eq!(result.ind.inds.len(), 6);
    assert_eq!(result.ind.new_relations.len(), 1);

    // §6.2.1 — five candidate LHS, one initial hidden object.
    assert_eq!(result.lhs.lhs.len(), 5);
    assert_eq!(result.lhs.hidden.len(), 1);

    // §6.2.2 — two FDs, two hidden objects, two given up.
    assert_eq!(result.rhs.fds.len(), 2);
    assert_eq!(result.rhs.hidden.len(), 2);
    assert_eq!(result.rhs.given_up.len(), 2);

    // §7 — nine relations, ten referential integrity constraints.
    assert_eq!(result.db.schema.len(), 9);
    assert_eq!(result.restructured.ric.len(), 10);

    // Figure 1 — 8 object boxes + 1 ternary diamond + 2 binary
    // diamonds + 4 is-a links.
    assert_eq!(result.eer.entities.len(), 8);
    assert_eq!(result.eer.relationships.len(), 3);
    assert_eq!(result.eer.isa.len(), 4);
}

#[test]
fn extracted_programs_path_reproduces_the_same_final_schema() {
    // Running from the raw application programs (extraction included)
    // must land on the same restructured schema as the verbatim-Q run.
    let via_q = run_paper_example();

    let db = paper_database();
    let mut oracle = paper_oracle();
    let via_programs = run_with_programs(
        db,
        &paper_programs(),
        &mut oracle,
        &PipelineOptions::default(),
    );

    assert_eq!(
        render_schema(&via_q.db),
        render_schema(&via_programs.db),
        "both input paths must restructure identically"
    );
    assert_eq!(
        render_inds(&via_q.db, &via_q.restructured.ric),
        render_inds(&via_programs.db, &via_programs.restructured.ric)
    );
    // EER equality up to ordering (the IND set is discovered in a
    // different order along the two paths; render_text sorts).
    assert_eq!(via_q.eer.render_text(), via_programs.eer.render_text());
}

#[test]
fn original_schema_normal_forms_match_the_paper_annotations() {
    // §5 annotates: Person 2NF, HEmployee 3NF, Department 2NF,
    // Assignment 1NF. Verify with the FDs that hold in the extension.
    let db = paper_database();
    let fd = |rel: &str, lhs: &[&str], rhs: &[&str]| {
        let (r, l) = db.resolve_set(rel, lhs).unwrap();
        let (_, rr) = db.resolve_set(rel, rhs).unwrap();
        dbre::relational::Fd::new(r, l, rr)
    };

    // Person: id -> all, zip-code -> state.
    let person = db.rel("Person").unwrap();
    let person_fds = vec![
        fd(
            "Person",
            &["id"],
            &["name", "street", "number", "zip-code", "state"],
        ),
        fd("Person", &["zip-code"], &["state"]),
    ];
    for f in &person_fds {
        assert!(db.fd_holds(f), "{f:?}");
    }
    let rep = analyze(person, &db.schema.relation(person).all_attrs(), &person_fds);
    assert_eq!(rep.form, NormalForm::Second, "Person is 2NF in the paper");

    // HEmployee: only the key FD — 3NF (indeed BCNF).
    let hemp = db.rel("HEmployee").unwrap();
    let hemp_fds = vec![fd("HEmployee", &["no", "date"], &["salary"])];
    assert!(db.fd_holds(&hemp_fds[0]));
    let rep = analyze(hemp, &db.schema.relation(hemp).all_attrs(), &hemp_fds);
    assert!(rep.form >= NormalForm::Third, "HEmployee is 3NF");

    // Department: dep -> all, emp -> skill, proj — 2NF.
    let dept = db.rel("Department").unwrap();
    let dept_fds = vec![
        fd(
            "Department",
            &["dep"],
            &["emp", "skill", "location", "proj"],
        ),
        fd("Department", &["emp"], &["skill", "proj"]),
    ];
    for f in &dept_fds {
        assert!(db.fd_holds(f), "{f:?}");
    }
    let rep = analyze(dept, &db.schema.relation(dept).all_attrs(), &dept_fds);
    assert_eq!(rep.form, NormalForm::Second, "Department is 2NF");

    // Assignment: key FD + proj -> project-name — 1NF (partial dep).
    let assign = db.rel("Assignment").unwrap();
    let assign_fds = vec![
        fd(
            "Assignment",
            &["emp", "dep", "proj"],
            &["date", "project-name"],
        ),
        fd("Assignment", &["proj"], &["project-name"]),
    ];
    for f in &assign_fds {
        assert!(db.fd_holds(f), "{f:?}");
    }
    let rep = analyze(assign, &db.schema.relation(assign).all_attrs(), &assign_fds);
    assert_eq!(rep.form, NormalForm::First, "Assignment is 1NF");
}

#[test]
fn walkthrough_cardinalities() {
    // The two cardinality triples the paper prints in §6.1.
    let db = paper_database();
    let q = paper_q(&db);
    let s = dbre::relational::join_stats(&db, &q[0]);
    assert_eq!((s.n_right, s.n_left, s.n_join), (2200, 1550, 1550));
    let s = dbre::relational::join_stats(&db, &q[3]);
    assert_eq!((s.n_left, s.n_right, s.n_join), (60, 45, 40));
}

#[test]
fn restructured_extension_is_lossless_for_navigated_data() {
    // Joining the split relations back must reproduce the original
    // Department projection (the split is a lossless decomposition on
    // the FD emp -> skill, proj).
    let result = run_paper_example();
    let db = &result.db;
    let original = paper_database();

    let dept_orig = original.rel("Department").unwrap();
    let (_, cols) = original
        .resolve("Department", &["dep", "emp", "skill", "proj"])
        .unwrap();
    let before = original.table(dept_orig).distinct_projection(&cols);

    // Reconstruct via Department ⋈ Manager in the restructured db.
    let dept = db.rel("Department").unwrap();
    let manager = db.rel("Manager").unwrap();
    let (_, d_cols) = db.resolve("Department", &["dep", "emp"]).unwrap();
    let (_, m_cols) = db.resolve("Manager", &["emp", "skill", "proj"]).unwrap();
    let d_table = db.table(dept);
    let m_table = db.table(manager);
    let mut reconstructed = std::collections::HashSet::new();
    for i in 0..d_table.len() {
        let d_row = d_table.project_row(i, &d_cols);
        for j in 0..m_table.len() {
            let m_row = m_table.project_row(j, &m_cols);
            if d_row[1] == m_row[0] {
                reconstructed.insert(vec![
                    d_row[0].clone(),
                    d_row[1].clone(),
                    m_row[1].clone(),
                    m_row[2].clone(),
                ]);
            }
        }
    }
    // Rows with NULL emp cannot be reconstructed (no join partner) —
    // the paper's method shares this property of natural-join
    // decompositions. All non-null rows must round-trip.
    let before_non_null: std::collections::HashSet<_> =
        before.into_iter().filter(|row| !row[1].is_null()).collect();
    assert_eq!(reconstructed, before_non_null);
}
