//! Cross-crate integration tests: SQL catalog → program extraction →
//! pipeline → restructured database → EER, exercised through the
//! `dbre` facade exactly as a downstream user would.

use dbre::core::pipeline::{run_with_programs, PipelineOptions};
use dbre::core::{AutoOracle, DenyOracle};
use dbre::extract::{extract_programs, ExtractConfig, ProgramSource};
use dbre::mine::spider::{spider, SpiderConfig};
use dbre::relational::normal_forms::{analyze, NormalForm};
use dbre::sql::{run_sql, Catalog};

/// A library system: `Loan` embeds both member and book data; the
/// publisher entity exists only as a code inside `Book`.
fn library() -> (dbre::relational::Database, Vec<ProgramSource>) {
    let mut cat = Catalog::new();
    cat.load_script(
        "CREATE TABLE Member (mid INT UNIQUE, mname VARCHAR(40), joined DATE);
         CREATE TABLE Book (isbn INT UNIQUE, title VARCHAR(60), publisher INT);
         CREATE TABLE Loan (
             mid INT, isbn INT, day DATE,
             mname VARCHAR(40), title VARCHAR(60),
             UNIQUE (mid, isbn, day)
         );",
    )
    .unwrap();
    let mut script = String::new();
    for m in 0..50 {
        script.push_str(&format!(
            "INSERT INTO Member VALUES ({m}, 'member{m}', DATE '1990-01-01');"
        ));
    }
    for b in 0..80 {
        script.push_str(&format!(
            "INSERT INTO Book VALUES ({b}, 'title{b}', {});",
            b % 6
        ));
    }
    for l in 0..120 {
        let m = l % 40; // members 0..39 borrow
        let b = (l * 7) % 60; // books 0..59 circulate
        script.push_str(&format!(
            "INSERT INTO Loan VALUES ({m}, {b}, DATE '1995-{:02}-{:02}', \
             'member{m}', 'title{b}');",
            1 + (l % 12),
            1 + (l % 28),
        ));
    }
    cat.load_script(&script).unwrap();
    let db = cat.into_database();
    db.validate_dictionary().unwrap();

    let programs = vec![
        ProgramSource::sql(
            "overdue.sql",
            "SELECT m.mname FROM Loan l, Member m WHERE l.mid = m.mid;",
        ),
        ProgramSource::embedded(
            "circulation.c",
            "EXEC SQL SELECT l.day FROM Loan l JOIN Book b ON l.isbn = b.isbn;",
        ),
    ];
    (db, programs)
}

#[test]
fn library_end_to_end() {
    let (db, programs) = library();
    let mut oracle = AutoOracle::default();
    let result = run_with_programs(db, &programs, &mut oracle, &PipelineOptions::default());

    // Both navigations became referential integrity constraints.
    assert_eq!(result.ind.inds.len(), 2);
    // Loan was split twice: member data and book data each moved out.
    assert_eq!(result.rhs.fds.len(), 2);
    assert_eq!(result.restructured.fd_relations.len(), 2);
    let loan = result.db.rel("Loan").unwrap();
    assert_eq!(result.db.schema.relation(loan).arity(), 3); // mid, isbn, day

    // Output is 3NF and all RICs hold.
    for (rel, relation) in result.db.schema.iter() {
        let fds: Vec<_> = result
            .restructured
            .fds
            .iter()
            .filter(|f| f.rel == rel)
            .cloned()
            .collect();
        let report = analyze(rel, &relation.all_attrs(), &fds);
        assert!(report.form >= NormalForm::Third, "{}", relation.name);
    }
    for ind in &result.restructured.ric {
        assert!(result.db.ind_holds(ind));
    }

    // Loan translates to a relationship-ish structure: its key
    // components reference the split-off objects.
    assert!(!result.eer.entities.is_empty());
    result.db.validate_dictionary().unwrap();
}

#[test]
fn extraction_and_sql_agree_on_counts() {
    let (db, programs) = library();
    let extraction = extract_programs(&db.schema, &programs, &ExtractConfig::default());
    assert_eq!(extraction.joins.len(), 2);
    assert!(extraction.warnings.is_empty());

    // ‖Loan[mid] ⋈ Member[mid]‖ through the SQL executor equals the
    // counting primitive used by IND-Discovery.
    for j in &extraction.joins {
        let stats = dbre::relational::join_stats(&db, &j.join);
        let lrel = db.schema.relation(j.join.left.rel);
        let rrel = db.schema.relation(j.join.right.rel);
        let la = lrel.attr_name(j.join.left.attrs[0]);
        let ra = rrel.attr_name(j.join.right.attrs[0]);
        let sql = format!(
            "SELECT COUNT(DISTINCT x.{la}) FROM {} x, {} y WHERE x.{la} = y.{ra}",
            lrel.name, rrel.name
        );
        let via_sql = run_sql(&db, &sql).unwrap().count().unwrap();
        assert_eq!(via_sql, stats.n_join, "join {}", j.join.render(&db.schema));
    }
}

#[test]
fn pipeline_inds_are_a_subset_of_exhaustive_mining() {
    // Everything the query-guided method elicits from a *clean*
    // extension must also be found by exhaustive SPIDER mining (the
    // reverse is deliberately false — that's the point of the paper).
    let (db, programs) = library();
    let mut oracle = DenyOracle;
    let result = run_with_programs(
        db.clone(),
        &programs,
        &mut oracle,
        &PipelineOptions::default(),
    );
    let exhaustive = spider(&db, &SpiderConfig::default());
    for ind in &result.ind.inds {
        assert!(
            exhaustive.inds.contains(ind),
            "elicited IND missing from exhaustive set: {}",
            ind.render(&result.db_before.schema)
        );
    }
    assert!(exhaustive.inds.len() > result.ind.inds.len());
}

#[test]
fn composite_identifier_pipeline() {
    // A *composite* hidden object: courses are identified by
    // (dept, num); Enrollment embeds the course title. The program
    // joins on both columns, so the extractor produces one composite
    // equi-join, IND-Discovery one composite IND, and RHS-Discovery a
    // composite-LHS FD whose split recovers the Course relation.
    let mut cat = Catalog::new();
    cat.load_script(
        "CREATE TABLE Course (dept CHAR(4), num INT, title VARCHAR(40), UNIQUE(dept, num));
         CREATE TABLE Enrollment (student INT, dept CHAR(4), num INT, title VARCHAR(40),
                                  UNIQUE(student, dept, num));",
    )
    .unwrap();
    let mut script = String::new();
    for d in 0..4 {
        for n in 0..10 {
            script.push_str(&format!(
                "INSERT INTO Course VALUES ('D{d}', {n}, 'course {d}-{n}');"
            ));
        }
    }
    for s in 0..120 {
        let d = s % 3; // D3 never referenced → strict inclusion
        let n = (s * 7) % 10;
        script.push_str(&format!(
            "INSERT INTO Enrollment VALUES ({s}, 'D{d}', {n}, 'course {d}-{n}');"
        ));
    }
    cat.load_script(&script).unwrap();
    let db = cat.into_database();
    db.validate_dictionary().unwrap();

    let programs = [ProgramSource::sql(
        "roster.sql",
        "SELECT e.student, c.title FROM Enrollment e, Course c \
         WHERE e.dept = c.dept AND e.num = c.num;",
    )];
    let mut oracle = AutoOracle::default();
    let result = run_with_programs(db, &programs, &mut oracle, &PipelineOptions::default());

    // One composite IND.
    assert_eq!(result.ind.inds.len(), 1);
    let ind = &result.ind.inds[0];
    assert_eq!(ind.lhs.attrs.len(), 2);
    assert_eq!(
        ind.render(&result.db_before.schema),
        "Enrollment[dept, num] << Course[dept, num]"
    );
    // Composite-LHS FD elicited: (dept, num) -> title.
    assert_eq!(result.rhs.fds.len(), 1);
    assert_eq!(
        result.rhs.fds[0].render(&result.db_before.schema),
        "Enrollment: dept, num -> title"
    );
    // Enrollment lost the embedded title; the split relation carries
    // (dept, num, title) keyed on (dept, num) — Course recovered.
    let enrollment = result.db.rel("Enrollment").unwrap();
    assert_eq!(result.db.schema.relation(enrollment).arity(), 3);
    let split = result.restructured.fd_relations[0];
    let split_rel = result.db.schema.relation(split);
    assert_eq!(split_rel.arity(), 3);
    assert!(result
        .db
        .constraints
        .is_key(split, &split_rel.attr_set(&["dept", "num"]).unwrap()));
    // The composite RIC holds in the restructured extension.
    for ric in &result.restructured.ric {
        assert!(result.db.ind_holds(ric));
    }
}

#[test]
fn facade_reexports_are_usable() {
    // Compile-time check that the facade exposes the full surface.
    let _schema = dbre::relational::Schema::new();
    let _cfg = dbre::synth::SynthConfig::default();
    let _opts = dbre::core::PipelineOptions::default();
    let _x = dbre::mine::SpiderConfig::default();
    let _p = dbre::extract::ExtractConfig::default();
    let tokens = dbre::sql::lexer::tokenize("SELECT 1").unwrap();
    assert!(!tokens.is_empty());
}

#[test]
fn warnings_surface_through_pipeline() {
    let (db, mut programs) = library();
    programs.push(ProgramSource::sql("broken.sql", "SELEC nonsense FRM"));
    programs.push(ProgramSource::sql(
        "ghost.sql",
        "SELECT * FROM Ghost g, Member m WHERE g.x = m.mid;",
    ));
    let mut oracle = DenyOracle;
    let result = run_with_programs(db, &programs, &mut oracle, &PipelineOptions::default());
    assert!(result.warnings.len() >= 2);
    // …and the good programs still worked.
    assert_eq!(result.ind.inds.len(), 2);
}
