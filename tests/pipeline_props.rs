//! Cross-crate property tests: the full pipeline on randomized
//! synthetic workloads must uphold its invariants for *every* seed,
//! coverage, and noise level — not just the hand-picked scenarios.

use dbre::core::pipeline::{run_with_programs, PipelineOptions};
use dbre::core::{AutoOracle, DenyOracle, Oracle};
use dbre::relational::normal_forms::{analyze, NormalForm};
use dbre::synth::{
    build_workload, corrupt, evaluate, generate_programs, generate_spec, CorruptionConfig,
    DenormConfig, ProgramConfig, SynthConfig, TruthOracle,
};
use proptest::prelude::*;

fn run_one(
    seed: u64,
    coverage: f64,
    noise: f64,
    oracle_kind: u8,
) -> (
    dbre::core::pipeline::PipelineResult,
    dbre::synth::GroundTruth,
    Vec<bool>,
) {
    let spec = generate_spec(&SynthConfig {
        n_entities: 5,
        n_relationships: 2,
        n_entity_fks: 3,
        n_isa: 1,
        rows_per_entity: 40,
        rows_per_relationship: 60,
        seed,
        ..Default::default()
    });
    let (mut db, truth) = build_workload(
        &spec,
        &DenormConfig {
            p_embed: 0.7,
            p_drop: 0.5,
            seed,
        },
        seed,
    );
    if noise > 0.0 {
        corrupt(
            &mut db,
            &truth,
            &CorruptionConfig {
                fd_noise: noise,
                ind_noise: noise,
                seed,
            },
        );
    }
    let programs = generate_programs(
        &truth,
        &ProgramConfig {
            coverage,
            noise_programs: 1,
            seed,
        },
    );
    let mut truth_oracle;
    let mut auto;
    let mut deny;
    let oracle: &mut dyn Oracle = match oracle_kind {
        0 => {
            truth_oracle = TruthOracle::new(truth.clone());
            &mut truth_oracle
        }
        1 => {
            auto = AutoOracle::default();
            &mut auto
        }
        _ => {
            deny = DenyOracle;
            &mut deny
        }
    };
    let result = run_with_programs(db, &programs.programs, oracle, &PipelineOptions::default());
    (result, truth, programs.covered)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_invariants_hold_for_all_seeds(
        seed in 0u64..500,
        coverage in 0.0f64..=1.0,
        noise in prop_oneof![Just(0.0f64), 0.0f64..0.1],
        oracle_kind in 0u8..3,
    ) {
        let (result, truth, covered) = run_one(seed, coverage, noise, oracle_kind);

        // 1. The restructured dictionary is internally consistent.
        result.db.validate_dictionary().map_err(|e| {
            TestCaseError::fail(format!("dictionary violated: {e}"))
        })?;

        // 2. Every relation is 3NF w.r.t. the re-homed dependencies.
        for (rel, relation) in result.db.schema.iter() {
            let fds: Vec<_> = result
                .restructured
                .fds
                .iter()
                .filter(|f| f.rel == rel)
                .cloned()
                .collect();
            let report = analyze(rel, &relation.all_attrs(), &fds);
            prop_assert!(
                report.form >= NormalForm::Third,
                "{} ended below 3NF",
                relation.name
            );
        }

        // 3. RIC ⊆ IND set, and every RIC's right-hand side is a key.
        for ric in &result.restructured.ric {
            prop_assert!(result.restructured.inds.contains(ric));
            prop_assert!(result
                .db
                .constraints
                .is_key(ric.rhs.rel, &ric.rhs.attr_set()));
        }

        // 4. Without corruption, every elicited IND holds in the
        //    ORIGINAL extension and every restructured IND holds in
        //    the restructured one — unless the oracle *forced* an
        //    inclusion (which by definition contradicts the extension;
        //    AutoOracle does so at ≥95% overlap even on clean data).
        let forced = result
            .log
            .iter()
            .any(|r| r.decision.starts_with("Force"));
        if noise == 0.0 && !forced {
            for ind in &result.ind.inds {
                prop_assert!(result.db_before.ind_holds(ind), "{ind}");
            }
            for ind in &result.restructured.inds {
                prop_assert!(result.db.ind_holds(ind), "{ind}");
            }
        }

        // 5. Metrics are well-formed.
        let q = evaluate(&result, &truth, Some(&covered));
        for v in [
            q.ind.precision,
            q.ind.recall,
            q.fd.precision,
            q.fd.recall,
            q.schema.precision,
            q.schema.recall,
            q.hidden_recovery,
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "metric out of range: {v}");
        }

        // 6. The EER schema mentions only existing relations.
        let names: std::collections::BTreeSet<String> = result
            .db
            .schema
            .iter()
            .map(|(_, r)| r.name.clone())
            .collect();
        for e in &result.eer.entities {
            prop_assert!(names.contains(&e.name));
        }
        for r in &result.eer.relationships {
            for p in &r.participants {
                prop_assert!(names.contains(&p.object), "dangling {p:?}");
            }
        }
        for l in &result.eer.isa {
            prop_assert!(names.contains(&l.sub) && names.contains(&l.sup));
        }
    }

    #[test]
    fn truth_oracle_dominates_deny(seed in 0u64..200, noise in 0.01f64..0.08) {
        let (r_truth, truth, _) = run_one(seed, 1.0, noise, 0);
        let (r_deny, _, _) = run_one(seed, 1.0, noise, 2);
        let q_truth = evaluate(&r_truth, &truth, None);
        let q_deny = evaluate(&r_deny, &truth, None);
        // Perfect knowledge can never do worse on recall.
        prop_assert!(q_truth.ind.recall >= q_deny.ind.recall - 1e-9);
        prop_assert!(q_truth.fd.recall >= q_deny.fd.recall - 1e-9);
    }

    #[test]
    fn more_coverage_never_hurts_ind_recall(seed in 0u64..200) {
        let (r_half, truth, _) = run_one(seed, 0.5, 0.0, 0);
        let (r_full, _, _) = run_one(seed, 1.0, 0.0, 0);
        let q_half = evaluate(&r_half, &truth, None);
        let q_full = evaluate(&r_full, &truth, None);
        prop_assert!(q_full.ind.recall >= q_half.ind.recall - 1e-9);
        prop_assert!(q_full.fd.recall >= q_half.fd.recall - 1e-9);
    }
}
