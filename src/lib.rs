//! # dbre — reverse engineering of denormalized relational databases
//!
//! A full reproduction of *"Towards the Reverse Engineering of
//! Denormalized Relational Databases"* (Petit, Toumani, Boulicaut,
//! Kouloumdjian — ICDE 1996), plus every substrate it needs and the
//! quantitative evaluation it never had. This facade crate re-exports
//! the workspace:
//!
//! * [`relational`] — the relational model `(R, E, Δ)`, FD/IND theory,
//!   normal forms, counting primitives;
//! * [`sql`] — lexer/parser/catalog/executor for the legacy SQL subset
//!   (the *data dictionary* that yields the paper's `K` and `N`);
//! * [`extract`] — equi-join extraction from application programs (the
//!   set `Q`);
//! * [`mine`] — blind-mining baselines (TANE, SPIDER, approximate
//!   dependencies);
//! * [`core`] — the paper's algorithms: IND-Discovery, LHS-Discovery,
//!   RHS-Discovery, Restruct, Translate, and the oracle-driven
//!   pipeline;
//! * [`synth`] — synthetic legacy workloads with ground truth, and the
//!   recovery-quality metrics.
//!
//! ## Quickstart
//!
//! ```
//! use dbre::core::example::run_paper_example;
//!
//! let result = run_paper_example();
//! // The restructured schema is in 3NF with 10 referential integrity
//! // constraints, and the EER schema matches the paper's Figure 1.
//! assert_eq!(result.restructured.ric.len(), 10);
//! assert!(result.eer.has_isa("Employee", "Person"));
//! ```
//!
//! Or on your own database:
//!
//! ```
//! use dbre::core::{run_with_programs, AutoOracle, PipelineOptions};
//! use dbre::extract::ProgramSource;
//! use dbre::sql::Catalog;
//!
//! let mut catalog = Catalog::new();
//! catalog
//!     .load_script(
//!         "CREATE TABLE Customer (cid INT UNIQUE, cname VARCHAR(30));
//!          CREATE TABLE Orders (oid INT UNIQUE, cust INT, cname VARCHAR(30));
//!          INSERT INTO Customer VALUES (1, 'ann'), (2, 'bob');
//!          INSERT INTO Orders VALUES (10, 1, 'ann'), (11, 1, 'ann');",
//!     )
//!     .unwrap();
//! let programs = [ProgramSource::sql(
//!     "report.sql",
//!     "SELECT cname FROM Orders o, Customer c WHERE o.cust = c.cid;",
//! )];
//! let mut oracle = AutoOracle::default();
//! let result = run_with_programs(
//!     catalog.into_database(),
//!     &programs,
//!     &mut oracle,
//!     &PipelineOptions::default(),
//! );
//! // Orders was split: the embedded customer name moved to its own
//! // relation, referenced by a new referential integrity constraint.
//! assert_eq!(result.rhs.fds.len(), 1);
//! assert!(!result.restructured.ric.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use dbre_core as core;
pub use dbre_extract as extract;
pub use dbre_mine as mine;
pub use dbre_relational as relational;
pub use dbre_sql as sql;
pub use dbre_synth as synth;
