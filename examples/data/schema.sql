-- A miniature legacy schema for trying the `dbre` CLI:
--   dbre reverse --schema examples/data/schema.sql \
--                --csv Customer=examples/data/customer.csv \
--                --csv Orders=examples/data/orders.csv \
--                --programs examples/data/programs \
--                --dot /tmp/eer.dot
CREATE TABLE Customer (
    cid INT UNIQUE,
    cname VARCHAR(30),
    region CHAR(4)
);
CREATE TABLE Orders (
    oid INT UNIQUE,
    cust INT,
    cname VARCHAR(30),
    amount INT
);
