int main() {
    EXEC SQL SELECT o.oid FROM Orders o
             WHERE o.cust IN (SELECT cid FROM Customer WHERE region = :reg);
    return 0;
}
