-- The navigation that gives the game away: orders reference customers.
SELECT o.cname, o.amount
FROM Orders o, Customer c
WHERE o.cust = c.cid;
