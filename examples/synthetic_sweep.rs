//! Synthetic-workload sweep: generates legacy databases with known
//! answers, runs the pipeline under different experts, and prints a
//! recovery-quality table — a miniature of experiment X3.
//!
//! ```sh
//! cargo run --release --example synthetic_sweep
//! ```

use dbre::core::pipeline::{run_with_programs, PipelineOptions};
use dbre::core::{AutoOracle, DenyOracle};
use dbre::synth::{
    build_workload, corrupt, evaluate, generate_programs, generate_spec, CorruptionConfig,
    DenormConfig, ProgramConfig, SynthConfig, TruthOracle,
};

fn main() {
    println!(
        "{:<6} {:<9} {:>7} {:<7} {:>7} {:>7} {:>7} {:>9}",
        "seed", "coverage", "noise", "oracle", "ind_R", "fd_R", "hidden", "schemaF1"
    );
    for seed in [1u64, 2, 3] {
        let spec = generate_spec(&SynthConfig {
            n_entities: 7,
            n_relationships: 3,
            n_entity_fks: 4,
            n_isa: 1,
            rows_per_entity: 300,
            rows_per_relationship: 500,
            seed,
            ..Default::default()
        });
        for coverage in [0.5f64, 1.0] {
            for noise in [0.0f64, 0.05] {
                let (mut db, truth) = build_workload(
                    &spec,
                    &DenormConfig {
                        p_embed: 0.7,
                        p_drop: 0.5,
                        seed,
                    },
                    seed,
                );
                if noise > 0.0 {
                    corrupt(
                        &mut db,
                        &truth,
                        &CorruptionConfig {
                            fd_noise: noise,
                            ind_noise: noise,
                            seed,
                        },
                    );
                }
                let programs = generate_programs(
                    &truth,
                    &ProgramConfig {
                        coverage,
                        noise_programs: 2,
                        seed,
                    },
                );
                for oracle_name in ["truth", "auto", "deny"] {
                    let result = match oracle_name {
                        "truth" => {
                            let mut o = TruthOracle::new(truth.clone());
                            run_with_programs(
                                db.clone(),
                                &programs.programs,
                                &mut o,
                                &PipelineOptions::default(),
                            )
                        }
                        "auto" => {
                            let mut o = AutoOracle::default();
                            run_with_programs(
                                db.clone(),
                                &programs.programs,
                                &mut o,
                                &PipelineOptions::default(),
                            )
                        }
                        _ => {
                            let mut o = DenyOracle;
                            run_with_programs(
                                db.clone(),
                                &programs.programs,
                                &mut o,
                                &PipelineOptions::default(),
                            )
                        }
                    };
                    let q = evaluate(&result, &truth, Some(&programs.covered));
                    println!(
                        "{:<6} {:<9.2} {:>7.2} {:<7} {:>7.3} {:>7.3} {:>7.3} {:>9.3}",
                        seed,
                        coverage,
                        noise,
                        oracle_name,
                        q.ind.recall,
                        q.fd.recall,
                        q.hidden_recovery,
                        q.schema.f1
                    );
                }
            }
        }
    }
    println!("\nind_R / fd_R: recall of expected inclusion / functional dependencies");
    println!("hidden: fraction of dropped entities whose relation was re-created");
    println!("schemaF1: recovered relation attribute-sets vs the normalized ground truth");
}
