//! A second legacy scenario, written from scratch: a 1980s-style
//! payroll system where the `Paycheck` relation embeds employee grade
//! data and the `Timesheet` relation embeds project billing data —
//! classic denormalization for report speed. The cost-center entity
//! was never given a relation at all: it only survives as a code
//! shared between `Paycheck` and `Timesheet` (a hidden object).
//!
//! The pipeline is driven by the `AutoOracle` with one scripted
//! override, showing how the two can be combined.
//!
//! ```sh
//! cargo run --example legacy_payroll
//! ```

use dbre::core::oracle::{
    FdContext, HiddenContext, NeiContext, NeiDecision, Oracle, ScriptedOracle,
};
use dbre::core::render::{render_fds, render_inds, render_schema};
use dbre::core::{run_with_programs, AutoOracle, PipelineOptions};
use dbre::extract::ProgramSource;
use dbre::sql::Catalog;

/// Combines a scripted layer (for the decisions the analyst has made
/// explicitly) with an automatic policy fallback.
struct AnalystOracle {
    scripted: ScriptedOracle,
    fallback: AutoOracle,
}

impl Oracle for AnalystOracle {
    fn resolve_nei(&mut self, ctx: &NeiContext<'_>) -> NeiDecision {
        let before = self.scripted.unanswered.len();
        let d = self.scripted.resolve_nei(ctx);
        if self.scripted.unanswered.len() == before {
            d
        } else {
            self.fallback.resolve_nei(ctx)
        }
    }
    fn enforce_fd(&mut self, ctx: &FdContext<'_>) -> bool {
        self.fallback.enforce_fd(ctx)
    }
    fn conceptualize_hidden(&mut self, ctx: &HiddenContext<'_>) -> bool {
        let before = self.scripted.unanswered.len();
        let d = self.scripted.conceptualize_hidden(ctx);
        if self.scripted.unanswered.len() == before {
            d
        } else {
            self.fallback.conceptualize_hidden(ctx)
        }
    }
    fn name_new_relation(&mut self, ctx: &dbre::core::oracle::NamingContext<'_>) -> String {
        self.scripted.name_new_relation(ctx)
    }
}

fn main() {
    let mut catalog = Catalog::new();
    catalog
        .load_script(
            "CREATE TABLE Staff (
                 badge INT UNIQUE,
                 name VARCHAR(40),
                 hired DATE
             );
             CREATE TABLE Paycheck (
                 badge INT,
                 period CHAR(7),
                 gross REAL,
                 grade CHAR(3),
                 grade-label VARCHAR(20),
                 cost-center CHAR(4),
                 UNIQUE (badge, period)
             );
             CREATE TABLE Timesheet (
                 badge INT,
                 project CHAR(6),
                 week INT,
                 hours REAL,
                 project-title VARCHAR(30),
                 bill-rate REAL,
                 cost-center CHAR(4),
                 UNIQUE (badge, project, week)
             );",
        )
        .expect("DDL parses");

    // A small but telling extension.
    let mut inserts = String::new();
    for b in 0..120 {
        inserts.push_str(&format!(
            "INSERT INTO Staff VALUES ({b}, 'person{b}', DATE '1989-01-01');"
        ));
    }
    for b in 0..90 {
        for p in 0..2 {
            // Grade and cost center are *employee* facts, denormalized
            // into every paycheck row: badge -> grade, grade-label,
            // cost-center holds.
            let grade = b % 5;
            let cc = 5 + b % 7; // cost centers C5..C11
            inserts.push_str(&format!(
                "INSERT INTO Paycheck VALUES ({b}, '1995-{:02}', {}, 'G{grade}', \
                 'grade {grade}', 'C{cc}');",
                p + 1,
                1000 + (b * 7 + p * 13) % 900,
            ));
        }
    }
    for b in 0..70 {
        for w in 0..2 {
            // Projects vary per (badge, week) so neither badge nor
            // cost-center determines them; titles/rates are *project*
            // facts: project -> project-title, bill-rate holds (but is
            // never navigated, so the method rightly leaves it alone).
            let proj = (3 * b + w) % 9;
            let cc = 10 + (b + w) % 9; // cost centers C10..C18: the
                                       // overlap with Paycheck is {C10, C11} — an NEI.
            inserts.push_str(&format!(
                "INSERT INTO Timesheet VALUES ({b}, 'P{proj}', {w}, {}, \
                 'project {proj}', {}, 'C{cc}');",
                8 + (b + w) % 4,
                50 + proj * 5,
            ));
        }
    }
    catalog.load_script(&inserts).expect("inserts parse");
    let db = catalog.into_database();
    db.validate_dictionary().expect("extension is consistent");

    // The application programs (reports and batch jobs).
    let programs = [
        ProgramSource::sql(
            "monthly_report.sql",
            "SELECT s.name, p.gross FROM Staff s, Paycheck p WHERE p.badge = s.badge;",
        ),
        ProgramSource::embedded(
            "billing.c",
            "int main() {\n EXEC SQL SELECT t.hours FROM Timesheet t \
             WHERE t.badge IN (SELECT badge FROM Staff) AND t.week = :wk;\n}",
        ),
        ProgramSource::sql(
            "costcenter_recon.sql",
            "SELECT p.cost-center FROM Paycheck p, Timesheet t \
             WHERE p.cost-center = t.cost-center;",
        ),
    ];

    let mut oracle = AnalystOracle {
        scripted: ScriptedOracle::new()
            .nei(
                "Paycheck[cost-center] |><| Timesheet[cost-center]",
                NeiDecision::Conceptualize,
            )
            .name(
                "nei:Paycheck[cost-center] |><| Timesheet[cost-center]",
                "Shared-CostCenter",
            )
            .name(
                "fd:Paycheck: badge -> grade, grade-label, cost-center",
                "PayProfile",
            )
            .name("hidden:Timesheet.{badge}", "Employee")
            .name("hidden:Paycheck.{cost-center}", "CostCenter")
            .name("hidden:Timesheet.{cost-center}", "CostCenter-T"),
        fallback: AutoOracle::default(),
    };
    let result = run_with_programs(db, &programs, &mut oracle, &PipelineOptions::default());

    println!("## Elicited dependencies\n");
    println!("{}\n", render_inds(&result.db_before, &result.ind.inds));
    println!("{}\n", render_fds(&result.db_before, &result.rhs.fds));

    println!("## Restructured payroll schema (3NF)\n");
    println!("{}\n", render_schema(&result.db));

    println!("## Referential integrity constraints\n");
    println!("{}\n", render_inds(&result.db, &result.restructured.ric));

    println!("## EER view\n");
    println!("{}", result.eer.render_text());
}
