//! Quickstart: the paper's worked example, end to end.
//!
//! Runs the full reverse-engineering pipeline on the §5 legacy schema
//! (Person / HEmployee / Department / Assignment) with the scripted
//! expert of the walk-through, and prints every stage — finishing with
//! the EER schema of Figure 1.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dbre::core::example::{paper_database, paper_q, run_paper_example};
use dbre::core::render::{render_fds, render_inds, render_log, render_quals, render_schema};
use dbre::relational::counting::join_stats;

fn main() {
    // Stage 0: the legacy database (dictionary + extension).
    let db = paper_database();
    println!("## Legacy schema (1NF, keys _underlined_, not-null !marked)\n");
    println!("{}\n", render_schema(&db));

    // The equi-joins the application programs perform.
    println!("## Q — equi-joins found in the application programs\n");
    for join in paper_q(&db) {
        let s = join_stats(&db, &join);
        println!(
            "{:<50}  N_k={:<5} N_l={:<5} N_kl={}",
            join.render(&db.schema),
            s.n_left,
            s.n_right,
            s.n_join
        );
    }

    // The pipeline.
    let result = run_paper_example();

    println!("\n## Elicited inclusion dependencies\n");
    // Stage outputs reference the pre-restructure snapshot.
    println!("{}", render_inds(&result.db_before, &result.ind.inds));

    println!("\n## Candidate identifiers (LHS) and hidden objects (H)\n");
    println!("LHS:\n{}", render_quals(&result.db_before, &result.lhs.lhs));
    println!(
        "H after RHS-Discovery:\n{}",
        render_quals(&result.db_before, &result.rhs.hidden)
    );

    println!("\n## Elicited functional dependencies\n");
    println!("{}", render_fds(&result.db_before, &result.rhs.fds));

    println!("\n## Restructured schema (3NF)\n");
    println!("{}", render_schema(&result.db));

    println!("\n## Referential integrity constraints\n");
    println!("{}", render_inds(&result.db, &result.restructured.ric));

    println!("\n## EER schema (the paper's Figure 1)\n");
    println!("{}", result.eer.render_text());

    println!("## Expert decision log\n");
    println!("{}", render_log(&result.log));
}
