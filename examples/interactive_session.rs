//! Implementing a custom expert: a transcript oracle.
//!
//! The paper's method is *interactive* — "an expert user has to
//! validate the presumptions". This example shows the extension point:
//! an [`Oracle`] implementation that prints every question the
//! algorithms ask, answers with a simple policy, and keeps a
//! transcript. Swap the policy for a real prompt (stdin, a TUI, a web
//! form) and you have the paper's interactive tool.
//!
//! ```sh
//! cargo run --example interactive_session
//! ```

use dbre::core::example::{paper_database, paper_q};
use dbre::core::oracle::{
    FdContext, HiddenContext, NamingContext, NeiContext, NeiDecision, Oracle,
};
use dbre::core::pipeline::{run_with_q, PipelineOptions};
use dbre::core::render::render_schema;

/// Prints each question, answers by policy, records the dialogue.
#[derive(Default)]
struct TranscriptOracle {
    transcript: Vec<String>,
}

impl TranscriptOracle {
    fn say(&mut self, question: String, answer: &str) {
        println!("  expert <- {question}");
        println!("  expert -> {answer}");
        self.transcript.push(format!("{question} => {answer}"));
    }
}

impl Oracle for TranscriptOracle {
    fn resolve_nei(&mut self, ctx: &NeiContext<'_>) -> NeiDecision {
        let q = format!(
            "non-empty intersection on {} (N_k={}, N_l={}, N_kl={}): conceptualize?",
            ctx.join.render(&ctx.db.schema),
            ctx.stats.n_left,
            ctx.stats.n_right,
            ctx.stats.n_join
        );
        // Policy: conceptualize when at least half of the smaller side
        // is shared — "regarding the amount of data implied" (§6.1).
        let decision = if ctx.stats.overlap_ratio() >= 0.5 {
            NeiDecision::Conceptualize
        } else {
            NeiDecision::Ignore
        };
        self.say(q, &format!("{decision:?}"));
        decision
    }

    fn enforce_fd(&mut self, ctx: &FdContext<'_>) -> bool {
        let q = format!(
            "{} fails in the extension (g3 error {:.3}): enforce anyway?",
            ctx.fd.render(&ctx.db.schema),
            ctx.error
        );
        let yes = ctx.error < 0.005;
        self.say(q, if yes { "yes" } else { "no" });
        yes
    }

    fn conceptualize_hidden(&mut self, ctx: &HiddenContext<'_>) -> bool {
        let q = format!(
            "{} has no right-hand side: conceptualize as hidden object?",
            ctx.candidate.render(&ctx.db.schema)
        );
        // Policy: identifiers of history-style relations (keys with a
        // date component) usually denote real objects; say yes to all —
        // the restructuring is reversible, the analyst can drop noise.
        self.say(q, "yes");
        true
    }

    fn name_new_relation(&mut self, ctx: &NamingContext<'_>) -> String {
        let q = format!("name the new relation for {} ?", ctx.source);
        self.say(q, &ctx.default_name);
        ctx.default_name.clone()
    }
}

fn main() {
    println!("Reverse-engineering the paper's worked example with an interactive expert:\n");
    let db = paper_database();
    let q = paper_q(&db);
    let mut oracle = TranscriptOracle::default();
    let result = run_with_q(db, &q, &mut oracle, &PipelineOptions::default());

    println!("\nFinal schema:\n{}", render_schema(&result.db));
    println!("\nThe session asked {} questions.", oracle.transcript.len());
    // With this policy everything conceptualizable is conceptualized,
    // so the schema contains *more* object relations than the paper's
    // expert chose to keep (Assignment_emp, Department_proj).
    assert!(result.db.schema.len() >= 9);
}
