//! Key (unique column combination) discovery from the extension.
//!
//! The paper assumes `K` can be read from the data dictionary ("the
//! expert user is not required to provide this information"). Truly
//! ancient DBMSs predate even `UNIQUE` declarations; this module
//! recovers candidate keys from the data so the pipeline can run on
//! such systems: levelwise search over column combinations, where `X`
//! is unique iff its stripped partition has no class, with supersets
//! of found keys pruned (minimality) and NULL-free-ness required
//! (SQL keys are not null).
//!
//! A discovered key is only a *candidate* — uniqueness in a snapshot
//! is necessary, not sufficient — which is exactly the kind of
//! presumption the paper routes through the expert user.

use crate::partitions::StrippedPartition;
use dbre_relational::attr::{AttrId, AttrSet};
use dbre_relational::backend::CountBackend;
use dbre_relational::database::Database;
use dbre_relational::encode::DictTable;
use dbre_relational::par::par_map;
use dbre_relational::schema::RelId;
use dbre_relational::sketch::{ColumnSketch, SketchMode, SketchPruneStats};
use dbre_relational::stats::StatsEngine;
use dbre_relational::table::Table;
use std::sync::Arc;

/// Work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KeyStats {
    /// Uniqueness tests performed. A sketch-settled verdict still
    /// counts — the metric is "column sets examined", not "partitions
    /// materialized".
    pub tests: usize,
    /// Sketch-prefilter observability (all zero when sketches were off
    /// or the backend offers none).
    pub sketch: SketchPruneStats,
}

/// A level-1 seed for the levelwise search: either a partition to
/// expand, or a sketch-settled verdict that needs none.
enum UnarySeed {
    /// Proven a key by exact sketch counts (NULL-free, every row
    /// distinct) — nothing expands from a key, so no partition is
    /// ever built for it.
    Key,
    /// The unary partition, with the exact distinct count when a
    /// sketch supplied one (feeds the last-level cardinality bound).
    Partition {
        partition: StrippedPartition,
        cardinality: Option<usize>,
    },
}

/// Result of key discovery on one relation.
#[derive(Debug, Clone)]
pub struct KeyResult {
    /// Minimal unique column sets, sorted.
    pub keys: Vec<AttrSet>,
    /// Work counters.
    pub stats: KeyStats,
}

/// Discovers all minimal unique column combinations of a table, up to
/// `max_width` columns (`None` = full lattice). Columns containing
/// NULL are excluded from key membership.
pub fn discover_keys(table: &Table, max_width: Option<usize>) -> KeyResult {
    // One encode pass; the dictionary is shared read-only across the
    // parallel unary-partition workers, which then only bucket codes.
    let dict = DictTable::build(table);
    let eligible = eligible_columns_raw(table);
    let attrs: Vec<AttrId> = eligible.iter().map(|&i| AttrId(i)).collect();
    let seeds = eligible
        .iter()
        .copied()
        .zip(
            par_map(&attrs, |&a| dict.partition1(a))
                .into_iter()
                .map(|p| UnarySeed::Partition {
                    partition: p,
                    cardinality: None,
                }),
        )
        .collect();
    discover_keys_seeded(
        table.arity(),
        table.len(),
        seeds,
        max_width,
        SketchPruneStats::default(),
    )
}

/// [`discover_keys`] with the unary seed partitions served through
/// the counting seam, honoring the ambient [`SketchMode`]
/// (`DBRE_SKETCH`).
pub fn discover_keys_with_stats(
    db: &Database,
    rel: RelId,
    max_width: Option<usize>,
    backend: &dyn CountBackend,
) -> KeyResult {
    discover_keys_sketched(db, rel, max_width, backend, SketchMode::from_env())
}

/// [`discover_keys`] with the unary seed partitions served through
/// the counting seam (pass a
/// [`StatsEngine`] and they are additionally cached), built
/// concurrently under `--features parallel`.
///
/// When `mode` is on and the backend serves sketches, two exact
/// shortcuts fire (the discovered keys are identical either way):
///
/// * a level-1 column whose sketch proves it a key (NULL-free, every
///   row distinct — exact counts) is accepted without ever building
///   its partition;
/// * at the last expanded level, a candidate whose product of exact
///   unary cardinalities is below the row count cannot be unique
///   (pigeonhole), so its partition product is skipped.
pub fn discover_keys_sketched(
    db: &Database,
    rel: RelId,
    max_width: Option<usize>,
    backend: &dyn CountBackend,
    mode: SketchMode,
) -> KeyResult {
    let table = db.table(rel);
    // A streamed extension has empty raw columns — scanning them would
    // declare every column NULL-free. Read NULL-freeness off the
    // backend-served dictionaries instead (they count NULLs exactly).
    let eligible = if table.is_materialized() {
        eligible_columns_raw(table)
    } else {
        (0..table.arity() as u16)
            .filter(|&i| {
                backend
                    .column_dict(db, rel, AttrId(i))
                    .map(|d| d.null_count() == 0)
                    .unwrap_or(false)
            })
            .collect::<Vec<u16>>()
    };
    let sketches: Vec<Option<Arc<ColumnSketch>>> = eligible
        .iter()
        .map(|&i| {
            if mode.is_on() {
                backend.column_sketch(db, rel, AttrId(i))
            } else {
                None
            }
        })
        .collect();
    // Partitions only for the columns sketches couldn't settle.
    let need: Vec<AttrId> = eligible
        .iter()
        .zip(&sketches)
        .filter(|(_, s)| !s.as_deref().is_some_and(ColumnSketch::is_exact_key))
        .map(|(&i, _)| AttrId(i))
        .collect();
    let mut parts = par_map(&need, |&a| (*backend.partition1(db, rel, a)).clone()).into_iter();
    let mut sk = SketchPruneStats::default();
    let seeds: Vec<(u16, UnarySeed)> = eligible
        .iter()
        .zip(&sketches)
        .map(|(&i, sketch)| {
            let seed = match sketch {
                Some(s) if s.is_exact_key() => {
                    sk.pruned += 1;
                    UnarySeed::Key
                }
                _ => UnarySeed::Partition {
                    partition: parts.next().expect("one partition per unsettled column"),
                    cardinality: sketch.as_ref().map(|s| s.distinct_exact()),
                },
            };
            if let Some(s) = sketch {
                sk.candidates += 1;
                if !matches!(seed, UnarySeed::Key) {
                    sk.verified += 1;
                }
                sk.observe_column(s);
            }
            (i, seed)
        })
        .collect();
    discover_keys_seeded(table.arity(), table.len(), seeds, max_width, sk)
}

/// Columns containing NULL cannot participate in a key — raw-column
/// scan, valid only for materialized tables.
fn eligible_columns_raw(table: &Table) -> Vec<u16> {
    (0..table.arity() as u16)
        .filter(|&i| {
            !table
                .column(AttrId(i))
                .iter()
                .any(dbre_relational::Value::is_null)
        })
        .collect()
}

/// The shared levelwise search over prebuilt level-1 `seeds`
/// (column index, seed), in column order.
fn discover_keys_seeded(
    arity: usize,
    rows: usize,
    seeds: Vec<(u16, UnarySeed)>,
    max_width: Option<usize>,
    sketch: SketchPruneStats,
) -> KeyResult {
    let n = arity;
    assert!(n <= 32, "key discovery supports at most 32 attributes");
    let eligible = seeds.len();
    let mut stats = KeyStats {
        sketch,
        ..KeyStats::default()
    };

    let mut keys: Vec<AttrSet> = Vec::new();
    // Exact unary distinct counts where known, for the last-level
    // cardinality bound.
    let mut cards: Vec<Option<usize>> = vec![None; 32];
    // Level 1 seeds: partitions (or settled verdicts) per column.
    let mut level: Vec<(u32, StrippedPartition)> = Vec::new();
    for (i, seed) in seeds {
        stats.tests += 1;
        match seed {
            UnarySeed::Key => keys.push(AttrSet::from_indices([i])),
            UnarySeed::Partition {
                partition: p,
                cardinality,
            } => {
                cards[i as usize] = cardinality;
                if p.is_key() {
                    keys.push(AttrSet::from_indices([i]));
                } else {
                    level.push((1 << i, p));
                }
            }
        }
    }

    let max_width = max_width.unwrap_or(eligible.max(1));
    let mut width = 1;
    while width < max_width && !level.is_empty() {
        // Partitions produced in the last expanded round never expand
        // further, so a candidate the cardinality bound refutes there
        // needs no partition product at all.
        let last_level = width + 1 == max_width;
        let mut next: Vec<(u32, StrippedPartition)> = Vec::new();
        for i in 0..level.len() {
            for j in i + 1..level.len() {
                let (mx, px) = &level[i];
                let (my, py) = &level[j];
                let merged = mx | my;
                if merged.count_ones() != width as u32 + 1 {
                    continue;
                }
                if next.iter().any(|(m, _)| *m == merged) {
                    continue;
                }
                // Prune supersets of found keys.
                if keys.iter().any(|k| mask_of(k) & merged == mask_of(k)) {
                    continue;
                }
                if last_level {
                    if let Some(bound) = product_card_bound(&cards, merged) {
                        stats.sketch.candidates += 1;
                        if bound < rows {
                            // Pigeonhole: at most `bound` distinct
                            // projections over fewer than `rows` rows
                            // — the exact test would report non-key.
                            stats.tests += 1;
                            stats.sketch.pruned += 1;
                            continue;
                        }
                        stats.sketch.verified += 1;
                    }
                }
                let p = px.product(py);
                stats.tests += 1;
                if p.is_key() {
                    keys.push(set_of(merged));
                } else {
                    next.push((merged, p));
                }
            }
        }
        level = next;
        width += 1;
    }

    // Empty table / single row: the empty set is technically unique,
    // but a key of nothing helps nobody — report the narrowest
    // eligible column if any, else nothing.
    keys.sort();
    KeyResult { keys, stats }
}

/// Upper bound on the distinct projections of the column set `mask`:
/// the product of exact unary distinct counts. `None` when any count
/// is unknown (unsketched column).
fn product_card_bound(cards: &[Option<usize>], mask: u32) -> Option<usize> {
    let mut bound = 1usize;
    for i in 0..32u16 {
        if mask & (1 << i) != 0 {
            bound = bound.saturating_mul(cards[i as usize]?);
        }
    }
    Some(bound)
}

fn mask_of(set: &AttrSet) -> u32 {
    set.iter().fold(0u32, |m, a| m | (1 << a.0))
}

fn set_of(mask: u32) -> AttrSet {
    AttrSet::from_indices((0..32u16).filter(|i| mask & (1 << i) != 0))
}

/// Infers keys for every relation of a database that has none declared
/// and registers the narrowest discovered key as its primary key.
/// Returns the relations that received an inferred key.
pub fn infer_missing_keys(db: &mut Database, max_width: Option<usize>) -> Vec<(RelId, AttrSet)> {
    infer_missing_keys_with_stats(db, max_width, &StatsEngine::new())
}

/// [`infer_missing_keys`] with unary partitions served through the
/// counting seam — memoized when `backend` is a [`StatsEngine`] (key
/// registration touches only the dictionary, never the tables, so
/// previously cached entries stay valid). Honors the ambient
/// [`SketchMode`] (`DBRE_SKETCH`).
pub fn infer_missing_keys_with_stats(
    db: &mut Database,
    max_width: Option<usize>,
    backend: &dyn CountBackend,
) -> Vec<(RelId, AttrSet)> {
    infer_missing_keys_sketched(db, max_width, backend, SketchMode::from_env()).0
}

/// [`infer_missing_keys_with_stats`] with an explicit [`SketchMode`],
/// also returning the accumulated sketch-prefilter counters.
pub fn infer_missing_keys_sketched(
    db: &mut Database,
    max_width: Option<usize>,
    backend: &dyn CountBackend,
    mode: SketchMode,
) -> (Vec<(RelId, AttrSet)>, SketchPruneStats) {
    let mut inferred = Vec::new();
    let mut sketch = SketchPruneStats::default();
    let rels: Vec<RelId> = db.schema.iter().map(|(r, _)| r).collect();
    for rel in rels {
        if db.constraints.primary_key(rel).is_some() {
            continue;
        }
        let result = discover_keys_sketched(db, rel, max_width, backend, mode);
        sketch.merge(&result.stats.sketch);
        if let Some(best) = result.keys.iter().min_by_key(|k| (k.len(), mask_of(k))) {
            db.constraints.add_key(rel, best.clone());
            inferred.push((rel, best.clone()));
        }
    }
    db.constraints.normalize();
    (inferred, sketch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbre_relational::schema::Relation;
    use dbre_relational::value::{Domain, Value};

    fn table(rows: &[&[i64]]) -> Table {
        let arity = rows.first().map_or(0, |r| r.len());
        Table::from_rows(
            arity,
            rows.iter()
                .map(|r| r.iter().map(|v| Value::Int(*v)).collect::<Vec<_>>()),
        )
        .unwrap()
    }

    #[test]
    fn single_column_key() {
        let t = table(&[&[1, 5], &[2, 5], &[3, 6]]);
        let r = discover_keys(&t, None);
        assert_eq!(r.keys, vec![AttrSet::from_indices([0u16])]);
    }

    #[test]
    fn composite_key_when_no_single_works() {
        // (a, b) unique; neither column alone.
        let t = table(&[&[1, 1], &[1, 2], &[2, 1]]);
        let r = discover_keys(&t, None);
        assert_eq!(r.keys, vec![AttrSet::from_indices([0u16, 1])]);
    }

    #[test]
    fn multiple_minimal_keys() {
        // a unique AND b unique.
        let t = table(&[&[1, 10], &[2, 20], &[3, 30]]);
        let r = discover_keys(&t, None);
        assert_eq!(
            r.keys,
            vec![AttrSet::from_indices([0u16]), AttrSet::from_indices([1u16])]
        );
    }

    #[test]
    fn supersets_of_keys_pruned() {
        let t = table(&[&[1, 1, 1], &[2, 1, 1], &[3, 2, 2]]);
        let r = discover_keys(&t, None);
        // {0} is a key; {0,1}, {0,2}, {0,1,2} must not be reported.
        assert!(r.keys.contains(&AttrSet::from_indices([0u16])));
        for k in &r.keys {
            assert!(!AttrSet::from_indices([0u16]).is_strict_subset(k));
        }
        // Pruning really cut the test count: full lattice for 3 cols
        // is 7 sets; we must have tested fewer.
        assert!(r.stats.tests < 7);
    }

    #[test]
    fn null_columns_excluded() {
        let t = Table::from_rows(
            2,
            vec![
                vec![Value::Int(1), Value::Null],
                vec![Value::Int(2), Value::Int(5)],
            ],
        )
        .unwrap();
        let r = discover_keys(&t, None);
        assert_eq!(r.keys, vec![AttrSet::from_indices([0u16])]);
    }

    #[test]
    fn duplicate_rows_mean_no_key() {
        let t = table(&[&[1, 1], &[1, 1]]);
        let r = discover_keys(&t, None);
        assert!(r.keys.is_empty());
    }

    #[test]
    fn width_bound_respected() {
        let t = table(&[&[1, 1, 7], &[1, 2, 8], &[2, 1, 9], &[2, 2, 7]]);
        let r = discover_keys(&t, Some(1));
        assert!(r.keys.is_empty(), "the only key {{a,b}} is width 2");
        let r = discover_keys(&t, Some(2));
        assert!(r.keys.contains(&AttrSet::from_indices([0u16, 1])));
    }

    #[test]
    fn streamed_extension_excludes_null_columns_from_keys() {
        use dbre_relational::encode::ColumnDict;
        use dbre_relational::pages::{PageFile, PagedBackend, PagedColumn};
        use dbre_relational::spill::SpilledTable;
        use std::sync::Arc;

        // Build the rows in a scratch db only to encode them, then
        // serve them to a second db purely as a streamed extension.
        let mut scratch = Database::new();
        let r0 = scratch
            .add_relation(Relation::of("R", &[("a", Domain::Int), ("b", Domain::Int)]))
            .unwrap();
        let rows: &[(Option<i64>, i64)] = &[(Some(1), 10), (None, 20), (Some(2), 30)];
        for (a, b) in rows {
            let av = a.map(Value::Int).unwrap_or(Value::Null);
            scratch.insert(r0, vec![av, Value::Int(*b)]).unwrap();
        }
        let cols: Vec<Arc<PagedColumn>> = (0..2)
            .map(|i| {
                let dict = ColumnDict::build(scratch.table(r0).column(AttrId(i)));
                let file = PageFile::spill(dict.codes()).unwrap();
                Arc::new(PagedColumn::new(Arc::new(dict.slim()), file))
            })
            .collect();

        let mut db = Database::new();
        let r = db
            .add_relation(Relation::of("R", &[("a", Domain::Int), ("b", Domain::Int)]))
            .unwrap();
        db.set_streamed_extension(r, rows.len());
        let backend = PagedBackend::new();
        backend.adopt_spilled(&db, r, &SpilledTable::new(cols, rows.len(), false));

        // `a` contains NULL: only `b` may seed a key, and it is one.
        let result = discover_keys_with_stats(&db, r, None, &backend);
        assert_eq!(result.keys, vec![AttrSet::from_indices([1u16])]);

        // Same rows materialized agree.
        let reference = discover_keys(scratch.table(r0), None);
        assert_eq!(result.keys, reference.keys);
    }

    #[test]
    fn infer_missing_keys_fills_undeclared_relations() {
        let mut db = Database::new();
        let declared = db
            .add_relation(Relation::of("Declared", &[("id", Domain::Int)]))
            .unwrap();
        db.constraints
            .add_key(declared, AttrSet::from_indices([0u16]));
        let bare = db
            .add_relation(Relation::of(
                "Bare",
                &[("x", Domain::Int), ("y", Domain::Int)],
            ))
            .unwrap();
        db.constraints.normalize();
        for (x, y) in [(1, 1), (1, 2), (2, 1)] {
            db.insert(bare, vec![Value::Int(x), Value::Int(y)]).unwrap();
        }
        let inferred = infer_missing_keys(&mut db, None);
        assert_eq!(inferred.len(), 1);
        assert_eq!(inferred[0].0, bare);
        assert!(db
            .constraints
            .is_key(bare, &AttrSet::from_indices([0u16, 1])));
        // Declared relation untouched.
        assert_eq!(db.constraints.keys_of(declared).count(), 1);
        // The inferred key is consistent with the dictionary check.
        db.validate_dictionary().unwrap();
    }
}
