//! Key (unique column combination) discovery from the extension.
//!
//! The paper assumes `K` can be read from the data dictionary ("the
//! expert user is not required to provide this information"). Truly
//! ancient DBMSs predate even `UNIQUE` declarations; this module
//! recovers candidate keys from the data so the pipeline can run on
//! such systems: levelwise search over column combinations, where `X`
//! is unique iff its stripped partition has no class, with supersets
//! of found keys pruned (minimality) and NULL-free-ness required
//! (SQL keys are not null).
//!
//! A discovered key is only a *candidate* — uniqueness in a snapshot
//! is necessary, not sufficient — which is exactly the kind of
//! presumption the paper routes through the expert user.

use crate::partitions::StrippedPartition;
use dbre_relational::attr::{AttrId, AttrSet};
use dbre_relational::backend::CountBackend;
use dbre_relational::database::Database;
use dbre_relational::encode::DictTable;
use dbre_relational::par::par_map;
use dbre_relational::schema::RelId;
use dbre_relational::stats::StatsEngine;
use dbre_relational::table::Table;

/// Work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KeyStats {
    /// Uniqueness tests performed.
    pub tests: usize,
}

/// Result of key discovery on one relation.
#[derive(Debug, Clone)]
pub struct KeyResult {
    /// Minimal unique column sets, sorted.
    pub keys: Vec<AttrSet>,
    /// Work counters.
    pub stats: KeyStats,
}

/// Discovers all minimal unique column combinations of a table, up to
/// `max_width` columns (`None` = full lattice). Columns containing
/// NULL are excluded from key membership.
pub fn discover_keys(table: &Table, max_width: Option<usize>) -> KeyResult {
    // One encode pass; the dictionary is shared read-only across the
    // parallel unary-partition workers, which then only bucket codes.
    let dict = DictTable::build(table);
    let eligible = eligible_columns_raw(table);
    discover_keys_seeded(table.arity(), eligible, max_width, |eligible| {
        let attrs: Vec<AttrId> = eligible.iter().map(|&i| AttrId(i)).collect();
        par_map(&attrs, |&a| dict.partition1(a))
    })
}

/// [`discover_keys`] with the unary seed partitions served through
/// the counting seam (pass a
/// [`StatsEngine`] and they are additionally cached), built
/// concurrently under `--features parallel`.
pub fn discover_keys_with_stats(
    db: &Database,
    rel: RelId,
    max_width: Option<usize>,
    backend: &dyn CountBackend,
) -> KeyResult {
    let table = db.table(rel);
    // A streamed extension has empty raw columns — scanning them would
    // declare every column NULL-free. Read NULL-freeness off the
    // backend-served dictionaries instead (they count NULLs exactly).
    let eligible = if table.is_materialized() {
        eligible_columns_raw(table)
    } else {
        (0..table.arity() as u16)
            .filter(|&i| {
                backend
                    .column_dict(db, rel, AttrId(i))
                    .map(|d| d.null_count() == 0)
                    .unwrap_or(false)
            })
            .collect()
    };
    discover_keys_seeded(table.arity(), eligible, max_width, |eligible| {
        let attrs: Vec<AttrId> = eligible.iter().map(|&i| AttrId(i)).collect();
        par_map(&attrs, |&a| (*backend.partition1(db, rel, a)).clone())
    })
}

/// Columns containing NULL cannot participate in a key — raw-column
/// scan, valid only for materialized tables.
fn eligible_columns_raw(table: &Table) -> Vec<u16> {
    (0..table.arity() as u16)
        .filter(|&i| {
            !table
                .column(AttrId(i))
                .iter()
                .any(dbre_relational::Value::is_null)
        })
        .collect()
}

/// The shared levelwise search; `seed` builds the unary partitions for
/// the eligible columns, in order.
fn discover_keys_seeded(
    arity: usize,
    eligible: Vec<u16>,
    max_width: Option<usize>,
    seed: impl FnOnce(&[u16]) -> Vec<StrippedPartition>,
) -> KeyResult {
    let n = arity;
    assert!(n <= 32, "key discovery supports at most 32 attributes");
    let mut stats = KeyStats::default();

    let mut keys: Vec<AttrSet> = Vec::new();
    // Level 1 seeds: partitions for eligible single columns.
    let mut level: Vec<(u32, StrippedPartition)> = Vec::new();
    for (&i, p) in eligible.iter().zip(seed(&eligible)) {
        stats.tests += 1;
        if p.is_key() {
            keys.push(AttrSet::from_indices([i]));
        } else {
            level.push((1 << i, p));
        }
    }

    let max_width = max_width.unwrap_or(eligible.len().max(1));
    let mut width = 1;
    while width < max_width && !level.is_empty() {
        let mut next: Vec<(u32, StrippedPartition)> = Vec::new();
        for i in 0..level.len() {
            for j in i + 1..level.len() {
                let (mx, px) = &level[i];
                let (my, py) = &level[j];
                let merged = mx | my;
                if merged.count_ones() != width as u32 + 1 {
                    continue;
                }
                if next.iter().any(|(m, _)| *m == merged) {
                    continue;
                }
                // Prune supersets of found keys.
                if keys.iter().any(|k| mask_of(k) & merged == mask_of(k)) {
                    continue;
                }
                let p = px.product(py);
                stats.tests += 1;
                if p.is_key() {
                    keys.push(set_of(merged));
                } else {
                    next.push((merged, p));
                }
            }
        }
        level = next;
        width += 1;
    }

    // Empty table / single row: the empty set is technically unique,
    // but a key of nothing helps nobody — report the narrowest
    // eligible column if any, else nothing.
    keys.sort();
    KeyResult { keys, stats }
}

fn mask_of(set: &AttrSet) -> u32 {
    set.iter().fold(0u32, |m, a| m | (1 << a.0))
}

fn set_of(mask: u32) -> AttrSet {
    AttrSet::from_indices((0..32u16).filter(|i| mask & (1 << i) != 0))
}

/// Infers keys for every relation of a database that has none declared
/// and registers the narrowest discovered key as its primary key.
/// Returns the relations that received an inferred key.
pub fn infer_missing_keys(db: &mut Database, max_width: Option<usize>) -> Vec<(RelId, AttrSet)> {
    infer_missing_keys_with_stats(db, max_width, &StatsEngine::new())
}

/// [`infer_missing_keys`] with unary partitions served through the
/// counting seam — memoized when `backend` is a [`StatsEngine`] (key
/// registration touches only the dictionary, never the tables, so
/// previously cached entries stay valid).
pub fn infer_missing_keys_with_stats(
    db: &mut Database,
    max_width: Option<usize>,
    backend: &dyn CountBackend,
) -> Vec<(RelId, AttrSet)> {
    let mut inferred = Vec::new();
    let rels: Vec<RelId> = db.schema.iter().map(|(r, _)| r).collect();
    for rel in rels {
        if db.constraints.primary_key(rel).is_some() {
            continue;
        }
        let result = discover_keys_with_stats(db, rel, max_width, backend);
        if let Some(best) = result.keys.iter().min_by_key(|k| (k.len(), mask_of(k))) {
            db.constraints.add_key(rel, best.clone());
            inferred.push((rel, best.clone()));
        }
    }
    db.constraints.normalize();
    inferred
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbre_relational::schema::Relation;
    use dbre_relational::value::{Domain, Value};

    fn table(rows: &[&[i64]]) -> Table {
        let arity = rows.first().map_or(0, |r| r.len());
        Table::from_rows(
            arity,
            rows.iter()
                .map(|r| r.iter().map(|v| Value::Int(*v)).collect::<Vec<_>>()),
        )
        .unwrap()
    }

    #[test]
    fn single_column_key() {
        let t = table(&[&[1, 5], &[2, 5], &[3, 6]]);
        let r = discover_keys(&t, None);
        assert_eq!(r.keys, vec![AttrSet::from_indices([0u16])]);
    }

    #[test]
    fn composite_key_when_no_single_works() {
        // (a, b) unique; neither column alone.
        let t = table(&[&[1, 1], &[1, 2], &[2, 1]]);
        let r = discover_keys(&t, None);
        assert_eq!(r.keys, vec![AttrSet::from_indices([0u16, 1])]);
    }

    #[test]
    fn multiple_minimal_keys() {
        // a unique AND b unique.
        let t = table(&[&[1, 10], &[2, 20], &[3, 30]]);
        let r = discover_keys(&t, None);
        assert_eq!(
            r.keys,
            vec![AttrSet::from_indices([0u16]), AttrSet::from_indices([1u16])]
        );
    }

    #[test]
    fn supersets_of_keys_pruned() {
        let t = table(&[&[1, 1, 1], &[2, 1, 1], &[3, 2, 2]]);
        let r = discover_keys(&t, None);
        // {0} is a key; {0,1}, {0,2}, {0,1,2} must not be reported.
        assert!(r.keys.contains(&AttrSet::from_indices([0u16])));
        for k in &r.keys {
            assert!(!AttrSet::from_indices([0u16]).is_strict_subset(k));
        }
        // Pruning really cut the test count: full lattice for 3 cols
        // is 7 sets; we must have tested fewer.
        assert!(r.stats.tests < 7);
    }

    #[test]
    fn null_columns_excluded() {
        let t = Table::from_rows(
            2,
            vec![
                vec![Value::Int(1), Value::Null],
                vec![Value::Int(2), Value::Int(5)],
            ],
        )
        .unwrap();
        let r = discover_keys(&t, None);
        assert_eq!(r.keys, vec![AttrSet::from_indices([0u16])]);
    }

    #[test]
    fn duplicate_rows_mean_no_key() {
        let t = table(&[&[1, 1], &[1, 1]]);
        let r = discover_keys(&t, None);
        assert!(r.keys.is_empty());
    }

    #[test]
    fn width_bound_respected() {
        let t = table(&[&[1, 1, 7], &[1, 2, 8], &[2, 1, 9], &[2, 2, 7]]);
        let r = discover_keys(&t, Some(1));
        assert!(r.keys.is_empty(), "the only key {{a,b}} is width 2");
        let r = discover_keys(&t, Some(2));
        assert!(r.keys.contains(&AttrSet::from_indices([0u16, 1])));
    }

    #[test]
    fn streamed_extension_excludes_null_columns_from_keys() {
        use dbre_relational::encode::ColumnDict;
        use dbre_relational::pages::{PageFile, PagedBackend, PagedColumn};
        use dbre_relational::spill::SpilledTable;
        use std::sync::Arc;

        // Build the rows in a scratch db only to encode them, then
        // serve them to a second db purely as a streamed extension.
        let mut scratch = Database::new();
        let r0 = scratch
            .add_relation(Relation::of("R", &[("a", Domain::Int), ("b", Domain::Int)]))
            .unwrap();
        let rows: &[(Option<i64>, i64)] = &[(Some(1), 10), (None, 20), (Some(2), 30)];
        for (a, b) in rows {
            let av = a.map(Value::Int).unwrap_or(Value::Null);
            scratch.insert(r0, vec![av, Value::Int(*b)]).unwrap();
        }
        let cols: Vec<Arc<PagedColumn>> = (0..2)
            .map(|i| {
                let dict = ColumnDict::build(scratch.table(r0).column(AttrId(i)));
                let file = PageFile::spill(dict.codes()).unwrap();
                Arc::new(PagedColumn::new(Arc::new(dict.slim()), file))
            })
            .collect();

        let mut db = Database::new();
        let r = db
            .add_relation(Relation::of("R", &[("a", Domain::Int), ("b", Domain::Int)]))
            .unwrap();
        db.set_streamed_extension(r, rows.len());
        let backend = PagedBackend::new();
        backend.adopt_spilled(&db, r, &SpilledTable::new(cols, rows.len(), false));

        // `a` contains NULL: only `b` may seed a key, and it is one.
        let result = discover_keys_with_stats(&db, r, None, &backend);
        assert_eq!(result.keys, vec![AttrSet::from_indices([1u16])]);

        // Same rows materialized agree.
        let reference = discover_keys(scratch.table(r0), None);
        assert_eq!(result.keys, reference.keys);
    }

    #[test]
    fn infer_missing_keys_fills_undeclared_relations() {
        let mut db = Database::new();
        let declared = db
            .add_relation(Relation::of("Declared", &[("id", Domain::Int)]))
            .unwrap();
        db.constraints
            .add_key(declared, AttrSet::from_indices([0u16]));
        let bare = db
            .add_relation(Relation::of(
                "Bare",
                &[("x", Domain::Int), ("y", Domain::Int)],
            ))
            .unwrap();
        db.constraints.normalize();
        for (x, y) in [(1, 1), (1, 2), (2, 1)] {
            db.insert(bare, vec![Value::Int(x), Value::Int(y)]).unwrap();
        }
        let inferred = infer_missing_keys(&mut db, None);
        assert_eq!(inferred.len(), 1);
        assert_eq!(inferred[0].0, bare);
        assert!(db
            .constraints
            .is_key(bare, &AttrSet::from_indices([0u16, 1])));
        // Declared relation untouched.
        assert_eq!(db.constraints.keys_of(declared).count(), 1);
        // The inferred key is consistent with the dictionary check.
        db.validate_dictionary().unwrap();
    }
}
