//! MIND-style levelwise discovery of *n-ary* inclusion dependencies
//! (De Marchi, Lopes, Petit — by the same LISI group as the paper).
//!
//! Unary INDs come from [`mod@crate::spider`]; higher arities are generated
//! levelwise: a candidate `R[a₁…aₖ] ≪ S[b₁…bₖ]` is formed only when
//! every (k−1)-ary projection is a satisfied IND (the
//! projection-and-permutation axiom gives downward closure), then
//! validated against the extension.
//!
//! This is the exhaustive composite-FK baseline: the paper's extractor
//! gets composite joins for free from multi-attribute `WHERE`
//! conjunctions, while blind mining pays a combinatorial candidate
//! space for them.

use crate::spider::{spider, SpiderConfig};
use dbre_relational::attr::AttrId;
use dbre_relational::backend::CountBackend;
use dbre_relational::database::Database;
use dbre_relational::deps::{Ind, IndSide};
use dbre_relational::par::par_map;
use dbre_relational::stats::StatsEngine;
use std::collections::BTreeSet;

/// Work counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MindStats {
    /// Satisfied unary INDs seeding the search.
    pub unary: usize,
    /// Candidates generated across all levels ≥ 2.
    pub candidates: usize,
    /// Candidates validated against the extension.
    pub validated: usize,
}

/// Result of a MIND run.
#[derive(Debug, Clone)]
pub struct MindResult {
    /// All satisfied INDs up to `max_arity`, unary included,
    /// deterministic order.
    pub inds: Vec<Ind>,
    /// Work counters.
    pub stats: MindStats,
}

/// Runs levelwise n-ary IND discovery.
///
/// `max_arity` bounds the composite width (2 or 3 is typical; the
/// candidate space explodes beyond that — which is the measurement).
pub fn mind(db: &Database, cfg: &SpiderConfig, max_arity: usize) -> MindResult {
    mind_with_stats(db, cfg, max_arity, &StatsEngine::new())
}

/// [`mind`] with candidate validation served through the counting
/// seam: pass a [`StatsEngine`] and every `r[X] ⊆ s[Y]` test reuses
/// the memoized distinct projections. The validations of one level run
/// through [`par_map`] (concurrent under `--features parallel`,
/// identical output either way since candidate generation stays
/// sequential and order-preserving).
pub fn mind_with_stats(
    db: &Database,
    cfg: &SpiderConfig,
    max_arity: usize,
    backend: &dyn CountBackend,
) -> MindResult {
    let unary = spider(db, cfg);
    let mut stats = MindStats {
        unary: unary.inds.len(),
        ..Default::default()
    };
    let mut all: Vec<Ind> = unary.inds.clone();

    // Group satisfied INDs of the current level by relation pair.
    let mut level: Vec<Ind> = unary.inds;
    let mut arity = 1;
    while arity < max_arity && !level.is_empty() {
        let level_set: BTreeSet<Ind> = level.iter().cloned().collect();
        let mut seen: BTreeSet<Ind> = BTreeSet::new();
        let mut cands: Vec<Ind> = Vec::new();

        // Join pairs of same-pair INDs that extend each other by one
        // position (prefix-join on the attribute correspondence).
        for x in &level {
            for y in &level {
                let Some(cand) = join_candidates(x, y) else {
                    continue;
                };
                if seen.contains(&cand) {
                    continue;
                }
                // Downward closure: every (k−1)-projection satisfied.
                if !sub_inds(&cand).all(|s| level_set.contains(&s)) {
                    continue;
                }
                seen.insert(cand.clone());
                cands.push(cand);
            }
        }
        stats.candidates += cands.len();
        stats.validated += cands.len();
        let holds = par_map(&cands, |cand| backend.ind_holds(db, cand));
        let next: Vec<Ind> = cands
            .into_iter()
            .zip(holds)
            .filter_map(|(cand, ok)| ok.then_some(cand))
            .collect();
        all.extend(next.iter().cloned());
        level = next;
        arity += 1;
    }

    all.sort();
    stats_sanity(&all);
    MindResult { inds: all, stats }
}

/// Joins two k-ary INDs over the same relation pair into a (k+1)-ary
/// candidate when `y` adds exactly one new correspondence position to
/// `x` (and that position sorts after `x`'s last, for canonical
/// generation).
fn join_candidates(x: &Ind, y: &Ind) -> Option<Ind> {
    if x.lhs.rel != y.lhs.rel || x.rhs.rel != y.rhs.rel {
        return None;
    }
    let k = x.lhs.attrs.len();
    if y.lhs.attrs.len() != k {
        return None;
    }
    // Canonical form: correspondences sorted by LHS attribute; extend
    // by y's last correspondence.
    let (yl, yr) = (*y.lhs.attrs.last()?, *y.rhs.attrs.last()?);
    // Prefixes must match.
    if k >= 1 {
        let same_prefix = x.lhs.attrs[..k - 1] == y.lhs.attrs[..k - 1]
            && x.rhs.attrs[..k - 1] == y.rhs.attrs[..k - 1];
        if !same_prefix {
            return None;
        }
    }
    let (xl, xr) = (*x.lhs.attrs.last()?, *x.rhs.attrs.last()?);
    if yl <= xl {
        return None; // keep LHS attrs strictly increasing
    }
    // An attribute may not repeat on either side.
    if x.rhs.attrs.contains(&yr) {
        return None;
    }
    let mut lhs: Vec<AttrId> = x.lhs.attrs.clone();
    let mut rhs: Vec<AttrId> = x.rhs.attrs.clone();
    let _ = (xl, xr);
    lhs.push(yl);
    rhs.push(yr);
    Some(Ind {
        lhs: IndSide::new(x.lhs.rel, lhs),
        rhs: IndSide::new(x.rhs.rel, rhs),
    })
}

/// The k (k−1)-ary positional projections of a k-ary IND.
fn sub_inds(ind: &Ind) -> impl Iterator<Item = Ind> + '_ {
    let n = ind.lhs.attrs.len();
    (0..n).map(move |skip| {
        let lhs: Vec<AttrId> = ind
            .lhs
            .attrs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, a)| *a)
            .collect();
        let rhs: Vec<AttrId> = ind
            .rhs
            .attrs
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != skip)
            .map(|(_, a)| *a)
            .collect();
        Ind {
            lhs: IndSide::new(ind.lhs.rel, lhs),
            rhs: IndSide::new(ind.rhs.rel, rhs),
        }
    })
}

fn stats_sanity(all: &[Ind]) {
    debug_assert!(all.windows(2).all(|w| w[0] <= w[1]), "sorted output");
}

/// Convenience: only the INDs of a given arity.
pub fn of_arity(result: &MindResult, arity: usize) -> Vec<&Ind> {
    result
        .inds
        .iter()
        .filter(|i| i.lhs.attrs.len() == arity)
        .collect()
}

/// Convenience: the maximal satisfied INDs (not a projection of
/// another satisfied IND over the same relation pair).
pub fn maximal(result: &MindResult) -> Vec<&Ind> {
    result
        .inds
        .iter()
        .filter(|i| {
            !result.inds.iter().any(|bigger| {
                bigger.lhs.attrs.len() > i.lhs.attrs.len()
                    && bigger.lhs.rel == i.lhs.rel
                    && bigger.rhs.rel == i.rhs.rel
                    && i.lhs.attrs.iter().zip(&i.rhs.attrs).all(|(la, ra)| {
                        bigger
                            .lhs
                            .attrs
                            .iter()
                            .zip(&bigger.rhs.attrs)
                            .any(|(bl, br)| bl == la && br == ra)
                    })
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbre_relational::schema::Relation;
    use dbre_relational::value::{Domain, Value};

    /// Orders(cust, region) ⊆ Customer(id, area) as a *pair*:
    /// (cust, region) pairs all appear in Customer, and each column
    /// individually too.
    fn db() -> Database {
        let mut db = Database::new();
        let customer = db
            .add_relation(Relation::of(
                "Customer",
                &[("id", Domain::Int), ("area", Domain::Int)],
            ))
            .unwrap();
        let orders = db
            .add_relation(Relation::of(
                "Orders",
                &[("cust", Domain::Int), ("region", Domain::Int)],
            ))
            .unwrap();
        for (id, area) in [(1, 10), (2, 20), (3, 30), (4, 10)] {
            db.insert(customer, vec![Value::Int(id), Value::Int(area)])
                .unwrap();
        }
        for (c, r) in [(1, 10), (2, 20), (1, 10)] {
            db.insert(orders, vec![Value::Int(c), Value::Int(r)])
                .unwrap();
        }
        db
    }

    fn render(db: &Database, inds: &[&Ind]) -> Vec<String> {
        inds.iter().map(|i| i.render(&db.schema)).collect()
    }

    #[test]
    fn finds_binary_ind() {
        let d = db();
        let result = mind(&d, &SpiderConfig::default(), 2);
        let binary = of_arity(&result, 2);
        let names = render(&d, &binary);
        assert!(
            names.contains(&"Orders[cust, region] << Customer[id, area]".to_string()),
            "got {names:?}"
        );
        // Every reported IND actually holds.
        for ind in &result.inds {
            assert!(d.ind_holds(ind), "{ind}");
        }
    }

    #[test]
    fn binary_requires_pairwise_cooccurrence() {
        // Columns individually included but pairs not.
        let mut d = Database::new();
        let a = d
            .add_relation(Relation::of("A", &[("x", Domain::Int), ("y", Domain::Int)]))
            .unwrap();
        let b = d
            .add_relation(Relation::of("B", &[("u", Domain::Int), ("v", Domain::Int)]))
            .unwrap();
        // B pairs: (1,20),(2,10). A pair (1,10) — columns ⊆ but pair ∉.
        d.insert(a, vec![Value::Int(1), Value::Int(10)]).unwrap();
        d.insert(b, vec![Value::Int(1), Value::Int(20)]).unwrap();
        d.insert(b, vec![Value::Int(2), Value::Int(10)]).unwrap();
        let result = mind(&d, &SpiderConfig::default(), 2);
        let binary = of_arity(&result, 2);
        assert!(
            !render(&d, &binary).contains(&"A[x, y] << B[u, v]".to_string()),
            "pair inclusion must be checked against the extension"
        );
    }

    #[test]
    fn level_one_matches_spider() {
        let d = db();
        let result = mind(&d, &SpiderConfig::default(), 1);
        let sp = spider(&d, &SpiderConfig::default());
        assert_eq!(result.inds, sp.inds);
        assert_eq!(result.stats.candidates, 0);
    }

    #[test]
    fn downward_closure_prunes_candidates() {
        let d = db();
        let result = mind(&d, &SpiderConfig::default(), 3);
        // With 2-ary sides maxing at arity 2, no 3-ary candidates can
        // form — and candidate count stays small.
        assert!(of_arity(&result, 3).is_empty());
        assert!(result.stats.candidates <= result.stats.unary * result.stats.unary);
    }

    #[test]
    fn maximal_filters_projections() {
        let d = db();
        let result = mind(&d, &SpiderConfig::default(), 2);
        let maxi = maximal(&result);
        let names = render(&d, &maxi);
        // The unary projections of the satisfied pair IND are gone.
        assert!(!names.contains(&"Orders[cust] << Customer[id]".to_string()));
        assert!(names.contains(&"Orders[cust, region] << Customer[id, area]".to_string()));
    }

    #[test]
    fn ternary_composite_found() {
        let mut d = Database::new();
        let t = d
            .add_relation(Relation::of(
                "T",
                &[("a", Domain::Int), ("b", Domain::Int), ("c", Domain::Int)],
            ))
            .unwrap();
        let s = d
            .add_relation(Relation::of(
                "S",
                &[("x", Domain::Int), ("y", Domain::Int), ("z", Domain::Int)],
            ))
            .unwrap();
        for row in [(1, 2, 3), (4, 5, 6)] {
            d.insert(
                s,
                vec![Value::Int(row.0), Value::Int(row.1), Value::Int(row.2)],
            )
            .unwrap();
        }
        d.insert(t, vec![Value::Int(1), Value::Int(2), Value::Int(3)])
            .unwrap();
        let result = mind(&d, &SpiderConfig::default(), 3);
        let ternary = of_arity(&result, 3);
        assert!(render(&d, &ternary).contains(&"T[a, b, c] << S[x, y, z]".to_string()));
    }
}
