//! # dbre-mine
//!
//! Dependency-mining baselines for the DBRE reproduction. The paper's
//! central argument is that *query-guided* elicitation (testing only
//! the dependencies that application programs navigate) beats *blind
//! mining* of everything the extension satisfies — both in work and in
//! conceptual relevance. To measure that claim we implement the blind
//! miners the literature offers:
//!
//! * [`mod@tane`] — levelwise discovery of all minimal FDs with stripped
//!   partitions ([`partitions`]);
//! * [`mod@spider`] — exhaustive unary IND discovery by sorted k-way merge;
//! * [`fd_check`] — single-FD verification backends (hash vs partition)
//!   used by the paper's RHS-Discovery;
//! * [`approx`] — `g3`-style error measures backing "enforce despite
//!   dirty data" oracle decisions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod fd_check;
pub mod keys;
pub mod mind;
pub use dbre_relational::partitions;
pub mod spider;
pub mod tane;

pub use approx::{
    fd_error, fd_error_coded, fd_error_db, fd_holds_approx, ind_error, ind_holds_approx,
};
pub use fd_check::{check_cached, check_encoded, check_hash, check_partition, violations};
pub use keys::{
    discover_keys, discover_keys_sketched, discover_keys_with_stats, infer_missing_keys,
    infer_missing_keys_sketched, infer_missing_keys_with_stats, KeyResult, KeyStats,
};
pub use mind::{maximal, mind, mind_with_stats, MindResult, MindStats};
pub use partitions::StrippedPartition;
pub use spider::{spider, spider_with_stats, SpiderConfig, SpiderResult, SpiderStats};
pub use tane::{tane, TaneResult, TaneStats};
