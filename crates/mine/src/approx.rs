//! Approximate dependencies — tolerance for corrupted extensions.
//!
//! The paper repeatedly guards against "data integrity problems": the
//! expert user may *enforce* an FD that the extension narrowly violates
//! (RHS-Discovery step (ii)) or turn a near-inclusion NEI into an IND
//! (IND-Discovery steps (v)/(vi)). Automatic oracles need a number to
//! base that decision on; this module provides the standard `g3`-style
//! error measures:
//!
//! * FD error — the fraction of tuples to delete for `X → Y` to hold;
//! * IND error — the fraction of distinct LHS values not contained in
//!   the RHS value set.

use crate::fd_check::violations;
use dbre_relational::attr::AttrId;
use dbre_relational::database::Database;
use dbre_relational::deps::{Fd, Ind};
use dbre_relational::table::Table;
use std::collections::HashMap;

/// `g3` error of an FD on a table: minimum fraction of (non-NULL-LHS)
/// tuples to remove so the FD holds. In `[0, 1]`; 0 iff it holds.
pub fn fd_error(table: &Table, lhs: &[AttrId], rhs: &[AttrId]) -> f64 {
    let considered = (0..table.len())
        .filter(|&i| !table.row_has_null(i, lhs))
        .count();
    if considered == 0 {
        return 0.0;
    }
    violations(table, lhs, rhs) as f64 / considered as f64
}

/// `g3` error computed over dictionary-encoded columns (code 0 = NULL).
///
/// Equivalent to [`fd_error`] on the decoded table: per-column codes
/// are injective on values, so grouping by LHS code tuple and keeping
/// the plurality RHS code tuple (NULL codes included as values, as in
/// `violations`) yields the same count. This is the path for streamed
/// extensions whose raw columns are empty — callers feed it the
/// backend-served dictionaries instead of hydrating the table.
pub fn fd_error_coded(lhs: &[&[u32]], rhs: &[&[u32]], rows: usize) -> f64 {
    let mut groups: HashMap<Vec<u32>, HashMap<Vec<u32>, usize>> = HashMap::new();
    let mut considered = 0usize;
    'rows: for i in 0..rows {
        let mut key = Vec::with_capacity(lhs.len());
        for c in lhs {
            let code = c[i];
            if code == 0 {
                continue 'rows;
            }
            key.push(code);
        }
        considered += 1;
        let val: Vec<u32> = rhs.iter().map(|c| c[i]).collect();
        *groups.entry(key).or_default().entry(val).or_insert(0) += 1;
    }
    if considered == 0 {
        return 0.0;
    }
    let kept: usize = groups
        .values()
        .map(|rhs_counts| rhs_counts.values().copied().max().unwrap_or(0))
        .sum();
    (considered - kept) as f64 / considered as f64
}

/// `g3` error of an FD given as a [`Fd`] against a database.
pub fn fd_error_db(db: &Database, fd: &Fd) -> f64 {
    let lhs: Vec<AttrId> = fd.lhs.iter().collect();
    let rhs: Vec<AttrId> = fd.rhs.iter().collect();
    fd_error(db.table(fd.rel), &lhs, &rhs)
}

/// Does the FD hold within error tolerance `epsilon`?
pub fn fd_holds_approx(db: &Database, fd: &Fd, epsilon: f64) -> bool {
    fd_error_db(db, fd) <= epsilon
}

/// IND error: fraction of distinct non-NULL LHS projections missing
/// from the RHS projection set. In `[0, 1]`; 0 iff the IND holds.
pub fn ind_error(db: &Database, ind: &Ind) -> f64 {
    let left = db.table(ind.lhs.rel).distinct_projection(&ind.lhs.attrs);
    if left.is_empty() {
        return 0.0;
    }
    let right = db.table(ind.rhs.rel).distinct_projection(&ind.rhs.attrs);
    let missing = left.iter().filter(|v| !right.contains(*v)).count();
    missing as f64 / left.len() as f64
}

/// Does the IND hold within error tolerance `epsilon`?
pub fn ind_holds_approx(db: &Database, ind: &Ind, epsilon: f64) -> bool {
    ind_error(db, ind) <= epsilon
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbre_relational::attr::AttrSet;
    use dbre_relational::schema::Relation;
    use dbre_relational::value::{Domain, Value};

    fn db() -> (
        Database,
        dbre_relational::schema::RelId,
        dbre_relational::schema::RelId,
    ) {
        let mut db = Database::new();
        let a = db
            .add_relation(Relation::of("A", &[("x", Domain::Int), ("y", Domain::Int)]))
            .unwrap();
        let b = db
            .add_relation(Relation::of("B", &[("z", Domain::Int)]))
            .unwrap();
        // x -> y violated by one of five tuples.
        for (x, y) in [(1, 1), (1, 1), (1, 2), (2, 5), (3, 6)] {
            db.insert(a, vec![Value::Int(x), Value::Int(y)]).unwrap();
        }
        // B = {1, 2}: A[x] = {1,2,3} has 1/3 missing.
        db.insert(b, vec![Value::Int(1)]).unwrap();
        db.insert(b, vec![Value::Int(2)]).unwrap();
        (db, a, b)
    }

    #[test]
    fn fd_error_fraction() {
        let (db, a, _) = db();
        let fd = Fd::new(
            a,
            AttrSet::from_indices([0u16]),
            AttrSet::from_indices([1u16]),
        );
        let e = fd_error_db(&db, &fd);
        assert!((e - 0.2).abs() < 1e-12, "got {e}");
        assert!(fd_holds_approx(&db, &fd, 0.25));
        assert!(!fd_holds_approx(&db, &fd, 0.1));
    }

    #[test]
    fn exact_fd_has_zero_error() {
        let (db, a, _) = db();
        // y -> y trivially.
        let fd = Fd::new(
            a,
            AttrSet::from_indices([1u16]),
            AttrSet::from_indices([1u16]),
        );
        assert_eq!(fd_error_db(&db, &fd), 0.0);
    }

    #[test]
    fn coded_error_matches_decoded() {
        use dbre_relational::encode::ColumnDict;
        let mut db = Database::new();
        let r = db
            .add_relation(Relation::of(
                "R",
                &[("a", Domain::Int), ("b", Domain::Int), ("c", Domain::Int)],
            ))
            .unwrap();
        // NULL-heavy LHS, ties in the plurality counts, and a NULL RHS
        // value that must group as a value of its own.
        let rows: &[(Option<i64>, Option<i64>, Option<i64>)] = &[
            (Some(1), Some(1), Some(9)),
            (Some(1), Some(2), Some(9)),
            (Some(1), Some(2), None),
            (None, Some(3), Some(7)),
            (Some(2), None, Some(7)),
            (Some(2), None, Some(8)),
            (Some(3), Some(5), Some(5)),
        ];
        for (a, b, c) in rows {
            let v = |o: &Option<i64>| o.map(Value::Int).unwrap_or(Value::Null);
            db.insert(r, vec![v(a), v(b), v(c)]).unwrap();
        }
        let table = db.table(r);
        let dicts: Vec<ColumnDict> = (0..3)
            .map(|i| ColumnDict::build(table.column(AttrId(i))))
            .collect();
        let cases: &[(&[u16], &[u16])] = &[
            (&[0], &[1]),
            (&[0], &[2]),
            (&[0, 1], &[2]),
            (&[1], &[0, 2]),
            (&[2], &[1]),
        ];
        for (lhs, rhs) in cases {
            let l: Vec<AttrId> = lhs.iter().map(|&i| AttrId(i)).collect();
            let rh: Vec<AttrId> = rhs.iter().map(|&i| AttrId(i)).collect();
            let decoded = fd_error(table, &l, &rh);
            let lc: Vec<&[u32]> = lhs.iter().map(|&i| dicts[i as usize].codes()).collect();
            let rc: Vec<&[u32]> = rhs.iter().map(|&i| dicts[i as usize].codes()).collect();
            let coded = fd_error_coded(&lc, &rc, table.len());
            assert!(
                (decoded - coded).abs() < 1e-12,
                "{lhs:?} -> {rhs:?}: decoded {decoded} coded {coded}"
            );
        }
    }

    #[test]
    fn ind_error_fraction() {
        let (db, a, b) = db();
        let ind = Ind::unary(a, AttrId(0), b, AttrId(0));
        let e = ind_error(&db, &ind);
        assert!((e - 1.0 / 3.0).abs() < 1e-12, "got {e}");
        assert!(ind_holds_approx(&db, &ind, 0.4));
        assert!(!ind_holds_approx(&db, &ind, 0.3));
        // The containing direction holds exactly.
        let rev = Ind::unary(b, AttrId(0), a, AttrId(0));
        assert_eq!(ind_error(&db, &rev), 0.0);
    }

    #[test]
    fn empty_lhs_side_is_zero_error() {
        let mut db = Database::new();
        let a = db
            .add_relation(Relation::of("A", &[("x", Domain::Int)]))
            .unwrap();
        let b = db
            .add_relation(Relation::of("B", &[("z", Domain::Int)]))
            .unwrap();
        let _ = b;
        let ind = Ind::unary(a, AttrId(0), b, AttrId(0));
        assert_eq!(ind_error(&db, &ind), 0.0);
        let fd = Fd::new(
            a,
            AttrSet::from_indices([0u16]),
            AttrSet::from_indices([0u16]),
        );
        assert_eq!(fd_error_db(&db, &fd), 0.0);
    }
}
