//! Single-FD verification backends.
//!
//! RHS-Discovery tests one candidate FD at a time against the
//! extension (`A → b holds in r_i`, step (i) of the algorithm). Two
//! interchangeable backends are provided so the ablation bench can
//! compare them:
//!
//! * [`check_hash`] — one hash pass grouping LHS projections (SQL NULL
//!   semantics: tuples with NULL on the LHS are skipped, like
//!   `Database::fd_holds`);
//! * [`check_partition`] — stripped-partition refinement (NULL = NULL
//!   mining convention).
//!
//! [`violations`] additionally reports *how badly* an FD fails — the
//! `g3` counter backing approximate dependencies in [`crate::approx`].

use crate::partitions::fd_holds_partition;
use dbre_relational::attr::AttrId;
use dbre_relational::database::Database;
use dbre_relational::deps::Fd;
use dbre_relational::stats::StatsEngine;
use dbre_relational::table::Table;
use dbre_relational::value::Value;
use std::collections::HashMap;

/// Hash-based FD check with SQL NULL semantics.
pub fn check_hash(table: &Table, lhs: &[AttrId], rhs: &[AttrId]) -> bool {
    let mut map: HashMap<Vec<Value>, Vec<Value>> = HashMap::with_capacity(table.len());
    for i in 0..table.len() {
        if table.row_has_null(i, lhs) {
            continue;
        }
        let key = table.project_row(i, lhs);
        let val = table.project_row(i, rhs);
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                if e.get() != &val {
                    return false;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(val);
            }
        }
    }
    true
}

/// Partition-based FD check (mining NULL convention; agrees with
/// [`check_hash`] on NULL-free columns).
pub fn check_partition(table: &Table, lhs: &[AttrId], rhs: &[AttrId]) -> bool {
    fd_holds_partition(table, lhs, rhs)
}

/// Engine-backed FD check: same SQL NULL semantics and same answer as
/// [`check_hash`], but the LHS row grouping is memoized in `engine`,
/// so a batch of tests sharing one LHS (the shape RHS-Discovery
/// produces) groups once and only rescans the grouped rows.
pub fn check_cached(db: &Database, fd: &Fd, engine: &StatsEngine) -> bool {
    engine.fd_holds(db, fd)
}

/// `g3`-style violation count: the minimum number of tuples to delete
/// so that `lhs → rhs` holds. 0 iff the FD holds (SQL NULL semantics:
/// NULL-LHS tuples never violate).
pub fn violations(table: &Table, lhs: &[AttrId], rhs: &[AttrId]) -> usize {
    // Group rows by LHS; within each group, keep the plurality RHS.
    let mut groups: HashMap<Vec<Value>, HashMap<Vec<Value>, usize>> = HashMap::new();
    let mut considered = 0usize;
    for i in 0..table.len() {
        if table.row_has_null(i, lhs) {
            continue;
        }
        considered += 1;
        let key = table.project_row(i, lhs);
        let val = table.project_row(i, rhs);
        *groups.entry(key).or_default().entry(val).or_insert(0) += 1;
    }
    let kept: usize = groups
        .values()
        .map(|rhs_counts| rhs_counts.values().copied().max().unwrap_or(0))
        .sum();
    considered - kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u16) -> AttrId {
        AttrId(i)
    }

    fn table(rows: &[(i64, i64)]) -> Table {
        Table::from_rows(
            2,
            rows.iter()
                .map(|(x, y)| vec![Value::Int(*x), Value::Int(*y)]),
        )
        .unwrap()
    }

    #[test]
    fn hash_and_partition_agree_without_nulls() {
        let cases: &[&[(i64, i64)]] = &[
            &[(1, 1), (2, 2)],
            &[(1, 1), (1, 2)],
            &[(1, 1), (1, 1), (2, 3)],
            &[],
        ];
        for rows in cases {
            let t = table(rows);
            assert_eq!(
                check_hash(&t, &[a(0)], &[a(1)]),
                check_partition(&t, &[a(0)], &[a(1)]),
                "case {rows:?}"
            );
        }
    }

    #[test]
    fn null_semantics_differ_between_backends() {
        let t = Table::from_rows(
            2,
            vec![
                vec![Value::Null, Value::Int(1)],
                vec![Value::Null, Value::Int(2)],
            ],
        )
        .unwrap();
        assert!(check_hash(&t, &[a(0)], &[a(1)]), "SQL: NULL LHS skipped");
        assert!(
            !check_partition(&t, &[a(0)], &[a(1)]),
            "mining: NULL = NULL groups the rows"
        );
    }

    #[test]
    fn violations_count_minimum_deletions() {
        // Group x=1 has y ∈ {1,1,2}: delete 1 row. Group x=2 clean.
        let t = table(&[(1, 1), (1, 1), (1, 2), (2, 5)]);
        assert_eq!(violations(&t, &[a(0)], &[a(1)]), 1);
        let t = table(&[(1, 1), (2, 2)]);
        assert_eq!(violations(&t, &[a(0)], &[a(1)]), 0);
        // Worst case: all same LHS, all distinct RHS.
        let t = table(&[(1, 1), (1, 2), (1, 3)]);
        assert_eq!(violations(&t, &[a(0)], &[a(1)]), 2);
    }

    #[test]
    fn violations_zero_iff_holds() {
        let cases: &[&[(i64, i64)]] = &[&[(1, 1), (2, 2), (1, 1)], &[(1, 1), (1, 2)], &[(3, 7)]];
        for rows in cases {
            let t = table(rows);
            assert_eq!(
                violations(&t, &[a(0)], &[a(1)]) == 0,
                check_hash(&t, &[a(0)], &[a(1)]),
                "case {rows:?}"
            );
        }
    }
}
