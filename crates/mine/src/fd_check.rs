//! Single-FD verification backends.
//!
//! RHS-Discovery tests one candidate FD at a time against the
//! extension (`A → b holds in r_i`, step (i) of the algorithm). Two
//! interchangeable backends are provided so the ablation bench can
//! compare them:
//!
//! * [`check_hash`] — one hash pass grouping LHS projections (SQL NULL
//!   semantics: tuples with NULL on the LHS are skipped, like
//!   `Database::fd_holds`);
//! * [`check_partition`] — stripped-partition refinement (NULL = NULL
//!   mining convention);
//! * [`check_encoded`] — the dictionary-encoded kernel
//!   ([`DictTable::fd_holds`]), same SQL semantics as [`check_hash`]
//!   but grouping on integer codes instead of cloned `Value` tuples.
//!
//! [`violations`] additionally reports *how badly* an FD fails — the
//! `g3` counter backing approximate dependencies in [`crate::approx`].

use crate::partitions::fd_holds_partition;
use dbre_relational::attr::AttrId;
use dbre_relational::backend::CountBackend;
use dbre_relational::database::Database;
use dbre_relational::deps::Fd;
use dbre_relational::encode::DictTable;
use dbre_relational::table::Table;
use dbre_relational::value::Value;
use std::collections::HashMap;

/// Hash-based FD check with SQL NULL semantics (the `Value`-level
/// reference implementation; column slices hoisted out of the row
/// loop).
pub fn check_hash(table: &Table, lhs: &[AttrId], rhs: &[AttrId]) -> bool {
    let lhs_cols: Vec<&[Value]> = lhs.iter().map(|a| table.column(*a)).collect();
    let rhs_cols: Vec<&[Value]> = rhs.iter().map(|a| table.column(*a)).collect();
    let mut map: HashMap<Vec<Value>, usize> = HashMap::new();
    'rows: for i in 0..table.len() {
        let mut key = Vec::with_capacity(lhs_cols.len());
        for c in &lhs_cols {
            let v = &c[i];
            if v.is_null() {
                continue 'rows;
            }
            key.push(v.clone());
        }
        match map.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let first = *e.get();
                if rhs_cols.iter().any(|c| c[i] != c[first]) {
                    return false;
                }
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i);
            }
        }
    }
    true
}

/// Dictionary-encoded FD check: same SQL NULL semantics and answer as
/// [`check_hash`], grouping on dense integer codes. Build the
/// [`DictTable`] once and amortize it over a batch of candidate FDs.
pub fn check_encoded(dict: &DictTable, lhs: &[AttrId], rhs: &[AttrId]) -> bool {
    dict.fd_holds(lhs, rhs)
}

/// Partition-based FD check (mining NULL convention; agrees with
/// [`check_hash`] on NULL-free columns).
pub fn check_partition(table: &Table, lhs: &[AttrId], rhs: &[AttrId]) -> bool {
    fd_holds_partition(table, lhs, rhs)
}

/// Backend-served FD check: same SQL NULL semantics and same answer
/// as [`check_hash`], served through the counting seam. Pass a
/// [`StatsEngine`](dbre_relational::stats::StatsEngine) (which itself
/// implements the trait) and the LHS row grouping is memoized, so a
/// batch of tests sharing one LHS (the shape RHS-Discovery produces)
/// groups once and only rescans the grouped rows.
pub fn check_cached(db: &Database, fd: &Fd, backend: &dyn CountBackend) -> bool {
    backend.fd_holds(db, fd)
}

/// `g3`-style violation count: the minimum number of tuples to delete
/// so that `lhs → rhs` holds. 0 iff the FD holds (SQL NULL semantics:
/// NULL-LHS tuples never violate).
pub fn violations(table: &Table, lhs: &[AttrId], rhs: &[AttrId]) -> usize {
    // Group rows by LHS; within each group, keep the plurality RHS.
    let lhs_cols: Vec<&[Value]> = lhs.iter().map(|a| table.column(*a)).collect();
    let rhs_cols: Vec<&[Value]> = rhs.iter().map(|a| table.column(*a)).collect();
    let mut groups: HashMap<Vec<Value>, HashMap<Vec<Value>, usize>> = HashMap::new();
    let mut considered = 0usize;
    'rows: for i in 0..table.len() {
        let mut key = Vec::with_capacity(lhs_cols.len());
        for c in &lhs_cols {
            let v = &c[i];
            if v.is_null() {
                continue 'rows;
            }
            key.push(v.clone());
        }
        considered += 1;
        let val: Vec<Value> = rhs_cols.iter().map(|c| c[i].clone()).collect();
        *groups.entry(key).or_default().entry(val).or_insert(0) += 1;
    }
    let kept: usize = groups
        .values()
        .map(|rhs_counts| rhs_counts.values().copied().max().unwrap_or(0))
        .sum();
    considered - kept
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u16) -> AttrId {
        AttrId(i)
    }

    fn table(rows: &[(i64, i64)]) -> Table {
        Table::from_rows(
            2,
            rows.iter()
                .map(|(x, y)| vec![Value::Int(*x), Value::Int(*y)]),
        )
        .unwrap()
    }

    #[test]
    fn hash_and_partition_agree_without_nulls() {
        let cases: &[&[(i64, i64)]] = &[
            &[(1, 1), (2, 2)],
            &[(1, 1), (1, 2)],
            &[(1, 1), (1, 1), (2, 3)],
            &[],
        ];
        for rows in cases {
            let t = table(rows);
            assert_eq!(
                check_hash(&t, &[a(0)], &[a(1)]),
                check_partition(&t, &[a(0)], &[a(1)]),
                "case {rows:?}"
            );
        }
    }

    #[test]
    fn encoded_agrees_with_hash_including_nulls() {
        let cases: Vec<Table> = vec![
            table(&[(1, 1), (2, 2)]),
            table(&[(1, 1), (1, 2)]),
            table(&[(1, 1), (1, 1), (2, 3)]),
            table(&[]),
            Table::from_rows(
                2,
                vec![
                    vec![Value::Null, Value::Int(1)],
                    vec![Value::Null, Value::Int(2)],
                    vec![Value::Int(1), Value::Null],
                    vec![Value::Int(1), Value::Null],
                    vec![Value::Int(1), Value::Int(3)],
                ],
            )
            .unwrap(),
        ];
        for t in &cases {
            let dict = DictTable::build(t);
            for (lhs, rhs) in [(vec![a(0)], vec![a(1)]), (vec![a(1)], vec![a(0)])] {
                assert_eq!(
                    check_encoded(&dict, &lhs, &rhs),
                    check_hash(t, &lhs, &rhs),
                    "lhs {lhs:?} on {t:?}"
                );
            }
        }
    }

    #[test]
    fn null_semantics_differ_between_backends() {
        let t = Table::from_rows(
            2,
            vec![
                vec![Value::Null, Value::Int(1)],
                vec![Value::Null, Value::Int(2)],
            ],
        )
        .unwrap();
        assert!(check_hash(&t, &[a(0)], &[a(1)]), "SQL: NULL LHS skipped");
        assert!(
            !check_partition(&t, &[a(0)], &[a(1)]),
            "mining: NULL = NULL groups the rows"
        );
    }

    #[test]
    fn violations_count_minimum_deletions() {
        // Group x=1 has y ∈ {1,1,2}: delete 1 row. Group x=2 clean.
        let t = table(&[(1, 1), (1, 1), (1, 2), (2, 5)]);
        assert_eq!(violations(&t, &[a(0)], &[a(1)]), 1);
        let t = table(&[(1, 1), (2, 2)]);
        assert_eq!(violations(&t, &[a(0)], &[a(1)]), 0);
        // Worst case: all same LHS, all distinct RHS.
        let t = table(&[(1, 1), (1, 2), (1, 3)]);
        assert_eq!(violations(&t, &[a(0)], &[a(1)]), 2);
    }

    #[test]
    fn violations_zero_iff_holds() {
        let cases: &[&[(i64, i64)]] = &[&[(1, 1), (2, 2), (1, 1)], &[(1, 1), (1, 2)], &[(3, 7)]];
        for rows in cases {
            let t = table(rows);
            assert_eq!(
                violations(&t, &[a(0)], &[a(1)]) == 0,
                check_hash(&t, &[a(0)], &[a(1)]),
                "case {rows:?}"
            );
        }
    }
}
