//! Exhaustive unary inclusion-dependency discovery — the blind-mining
//! baseline against the paper's query-guided IND-Discovery.
//!
//! The algorithm is the SPIDER/MIND sorted-merge scheme: build the
//! sorted distinct value list of every attribute in the database, then
//! sweep all lists in parallel (a k-way merge). At each distinct value
//! `v`, let `S(v)` be the set of attributes whose list contains `v`;
//! every attribute `a ∈ S(v)` can only be included in attributes that
//! also contain `v`, so `candidates(a) ∩= S(v)`. One sweep decides all
//! `O(m²)` unary INDs in `O(total values · log m)`.
//!
//! The benchmark contrast with the paper's method: SPIDER must look at
//! *every* attribute pair the data admits (typically hundreds of
//! spurious inclusions between small integer columns), whereas
//! IND-Discovery only tests the handful of pairs that application
//! programs actually join.

use dbre_relational::attr::AttrId;
use dbre_relational::backend::CountBackend;
use dbre_relational::database::Database;
use dbre_relational::deps::Ind;
use dbre_relational::encode::DictTable;
use dbre_relational::schema::RelId;
use dbre_relational::sketch::ColumnSketch;
use dbre_relational::value::{Domain, Value};
use std::sync::Arc;

/// Work counters for the comparison benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpiderStats {
    /// Attributes participating in the sweep.
    pub attributes: usize,
    /// Candidate pairs alive at the start (all compatible pairs).
    pub initial_candidates: usize,
    /// Total distinct values merged.
    pub values_scanned: usize,
    /// Candidate pairs retired by a sketch refutation before the sweep
    /// (0 unless [`SpiderConfig::sketch_prune`] is on and the backend
    /// serves sketches).
    pub sketch_pruned: usize,
}

/// Result of a SPIDER run.
#[derive(Debug, Clone)]
pub struct SpiderResult {
    /// All satisfied unary INDs `R_i[a] ≪ R_j[b]` (i ≠ j or a ≠ b),
    /// deterministic order.
    pub inds: Vec<Ind>,
    /// Work counters.
    pub stats: SpiderStats,
}

/// Options for the exhaustive search.
#[derive(Debug, Clone)]
pub struct SpiderConfig {
    /// Only consider attribute pairs with identical declared domains
    /// (standard practice; wildly cuts spurious candidates). Default
    /// `true`.
    pub require_same_domain: bool,
    /// Skip attributes whose value set is empty (an empty set is
    /// included in everything; reporting those drowns the output).
    /// Default `true`.
    pub skip_empty: bool,
    /// Allow INDs between attributes of the same relation. Default
    /// `true` (the paper's `Department[emp] ≪ …` shows intra-schema
    /// navigation matters; same-attribute reflexive INDs are always
    /// excluded).
    pub allow_same_relation: bool,
    /// Retire candidate pairs a column-sketch refutation (exact
    /// cardinality ordering or a definitely-absent value) rules out
    /// before the merge sweep. Exact — the sweep would clear the same
    /// bits — so the reported INDs are identical either way; only the
    /// counters differ. Default `false` (keeps the seamed run
    /// counter-identical to [`spider`], which has no sketches).
    pub sketch_prune: bool,
}

impl Default for SpiderConfig {
    fn default() -> Self {
        SpiderConfig {
            require_same_domain: true,
            skip_empty: true,
            allow_same_relation: true,
            sketch_prune: false,
        }
    }
}

/// One attribute's sorted distinct values, feeding the merge sweep.
struct Col {
    rel: RelId,
    attr: AttrId,
    domain: Domain,
    values: Vec<Value>,
    sketch: Option<Arc<ColumnSketch>>,
}

/// Runs exhaustive unary IND discovery over the whole database.
pub fn spider(db: &Database, cfg: &SpiderConfig) -> SpiderResult {
    // Collect (relation, attribute, domain, sorted distinct values).
    let mut cols: Vec<Col> = Vec::new();
    for (rel, relation) in db.schema.iter() {
        // One dictionary pass per table: the distinct non-NULL values
        // come out deduplicated, so only `cardinality` values are
        // cloned and sorted (instead of a tree insert per row).
        let dict = DictTable::build(db.table(rel));
        for i in 0..relation.arity() {
            let attr = AttrId(i as u16);
            let mut values: Vec<Value> = dict.column(attr).distinct_values().to_vec();
            values.sort_unstable();
            cols.push(Col {
                rel,
                attr,
                domain: relation.attribute(attr).domain,
                values,
                sketch: None,
            });
        }
    }
    sweep(cols, cfg)
}

/// [`spider`] with the per-attribute distinct value sets served
/// through the counting seam — memoized (and shared with the rest of
/// a run) when `backend` is a
/// [`StatsEngine`](dbre_relational::stats::StatsEngine). Same result
/// as [`spider`] on the same database.
pub fn spider_with_stats(
    db: &Database,
    cfg: &SpiderConfig,
    backend: &dyn CountBackend,
) -> SpiderResult {
    let mut cols: Vec<Col> = Vec::new();
    for (rel, relation) in db.schema.iter() {
        for i in 0..relation.arity() {
            let attr = AttrId(i as u16);
            let projection = backend.projection(db, rel, &[attr]);
            let mut values: Vec<Value> = projection
                .iter()
                .map(|key| key[0].clone())
                .filter(|v| !v.is_null())
                .collect();
            values.sort_unstable();
            cols.push(Col {
                rel,
                attr,
                domain: relation.attribute(attr).domain,
                values,
                sketch: cfg
                    .sketch_prune
                    .then(|| backend.column_sketch(db, rel, attr))
                    .flatten(),
            });
        }
    }
    sweep(cols, cfg)
}

/// The k-way merge sweep shared by [`spider`] and
/// [`spider_with_stats`].
fn sweep(mut cols: Vec<Col>, cfg: &SpiderConfig) -> SpiderResult {
    if cfg.skip_empty {
        cols.retain(|c| !c.values.is_empty());
    }

    let m = cols.len();
    // candidates[i] = bitset over columns j such that values(i) ⊆
    // values(j) is still possible.
    let words = m.div_ceil(64);
    let mut candidates: Vec<Vec<u64>> = Vec::with_capacity(m);
    let mut initial = 0usize;
    for i in 0..m {
        let mut row = vec![0u64; words];
        for (j, col) in cols.iter().enumerate() {
            if i == j {
                continue;
            }
            if cfg.require_same_domain && cols[i].domain != col.domain {
                continue;
            }
            if !cfg.allow_same_relation && cols[i].rel == col.rel {
                continue;
            }
            row[j / 64] |= 1 << (j % 64);
            initial += 1;
        }
        candidates.push(row);
    }

    // Sketch prefilter: clear pairs a refutation proves impossible.
    // The sweep would clear exactly these bits anyway (the refuting
    // value is in the merge), so results are unchanged — the merge
    // just intersects fewer live rows.
    let mut sketch_pruned = 0usize;
    if cfg.sketch_prune {
        for i in 0..m {
            let Some(si) = cols[i].sketch.as_ref() else {
                continue;
            };
            for j in 0..m {
                if candidates[i][j / 64] & (1 << (j % 64)) == 0 {
                    continue;
                }
                let Some(sj) = cols[j].sketch.as_ref() else {
                    continue;
                };
                if si.refutes_containment(sj) {
                    candidates[i][j / 64] &= !(1 << (j % 64));
                    sketch_pruned += 1;
                }
            }
        }
    }

    // K-way merge sweep. A binary heap of (next value, column index).
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut heap: BinaryHeap<Reverse<(Value, usize)>> = BinaryHeap::new();
    let mut cursors = vec![0usize; m];
    for (i, col) in cols.iter().enumerate() {
        if let Some(v) = col.values.first() {
            heap.push(Reverse((v.clone(), i)));
        }
    }
    let mut stats = SpiderStats {
        attributes: m,
        initial_candidates: initial,
        values_scanned: 0,
        sketch_pruned,
    };
    let mut holders: Vec<usize> = Vec::new();
    let mut mask = vec![0u64; words];
    while let Some(Reverse((v, first))) = heap.pop() {
        stats.values_scanned += 1;
        holders.clear();
        holders.push(first);
        while let Some(Reverse((w, j))) = heap.peek() {
            if *w == v {
                holders.push(*j);
                heap.pop();
            } else {
                break;
            }
        }
        // Build the holder mask and intersect into each holder's row.
        mask.iter_mut().for_each(|w| *w = 0);
        for &h in &holders {
            mask[h / 64] |= 1 << (h % 64);
        }
        for &h in &holders {
            for (cw, mw) in candidates[h].iter_mut().zip(&mask) {
                *cw &= *mw;
            }
        }
        // Advance cursors of holders.
        for &h in &holders {
            cursors[h] += 1;
            if let Some(next) = cols[h].values.get(cursors[h]) {
                heap.push(Reverse((next.clone(), h)));
            }
        }
    }

    // Read the satisfied INDs.
    let mut inds: Vec<Ind> = Vec::new();
    for (i, row) in candidates.iter().enumerate() {
        for j in 0..m {
            if row[j / 64] & (1 << (j % 64)) != 0 {
                inds.push(Ind::unary(
                    cols[i].rel,
                    cols[i].attr,
                    cols[j].rel,
                    cols[j].attr,
                ));
            }
        }
    }
    inds.sort();
    SpiderResult { inds, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbre_relational::schema::Relation;
    use dbre_relational::value::Domain;

    fn db() -> Database {
        let mut db = Database::new();
        let person = db
            .add_relation(Relation::of(
                "Person",
                &[("id", Domain::Int), ("name", Domain::Text)],
            ))
            .unwrap();
        let emp = db
            .add_relation(Relation::of(
                "Emp",
                &[("no", Domain::Int), ("boss", Domain::Int)],
            ))
            .unwrap();
        for i in 1..=5 {
            db.insert(person, vec![Value::Int(i), Value::str(format!("p{i}"))])
                .unwrap();
        }
        for i in 1..=3 {
            db.insert(emp, vec![Value::Int(i), Value::Int(1)]).unwrap();
        }
        db
    }

    fn rendered(db: &Database, r: &SpiderResult) -> Vec<String> {
        r.inds.iter().map(|i| i.render(&db.schema)).collect()
    }

    #[test]
    fn finds_expected_inclusions() {
        let d = db();
        let r = spider(&d, &SpiderConfig::default());
        let names = rendered(&d, &r);
        // {1,2,3} ⊆ {1..5}, {1} ⊆ everything integer.
        assert!(names.contains(&"Emp[no] << Person[id]".to_string()));
        assert!(names.contains(&"Emp[boss] << Person[id]".to_string()));
        assert!(names.contains(&"Emp[boss] << Emp[no]".to_string()));
        // Reverse does not hold.
        assert!(!names.contains(&"Person[id] << Emp[no]".to_string()));
    }

    #[test]
    fn results_verified_against_ind_holds() {
        let d = db();
        let r = spider(&d, &SpiderConfig::default());
        for ind in &r.inds {
            assert!(d.ind_holds(ind), "spider reported a false IND: {ind}");
        }
    }

    #[test]
    fn spider_with_stats_matches_spider() {
        use dbre_relational::backend::{EncodedBackend, ReferenceBackend};
        use dbre_relational::stats::StatsEngine;
        let d = db();
        let direct = spider(&d, &SpiderConfig::default());
        let encoded = EncodedBackend::new();
        let engine = StatsEngine::new();
        let backends: Vec<&dyn CountBackend> = vec![&ReferenceBackend, &encoded, &engine];
        for backend in backends {
            let seamed = spider_with_stats(&d, &SpiderConfig::default(), backend);
            assert_eq!(seamed.inds, direct.inds, "backend {}", backend.name());
            assert_eq!(seamed.stats, direct.stats, "backend {}", backend.name());
        }
    }

    #[test]
    fn sketch_prune_preserves_results() {
        use dbre_relational::backend::EncodedBackend;
        let d = db();
        let base = spider(&d, &SpiderConfig::default());
        let encoded = EncodedBackend::new();
        let cfg = SpiderConfig {
            sketch_prune: true,
            ..Default::default()
        };
        let pruned = spider_with_stats(&d, &cfg, &encoded);
        assert_eq!(pruned.inds, base.inds, "pruning must not change results");
        // Person[id] (5 distinct) ⊆ Emp[no] (3 distinct) is refuted by
        // exact cardinality ordering alone, so at least that bit dies
        // before the sweep.
        assert!(pruned.stats.sketch_pruned > 0);
    }

    #[test]
    fn exhaustiveness_no_satisfied_ind_missed() {
        let d = db();
        let cfg = SpiderConfig::default();
        let r = spider(&d, &cfg);
        // Enumerate all same-domain pairs and compare.
        let mut expected = 0usize;
        for (ri, reli) in d.schema.iter() {
            for (rj, relj) in d.schema.iter() {
                for ai in 0..reli.arity() {
                    for aj in 0..relj.arity() {
                        if ri == rj && ai == aj {
                            continue;
                        }
                        let (dai, daj) = (
                            reli.attribute(AttrId(ai as u16)).domain,
                            relj.attribute(AttrId(aj as u16)).domain,
                        );
                        if dai != daj {
                            continue;
                        }
                        let ind = Ind::unary(ri, AttrId(ai as u16), rj, AttrId(aj as u16));
                        if d.ind_holds(&ind) && d.table(ri).count_distinct(&[AttrId(ai as u16)]) > 0
                        {
                            expected += 1;
                            assert!(r.inds.contains(&ind), "missed {ind}");
                        }
                    }
                }
            }
        }
        assert_eq!(r.inds.len(), expected);
    }

    #[test]
    fn domain_filter_blocks_cross_type_candidates() {
        let d = db();
        let strict = spider(&d, &SpiderConfig::default());
        let loose = spider(
            &d,
            &SpiderConfig {
                require_same_domain: false,
                ..Default::default()
            },
        );
        assert!(loose.stats.initial_candidates > strict.stats.initial_candidates);
    }

    #[test]
    fn same_relation_toggle() {
        let d = db();
        let r = spider(
            &d,
            &SpiderConfig {
                allow_same_relation: false,
                ..Default::default()
            },
        );
        let names = rendered(&d, &r);
        assert!(!names.contains(&"Emp[boss] << Emp[no]".to_string()));
        assert!(names.contains(&"Emp[no] << Person[id]".to_string()));
    }

    #[test]
    fn empty_columns_skipped() {
        let mut d = Database::new();
        d.add_relation(Relation::of("A", &[("x", Domain::Int)]))
            .unwrap();
        let b = d
            .add_relation(Relation::of("B", &[("y", Domain::Int)]))
            .unwrap();
        d.insert(b, vec![Value::Int(1)]).unwrap();
        let r = spider(&d, &SpiderConfig::default());
        assert!(r.inds.is_empty());
        assert_eq!(r.stats.attributes, 1);
    }

    #[test]
    fn nulls_ignored_in_value_sets() {
        let mut d = Database::new();
        let a = d
            .add_relation(Relation::of("A", &[("x", Domain::Int)]))
            .unwrap();
        let b = d
            .add_relation(Relation::of("B", &[("y", Domain::Int)]))
            .unwrap();
        d.insert(a, vec![Value::Int(1)]).unwrap();
        d.insert(a, vec![Value::Null]).unwrap();
        d.insert(b, vec![Value::Int(1)]).unwrap();
        let r = spider(&d, &SpiderConfig::default());
        // Both directions hold: value sets are both exactly {1}.
        assert_eq!(r.inds.len(), 2);
    }
}
