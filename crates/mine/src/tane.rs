//! TANE-style levelwise discovery of all minimal functional
//! dependencies of a relation (Huhtala, Kärkkäinen, Porkka, Toivonen).
//!
//! This is the *blind mining* baseline the paper argues against: it
//! finds every FD that holds in the extension — including accidental
//! ones like `zip-code → state` — whereas the paper's RHS-Discovery
//! only tests the handful of candidates that program navigation
//! suggests. Benchmarks X2/X3 compare the two on work done and on the
//! usefulness of what they return.
//!
//! Attribute sets are `u64` bitmasks (≤ 64 attributes per relation,
//! ample for legacy schemas). Pruning follows the original paper:
//! RHS-candidate sets `C⁺(X)`, key pruning, and the minimality rule.

use crate::partitions::StrippedPartition;
use dbre_relational::attr::{AttrId, AttrSet};
use dbre_relational::deps::Fd;
use dbre_relational::encode::DictTable;
use dbre_relational::schema::RelId;
use dbre_relational::table::Table;
use std::collections::HashMap;

/// Discovery statistics, used by the comparison benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaneStats {
    /// Number of FD validity tests performed (partition comparisons).
    pub fd_checks: usize,
    /// Number of partition products computed.
    pub partition_products: usize,
    /// Number of candidate sets materialized across all levels.
    pub candidates: usize,
}

/// Result of a TANE run: all minimal FDs plus statistics.
#[derive(Debug, Clone)]
pub struct TaneResult {
    /// Minimal FDs `X → a` (singleton right-hand sides).
    pub fds: Vec<Fd>,
    /// Work counters.
    pub stats: TaneStats,
}

/// Runs TANE on a table, reporting FDs against `rel` with attribute ids
/// `0..arity`. `max_lhs` bounds the LHS size (levels); `None` explores
/// the full lattice.
pub fn tane(rel: RelId, table: &Table, max_lhs: Option<usize>) -> TaneResult {
    let n = table.arity();
    assert!(n <= 64, "TANE supports at most 64 attributes");
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let mut stats = TaneStats::default();

    // Level-1 partitions, built from one dictionary-encoding pass:
    // each unary partition is then an array-bucket sweep over the code
    // domain instead of a `Value`-hashing pass per column.
    let dict = DictTable::build(table);
    let mut partitions: HashMap<u64, StrippedPartition> = HashMap::new();
    partitions.insert(0, StrippedPartition::single_class(table.len()));
    for i in 0..n {
        partitions.insert(1 << i, dict.partition1(AttrId(i as u16)));
    }

    // C⁺(∅) = R.
    let mut cplus: HashMap<u64, u64> = HashMap::new();
    cplus.insert(0, full);

    let mut level: Vec<u64> = (0..n).map(|i| 1u64 << i).collect();
    let mut fds: Vec<Fd> = Vec::new();
    let mut level_no = 1usize;

    while !level.is_empty() {
        // Compute C⁺ for this level.
        for &x in &level {
            let mut c = full;
            for a in bits(x) {
                let sub = x & !(1 << a);
                c &= *cplus.get(&sub).unwrap_or(&full);
            }
            cplus.insert(x, c);
            stats.candidates += 1;
        }

        // Dependency computation.
        for &x in &level {
            let candidates = cplus[&x] & x;
            for a in bits(candidates) {
                let lhs_mask = x & !(1 << a);
                // Validity: e(π_lhs) == e(π_x).
                let e_lhs = partitions[&lhs_mask].error();
                let e_x = partitions[&x].error();
                stats.fd_checks += 1;
                if e_lhs == e_x {
                    fds.push(Fd::new(
                        rel,
                        mask_to_set(lhs_mask),
                        AttrSet::single(AttrId(a as u16)),
                    ));
                    // Prune: a is determined, remove from C⁺(X)…
                    let c = cplus.get_mut(&x).expect("inserted above");
                    *c &= !(1 << a);
                    // …and every b ∉ X.
                    *c &= x;
                }
            }
        }

        // Key pruning + empty-C⁺ pruning.
        let current = std::mem::take(&mut level);
        for x in current {
            if cplus[&x] == 0 {
                continue;
            }
            if partitions[&x].is_key() {
                // All remaining candidates of a key are implied; emit
                // X → a for a ∈ C⁺(X)\X then prune the node.
                for a in bits(cplus[&x] & !x) {
                    // TANE key rule: emit X → a iff
                    // a ∈ ∩_{b∈X} C⁺(X ∪ {a} \ {b}); C⁺ of pruned or
                    // never-generated sets is computed on demand.
                    let minimal = bits(x).all(|b| {
                        let alt = (x & !(1 << b)) | (1 << a);
                        cplus_of(&mut cplus, alt, full) & (1 << a) != 0
                    });
                    if minimal {
                        fds.push(Fd::new(
                            rel,
                            mask_to_set(x),
                            AttrSet::single(AttrId(a as u16)),
                        ));
                    }
                }
                continue;
            }
            level.push(x);
        }

        if let Some(maxl) = max_lhs {
            if level_no >= maxl {
                break;
            }
        }

        // Generate next level (prefix join) and its partitions.
        let mut next: Vec<u64> = Vec::new();
        let level_set: std::collections::HashSet<u64> = level.iter().copied().collect();
        for i in 0..level.len() {
            for j in i + 1..level.len() {
                let (x, y) = (level[i], level[j]);
                // Join only sets sharing all but the last attribute.
                let merged = x | y;
                if merged.count_ones() != x.count_ones() + 1 {
                    continue;
                }
                if next.contains(&merged) {
                    continue;
                }
                // All |merged|-1 subsets must be in the current level.
                if !bits(merged).all(|a| level_set.contains(&(merged & !(1 << a)))) {
                    continue;
                }
                next.push(merged);
                // Partition for the new node via product of two subsets.
                let p = partitions[&x].product(&partitions[&y]);
                stats.partition_products += 1;
                partitions.insert(merged, p);
            }
        }
        next.sort_unstable();

        // Free partitions of the previous level-minus-one to bound
        // memory (only current and next level are needed).
        level = next;
        level_no += 1;
    }

    fds.sort();
    TaneResult { fds, stats }
}

/// `C⁺(mask)` with on-demand recursive computation for sets that were
/// pruned before materialization: `C⁺(Y) = ∩_{a∈Y} C⁺(Y\{a})`.
fn cplus_of(cplus: &mut HashMap<u64, u64>, mask: u64, full: u64) -> u64 {
    if let Some(&c) = cplus.get(&mask) {
        return c;
    }
    let mut c = full;
    for a in bits(mask) {
        c &= cplus_of(cplus, mask & !(1 << a), full);
    }
    cplus.insert(mask, c);
    c
}

/// Iterates set bit positions of a mask.
fn bits(mask: u64) -> impl Iterator<Item = u32> {
    let mut m = mask;
    std::iter::from_fn(move || {
        if m == 0 {
            None
        } else {
            let b = m.trailing_zeros();
            m &= m - 1;
            Some(b)
        }
    })
}

fn mask_to_set(mask: u64) -> AttrSet {
    AttrSet::from_iter_ids(bits(mask).map(|b| AttrId(b as u16)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partitions::fd_holds_partition;
    use dbre_relational::value::Value;

    const R: RelId = RelId(0);

    fn table(rows: &[&[i64]]) -> Table {
        let arity = rows.first().map_or(0, |r| r.len());
        Table::from_rows(
            arity,
            rows.iter()
                .map(|r| r.iter().map(|v| Value::Int(*v)).collect::<Vec<_>>()),
        )
        .unwrap()
    }

    fn fd(lhs: &[u16], rhs: u16) -> Fd {
        Fd::new(
            R,
            AttrSet::from_indices(lhs.iter().copied()),
            AttrSet::from_indices([rhs]),
        )
    }

    #[test]
    fn discovers_simple_chain() {
        // x -> y (x unique per y), y -> z.
        let t = table(&[&[1, 10, 100], &[2, 10, 100], &[3, 20, 200], &[4, 20, 200]]);
        let result = tane(R, &t, None);
        assert!(result.fds.contains(&fd(&[1], 2)), "y -> z expected");
        assert!(result.fds.contains(&fd(&[0], 1)), "x -> y expected");
        assert!(result.fds.contains(&fd(&[0], 2)) || result.fds.contains(&fd(&[1], 2)));
        // y -/-> x.
        assert!(!result.fds.contains(&fd(&[1], 0)));
    }

    #[test]
    fn all_reported_fds_hold_and_are_minimal() {
        let t = table(&[
            &[1, 1, 2, 0],
            &[1, 1, 2, 0],
            &[2, 1, 3, 1],
            &[3, 2, 3, 1],
            &[4, 2, 2, 0],
        ]);
        let result = tane(R, &t, None);
        for f in &result.fds {
            let lhs: Vec<AttrId> = f.lhs.iter().collect();
            let rhs: Vec<AttrId> = f.rhs.iter().collect();
            assert!(
                fd_holds_partition(&t, &lhs, &rhs),
                "reported FD does not hold: {f:?}"
            );
            // Minimality: every strict subset of the LHS fails.
            for drop in &lhs {
                let smaller: Vec<AttrId> = lhs.iter().copied().filter(|a| a != drop).collect();
                assert!(
                    !fd_holds_partition(&t, &smaller, &rhs),
                    "FD not minimal: {f:?}"
                );
            }
        }
    }

    #[test]
    fn finds_composite_lhs_dependencies() {
        // (x, y) -> z but neither x -> z nor y -> z.
        let t = table(&[&[1, 1, 7], &[1, 2, 8], &[2, 1, 9], &[2, 2, 7], &[1, 1, 7]]);
        let result = tane(R, &t, None);
        assert!(result.fds.contains(&fd(&[0, 1], 2)));
        assert!(!result.fds.contains(&fd(&[0], 2)));
        assert!(!result.fds.contains(&fd(&[1], 2)));
    }

    #[test]
    fn completeness_against_exhaustive_check() {
        // Every minimal FD that holds must be reported.
        let t = table(&[
            &[1, 10, 5],
            &[2, 10, 5],
            &[3, 20, 5],
            &[4, 20, 6],
            &[5, 30, 6],
        ]);
        let result = tane(R, &t, None);
        for lhs_mask in 0u8..8 {
            for rhs in 0..3u16 {
                if lhs_mask & (1 << rhs) != 0 {
                    continue;
                }
                let lhs: Vec<AttrId> = (0..3u16)
                    .filter(|i| lhs_mask & (1 << i) != 0)
                    .map(AttrId)
                    .collect();
                let holds = fd_holds_partition(&t, &lhs, &[AttrId(rhs)]);
                let minimal = holds
                    && lhs.iter().all(|drop| {
                        let smaller: Vec<AttrId> =
                            lhs.iter().copied().filter(|a| a != drop).collect();
                        !fd_holds_partition(&t, &smaller, &[AttrId(rhs)])
                    });
                let lhs_set = AttrSet::from_iter_ids(lhs.iter().copied());
                let reported = result
                    .fds
                    .iter()
                    .any(|f| f.lhs == lhs_set && f.rhs == AttrSet::from_indices([rhs]));
                assert_eq!(
                    minimal, reported,
                    "mismatch for {lhs:?} -> {rhs} (holds={holds})"
                );
            }
        }
    }

    #[test]
    fn max_lhs_bounds_levels() {
        let t = table(&[&[1, 1, 7], &[1, 2, 8], &[2, 1, 9], &[2, 2, 7]]);
        let result = tane(R, &t, Some(1));
        assert!(result.fds.iter().all(|f| f.lhs.len() <= 1));
    }

    #[test]
    fn empty_and_single_row_tables() {
        let t = Table::new(3);
        let result = tane(R, &t, None);
        // Everything holds vacuously; minimal FDs are ∅ -> a.
        assert!(result.fds.iter().all(|f| f.lhs.is_empty()));
        let t = table(&[&[1, 2, 3]]);
        let result = tane(R, &t, None);
        assert!(result.fds.iter().all(|f| f.lhs.is_empty()));
        assert_eq!(result.fds.len(), 3);
    }

    #[test]
    fn constant_column_yields_empty_lhs_fd() {
        let t = table(&[&[1, 9], &[2, 9], &[3, 9]]);
        let result = tane(R, &t, None);
        assert!(result.fds.contains(&fd(&[], 1)));
        assert!(!result.fds.contains(&fd(&[], 0)));
    }

    #[test]
    fn stats_are_populated() {
        let t = table(&[&[1, 1, 7], &[1, 2, 8], &[2, 1, 9], &[2, 2, 7]]);
        let result = tane(R, &t, None);
        assert!(result.stats.fd_checks > 0);
        assert!(result.stats.candidates > 0);
    }
}
