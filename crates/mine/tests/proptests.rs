//! Property tests: TANE is sound+complete against the naive checker;
//! SPIDER is sound+complete against pairwise inclusion tests.

use dbre_mine::partitions::fd_holds_partition;
use dbre_mine::spider::{spider, SpiderConfig};
use dbre_mine::tane::tane;
use dbre_mine::{fd_error, violations};
use dbre_relational::attr::{AttrId, AttrSet};
use dbre_relational::database::Database;
use dbre_relational::deps::Ind;
use dbre_relational::schema::{RelId, Relation};
use dbre_relational::table::Table;
use dbre_relational::value::{Domain, Value};
use proptest::prelude::*;

fn small_table(cols: usize, max_rows: usize, card: i64) -> impl Strategy<Value = Table> {
    prop::collection::vec(prop::collection::vec(0..card, cols..=cols), 0..=max_rows).prop_map(
        move |rows| {
            Table::from_rows(
                cols,
                rows.into_iter()
                    .map(|r| r.into_iter().map(Value::Int).collect::<Vec<_>>()),
            )
            .unwrap()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tane_matches_naive_enumeration(t in small_table(4, 12, 3)) {
        let result = tane(RelId(0), &t, None);
        // Soundness + minimality + completeness over the full lattice.
        for lhs_mask in 0u16..16 {
            for rhs in 0..4u16 {
                if lhs_mask & (1 << rhs) != 0 {
                    continue;
                }
                let lhs: Vec<AttrId> = (0..4u16)
                    .filter(|i| lhs_mask & (1 << i) != 0)
                    .map(AttrId)
                    .collect();
                let holds = fd_holds_partition(&t, &lhs, &[AttrId(rhs)]);
                let minimal = holds
                    && lhs.iter().all(|d| {
                        let smaller: Vec<AttrId> =
                            lhs.iter().copied().filter(|a| a != d).collect();
                        !fd_holds_partition(&t, &smaller, &[AttrId(rhs)])
                    });
                let lhs_set = AttrSet::from_iter_ids(lhs.iter().copied());
                let rhs_set = AttrSet::from_indices([rhs]);
                let reported = result
                    .fds
                    .iter()
                    .any(|f| f.lhs == lhs_set && f.rhs == rhs_set);
                prop_assert_eq!(minimal, reported,
                    "lhs={:?} rhs={} holds={}", lhs, rhs, holds);
            }
        }
    }

    #[test]
    fn violations_is_zero_iff_fd_holds(t in small_table(3, 15, 3)) {
        for lhs in 0..3u16 {
            for rhs in 0..3u16 {
                let v = violations(&t, &[AttrId(lhs)], &[AttrId(rhs)]);
                let holds = dbre_mine::check_hash(&t, &[AttrId(lhs)], &[AttrId(rhs)]);
                prop_assert_eq!(v == 0, holds);
                let e = fd_error(&t, &[AttrId(lhs)], &[AttrId(rhs)]);
                prop_assert!((0.0..=1.0).contains(&e));
            }
        }
    }

    #[test]
    fn spider_matches_pairwise_checks(
        a_vals in prop::collection::vec(0i64..6, 0..15),
        b_vals in prop::collection::vec(0i64..6, 0..15),
        c_vals in prop::collection::vec(0i64..6, 0..15),
    ) {
        let mut db = Database::new();
        let rels: Vec<RelId> = ["A", "B", "C"]
            .iter()
            .map(|n| {
                db.add_relation(Relation::of(n, &[("x", Domain::Int)])).unwrap()
            })
            .collect();
        for (rel, vals) in rels.iter().zip([&a_vals, &b_vals, &c_vals]) {
            for &v in vals.iter() {
                db.insert(*rel, vec![Value::Int(v)]).unwrap();
            }
        }
        let result = spider(&db, &SpiderConfig::default());
        for ind in &result.inds {
            prop_assert!(db.ind_holds(ind), "false positive {ind}");
        }
        // Completeness for non-empty columns.
        for &ri in &rels {
            for &rj in &rels {
                if ri == rj {
                    continue;
                }
                if db.table(ri).count_distinct(&[AttrId(0)]) == 0 {
                    continue;
                }
                let ind = Ind::unary(ri, AttrId(0), rj, AttrId(0));
                if db.ind_holds(&ind) {
                    prop_assert!(result.inds.contains(&ind), "missed {ind}");
                }
            }
        }
    }
}
