//! Token model for the SQL lexer.

use crate::error::Pos;
use std::fmt;

/// SQL keywords recognized by the subset grammar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    Distinct,
    From,
    Where,
    And,
    Or,
    Not,
    In,
    Exists,
    Is,
    Null,
    Insert,
    Into,
    Values,
    Create,
    Table,
    Unique,
    Primary,
    Key,
    Count,
    Min,
    Max,
    Sum,
    Avg,
    Group,
    Order,
    By,
    Having,
    Asc,
    Desc,
    Intersect,
    Union,
    Join,
    Inner,
    On,
    As,
    True,
    False,
    Date,
    Integer,
    Int,
    Smallint,
    Real,
    Float,
    Numeric,
    Decimal,
    Varchar,
    Char,
    Text,
    Boolean,
}

impl Keyword {
    /// Looks a word up case-insensitively.
    pub fn from_word(word: &str) -> Option<Keyword> {
        // Keywords are short; uppercase into a stack buffer sized for
        // the longest keyword.
        let mut buf = [0u8; 12];
        if word.len() > buf.len() {
            return None;
        }
        for (i, b) in word.bytes().enumerate() {
            buf[i] = b.to_ascii_uppercase();
        }
        Some(match &buf[..word.len()] {
            b"SELECT" => Keyword::Select,
            b"DISTINCT" => Keyword::Distinct,
            b"FROM" => Keyword::From,
            b"WHERE" => Keyword::Where,
            b"AND" => Keyword::And,
            b"OR" => Keyword::Or,
            b"NOT" => Keyword::Not,
            b"IN" => Keyword::In,
            b"EXISTS" => Keyword::Exists,
            b"IS" => Keyword::Is,
            b"NULL" => Keyword::Null,
            b"INSERT" => Keyword::Insert,
            b"INTO" => Keyword::Into,
            b"VALUES" => Keyword::Values,
            b"CREATE" => Keyword::Create,
            b"TABLE" => Keyword::Table,
            b"UNIQUE" => Keyword::Unique,
            b"PRIMARY" => Keyword::Primary,
            b"KEY" => Keyword::Key,
            b"COUNT" => Keyword::Count,
            b"MIN" => Keyword::Min,
            b"MAX" => Keyword::Max,
            b"SUM" => Keyword::Sum,
            b"AVG" => Keyword::Avg,
            b"GROUP" => Keyword::Group,
            b"ORDER" => Keyword::Order,
            b"BY" => Keyword::By,
            b"HAVING" => Keyword::Having,
            b"ASC" => Keyword::Asc,
            b"DESC" => Keyword::Desc,
            b"INTERSECT" => Keyword::Intersect,
            b"UNION" => Keyword::Union,
            b"JOIN" => Keyword::Join,
            b"INNER" => Keyword::Inner,
            b"ON" => Keyword::On,
            b"AS" => Keyword::As,
            b"TRUE" => Keyword::True,
            b"FALSE" => Keyword::False,
            b"DATE" => Keyword::Date,
            b"INTEGER" => Keyword::Integer,
            b"INT" => Keyword::Int,
            b"SMALLINT" => Keyword::Smallint,
            b"REAL" => Keyword::Real,
            b"FLOAT" => Keyword::Float,
            b"NUMERIC" => Keyword::Numeric,
            b"DECIMAL" => Keyword::Decimal,
            b"VARCHAR" => Keyword::Varchar,
            b"CHAR" => Keyword::Char,
            b"TEXT" => Keyword::Text,
            b"BOOLEAN" => Keyword::Boolean,
            _ => return None,
        })
    }
}

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Keyword (case-insensitive in source).
    Kw(Keyword),
    /// Identifier. Note: the lexer admits `-` *inside* identifiers
    /// (`zip-code`, `project-name`, `Ass-Dept`) because the legacy
    /// schemas this library targets — including the paper's worked
    /// example — use hyphenated names, and the grammar subset has no
    /// arithmetic to conflict with.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating point literal.
    Float(f64),
    /// String literal (single quotes, `''` escape).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Kw(k) => write!(f, "{k:?}"),
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Int(i) => write!(f, "integer {i}"),
            Tok::Float(x) => write!(f, "float {x}"),
            Tok::Str(s) => write!(f, "string '{s}'"),
            Tok::LParen => f.write_str("`(`"),
            Tok::RParen => f.write_str("`)`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Dot => f.write_str("`.`"),
            Tok::Star => f.write_str("`*`"),
            Tok::Eq => f.write_str("`=`"),
            Tok::Ne => f.write_str("`<>`"),
            Tok::Lt => f.write_str("`<`"),
            Tok::Le => f.write_str("`<=`"),
            Tok::Gt => f.write_str("`>`"),
            Tok::Ge => f.write_str("`>=`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::from_word("select"), Some(Keyword::Select));
        assert_eq!(Keyword::from_word("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::from_word("INTERSECT"), Some(Keyword::Intersect));
        assert_eq!(Keyword::from_word("widget"), None);
        assert_eq!(Keyword::from_word("averyveryverylongword"), None);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Tok::Ident("x".into()).to_string(), "identifier `x`");
        assert_eq!(Tok::Ne.to_string(), "`<>`");
    }
}
