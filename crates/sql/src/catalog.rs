//! The catalog — the DBMS *data dictionary* of the paper (§4).
//!
//! `CREATE TABLE` statements register relations and their declared
//! `unique` / `not null` constraints; from those the sets
//!
//! * `K = {R.X | X declared unique}` and
//! * `N = {R.a | a declared not null} ∪ {R.a ∈ R.X | R.X ∈ K}`
//!
//! are computed exactly as in the paper. The catalog owns the
//! [`Database`] being built, so `INSERT` statements load the extension
//! `E` through domain validation.

use crate::ast::{CreateTable, Insert, Statement, TableConstraint};
use crate::error::{SqlError, SqlResult};
use crate::parser::parse_script;
use dbre_relational::attr::AttrSet;
use dbre_relational::database::Database;
use dbre_relational::schema::Relation;
use dbre_relational::value::Value;
use dbre_relational::Attribute;

/// Builds a [`Database`] (schema + constraints + extension) from DDL
/// and DML statements.
#[derive(Debug, Default)]
pub struct Catalog {
    /// The database under construction.
    pub db: Database,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Applies a whole script of `CREATE TABLE` / `INSERT` statements.
    /// `SELECT` statements in the script are ignored here (they are the
    /// extractor's business).
    pub fn load_script(&mut self, src: &str) -> SqlResult<()> {
        for stmt in parse_script(src)? {
            match stmt {
                Statement::CreateTable(ct) => self.create_table(&ct)?,
                Statement::Insert(ins) => self.insert(&ins)?,
                Statement::Select(_) => {}
            }
        }
        Ok(())
    }

    /// Registers one `CREATE TABLE`, deriving `K` and `N` entries.
    pub fn create_table(&mut self, ct: &CreateTable) -> SqlResult<()> {
        let attrs: Vec<Attribute> = ct
            .columns
            .iter()
            .map(|c| Attribute::new(c.name.clone(), c.domain))
            .collect();
        let rel = self
            .db
            .add_relation(Relation::new(ct.name.clone(), attrs)?)?;
        let relation = self.db.schema.relation(rel);

        // Column-level constraints.
        let mut keys: Vec<AttrSet> = Vec::new();
        let mut not_null: Vec<u16> = Vec::new();
        for (i, col) in ct.columns.iter().enumerate() {
            let id = i as u16;
            if col.unique || col.primary_key {
                keys.push(AttrSet::from_indices([id]));
            }
            if col.not_null || col.primary_key {
                not_null.push(id);
            }
        }
        // Table-level constraints.
        for tc in &ct.constraints {
            let names = match tc {
                TableConstraint::Unique(n) | TableConstraint::PrimaryKey(n) => n,
            };
            let refs: Vec<&str> = names.iter().map(String::as_str).collect();
            let set = relation.attr_set(&refs).map_err(SqlError::Relational)?;
            keys.push(set);
        }

        for k in keys {
            self.db.constraints.add_key(rel, k);
        }
        for a in not_null {
            self.db
                .constraints
                .add_not_null(rel, dbre_relational::AttrId(a));
        }
        self.db.constraints.normalize();
        Ok(())
    }

    /// Applies one `INSERT`, reordering columns when an explicit column
    /// list is given and padding missing columns with `NULL`.
    pub fn insert(&mut self, ins: &Insert) -> SqlResult<()> {
        let rel = self.db.rel(&ins.table)?;
        let arity = self.db.schema.relation(rel).arity();
        let mapping: Option<Vec<usize>> = match &ins.columns {
            None => None,
            Some(cols) => {
                let relation = self.db.schema.relation(rel);
                let mut m = Vec::with_capacity(cols.len());
                for c in cols {
                    let id = relation.attr_id(c).ok_or_else(|| {
                        SqlError::semantic(format!(
                            "unknown column `{c}` in INSERT into `{}`",
                            ins.table
                        ))
                    })?;
                    m.push(id.index());
                }
                Some(m)
            }
        };
        for row in &ins.rows {
            let mut full: Vec<Value> = match &mapping {
                None => {
                    if row.len() != arity {
                        return Err(SqlError::semantic(format!(
                            "INSERT into `{}` expects {arity} values, got {}",
                            ins.table,
                            row.len()
                        )));
                    }
                    row.clone()
                }
                Some(m) => {
                    if row.len() != m.len() {
                        return Err(SqlError::semantic(format!(
                            "INSERT into `{}` column list has {} names but row has {} values",
                            ins.table,
                            m.len(),
                            row.len()
                        )));
                    }
                    let mut full = vec![Value::Null; arity];
                    for (slot, v) in m.iter().zip(row) {
                        full[*slot] = v.clone();
                    }
                    full
                }
            };
            // SQL numeric coercion: integer literals fit REAL columns.
            let relation = self.db.schema.relation(rel);
            for (i, v) in full.iter_mut().enumerate() {
                if relation.attributes()[i].domain == dbre_relational::Domain::Float {
                    if let Value::Int(n) = v {
                        *v = Value::float(*n as f64);
                    }
                }
            }
            self.db.insert(rel, full)?;
        }
        Ok(())
    }

    /// Consumes the catalog, yielding the loaded database.
    pub fn into_database(self) -> Database {
        self.db
    }

    /// Renders the dictionary sets `K` and `N` the way the paper prints
    /// them (for reports and the worked example).
    pub fn render_k_n(&self) -> (Vec<String>, Vec<String>) {
        let schema = &self.db.schema;
        let k = self
            .db
            .constraints
            .keys
            .iter()
            .map(|key| key.render(schema))
            .collect();
        let n = self
            .db
            .constraints
            .not_null
            .iter()
            .map(|(rel, attr)| {
                let r = schema.relation(*rel);
                format!("{}.{}", r.name, r.attr_name(*attr))
            })
            .collect();
        (k, n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DDL: &str = "
        CREATE TABLE Person (
            id INTEGER UNIQUE,
            name VARCHAR(40),
            zip-code CHAR(5)
        );
        CREATE TABLE HEmployee (
            no INTEGER,
            date DATE,
            salary REAL,
            UNIQUE (no, date)
        );
        CREATE TABLE Department (
            dep CHAR(4) UNIQUE,
            emp INTEGER,
            location VARCHAR(30) NOT NULL
        );
    ";

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.load_script(DDL).unwrap();
        c
    }

    #[test]
    fn k_and_n_derived_from_dictionary() {
        let c = catalog();
        let (k, n) = c.render_k_n();
        assert!(k.contains(&"Person.{id}".to_string()));
        assert!(k.contains(&"HEmployee.{no, date}".to_string()));
        assert!(k.contains(&"Department.{dep}".to_string()));
        assert_eq!(k.len(), 3);
        // N includes explicit not-nulls and key attributes.
        assert!(n.contains(&"Department.location".to_string()));
        assert!(n.contains(&"Person.id".to_string()));
        assert!(n.contains(&"HEmployee.no".to_string()));
        assert!(n.contains(&"HEmployee.date".to_string()));
        assert!(n.contains(&"Department.dep".to_string()));
        assert!(!n.contains(&"Person.name".to_string()));
    }

    #[test]
    fn primary_key_implies_unique_and_not_null() {
        let mut c = Catalog::new();
        c.load_script("CREATE TABLE T (a INT PRIMARY KEY, b INT)")
            .unwrap();
        let rel = c.db.rel("T").unwrap();
        assert!(c.db.constraints.is_key(rel, &AttrSet::from_indices([0u16])));
        assert!(c
            .db
            .constraints
            .is_not_null(rel, dbre_relational::AttrId(0)));
        assert!(!c
            .db
            .constraints
            .is_not_null(rel, dbre_relational::AttrId(1)));
    }

    #[test]
    fn insert_positional_and_named() {
        let mut c = catalog();
        c.load_script("INSERT INTO Person VALUES (1, 'ann', '69100')")
            .unwrap();
        c.load_script("INSERT INTO Person (id, name) VALUES (2, 'bob')")
            .unwrap();
        let rel = c.db.rel("Person").unwrap();
        let t = c.db.table(rel);
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(1, dbre_relational::AttrId(2)), &Value::Null);
    }

    #[test]
    fn insert_errors() {
        let mut c = catalog();
        assert!(c.load_script("INSERT INTO Person VALUES (1)").is_err());
        assert!(c
            .load_script("INSERT INTO Person (id, ghost) VALUES (1, 2)")
            .is_err());
        assert!(c.load_script("INSERT INTO Ghost VALUES (1)").is_err());
        // Domain violation bubbles up from the relational layer.
        assert!(c
            .load_script("INSERT INTO Person VALUES ('x', 'y', 'z')")
            .is_err());
    }

    #[test]
    fn extension_respects_dictionary_after_load() {
        let mut c = catalog();
        c.load_script(
            "INSERT INTO HEmployee VALUES (1, DATE '1996-01-01', 100.0);
             INSERT INTO HEmployee VALUES (1, DATE '1996-02-01', 120.0);",
        )
        .unwrap();
        c.db.validate_dictionary().unwrap();
        c.load_script("INSERT INTO HEmployee VALUES (1, DATE '1996-01-01', 999.0)")
            .unwrap();
        assert!(c.db.validate_dictionary().is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut c = catalog();
        assert!(c.load_script("CREATE TABLE Person (x INT)").is_err());
    }

    #[test]
    fn select_statements_ignored_by_catalog() {
        let mut c = catalog();
        c.load_script("SELECT * FROM Person").unwrap();
        assert_eq!(c.db.schema.len(), 3);
    }
}
