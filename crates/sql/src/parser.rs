//! Recursive-descent parser for the SQL subset.
//!
//! See [`crate::ast`] for the grammar coverage. One legacy-driven
//! peculiarity: `DATE` and `KEY` act as *soft keywords* — they may be
//! used as column names (the paper's `HEmployee(no, date, salary)` has
//! a column literally named `date`). `DATE '…'` in expression position
//! is still a date literal.

use crate::ast::*;
use crate::error::{Pos, SqlError, SqlResult};
use crate::lexer::tokenize;
use crate::token::{Keyword, Tok, Token};
use dbre_relational::value::{Date, Domain, Value};

/// Parses a script: one or more `;`-separated statements.
pub fn parse_script(src: &str) -> SqlResult<Vec<Statement>> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&Tok::Semi) {}
        if p.at_eof() {
            break;
        }
        out.push(p.statement()?);
        if !p.at_eof() {
            p.expect(&Tok::Semi)?;
        }
    }
    Ok(out)
}

/// Parses a single statement (trailing `;` allowed).
pub fn parse_statement(src: &str) -> SqlResult<Statement> {
    let mut p = Parser::new(src)?;
    let stmt = p.statement()?;
    p.eat(&Tok::Semi);
    if !p.at_eof() {
        return Err(p.unexpected("end of input"));
    }
    Ok(stmt)
}

/// Parses a single query (`SELECT …`).
pub fn parse_query(src: &str) -> SqlResult<Query> {
    match parse_statement(src)? {
        Statement::Select(q) => Ok(q),
        _ => Err(SqlError::semantic("expected a SELECT statement")),
    }
}

struct Parser {
    tokens: Vec<Token>,
    i: usize,
}

impl Parser {
    fn new(src: &str) -> SqlResult<Self> {
        Ok(Parser {
            tokens: tokenize(src)?,
            i: 0,
        })
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.i].tok
    }

    fn peek2(&self) -> &Tok {
        &self.tokens[(self.i + 1).min(self.tokens.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.tokens[self.i].pos
    }

    fn bump(&mut self) -> Tok {
        let t = self.tokens[self.i].tok.clone();
        if self.i + 1 < self.tokens.len() {
            self.i += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, k: Keyword) -> bool {
        self.eat(&Tok::Kw(k))
    }

    fn expect(&mut self, t: &Tok) -> SqlResult<()> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.unexpected(&t.to_string()))
        }
    }

    fn expect_kw(&mut self, k: Keyword) -> SqlResult<()> {
        self.expect(&Tok::Kw(k))
    }

    fn unexpected(&self, wanted: &str) -> SqlError {
        SqlError::Parse {
            pos: self.pos(),
            message: format!("expected {wanted}, found {}", self.peek()),
        }
    }

    /// An identifier, admitting the soft keywords `DATE` and `KEY`.
    fn ident(&mut self) -> SqlResult<String> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            Tok::Kw(Keyword::Date) => {
                self.bump();
                Ok("date".to_string())
            }
            Tok::Kw(Keyword::Key) => {
                self.bump();
                Ok("key".to_string())
            }
            _ => Err(self.unexpected("an identifier")),
        }
    }

    fn statement(&mut self) -> SqlResult<Statement> {
        match self.peek() {
            Tok::Kw(Keyword::Create) => self.create_table().map(Statement::CreateTable),
            Tok::Kw(Keyword::Insert) => self.insert().map(Statement::Insert),
            Tok::Kw(Keyword::Select) => self.query().map(Statement::Select),
            _ => Err(self.unexpected("CREATE, INSERT or SELECT")),
        }
    }

    // ---- DDL ----

    fn create_table(&mut self) -> SqlResult<CreateTable> {
        self.expect_kw(Keyword::Create)?;
        self.expect_kw(Keyword::Table)?;
        let name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut columns = Vec::new();
        let mut constraints = Vec::new();
        loop {
            match self.peek() {
                Tok::Kw(Keyword::Unique) => {
                    self.bump();
                    constraints.push(TableConstraint::Unique(self.paren_ident_list()?));
                }
                Tok::Kw(Keyword::Primary) => {
                    self.bump();
                    self.expect_kw(Keyword::Key)?;
                    constraints.push(TableConstraint::PrimaryKey(self.paren_ident_list()?));
                }
                _ => columns.push(self.column_def()?),
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(CreateTable {
            name,
            columns,
            constraints,
        })
    }

    fn paren_ident_list(&mut self) -> SqlResult<Vec<String>> {
        self.expect(&Tok::LParen)?;
        let mut names = vec![self.ident()?];
        while self.eat(&Tok::Comma) {
            names.push(self.ident()?);
        }
        self.expect(&Tok::RParen)?;
        Ok(names)
    }

    fn column_def(&mut self) -> SqlResult<ColumnDef> {
        // Disambiguation: `date DATE` — a column named `date`. The soft
        // keyword path in `ident()` handles it.
        let name = self.ident()?;
        let domain = self.domain()?;
        let mut def = ColumnDef {
            name,
            domain,
            not_null: false,
            unique: false,
            primary_key: false,
        };
        loop {
            if self.eat_kw(Keyword::Not) {
                self.expect_kw(Keyword::Null)?;
                def.not_null = true;
            } else if self.eat_kw(Keyword::Unique) {
                def.unique = true;
            } else if self.peek() == &Tok::Kw(Keyword::Primary) {
                self.bump();
                self.expect_kw(Keyword::Key)?;
                def.primary_key = true;
            } else {
                break;
            }
        }
        Ok(def)
    }

    fn domain(&mut self) -> SqlResult<Domain> {
        let d = match self.peek() {
            Tok::Kw(Keyword::Integer) | Tok::Kw(Keyword::Int) | Tok::Kw(Keyword::Smallint) => {
                self.bump();
                Domain::Int
            }
            Tok::Kw(Keyword::Real)
            | Tok::Kw(Keyword::Float)
            | Tok::Kw(Keyword::Numeric)
            | Tok::Kw(Keyword::Decimal) => {
                self.bump();
                self.optional_length_args()?;
                Domain::Float
            }
            Tok::Kw(Keyword::Varchar) | Tok::Kw(Keyword::Char) => {
                self.bump();
                self.optional_length_args()?;
                Domain::Text
            }
            Tok::Kw(Keyword::Text) => {
                self.bump();
                Domain::Text
            }
            Tok::Kw(Keyword::Boolean) => {
                self.bump();
                Domain::Bool
            }
            Tok::Kw(Keyword::Date) => {
                self.bump();
                Domain::Date
            }
            _ => return Err(self.unexpected("a type name")),
        };
        Ok(d)
    }

    /// `(n)` / `(p, s)` after VARCHAR/NUMERIC — accepted and ignored.
    fn optional_length_args(&mut self) -> SqlResult<()> {
        if self.eat(&Tok::LParen) {
            loop {
                match self.bump() {
                    Tok::Int(_) => {}
                    other => {
                        return Err(SqlError::Parse {
                            pos: self.pos(),
                            message: format!("expected a length, found {other}"),
                        })
                    }
                }
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
        }
        Ok(())
    }

    // ---- INSERT ----

    fn insert(&mut self) -> SqlResult<Insert> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.ident()?;
        let columns = if self.peek() == &Tok::LParen {
            Some(self.paren_ident_list()?)
        } else {
            None
        };
        self.expect_kw(Keyword::Values)?;
        let mut rows = vec![self.value_row()?];
        while self.eat(&Tok::Comma) {
            rows.push(self.value_row()?);
        }
        Ok(Insert {
            table,
            columns,
            rows,
        })
    }

    fn value_row(&mut self) -> SqlResult<Vec<Value>> {
        self.expect(&Tok::LParen)?;
        let mut row = vec![self.literal()?];
        while self.eat(&Tok::Comma) {
            row.push(self.literal()?);
        }
        self.expect(&Tok::RParen)?;
        Ok(row)
    }

    fn literal(&mut self) -> SqlResult<Value> {
        let v = match self.peek().clone() {
            Tok::Int(i) => {
                self.bump();
                Value::Int(i)
            }
            Tok::Float(x) => {
                self.bump();
                Value::float(x)
            }
            Tok::Str(s) => {
                self.bump();
                Value::str(s)
            }
            Tok::Kw(Keyword::Null) => {
                self.bump();
                Value::Null
            }
            Tok::Kw(Keyword::True) => {
                self.bump();
                Value::Bool(true)
            }
            Tok::Kw(Keyword::False) => {
                self.bump();
                Value::Bool(false)
            }
            Tok::Kw(Keyword::Date) if matches!(self.peek2(), Tok::Str(_)) => {
                self.bump();
                let s = match self.bump() {
                    Tok::Str(s) => s,
                    _ => return Err(self.unexpected("a string literal")),
                };
                let d = Date::parse(&s).ok_or_else(|| SqlError::Parse {
                    pos: self.pos(),
                    message: format!("invalid date literal '{s}'"),
                })?;
                Value::Date(d)
            }
            _ => return Err(self.unexpected("a literal")),
        };
        Ok(v)
    }

    // ---- Queries ----

    fn query(&mut self) -> SqlResult<Query> {
        let body = self.select()?;
        let compound = if self.eat_kw(Keyword::Intersect) {
            Some((SetOp::Intersect, Box::new(self.query()?)))
        } else if self.eat_kw(Keyword::Union) {
            Some((SetOp::Union, Box::new(self.query()?)))
        } else {
            None
        };
        Ok(Query { body, compound })
    }

    fn select(&mut self) -> SqlResult<Select> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);
        let items = self.select_items()?;
        self.expect_kw(Keyword::From)?;
        let mut from = vec![self.table_ref()?];
        let mut join_conds = Vec::new();
        loop {
            if self.eat(&Tok::Comma) {
                from.push(self.table_ref()?);
            } else if self.peek() == &Tok::Kw(Keyword::Join)
                || (self.peek() == &Tok::Kw(Keyword::Inner)
                    && self.peek2() == &Tok::Kw(Keyword::Join))
            {
                self.eat_kw(Keyword::Inner);
                self.expect_kw(Keyword::Join)?;
                from.push(self.table_ref()?);
                self.expect_kw(Keyword::On)?;
                join_conds.push(self.expr()?);
            } else {
                break;
            }
        }
        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by.push(self.expr()?);
            while self.eat(&Tok::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw(Keyword::Having) {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let key = if let Tok::Int(n) = self.peek().clone() {
                    self.bump();
                    if n < 1 {
                        return Err(SqlError::Parse {
                            pos: self.pos(),
                            message: "ORDER BY position must be >= 1".into(),
                        });
                    }
                    OrderKey::Position(n as usize)
                } else {
                    OrderKey::Expr(self.expr()?)
                };
                let desc = if self.eat_kw(Keyword::Desc) {
                    true
                } else {
                    self.eat_kw(Keyword::Asc);
                    false
                };
                order_by.push(OrderItem { key, desc });
                if !self.eat(&Tok::Comma) {
                    break;
                }
            }
        }
        Ok(Select {
            distinct,
            items,
            from,
            join_conds,
            where_clause,
            group_by,
            having,
            order_by,
        })
    }

    fn select_items(&mut self) -> SqlResult<Vec<SelectItem>> {
        let mut items = Vec::new();
        loop {
            if self.eat(&Tok::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_kw(Keyword::As) {
                    Some(self.ident()?)
                } else if let Tok::Ident(s) = self.peek().clone() {
                    // bare alias
                    self.bump();
                    Some(s)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&Tok::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn table_ref(&mut self) -> SqlResult<TableRef> {
        let table = self.ident()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident()?)
        } else if let Tok::Ident(s) = self.peek().clone() {
            self.bump();
            Some(s)
        } else {
            None
        };
        Ok(TableRef { table, alias })
    }

    // ---- Expressions (precedence: OR < AND < NOT < comparison) ----

    fn expr(&mut self) -> SqlResult<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.and_expr()?;
            left = Expr::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> SqlResult<Expr> {
        let mut left = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let right = self.not_expr()?;
            left = Expr::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> SqlResult<Expr> {
        if self.peek() == &Tok::Kw(Keyword::Not)
            && !matches!(
                self.peek2(),
                Tok::Kw(Keyword::In) | Tok::Kw(Keyword::Exists)
            )
        {
            self.bump();
            let inner = self.not_expr()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.predicate()
    }

    fn predicate(&mut self) -> SqlResult<Expr> {
        // [NOT] EXISTS (query)
        if self.peek() == &Tok::Kw(Keyword::Not) && self.peek2() == &Tok::Kw(Keyword::Exists) {
            self.bump();
            self.bump();
            self.expect(&Tok::LParen)?;
            let query = self.query()?;
            self.expect(&Tok::RParen)?;
            return Ok(Expr::Exists {
                query: Box::new(query),
                negated: true,
            });
        }
        if self.eat_kw(Keyword::Exists) {
            self.expect(&Tok::LParen)?;
            let query = self.query()?;
            self.expect(&Tok::RParen)?;
            return Ok(Expr::Exists {
                query: Box::new(query),
                negated: false,
            });
        }

        let left = self.primary()?;

        // comparison
        let op = match self.peek() {
            Tok::Eq => Some(CmpOp::Eq),
            Tok::Ne => Some(CmpOp::Ne),
            Tok::Lt => Some(CmpOp::Lt),
            Tok::Le => Some(CmpOp::Le),
            Tok::Gt => Some(CmpOp::Gt),
            Tok::Ge => Some(CmpOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.primary()?;
            return Ok(Expr::Cmp {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }

        // IS [NOT] NULL
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        // [NOT] IN ( query | list )
        let negated_in =
            if self.peek() == &Tok::Kw(Keyword::Not) && self.peek2() == &Tok::Kw(Keyword::In) {
                self.bump();
                self.bump();
                true
            } else if self.eat_kw(Keyword::In) {
                false
            } else {
                return Ok(left);
            };
        self.expect(&Tok::LParen)?;
        if self.peek() == &Tok::Kw(Keyword::Select) {
            let query = self.query()?;
            self.expect(&Tok::RParen)?;
            Ok(Expr::InSubquery {
                expr: Box::new(left),
                query: Box::new(query),
                negated: negated_in,
            })
        } else {
            let mut list = vec![self.primary()?];
            while self.eat(&Tok::Comma) {
                list.push(self.primary()?);
            }
            self.expect(&Tok::RParen)?;
            Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated: negated_in,
            })
        }
    }

    fn primary(&mut self) -> SqlResult<Expr> {
        match self.peek().clone() {
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Kw(Keyword::Count) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                if self.eat(&Tok::Star) {
                    self.expect(&Tok::RParen)?;
                    return Ok(Expr::CountStar);
                }
                if self.eat_kw(Keyword::Distinct) {
                    let mut cols = vec![self.column_ref()?];
                    while self.eat(&Tok::Comma) {
                        cols.push(self.column_ref()?);
                    }
                    self.expect(&Tok::RParen)?;
                    return Ok(Expr::CountDistinct(cols));
                }
                // COUNT(expr): non-null count.
                let arg = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(Expr::Agg {
                    func: AggFunc::Count,
                    arg: Box::new(arg),
                })
            }
            Tok::Kw(k @ (Keyword::Min | Keyword::Max | Keyword::Sum | Keyword::Avg)) => {
                self.bump();
                self.expect(&Tok::LParen)?;
                let arg = self.expr()?;
                self.expect(&Tok::RParen)?;
                let func = match k {
                    Keyword::Min => AggFunc::Min,
                    Keyword::Max => AggFunc::Max,
                    Keyword::Sum => AggFunc::Sum,
                    _ => AggFunc::Avg,
                };
                Ok(Expr::Agg {
                    func,
                    arg: Box::new(arg),
                })
            }
            Tok::Kw(Keyword::Date) if matches!(self.peek2(), Tok::Str(_)) => {
                Ok(Expr::Literal(self.literal()?))
            }
            Tok::Int(_)
            | Tok::Float(_)
            | Tok::Str(_)
            | Tok::Kw(Keyword::Null)
            | Tok::Kw(Keyword::True)
            | Tok::Kw(Keyword::False) => Ok(Expr::Literal(self.literal()?)),
            Tok::Ident(_) | Tok::Kw(Keyword::Date) | Tok::Kw(Keyword::Key) => {
                Ok(Expr::Column(self.column_ref()?))
            }
            _ => Err(self.unexpected("an expression")),
        }
    }

    fn column_ref(&mut self) -> SqlResult<ColumnRef> {
        let first = self.ident()?;
        if self.eat(&Tok::Dot) {
            let name = self.ident()?;
            Ok(ColumnRef {
                qualifier: Some(first),
                name,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                name: first,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_with_constraints() {
        let stmt = parse_statement(
            "CREATE TABLE HEmployee (
                no INTEGER NOT NULL,
                date DATE NOT NULL,
                salary REAL,
                UNIQUE (no, date)
            )",
        )
        .unwrap();
        let Statement::CreateTable(ct) = stmt else {
            panic!("expected create table")
        };
        assert_eq!(ct.name, "HEmployee");
        assert_eq!(ct.columns.len(), 3);
        assert_eq!(ct.columns[1].name, "date");
        assert_eq!(ct.columns[1].domain, Domain::Date);
        assert!(ct.columns[0].not_null);
        assert_eq!(
            ct.constraints,
            vec![TableConstraint::Unique(vec!["no".into(), "date".into()])]
        );
    }

    #[test]
    fn create_table_inline_constraints() {
        let Statement::CreateTable(ct) = parse_statement(
            "create table Person (id int primary key, name varchar(40) unique, zip-code char(5))",
        )
        .unwrap() else {
            panic!()
        };
        assert!(ct.columns[0].primary_key);
        assert!(ct.columns[1].unique);
        assert_eq!(ct.columns[2].name, "zip-code");
        assert_eq!(ct.columns[2].domain, Domain::Text);
    }

    #[test]
    fn insert_rows() {
        let Statement::Insert(ins) = parse_statement(
            "INSERT INTO Person (id, name) VALUES (1, 'ann'), (2, NULL), (-3, 'carl')",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(ins.table, "Person");
        assert_eq!(ins.columns.as_ref().unwrap().len(), 2);
        assert_eq!(ins.rows.len(), 3);
        assert_eq!(ins.rows[1][1], Value::Null);
        assert_eq!(ins.rows[2][0], Value::Int(-3));
    }

    #[test]
    fn insert_date_literal() {
        let Statement::Insert(ins) =
            parse_statement("INSERT INTO H VALUES (DATE '1996-02-29')").unwrap()
        else {
            panic!()
        };
        assert_eq!(
            ins.rows[0][0],
            Value::Date(Date::from_ymd(1996, 2, 29).unwrap())
        );
        assert!(parse_statement("INSERT INTO H VALUES (DATE '1995-02-29')").is_err());
    }

    #[test]
    fn select_where_equijoin() {
        let q = parse_query(
            "SELECT p.name FROM Person p, HEmployee e WHERE e.no = p.id AND e.salary > 100",
        )
        .unwrap();
        assert_eq!(q.body.from.len(), 2);
        assert_eq!(q.body.from[1].binding(), "e");
        let w = q.body.where_clause.unwrap();
        let conj = w.conjuncts();
        assert_eq!(conj.len(), 2);
        assert!(conj[0].as_column_equality().is_some());
        assert!(conj[1].as_column_equality().is_none());
    }

    #[test]
    fn select_join_on_desugars() {
        let q = parse_query(
            "SELECT * FROM Department d JOIN Assignment a ON d.dep = a.dep WHERE a.proj = 'p1'",
        )
        .unwrap();
        assert_eq!(q.body.from.len(), 2);
        assert_eq!(q.body.join_conds.len(), 1);
        assert!(q.body.join_conds[0].as_column_equality().is_some());
        assert!(q.body.where_clause.is_some());
    }

    #[test]
    fn inner_join_keyword() {
        let q = parse_query("SELECT * FROM A INNER JOIN B ON A.x = B.y").unwrap();
        assert_eq!(q.body.from.len(), 2);
        assert_eq!(q.body.join_conds.len(), 1);
    }

    #[test]
    fn nested_in_subquery() {
        let q = parse_query(
            "SELECT name FROM Person WHERE id IN (SELECT no FROM HEmployee WHERE salary > 0)",
        )
        .unwrap();
        let Some(Expr::InSubquery { negated, .. }) = q.body.where_clause else {
            panic!("expected IN subquery")
        };
        assert!(!negated);
    }

    #[test]
    fn not_in_and_not_exists() {
        let q = parse_query("SELECT * FROM A WHERE x NOT IN (SELECT y FROM B)").unwrap();
        assert!(matches!(
            q.body.where_clause,
            Some(Expr::InSubquery { negated: true, .. })
        ));
        let q = parse_query("SELECT * FROM A WHERE NOT EXISTS (SELECT * FROM B)").unwrap();
        assert!(matches!(
            q.body.where_clause,
            Some(Expr::Exists { negated: true, .. })
        ));
    }

    #[test]
    fn in_literal_list() {
        let q = parse_query("SELECT * FROM A WHERE x IN (1, 2, 3)").unwrap();
        let Some(Expr::InList { list, .. }) = q.body.where_clause else {
            panic!()
        };
        assert_eq!(list.len(), 3);
    }

    #[test]
    fn intersect_chain() {
        let q =
            parse_query("SELECT dep FROM Department INTERSECT SELECT dep FROM Assignment").unwrap();
        let (op, rest) = q.compound.unwrap();
        assert_eq!(op, SetOp::Intersect);
        assert!(rest.compound.is_none());
    }

    #[test]
    fn count_forms() {
        let q = parse_query("SELECT COUNT(*) FROM A").unwrap();
        assert!(matches!(
            q.body.items[0],
            SelectItem::Expr {
                expr: Expr::CountStar,
                ..
            }
        ));
        let q = parse_query("SELECT COUNT(DISTINCT no, date) FROM HEmployee").unwrap();
        let SelectItem::Expr {
            expr: Expr::CountDistinct(cols),
            ..
        } = &q.body.items[0]
        else {
            panic!()
        };
        assert_eq!(cols.len(), 2);
    }

    #[test]
    fn date_as_column_name_in_expr() {
        let q = parse_query("SELECT date FROM HEmployee WHERE date = DATE '1996-01-01'").unwrap();
        let SelectItem::Expr {
            expr: Expr::Column(c),
            ..
        } = &q.body.items[0]
        else {
            panic!()
        };
        assert_eq!(c.name, "date");
        let Some(Expr::Cmp { left, right, .. }) = q.body.where_clause else {
            panic!()
        };
        assert!(matches!(*left, Expr::Column(_)));
        assert!(matches!(*right, Expr::Literal(Value::Date(_))));
    }

    #[test]
    fn is_null_predicates() {
        let q = parse_query("SELECT * FROM A WHERE x IS NULL AND y IS NOT NULL").unwrap();
        let w = q.body.where_clause.unwrap();
        let c = w.conjuncts();
        assert!(matches!(c[0], Expr::IsNull { negated: false, .. }));
        assert!(matches!(c[1], Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn or_and_not_precedence() {
        // NOT binds tighter than AND, AND tighter than OR.
        let q = parse_query("SELECT * FROM A WHERE NOT x = 1 AND y = 2 OR z = 3").unwrap();
        let Some(Expr::Or(l, _)) = q.body.where_clause else {
            panic!("OR should be outermost")
        };
        let Expr::And(nl, _) = *l else {
            panic!("AND under OR")
        };
        assert!(matches!(*nl, Expr::Not(_)));
    }

    #[test]
    fn script_parses_multiple_statements() {
        let stmts =
            parse_script("CREATE TABLE A (x INT); INSERT INTO A VALUES (1); SELECT * FROM A;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
        assert!(parse_script("").unwrap().is_empty());
    }

    #[test]
    fn error_reporting_has_position() {
        let err = parse_statement("SELECT FROM").unwrap_err();
        match err {
            SqlError::Parse { pos, .. } => assert_eq!(pos.line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_statement("SELECT * FROM A B C").is_err());
    }

    #[test]
    fn select_item_aliases() {
        let q = parse_query("SELECT a AS x, b y, c FROM T").unwrap();
        let names: Vec<Option<&str>> = q
            .body
            .items
            .iter()
            .map(|i| match i {
                SelectItem::Expr { alias, .. } => alias.as_deref(),
                SelectItem::Wildcard => None,
            })
            .collect();
        assert_eq!(names, vec![Some("x"), Some("y"), None]);
    }
}
