//! Abstract syntax tree for the SQL subset.
//!
//! The subset is exactly what the DBRE pipeline needs:
//!
//! * `CREATE TABLE` with column and table constraints — the data
//!   dictionary from which `K` and `N` are computed (paper §4);
//! * `INSERT … VALUES` — loading the extension `E`;
//! * `SELECT` with multi-table `FROM`, `JOIN … ON`, `WHERE`
//!   conjunctions, nested `IN`/`EXISTS` subqueries and `INTERSECT` —
//!   the query shapes from which equi-joins are extracted (§4), plus
//!   `COUNT(DISTINCT …)` — the `‖·‖` counting primitive (§2).

use dbre_relational::value::{Domain, Value};

/// A full SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE`.
    CreateTable(CreateTable),
    /// `INSERT INTO … VALUES …`.
    Insert(Insert),
    /// A (possibly compound) query.
    Select(Query),
}

/// `CREATE TABLE name (…)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Column definitions, in order.
    pub columns: Vec<ColumnDef>,
    /// Table-level constraints.
    pub constraints: Vec<TableConstraint>,
}

/// One column definition.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    /// Column name.
    pub name: String,
    /// Declared domain.
    pub domain: Domain,
    /// `NOT NULL` present?
    pub not_null: bool,
    /// Column-level `UNIQUE` present?
    pub unique: bool,
    /// Column-level `PRIMARY KEY` present?
    pub primary_key: bool,
}

/// Table-level constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum TableConstraint {
    /// `UNIQUE (a, b, …)`.
    Unique(Vec<String>),
    /// `PRIMARY KEY (a, b, …)`.
    PrimaryKey(Vec<String>),
}

/// `INSERT INTO table [(cols)] VALUES (…), (…)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    /// Target table.
    pub table: String,
    /// Optional explicit column list.
    pub columns: Option<Vec<String>>,
    /// Literal rows.
    pub rows: Vec<Vec<Value>>,
}

/// A query: one select body, optionally combined with another query by
/// a set operator (right-associated chain).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The first `SELECT`.
    pub body: Select,
    /// `INTERSECT`/`UNION` continuation.
    pub compound: Option<(SetOp, Box<Query>)>,
}

/// Set operator between queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    /// `INTERSECT` (set semantics).
    Intersect,
    /// `UNION` (set semantics).
    Union,
}

/// One `SELECT … FROM … WHERE …` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `DISTINCT` present?
    pub distinct: bool,
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// `FROM` sources (cross product; `JOIN … ON` is desugared by the
    /// parser into an extra source plus a `WHERE` conjunct, preserving
    /// the join condition in [`Select::join_conds`] for the extractor).
    pub from: Vec<TableRef>,
    /// Conditions that came from `ON` clauses (kept separate so the
    /// equi-join extractor sees them verbatim; the executor treats them
    /// as additional `WHERE` conjuncts).
    pub join_conds: Vec<Expr>,
    /// `WHERE` predicate.
    pub where_clause: Option<Expr>,
    /// `GROUP BY` expressions (legacy report queries).
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate (may contain aggregates).
    pub having: Option<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderItem>,
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    /// The sort key: a column reference, or an output position when
    /// the legacy `ORDER BY 2` form is used.
    pub key: OrderKey,
    /// Descending?
    pub desc: bool,
}

/// What an `ORDER BY` item sorts on.
#[derive(Debug, Clone, PartialEq)]
pub enum OrderKey {
    /// An expression (column reference in this subset).
    Expr(Expr),
    /// 1-based output column position.
    Position(usize),
}

/// One projection item.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`.
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`.
        alias: Option<String>,
    },
}

/// A table in `FROM`, with optional alias.
#[derive(Debug, Clone, PartialEq)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// `AS alias` / bare alias.
    pub alias: Option<String>,
}

impl TableRef {
    /// The name this source binds in scope (alias if given).
    pub fn binding(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// A column reference `[qualifier.]name`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ColumnRef {
    /// Optional table/alias qualifier.
    pub qualifier: Option<String>,
    /// Column name.
    pub name: String,
}

impl ColumnRef {
    /// Unqualified reference.
    pub fn bare(name: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: None,
            name: name.into(),
        }
    }

    /// Qualified reference.
    pub fn qualified(q: impl Into<String>, name: impl Into<String>) -> Self {
        ColumnRef {
            qualifier: Some(q.into()),
            name: name.into(),
        }
    }
}

impl std::fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => write!(f, "{}", self.name),
        }
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Scalar / predicate expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference.
    Column(ColumnRef),
    /// Literal value.
    Literal(Value),
    /// Comparison between two scalars.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical AND.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// Tested expression.
        expr: Box<Expr>,
        /// `IS NOT NULL`?
        negated: bool,
    },
    /// `expr [NOT] IN (SELECT …)`.
    InSubquery {
        /// Tested expression.
        expr: Box<Expr>,
        /// The subquery (must project exactly one column).
        query: Box<Query>,
        /// `NOT IN`?
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, …)`.
    InList {
        /// Tested expression.
        expr: Box<Expr>,
        /// Literal list.
        list: Vec<Expr>,
        /// `NOT IN`?
        negated: bool,
    },
    /// `[NOT] EXISTS (SELECT …)`.
    Exists {
        /// The subquery.
        query: Box<Query>,
        /// `NOT EXISTS`?
        negated: bool,
    },
    /// `COUNT(*)`.
    CountStar,
    /// `COUNT(DISTINCT a, b, …)` — multi-column extension matching the
    /// paper's `‖r[X]‖` definition.
    CountDistinct(Vec<ColumnRef>),
    /// `MIN/MAX/SUM/AVG/COUNT(expr)` over a group.
    Agg {
        /// The aggregate function.
        func: AggFunc,
        /// Aggregated expression (NULLs are skipped, as in SQL).
        arg: Box<Expr>,
    },
}

/// Aggregate functions beyond the counting primitives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum AggFunc {
    Min,
    Max,
    Sum,
    Avg,
    /// `COUNT(expr)`: non-null count.
    Count,
}

impl Expr {
    /// Does the expression contain an aggregate anywhere?
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::CountStar | Expr::CountDistinct(_) | Expr::Agg { .. } => true,
            Expr::Cmp { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::And(l, r) | Expr::Or(l, r) => l.contains_aggregate() || r.contains_aggregate(),
            Expr::Not(x) => x.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::InSubquery { expr, .. } => expr.contains_aggregate(),
            Expr::Exists { .. } | Expr::Column(_) | Expr::Literal(_) => false,
        }
    }
}

impl Expr {
    /// Flattens a conjunction tree into its conjuncts
    /// (`a AND (b AND c)` → `[a, b, c]`). Non-AND expressions yield
    /// themselves. Used by the equi-join extractor.
    pub fn conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            if let Expr::And(l, r) = e {
                walk(l, out);
                walk(r, out);
            } else {
                out.push(e);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Is this an equality between two column references? Returns the
    /// pair when so.
    pub fn as_column_equality(&self) -> Option<(&ColumnRef, &ColumnRef)> {
        if let Expr::Cmp {
            op: CmpOp::Eq,
            left,
            right,
        } = self
        {
            if let (Expr::Column(a), Expr::Column(b)) = (left.as_ref(), right.as_ref()) {
                return Some((a, b));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjuncts_flatten_nested_ands() {
        let a = Expr::Column(ColumnRef::bare("a"));
        let b = Expr::Column(ColumnRef::bare("b"));
        let c = Expr::Column(ColumnRef::bare("c"));
        let e = Expr::And(
            Box::new(a.clone()),
            Box::new(Expr::And(Box::new(b.clone()), Box::new(c.clone()))),
        );
        let parts = e.conjuncts();
        assert_eq!(parts, vec![&a, &b, &c]);
        assert_eq!(a.conjuncts(), vec![&a]);
    }

    #[test]
    fn column_equality_detection() {
        let eq = Expr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(Expr::Column(ColumnRef::qualified("t", "x"))),
            right: Box::new(Expr::Column(ColumnRef::bare("y"))),
        };
        let (l, r) = eq.as_column_equality().unwrap();
        assert_eq!(l.qualifier.as_deref(), Some("t"));
        assert_eq!(r.name, "y");
        let lit = Expr::Cmp {
            op: CmpOp::Eq,
            left: Box::new(Expr::Column(ColumnRef::bare("x"))),
            right: Box::new(Expr::Literal(Value::Int(3))),
        };
        assert!(lit.as_column_equality().is_none());
        let ne = Expr::Cmp {
            op: CmpOp::Ne,
            left: Box::new(Expr::Column(ColumnRef::bare("x"))),
            right: Box::new(Expr::Column(ColumnRef::bare("y"))),
        };
        assert!(ne.as_column_equality().is_none());
    }

    #[test]
    fn table_ref_binding() {
        let t = TableRef {
            table: "Person".into(),
            alias: None,
        };
        assert_eq!(t.binding(), "Person");
        let t = TableRef {
            table: "Person".into(),
            alias: Some("p".into()),
        };
        assert_eq!(t.binding(), "p");
    }
}
