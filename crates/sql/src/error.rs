//! Errors for the SQL substrate.

use dbre_relational::RelationalError;
use std::fmt;

/// Position of a token in the source text (1-based line/column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Error raised by the lexer, parser, catalog or executor.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlError {
    /// Lexical error (bad character, unterminated string, …).
    Lex {
        /// Location of the offending character.
        pos: Pos,
        /// Human-readable description.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// Location of the offending token.
        pos: Pos,
        /// Human-readable description.
        message: String,
    },
    /// Semantic error during catalog registration or execution
    /// (unknown table, ambiguous column, type mismatch, …).
    Semantic(String),
    /// Error bubbled up from the relational substrate.
    Relational(RelationalError),
}

impl SqlError {
    /// Shorthand for a semantic error.
    pub fn semantic(msg: impl Into<String>) -> Self {
        SqlError::Semantic(msg.into())
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            SqlError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            SqlError::Semantic(m) => write!(f, "semantic error: {m}"),
            SqlError::Relational(e) => write!(f, "relational error: {e}"),
        }
    }
}

impl std::error::Error for SqlError {}

impl From<RelationalError> for SqlError {
    fn from(e: RelationalError) -> Self {
        SqlError::Relational(e)
    }
}

impl From<SqlError> for dbre_relational::DbreError {
    fn from(e: SqlError) -> Self {
        match e {
            // Preserve the typed relational error instead of flattening
            // it into a rendered string.
            SqlError::Relational(r) => dbre_relational::DbreError::Relational(r),
            other => dbre_relational::DbreError::Sql(other.to_string()),
        }
    }
}

/// Result alias for the crate.
pub type SqlResult<T> = Result<T, SqlError>;
