//! Columnar/batch execution over dictionary codes — the fast path of
//! the SQL substrate.
//!
//! The tuple interpreter in [`crate::executor`] clones and compares
//! [`Value`]s row by row; fine as a semantic oracle, hopeless as the
//! engine behind thousands of generated `COUNT(DISTINCT …)` probes.
//! This module executes the supported query shapes the way the
//! encoded counting backend does: every touched column is a
//! [`ColumnDict`] of dense `u32` codes (pulled through the
//! [`CountBackend::column_dict`] seam, so a probing backend shares the
//! generation-tagged dictionary cache it already owns), and operators
//! consume and produce row batches of [`BATCH_SIZE`] positions whose
//! payload is plain integer codes.
//!
//! Two tiers:
//!
//! * **set-algebraic lowering** — the probe shapes the pipeline
//!   generates (`SELECT COUNT(DISTINCT x.a…) FROM r x`, and the same
//!   count over a conjunctive equi-join whose counted columns are the
//!   join columns) *are* the paper's `‖·‖` primitives, so they lower
//!   directly onto the backend's `count_distinct` / `join_stats`
//!   kernels (`EncodedSet` membership, cross-dictionary translation
//!   inside `intersect_count`) without enumerating a single row;
//! * **batched enumeration** — everything else that fits the batch
//!   model runs as scan → code-mask selection → translated hash-join
//!   probe → sink (count, distinct code set, projection), in
//!   fixed-size batches. Single-column predicates compile to
//!   per-*code* truth masks (one three-valued evaluation per distinct
//!   value, then an array lookup per row); `INTERSECT` runs on code
//!   tuples through a structural translation table; `DISTINCT`
//!   dedupes code tuples before any value is decoded.
//!
//! Predicates the batch path cannot express — correlated
//! `IN`/`EXISTS`, residual three-valued `WHERE` trees — fall back
//! **per batch** to the tuple interpreter's row-predicate seam, and
//! query shapes outside the model entirely (grouping, ordering,
//! wildcards, aggregates beyond counts) return `None` so the caller
//! runs the whole query tuple-at-a-time. Results are identical either
//! way — the batch-vs-tuple differential proptests pin it — only the
//! speed and the [`BatchReport`] counters differ.

use crate::ast::*;
use crate::error::SqlResult;
use crate::executor::{eval_row_predicate, Binding, ResultSet};
use dbre_relational::attr::AttrId;
use dbre_relational::backend::CountBackend;
use dbre_relational::counting::EquiJoin;
use dbre_relational::database::Database;
use dbre_relational::deps::IndSide;
use dbre_relational::encode::{code_translation, ColumnDict, NULL_CODE};
use dbre_relational::fasthash::{FxHashMap, FxHashSet};
use dbre_relational::schema::RelId;
use dbre_relational::value::Value;
use std::collections::HashSet;
use std::sync::Arc;

/// Rows per operator batch. Large enough to amortize per-batch
/// dispatch, small enough that a batch of codes stays cache-resident.
pub const BATCH_SIZE: usize = 1024;

/// Counters for one batch execution: how much work ran on dictionary
/// codes and how often a batch had to consult the tuple interpreter.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchReport {
    /// Operator batches (or whole set-algebraic lowerings) processed
    /// entirely on dictionary codes.
    pub batch_ops: u64,
    /// Per-batch residual evaluations routed through the tuple
    /// interpreter.
    pub fallback_ops: u64,
}

/// Executes `query` on the batch path when its shape fits the model.
///
/// `Ok(Some(_))` is a complete, tuple-path-identical result;
/// `Ok(None)` means the query is outside the batch model and the
/// caller should run [`crate::execute_query`] instead — which also
/// reproduces the exact error text for malformed queries, because the
/// lowering aborts (rather than erroring) on anything it cannot
/// resolve. `backend` supplies column dictionaries through
/// [`CountBackend::column_dict`] and serves the set-algebraic count
/// lowerings; a backend without an encoding still works (dictionaries
/// are then built ad hoc per query).
pub fn execute_query_batch(
    db: &Database,
    backend: &dyn CountBackend,
    query: &Query,
    report: &mut BatchReport,
) -> SqlResult<Option<ResultSet>> {
    let Some(first) = batch_select(db, backend, &query.body, report)? else {
        return Ok(None);
    };
    let Some((op, rest)) = &query.compound else {
        return Ok(Some(first.decode()));
    };
    // The compound chain is right-associative, like the tuple path:
    // the second operand is the *entire* rest of the chain.
    let second = if rest.compound.is_none() {
        batch_select(db, backend, &rest.body, report)?
    } else {
        execute_query_batch(db, backend, rest, report)?.map(SelectOut::Rows)
    };
    let Some(second) = second else {
        return Ok(None);
    };
    if first.width() != second.width() {
        // Let the tuple path produce its "equal column counts" error.
        return Ok(None);
    }
    Ok(Some(set_op(*op, first, second, report)))
}

// ---- select output -----------------------------------------------------

/// Output of one lowered SELECT: either still in code space (plain
/// projections — set operations run on these without decoding) or
/// already decoded (aggregate scalars, nested compound results).
enum SelectOut {
    Coded(CodedRows),
    Rows(ResultSet),
}

impl SelectOut {
    fn width(&self) -> usize {
        match self {
            SelectOut::Coded(c) => c.columns.len(),
            SelectOut::Rows(r) => r.columns.len(),
        }
    }

    fn decode(self) -> ResultSet {
        match self {
            SelectOut::Coded(c) => c.decode(),
            SelectOut::Rows(r) => r,
        }
    }
}

/// Projected rows as per-position code tuples plus the dictionaries to
/// decode them with (one per output column; codes are column-local).
struct CodedRows {
    columns: Vec<String>,
    dicts: Vec<Arc<ColumnDict>>,
    rows: Vec<Box<[u32]>>,
}

impl CodedRows {
    fn decode_row(dicts: &[Arc<ColumnDict>], row: &[u32]) -> Vec<Value> {
        row.iter()
            .zip(dicts)
            .map(|(&c, d)| d.value_of(c).cloned().unwrap_or(Value::Null))
            .collect()
    }

    fn decode(self) -> ResultSet {
        let rows = self
            .rows
            .iter()
            .map(|r| CodedRows::decode_row(&self.dicts, r))
            .collect();
        ResultSet {
            columns: self.columns,
            rows,
        }
    }
}

// ---- set operations ----------------------------------------------------

/// Set operations use *structural* row equality (a NULL row equals a
/// NULL row — the tuple path hashes whole `Value` rows), so this
/// translation differs from the join kernel's [`code_translation`]:
/// NULL (code 0) maps to NULL, and a left value absent on the right
/// maps to a sentinel that matches nothing — `NULL_CODE` there would
/// falsely match right NULLs.
fn set_translation(left: &ColumnDict, right: &ColumnDict) -> Vec<u32> {
    let mut t = vec![u32::MAX; left.cardinality() + 1];
    t[0] = NULL_CODE;
    for (i, v) in left.distinct_values().iter().enumerate() {
        let c = right.code_of(v);
        t[i + 1] = if c == NULL_CODE { u32::MAX } else { c };
    }
    t
}

/// `INTERSECT` / `UNION` with set semantics, sorted like the tuple
/// path. An intersection of two still-coded sides runs on code tuples
/// through [`set_translation`] — only surviving rows are decoded;
/// everything else decodes first (a union must decode every output
/// row anyway).
fn set_op(op: SetOp, first: SelectOut, second: SelectOut, report: &mut BatchReport) -> ResultSet {
    if let (SetOp::Intersect, SelectOut::Coded(l), SelectOut::Coded(r)) = (op, &first, &second) {
        report.batch_ops += 1;
        let right: FxHashSet<&[u32]> = r.rows.iter().map(|b| b.as_ref()).collect();
        let trans: Vec<Vec<u32>> = l
            .dicts
            .iter()
            .zip(&r.dicts)
            .map(|(ld, rd)| set_translation(ld, rd))
            .collect();
        let mut seen: FxHashSet<&[u32]> = FxHashSet::default();
        let mut key: Vec<u32> = Vec::with_capacity(trans.len());
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for row in &l.rows {
            if !seen.insert(row.as_ref()) {
                continue;
            }
            key.clear();
            key.extend(row.iter().zip(&trans).map(|(&c, t)| t[c as usize]));
            if right.contains(key.as_slice()) {
                rows.push(CodedRows::decode_row(&l.dicts, row));
            }
        }
        rows.sort();
        return ResultSet {
            columns: l.columns.clone(),
            rows,
        };
    }
    let columns = match &first {
        SelectOut::Coded(c) => c.columns.clone(),
        SelectOut::Rows(r) => r.columns.clone(),
    };
    let left: HashSet<Vec<Value>> = first.decode().rows.into_iter().collect();
    let right: HashSet<Vec<Value>> = second.decode().rows.into_iter().collect();
    let mut rows: Vec<Vec<Value>> = match op {
        SetOp::Intersect => left.into_iter().filter(|r| right.contains(r)).collect(),
        SetOp::Union => left.union(&right).cloned().collect(),
    };
    rows.sort();
    ResultSet { columns, rows }
}

// ---- lowering ----------------------------------------------------------

/// One FROM table in the lowered plan.
struct TableCtx {
    rel: RelId,
    name: String,
    rows: usize,
}

/// A conjunct compilable to a per-code truth mask: one column of one
/// table against literals only.
struct MaskSpec<'q> {
    tbl: usize,
    attr: AttrId,
    expr: &'q Expr,
}

/// What the query projects or aggregates.
enum SinkShape {
    CountStar,
    CountDistinct(Vec<(usize, AttrId)>),
    Project {
        cols: Vec<(usize, AttrId)>,
        distinct: bool,
    },
}

/// A SELECT lowered into the batch model.
struct Plan<'q> {
    tables: Vec<TableCtx>,
    /// Conjunctive cross-table equalities `(attr on table 0, attr on
    /// table 1)`, in conjunct order; non-empty iff two tables.
    join_pairs: Vec<(AttrId, AttrId)>,
    masks: Vec<MaskSpec<'q>>,
    /// Conjuncts outside the mask shapes — evaluated per surviving row
    /// by the tuple interpreter.
    residuals: Vec<&'q Expr>,
    sink: SinkShape,
    columns: Vec<String>,
}

/// Statically resolves a column against the FROM tables, mirroring the
/// tuple executor's rules. `None` (unknown or ambiguous) aborts the
/// lowering so the tuple path reports the error.
fn resolve_col(db: &Database, tables: &[TableCtx], c: &ColumnRef) -> Option<(usize, AttrId)> {
    let mut found = None;
    for (i, t) in tables.iter().enumerate() {
        if let Some(q) = &c.qualifier {
            if q != &t.name {
                continue;
            }
        }
        if let Some(attr) = db.schema.relation(t.rel).attr_id(&c.name) {
            if found.is_some() {
                return None;
            }
            found = Some((i, attr));
        } else if c.qualifier.is_some() {
            return None;
        }
    }
    found
}

/// The single column of a mask-compilable conjunct, if the conjunct
/// has one of the supported shapes: `col ⋈ literal`,
/// `col IS [NOT] NULL`, `col [NOT] IN (literals…)`.
fn mask_column(e: &Expr) -> Option<&ColumnRef> {
    match e {
        Expr::Cmp { left, right, .. } => match (left.as_ref(), right.as_ref()) {
            (Expr::Column(c), Expr::Literal(_)) | (Expr::Literal(_), Expr::Column(c)) => Some(c),
            _ => None,
        },
        Expr::IsNull { expr, .. } => match expr.as_ref() {
            Expr::Column(c) => Some(c),
            _ => None,
        },
        Expr::InList { expr, list, .. } => match expr.as_ref() {
            Expr::Column(c) if list.iter().all(|i| matches!(i, Expr::Literal(_))) => Some(c),
            _ => None,
        },
        _ => None,
    }
}

/// Mirrors the tuple interpreter's three-valued `Cmp` / `IsNull` /
/// `InList` evaluation for one candidate column value (`v` is the
/// decoded value, [`Value::Null`] for code 0). Only called on shapes
/// accepted by [`mask_column`].
fn eval_simple_pred(e: &Expr, v: &Value) -> Option<bool> {
    match e {
        Expr::Cmp { op, left, right } => {
            let (l, r) = match (left.as_ref(), right.as_ref()) {
                (Expr::Column(_), Expr::Literal(lit)) => (v, lit),
                (Expr::Literal(lit), Expr::Column(_)) => (lit, v),
                _ => return None,
            };
            if l.is_null() || r.is_null() {
                return None;
            }
            let ord = l.cmp(r);
            Some(match op {
                CmpOp::Eq => ord.is_eq(),
                CmpOp::Ne => ord.is_ne(),
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
            })
        }
        Expr::IsNull { negated, .. } => Some(if *negated { !v.is_null() } else { v.is_null() }),
        Expr::InList { list, negated, .. } => {
            if v.is_null() {
                return None;
            }
            let mut saw_null = false;
            for item in list {
                let Expr::Literal(w) = item else {
                    return None;
                };
                if w.is_null() {
                    saw_null = true;
                } else if w == v {
                    return Some(!negated);
                }
            }
            if saw_null {
                None
            } else {
                Some(*negated)
            }
        }
        _ => None,
    }
}

/// Lowers one SELECT into a [`Plan`], or `None` when the shape is
/// outside the batch model.
fn lower<'q>(db: &Database, s: &'q Select) -> Option<Plan<'q>> {
    // Grouping/ordering machinery and wildcard projections take the
    // tuple path wholesale.
    if !s.group_by.is_empty() || s.having.is_some() || !s.order_by.is_empty() {
        return None;
    }
    if s.from.is_empty() || s.from.len() > 2 {
        return None;
    }

    let mut tables = Vec::with_capacity(s.from.len());
    for tr in &s.from {
        let rel = db.rel(&tr.table).ok()?;
        let name = tr.binding().to_string();
        if tables.iter().any(|t: &TableCtx| t.name == name) {
            return None; // duplicate binding — tuple path reports it
        }
        let rows = db.table(rel).len();
        if rows > u32::MAX as usize {
            return None; // row ids are u32 in the batch model
        }
        tables.push(TableCtx { rel, name, rows });
    }

    // Sink: one global COUNT aggregate, or a plain column projection.
    let mut columns = Vec::with_capacity(s.items.len());
    let item_exprs: Vec<(&'q Expr, &'q Option<String>)> = s
        .items
        .iter()
        .map(|it| match it {
            SelectItem::Expr { expr, alias } => Some((expr, alias)),
            SelectItem::Wildcard => None,
        })
        .collect::<Option<_>>()?;
    let aggregated = item_exprs.iter().any(|(e, _)| e.contains_aggregate());
    let sink = if aggregated {
        let [(expr, alias)] = item_exprs.as_slice() else {
            return None; // multi-aggregate selects take the tuple path
        };
        match expr {
            Expr::CountStar => {
                columns.push((*alias).clone().unwrap_or_else(|| "count(*)".to_string()));
                SinkShape::CountStar
            }
            Expr::CountDistinct(cols) => {
                columns.push(
                    (*alias)
                        .clone()
                        .unwrap_or_else(|| "count(distinct)".to_string()),
                );
                let cols = cols
                    .iter()
                    .map(|c| resolve_col(db, &tables, c))
                    .collect::<Option<Vec<_>>>()?;
                SinkShape::CountDistinct(cols)
            }
            _ => return None, // MIN/MAX/SUM/AVG sinks take the tuple path
        }
    } else {
        let mut cols = Vec::with_capacity(item_exprs.len());
        for (expr, alias) in &item_exprs {
            let Expr::Column(c) = expr else {
                return None;
            };
            cols.push(resolve_col(db, &tables, c)?);
            columns.push((*alias).clone().unwrap_or_else(|| c.to_string()));
        }
        SinkShape::Project {
            cols,
            distinct: s.distinct,
        }
    };

    // Conjuncts: cross-table equalities become the join, single-column
    // literal shapes become code masks, the rest is residual.
    let mut join_pairs = Vec::new();
    let mut masks: Vec<MaskSpec<'q>> = Vec::new();
    let mut residuals: Vec<&'q Expr> = Vec::new();
    for p in s.join_conds.iter().chain(s.where_clause.iter()) {
        for c in p.conjuncts() {
            if c.contains_aggregate() {
                return None; // tuple path reports the WHERE-aggregate error
            }
            if tables.len() == 2 {
                if let Some((a, b)) = c.as_column_equality() {
                    match (resolve_col(db, &tables, a), resolve_col(db, &tables, b)) {
                        (Some((ta, aa)), Some((tb, ab))) if ta != tb => {
                            join_pairs.push(if ta == 0 { (aa, ab) } else { (ab, aa) });
                            continue;
                        }
                        (Some(_), Some(_)) => {} // same-table equality: filter below
                        _ => return None,        // unresolvable — tuple path errors
                    }
                }
            }
            if let Some(col) = mask_column(c) {
                let (tbl, attr) = resolve_col(db, &tables, col)?;
                masks.push(MaskSpec { tbl, attr, expr: c });
                continue;
            }
            residuals.push(c);
        }
    }
    // Two tables with no equality to join on: a cross product (or a
    // residual-only join) — outside the batch model.
    if tables.len() == 2 && join_pairs.is_empty() {
        return None;
    }

    Some(Plan {
        tables,
        join_pairs,
        masks,
        residuals,
        sink,
        columns,
    })
}

// ---- execution ---------------------------------------------------------

/// A [`MaskSpec`] compiled against its column's dictionary: one truth
/// evaluation per distinct value (`mask[0]` is the NULL verdict), then
/// an array lookup per row.
struct CompiledMask {
    tbl: usize,
    dict: Arc<ColumnDict>,
    mask: Vec<bool>,
}

impl CompiledMask {
    fn passes(&self, row: usize) -> bool {
        self.mask[self.dict.codes()[row] as usize]
    }
}

/// Distinct code-tuple accumulator, shaped by projection arity like
/// [`dbre_relational::encode::EncodedSet`].
enum DistinctSet {
    /// One column: a seen-flag per code.
    One { seen: Vec<bool>, n: usize },
    /// Two columns: packed `u64` keys.
    Two(FxHashSet<u64>),
    /// Wider: the full code tuple.
    Wide(FxHashSet<Box<[u32]>>),
}

impl DistinctSet {
    fn len(&self) -> usize {
        match self {
            DistinctSet::One { n, .. } => *n,
            DistinctSet::Two(s) => s.len(),
            DistinctSet::Wide(s) => s.len(),
        }
    }
}

/// The terminal operator: consumes row batches, produces the result.
enum Sink {
    CountStar(usize),
    /// `COUNT(DISTINCT …)`: code tuples, NULL-bearing tuples dropped
    /// (SQL convention).
    CountDistinct {
        cols: Vec<(usize, Arc<ColumnDict>)>,
        set: DistinctSet,
    },
    /// Plain projection in enumeration order; `seen` dedupes code
    /// tuples when `DISTINCT` (first occurrence wins, like the tuple
    /// path).
    Project {
        cols: Vec<(usize, Arc<ColumnDict>)>,
        distinct: bool,
        seen: FxHashSet<Box<[u32]>>,
        rows: Vec<Box<[u32]>>,
    },
}

impl Sink {
    /// Consumes one batch: `rows[t]` holds the row ids of table `t`
    /// (both entries alias the same slice for single-table plans).
    // `i` indexes `rows[*t]` for a per-column table index `t`, so the
    // iterator rewrite clippy suggests does not apply.
    #[allow(clippy::needless_range_loop)]
    fn consume(&mut self, rows: [&[u32]; 2]) {
        match self {
            Sink::CountStar(n) => *n += rows[0].len(),
            Sink::CountDistinct { cols, set } => {
                'tuples: for i in 0..rows[0].len() {
                    match set {
                        DistinctSet::One { seen, n } => {
                            let (t, d) = &cols[0];
                            let c = d.codes()[rows[*t][i] as usize];
                            if c != NULL_CODE && !std::mem::replace(&mut seen[c as usize], true) {
                                *n += 1;
                            }
                        }
                        DistinctSet::Two(s) => {
                            let (ta, da) = &cols[0];
                            let (tb, db_) = &cols[1];
                            let a = da.codes()[rows[*ta][i] as usize];
                            let b = db_.codes()[rows[*tb][i] as usize];
                            if a != NULL_CODE && b != NULL_CODE {
                                s.insert((a as u64) << 32 | b as u64);
                            }
                        }
                        DistinctSet::Wide(s) => {
                            let mut key = Vec::with_capacity(cols.len());
                            for (t, d) in cols.iter() {
                                let c = d.codes()[rows[*t][i] as usize];
                                if c == NULL_CODE {
                                    continue 'tuples;
                                }
                                key.push(c);
                            }
                            s.insert(key.into_boxed_slice());
                        }
                    }
                }
            }
            Sink::Project {
                cols,
                distinct,
                seen,
                rows: out,
            } => {
                for i in 0..rows[0].len() {
                    let key: Box<[u32]> = cols
                        .iter()
                        .map(|(t, d)| d.codes()[rows[*t][i] as usize])
                        .collect();
                    if *distinct && !seen.insert(key.clone()) {
                        continue;
                    }
                    out.push(key);
                }
            }
        }
    }
}

/// Compacts `xs` (and `ys`, when joined) down to the rows on which
/// every residual conjunct is TRUE, one tuple-interpreter evaluation
/// per row — the per-batch fallback boundary.
fn filter_residuals(
    db: &Database,
    bindings: &mut [Binding],
    residuals: &[&Expr],
    xs: &mut Vec<u32>,
    mut ys: Option<&mut Vec<u32>>,
) -> SqlResult<()> {
    let mut keep = Vec::with_capacity(xs.len());
    for i in 0..xs.len() {
        bindings[0].row = xs[i] as usize;
        if let Some(ys) = ys.as_ref() {
            bindings[1].row = ys[i] as usize;
        }
        let mut pass = true;
        for r in residuals {
            if eval_row_predicate(db, bindings, r)? != Some(true) {
                pass = false;
                break;
            }
        }
        keep.push(pass);
    }
    let mut w = 0;
    for i in 0..keep.len() {
        if keep[i] {
            xs[w] = xs[i];
            if let Some(ys) = ys.as_mut() {
                ys[w] = ys[i];
            }
            w += 1;
        }
    }
    xs.truncate(w);
    if let Some(ys) = ys {
        ys.truncate(w);
    }
    Ok(())
}

/// Runs one lowered SELECT.
fn batch_select(
    db: &Database,
    backend: &dyn CountBackend,
    s: &Select,
    report: &mut BatchReport,
) -> SqlResult<Option<SelectOut>> {
    let Some(plan) = lower(db, s) else {
        return Ok(None);
    };
    if plan.masks.is_empty() && plan.residuals.is_empty() {
        if let Some(out) = lower_set_algebraic(db, backend, &plan, report) {
            return Ok(Some(out));
        }
    }
    exec_plan(db, backend, &plan, report)
}

/// A one-row count result.
fn scalar(plan: &Plan<'_>, n: usize) -> SelectOut {
    SelectOut::Rows(ResultSet {
        columns: plan.columns.clone(),
        rows: vec![vec![Value::Int(n as i64)]],
    })
}

/// Tier one: probes that *are* the `‖·‖` primitives lower straight
/// onto the backend's counting kernels — no row enumeration at all.
fn lower_set_algebraic(
    db: &Database,
    backend: &dyn CountBackend,
    plan: &Plan<'_>,
    report: &mut BatchReport,
) -> Option<SelectOut> {
    match (&plan.sink, plan.tables.len()) {
        // SELECT COUNT(*) FROM r — the table length.
        (SinkShape::CountStar, 1) => {
            report.batch_ops += 1;
            Some(scalar(plan, plan.tables[0].rows))
        }
        // SELECT COUNT(DISTINCT x.a…) FROM r x — `‖r[A]‖`.
        (SinkShape::CountDistinct(cols), 1) => {
            let attrs: Vec<AttrId> = cols.iter().map(|&(_, a)| a).collect();
            report.batch_ops += 1;
            Some(scalar(
                plan,
                backend.count_distinct(db, plan.tables[0].rel, &attrs),
            ))
        }
        // SELECT COUNT(DISTINCT x.a…) FROM r x, s y WHERE x.a… = y.b…
        // with the counted columns exactly one side's join columns —
        // `‖r[A] ⋈ s[B]‖`, served by the intersection kernel.
        (SinkShape::CountDistinct(cols), 2) => {
            let side = cols.first()?.0;
            if !cols.iter().all(|&(t, _)| t == side) {
                return None;
            }
            let counted: Vec<AttrId> = cols.iter().map(|&(_, a)| a).collect();
            let pair_side = |t: usize| -> Vec<AttrId> {
                plan.join_pairs
                    .iter()
                    .map(|&(a, b)| if t == 0 { a } else { b })
                    .collect()
            };
            if counted != pair_side(side) {
                return None; // counted ≠ join columns: enumerate instead
            }
            let join = EquiJoin::try_new(
                IndSide::new(plan.tables[side].rel, counted),
                IndSide::new(plan.tables[1 - side].rel, pair_side(1 - side)),
            )
            .ok()?;
            report.batch_ops += 1;
            Some(scalar(plan, backend.join_stats(db, &join).n_join))
        }
        _ => None,
    }
}

/// Tier two: batched scan / hash-join enumeration feeding the sink.
/// Returns `Ok(None)` when the plan cannot be executed safely in the
/// batch model — the caller falls back to the tuple interpreter.
fn exec_plan(
    db: &Database,
    backend: &dyn CountBackend,
    plan: &Plan<'_>,
    report: &mut BatchReport,
) -> SqlResult<Option<SelectOut>> {
    // Defense in depth for the u32 row-id model: `lower()` refuses
    // oversized tables at plan time, but the selection loop and the
    // join bucket builds below all push `row as u32`. Re-check the
    // captured row counts so a plan that arrives oversized (a future
    // lowering path that forgets the guard) aborts cleanly to the
    // tuple path instead of silently truncating row ids.
    if plan.tables.iter().any(|t| t.rows > u32::MAX as usize) {
        return Ok(None);
    }

    let dict_of = |tbl: usize, attr: AttrId| -> Arc<ColumnDict> {
        let t = &plan.tables[tbl];
        backend
            .column_dict(db, t.rel, attr)
            .unwrap_or_else(|| Arc::new(ColumnDict::build(db.table(t.rel).column(attr))))
    };

    let masks: Vec<CompiledMask> = plan
        .masks
        .iter()
        .map(|m| {
            let dict = dict_of(m.tbl, m.attr);
            let mut mask = Vec::with_capacity(dict.cardinality() + 1);
            mask.push(eval_simple_pred(m.expr, &Value::Null) == Some(true));
            for v in dict.distinct_values() {
                mask.push(eval_simple_pred(m.expr, v) == Some(true));
            }
            CompiledMask {
                tbl: m.tbl,
                dict,
                mask,
            }
        })
        .collect();

    let sink_cols = |cols: &[(usize, AttrId)]| -> Vec<(usize, Arc<ColumnDict>)> {
        cols.iter().map(|&(t, a)| (t, dict_of(t, a))).collect()
    };
    let mut sink = match &plan.sink {
        SinkShape::CountStar => Sink::CountStar(0),
        SinkShape::CountDistinct(cols) => {
            let cols = sink_cols(cols);
            let set = match cols.as_slice() {
                [(_, d)] => DistinctSet::One {
                    seen: vec![false; d.cardinality() + 1],
                    n: 0,
                },
                [_, _] => DistinctSet::Two(FxHashSet::default()),
                _ => DistinctSet::Wide(FxHashSet::default()),
            };
            Sink::CountDistinct { cols, set }
        }
        SinkShape::Project { cols, distinct } => Sink::Project {
            cols: sink_cols(cols),
            distinct: *distinct,
            seen: FxHashSet::default(),
            rows: Vec::new(),
        },
    };

    let mut bindings: Vec<Binding> = plan
        .tables
        .iter()
        .map(|t| Binding {
            name: t.name.clone(),
            rel: t.rel,
            row: 0,
        })
        .collect();

    if plan.tables.len() == 1 {
        let rows = plan.tables[0].rows;
        let mut sel: Vec<u32> = Vec::with_capacity(BATCH_SIZE.min(rows));
        let mut start = 0usize;
        while start < rows {
            let end = (start + BATCH_SIZE).min(rows);
            sel.clear();
            'rows: for row in start..end {
                for m in &masks {
                    if !m.passes(row) {
                        continue 'rows;
                    }
                }
                sel.push(row as u32);
            }
            report.batch_ops += 1;
            if !plan.residuals.is_empty() && !sel.is_empty() {
                report.fallback_ops += 1;
                filter_residuals(db, &mut bindings, &plan.residuals, &mut sel, None)?;
            }
            sink.consume([&sel, &sel]);
            start = end;
        }
    } else {
        join_plan(db, plan, &dict_of, &masks, &mut bindings, &mut sink, report)?;
    }

    Ok(Some(match sink {
        Sink::CountStar(n) => scalar(plan, n),
        Sink::CountDistinct { set, .. } => scalar(plan, set.len()),
        Sink::Project { cols, rows, .. } => SelectOut::Coded(CodedRows {
            columns: plan.columns.clone(),
            dicts: cols.into_iter().map(|(_, d)| d).collect(),
            rows,
        }),
    }))
}

/// The two-table path: build code buckets over table 1 (its masks
/// applied at build time), then probe with table 0's codes through a
/// [`code_translation`] table — NULLs and untranslatable codes never
/// match, like SQL equality. Pair order is the tuple path's
/// enumeration order: table 0 ascending, matches ascending within.
fn join_plan(
    db: &Database,
    plan: &Plan<'_>,
    dict_of: &dyn Fn(usize, AttrId) -> Arc<ColumnDict>,
    masks: &[CompiledMask],
    bindings: &mut [Binding],
    sink: &mut Sink,
    report: &mut BatchReport,
) -> SqlResult<()> {
    let pair_dicts: Vec<(Arc<ColumnDict>, Arc<ColumnDict>)> = plan
        .join_pairs
        .iter()
        .map(|&(a, b)| (dict_of(0, a), dict_of(1, b)))
        .collect();
    let build_rows = plan.tables[1].rows;
    let probe_rows = plan.tables[0].rows;
    let build_pass = |row: usize| masks.iter().all(|m| m.tbl != 1 || m.passes(row));
    let probe_pass = |row: usize| masks.iter().all(|m| m.tbl != 0 || m.passes(row));

    let mut xs: Vec<u32> = Vec::with_capacity(BATCH_SIZE);
    let mut ys: Vec<u32> = Vec::with_capacity(BATCH_SIZE);
    let flush = |xs: &mut Vec<u32>,
                 ys: &mut Vec<u32>,
                 sink: &mut Sink,
                 report: &mut BatchReport,
                 bindings: &mut [Binding]|
     -> SqlResult<()> {
        if xs.is_empty() {
            return Ok(());
        }
        report.batch_ops += 1;
        if !plan.residuals.is_empty() {
            report.fallback_ops += 1;
            filter_residuals(db, bindings, &plan.residuals, xs, Some(ys))?;
        }
        sink.consume([xs, ys]);
        xs.clear();
        ys.clear();
        Ok(())
    };

    if let [(xd, yd)] = pair_dicts.as_slice() {
        // Single join pair: dense buckets over the build side's code
        // domain, probes translated through one lookup table.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); yd.cardinality() + 1];
        for row in 0..build_rows {
            let c = yd.codes()[row];
            if c != NULL_CODE && build_pass(row) {
                buckets[c as usize].push(row as u32);
            }
        }
        let trans = code_translation(xd, yd);
        for xrow in 0..probe_rows {
            if !probe_pass(xrow) {
                continue;
            }
            let yc = trans[xd.codes()[xrow] as usize];
            if yc == NULL_CODE {
                continue; // NULL or untranslatable: joins nothing
            }
            for &yrow in &buckets[yc as usize] {
                xs.push(xrow as u32);
                ys.push(yrow);
                if xs.len() >= BATCH_SIZE {
                    flush(&mut xs, &mut ys, sink, report, bindings)?;
                }
            }
        }
    } else {
        // Composite key: hash buckets over the build side's code
        // tuples, probes translated per position.
        let mut buckets: FxHashMap<Box<[u32]>, Vec<u32>> = FxHashMap::default();
        let mut key: Vec<u32> = Vec::with_capacity(pair_dicts.len());
        'build: for row in 0..build_rows {
            key.clear();
            for (_, yd) in &pair_dicts {
                let c = yd.codes()[row];
                if c == NULL_CODE {
                    continue 'build;
                }
                key.push(c);
            }
            if build_pass(row) {
                buckets
                    .entry(key.as_slice().into())
                    .or_default()
                    .push(row as u32);
            }
        }
        let trans: Vec<Vec<u32>> = pair_dicts
            .iter()
            .map(|(xd, yd)| code_translation(xd, yd))
            .collect();
        'probe: for xrow in 0..probe_rows {
            if !probe_pass(xrow) {
                continue;
            }
            key.clear();
            for ((xd, _), t) in pair_dicts.iter().zip(&trans) {
                let yc = t[xd.codes()[xrow] as usize];
                if yc == NULL_CODE {
                    continue 'probe;
                }
                key.push(yc);
            }
            let Some(rows) = buckets.get(key.as_slice()) else {
                continue;
            };
            for &yrow in rows {
                xs.push(xrow as u32);
                ys.push(yrow);
                if xs.len() >= BATCH_SIZE {
                    flush(&mut xs, &mut ys, sink, report, bindings)?;
                }
            }
        }
    }
    flush(&mut xs, &mut ys, sink, report, bindings)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;
    use crate::executor::run_sql;
    use crate::parser::parse_query;
    use dbre_relational::backend::ReferenceBackend;

    fn db() -> Database {
        let mut cat = Catalog::new();
        cat.load_script(
            "CREATE TABLE A (x INT, y INT, s CHAR(8));
             CREATE TABLE B (u INT, v INT);
             INSERT INTO A VALUES (1, 1, 'a'), (1, 2, 'b'), (2, 1, 'a'),
                                  (1, 1, 'c'), (NULL, 3, 'a'), (4, NULL, NULL);
             INSERT INTO B VALUES (1, 1), (2, 1), (3, 3), (NULL, 1), (1, 9);",
        )
        .unwrap();
        cat.into_database()
    }

    /// Runs `sql` on both paths and asserts identical results; returns
    /// the batch report (the batch path must accept the query).
    fn check(db: &Database, sql: &str) -> BatchReport {
        let q = parse_query(sql).unwrap();
        let mut report = BatchReport::default();
        let batch = execute_query_batch(db, &ReferenceBackend, &q, &mut report)
            .unwrap()
            .unwrap_or_else(|| panic!("batch path rejected: {sql}"));
        let tuple = run_sql(db, sql).unwrap();
        assert_eq!(batch, tuple, "batch != tuple for: {sql}");
        report
    }

    #[test]
    fn tier_one_lowers_counts_without_enumeration() {
        let db = db();
        // ‖A[x]‖, ‖A[x,y]‖, COUNT(*), and the join count all lower in
        // one batch op each (three statements in the join probe shape).
        assert_eq!(
            check(&db, "SELECT COUNT(DISTINCT x.x) FROM A x").batch_ops,
            1
        );
        assert_eq!(
            check(&db, "SELECT COUNT(DISTINCT x.x, x.y) FROM A x").batch_ops,
            1
        );
        assert_eq!(check(&db, "SELECT COUNT(*) FROM A x").batch_ops, 1);
        let r = check(
            &db,
            "SELECT COUNT(DISTINCT x.x) FROM A x, B y WHERE x.x = y.u",
        );
        assert_eq!((r.batch_ops, r.fallback_ops), (1, 0));
        // Composite join pair, counted columns = join columns.
        check(
            &db,
            "SELECT COUNT(DISTINCT x.x, x.y) FROM A x, B y WHERE x.x = y.u AND x.y = y.v",
        );
    }

    #[test]
    fn oversized_tables_abort_to_tuple_path_instead_of_truncating() {
        let db = db();
        // A join shape whose execution would hit both the selection
        // loop and the hash-join bucket `row as u32` casts.
        let q = parse_query("SELECT COUNT(DISTINCT x.y) FROM A x, B y WHERE x.x = y.u").unwrap();
        let mut plan = lower(&db, &q.body).expect("plan lowers");
        // Mock a table too large for the u32 row-id model. `lower()`
        // refuses such tables up front; this exercises the exec_plan
        // defense-in-depth guard directly.
        plan.tables[0].rows = u32::MAX as usize + 2;
        let mut report = BatchReport::default();
        let out = exec_plan(&db, &ReferenceBackend, &plan, &mut report).unwrap();
        assert!(out.is_none(), "oversized plan must abort, not truncate");

        // Single-table shape: same guard covers the selection loop.
        let q = parse_query("SELECT COUNT(*) FROM A x WHERE x.x = 1").unwrap();
        let mut plan = lower(&db, &q.body).expect("plan lowers");
        plan.tables[0].rows = u32::MAX as usize + 2;
        let out = exec_plan(&db, &ReferenceBackend, &plan, &mut report).unwrap();
        assert!(out.is_none(), "oversized plan must abort, not truncate");
    }

    #[test]
    fn tier_two_enumerates_with_masks_and_joins() {
        let db = db();
        // Counted columns differ from the join columns: enumeration.
        check(
            &db,
            "SELECT COUNT(DISTINCT x.y) FROM A x, B y WHERE x.x = y.u",
        );
        check(&db, "SELECT COUNT(*) FROM A x, B y WHERE x.x = y.u");
        // Masks: literal comparisons, IS NULL, IN lists.
        check(&db, "SELECT COUNT(*) FROM A x WHERE x.x = 1");
        check(&db, "SELECT COUNT(*) FROM A x WHERE x.x > 1 AND x.s = 'a'");
        check(&db, "SELECT COUNT(*) FROM A x WHERE x.y IS NULL");
        check(&db, "SELECT COUNT(*) FROM A x WHERE x.y IS NOT NULL");
        check(&db, "SELECT COUNT(*) FROM A x WHERE x.x IN (1, 3)");
        check(&db, "SELECT COUNT(*) FROM A x WHERE x.x NOT IN (1, NULL)");
        check(&db, "SELECT COUNT(DISTINCT x.s) FROM A x WHERE x.x = 1");
        // Projections, with and without DISTINCT, preserve order.
        check(&db, "SELECT x.x, x.s FROM A x WHERE x.y = 1");
        check(&db, "SELECT DISTINCT x.x FROM A x");
        check(&db, "SELECT x.x, y.v FROM A x, B y WHERE x.x = y.u");
        check(
            &db,
            "SELECT DISTINCT x.s, y.v FROM A x, B y WHERE x.x = y.u AND y.v < 9",
        );
    }

    #[test]
    fn residuals_fall_back_per_batch() {
        let db = db();
        // x.x = x.y is no mask shape: residual via the tuple seam.
        let r = check(&db, "SELECT COUNT(*) FROM A x WHERE x.x = x.y");
        assert!(r.fallback_ops > 0, "expected residual fallback");
        // Correlated subquery residual on top of a batch join.
        let r = check(
            &db,
            "SELECT COUNT(*) FROM A x WHERE x.x IN (SELECT y.u FROM B y)",
        );
        assert!(r.fallback_ops > 0);
    }

    #[test]
    fn set_operations_match_tuple_path() {
        let db = db();
        check(&db, "SELECT x.x FROM A x INTERSECT SELECT y.u FROM B y");
        check(&db, "SELECT x.x FROM A x UNION SELECT y.u FROM B y");
        // NULL rows intersect structurally (NULL = NULL matches here).
        check(&db, "SELECT x.y FROM A x INTERSECT SELECT x.y FROM A x");
        // Right-associative chain.
        check(
            &db,
            "SELECT x.x FROM A x UNION SELECT y.u FROM B y INTERSECT SELECT y.v FROM B y",
        );
    }

    #[test]
    fn out_of_model_shapes_are_rejected_not_wrong() {
        let db = db();
        for sql in [
            "SELECT * FROM A x",                          // wildcard
            "SELECT MIN(x.x) FROM A x",                   // non-count agg
            "SELECT x.x FROM A x ORDER BY x.x",           // ordering
            "SELECT x.x, COUNT(*) FROM A x GROUP BY x.x", // grouping
            "SELECT COUNT(*) FROM A x, B y",              // cross product
            "SELECT ghost.z FROM A x",                    // unresolvable
        ] {
            let q = parse_query(sql).unwrap();
            let mut report = BatchReport::default();
            let out = execute_query_batch(&db, &ReferenceBackend, &q, &mut report).unwrap();
            assert!(out.is_none(), "batch path should reject: {sql}");
        }
    }

    #[test]
    fn batches_flush_correctly_past_batch_size() {
        // More output pairs than BATCH_SIZE: a skewed join whose hot
        // key fans out 64 × 64 = 4096 pairs.
        let mut cat = Catalog::new();
        let mut script = String::from("CREATE TABLE L (k INT); CREATE TABLE R (k INT, t INT);");
        script.push_str("INSERT INTO L VALUES (1)");
        for _ in 1..64 {
            script.push_str(", (1)");
        }
        script.push(';');
        script.push_str("INSERT INTO R VALUES (1, 0)");
        for i in 1..64 {
            script.push_str(&format!(", (1, {i})"));
        }
        script.push(';');
        cat.load_script(&script).unwrap();
        let db = cat.into_database();
        let r = check(&db, "SELECT x.k, y.t FROM L x, R y WHERE x.k = y.k");
        assert!(r.batch_ops >= 4, "expected multiple flushes: {r:?}");
        check(&db, "SELECT COUNT(*) FROM L x, R y WHERE x.k = y.k");
        check(
            &db,
            "SELECT COUNT(DISTINCT y.t) FROM L x, R y WHERE x.k = y.k",
        );
    }
}
