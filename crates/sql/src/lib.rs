//! # dbre-sql
//!
//! SQL substrate built from scratch for the DBRE reproduction: a lexer,
//! a recursive-descent parser for the legacy-SQL subset the paper
//! manipulates, a [`catalog::Catalog`] acting as the DBMS *data
//! dictionary* (the source of the paper's constraint sets `K` and `N`),
//! and a tuple-at-a-time [`executor`] used to validate that the
//! pipeline's counting primitives match real SQL `COUNT(DISTINCT …)`
//! semantics.
//!
//! The grammar intentionally admits hyphenated identifiers
//! (`zip-code`, `project-name`, `Ass-Dept`) because the paper's worked
//! example — like many legacy dictionaries — uses them; the subset has
//! no arithmetic so no ambiguity arises.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod batch;
pub mod catalog;
pub mod counts;
pub mod error;
pub mod executor;
pub mod lexer;
pub mod parser;
pub mod token;

pub use ast::{ColumnRef, Expr, Query, Select, Statement};
pub use batch::{execute_query_batch, BatchReport};
pub use catalog::Catalog;
pub use counts::{count_join_sql, count_side_sql, join_stats_via_sql, SqlBackend};
pub use error::{SqlError, SqlResult};
pub use executor::{execute_query, run_sql, ResultSet};
pub use parser::{parse_query, parse_script, parse_statement};
