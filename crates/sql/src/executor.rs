//! A tuple-at-a-time executor for the SQL subset.
//!
//! Fidelity, not speed, is the goal: this interpreter is the semantic
//! oracle for the crate. The fast path is the columnar/batch executor
//! in [`crate::batch`], which lowers the supported query shapes onto
//! the dictionary-code kernels of [`dbre_relational::encode`] and
//! falls back *per batch* to the row predicate evaluation here
//! (`eval_row_predicate`) for anything it cannot express — correlated
//! `IN`/`EXISTS`, three-valued `WHERE` residuals. [`execute_query`]
//! and [`run_sql`] always take the tuple path, so differential tests
//! can pin the batch executor against it.
//!
//! Supported: cross joins (nested loops), `JOIN … ON`, `WHERE` with
//! three-valued logic, correlated `IN`/`EXISTS` subqueries,
//! `DISTINCT`, `COUNT(*)`, `COUNT(DISTINCT a, b)`, `INTERSECT`/`UNION`
//! with set semantics.

use crate::ast::*;
use crate::error::{SqlError, SqlResult};
use dbre_relational::attr::AttrId;
use dbre_relational::database::Database;
use dbre_relational::schema::RelId;
use dbre_relational::value::Value;
use std::collections::{HashMap, HashSet};

/// The result of a query: column headers plus materialized rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Output rows.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// For single-cell results (e.g. `COUNT`), the value.
    pub fn scalar(&self) -> SqlResult<&Value> {
        match (&self.rows.first(), self.rows.len(), self.columns.len()) {
            (Some(row), 1, 1) => Ok(&row[0]),
            _ => Err(SqlError::semantic("query did not produce a single scalar")),
        }
    }

    /// Convenience: the scalar as `usize` (counts).
    pub fn count(&self) -> SqlResult<usize> {
        match self.scalar()? {
            Value::Int(i) if *i >= 0 => Ok(*i as usize),
            v => Err(SqlError::semantic(format!("expected a count, got {v}"))),
        }
    }
}

/// Executes a query against a database.
pub fn execute_query(db: &Database, query: &Query) -> SqlResult<ResultSet> {
    Executor { db }.query(query, &mut Vec::new())
}

/// Parses and executes a query in one step.
pub fn run_sql(db: &Database, sql: &str) -> SqlResult<ResultSet> {
    let q = crate::parser::parse_query(sql)?;
    execute_query(db, &q)
}

/// One bound table in a scope: binding name, relation, current row.
/// `pub(crate)` so the batch executor can stage rows for its residual
/// fallback through [`eval_row_predicate`].
#[derive(Debug, Clone)]
pub(crate) struct Binding {
    pub(crate) name: String,
    pub(crate) rel: RelId,
    pub(crate) row: usize,
}

/// Evaluates `e` as a top-level row predicate (three-valued: `None` is
/// UNKNOWN) with each FROM table positioned on its current row — the
/// seam through which the batch executor hands one surviving row at a
/// time back to this interpreter for predicates the batch path cannot
/// express. Subqueries inside `e` see `bindings` as their outer scope,
/// exactly as they would mid-enumeration.
pub(crate) fn eval_row_predicate(
    db: &Database,
    bindings: &[Binding],
    e: &Expr,
) -> SqlResult<Option<bool>> {
    let exec = Executor { db };
    let mut scope = ScopeStack {
        exec: &exec,
        scopes: &[],
        inner: bindings,
    };
    scope.eval_predicate(e)
}

struct Executor<'a> {
    db: &'a Database,
}

impl<'a> Executor<'a> {
    fn query(&self, q: &Query, outer: &mut Vec<Binding>) -> SqlResult<ResultSet> {
        let first = self.select(&q.body, outer)?;
        match &q.compound {
            None => Ok(first),
            Some((op, rest)) => {
                let second = self.query(rest, outer)?;
                if first.columns.len() != second.columns.len() {
                    return Err(SqlError::semantic(
                        "set operation requires equal column counts",
                    ));
                }
                let left: HashSet<Vec<Value>> = first.rows.into_iter().collect();
                let right: HashSet<Vec<Value>> = second.rows.into_iter().collect();
                let mut rows: Vec<Vec<Value>> = match op {
                    SetOp::Intersect => left.into_iter().filter(|r| right.contains(r)).collect(),
                    SetOp::Union => left.union(&right).cloned().collect(),
                };
                rows.sort();
                Ok(ResultSet {
                    columns: first.columns,
                    rows,
                })
            }
        }
    }

    fn select(&self, s: &Select, outer: &mut Vec<Binding>) -> SqlResult<ResultSet> {
        // Resolve FROM bindings.
        let mut bindings: Vec<Binding> = Vec::with_capacity(s.from.len());
        for tr in &s.from {
            let rel = self.db.rel(&tr.table)?;
            let name = tr.binding().to_string();
            if bindings.iter().any(|b| b.name == name) {
                return Err(SqlError::semantic(format!(
                    "duplicate table binding `{name}` in FROM"
                )));
            }
            bindings.push(Binding { name, rel, row: 0 });
        }

        // Effective predicate = WHERE ∧ all ON conditions.
        let preds: Vec<&Expr> = s.join_conds.iter().chain(s.where_clause.iter()).collect();
        for p in &preds {
            if p.contains_aggregate() {
                return Err(SqlError::semantic("aggregates are not allowed in WHERE"));
            }
        }

        let grouped = !s.group_by.is_empty()
            || s.having.is_some()
            || s.items.iter().any(|it| match it {
                SelectItem::Expr { expr, .. } => expr.contains_aggregate(),
                SelectItem::Wildcard => false,
            });

        // Output columns.
        let columns = self.output_columns(s, &bindings)?;

        // Phase 1: enumerate matching cursor snapshots.
        //
        // The naive plan is the full cross product with the predicate
        // evaluated at the deepest level. Two classical improvements,
        // both semantics-preserving under three-valued AND (a row
        // survives iff every conjunct is TRUE, so conjuncts can be
        // checked as soon as all their columns are bound):
        //
        // * predicate pushdown — each conjunct is checked at the
        //   shallowest depth that binds all its columns;
        // * hash join — an equality conjunct between the current table
        //   and an earlier one turns the scan of the current table into
        //   a hash-index lookup (NULL keys excluded, matching SQL
        //   equality).
        let conjuncts: Vec<&Expr> = preds.iter().flat_map(|p| p.conjuncts()).collect();
        let n_tables = bindings.len();
        let depth_of = |e: &Expr| -> usize { expr_depth(self.db, &bindings, e, n_tables) };

        // Partition conjuncts by evaluation depth and pick one hash
        // access per depth.
        let mut preds_at: Vec<Vec<&Expr>> = vec![Vec::new(); n_tables.max(1)];
        let mut hash_access: Vec<Option<(AttrId, usize, AttrId)>> = vec![None; n_tables];
        for c in &conjuncts {
            let d = depth_of(c);
            if let Some((a, b)) = c.as_column_equality() {
                let ra = static_resolve(self.db, &bindings, a);
                let rb = static_resolve(self.db, &bindings, b);
                if let (Some((da, aa)), Some((db_, ab))) = (ra, rb) {
                    let (build, probe) = if da > db_ {
                        ((da, aa), (db_, ab))
                    } else {
                        ((db_, ab), (da, aa))
                    };
                    if build.0 != probe.0 && hash_access[build.0].is_none() {
                        // Equality between two tables: index the deeper
                        // one on its column, probe with the shallower.
                        hash_access[build.0] = Some((build.1, probe.0, probe.1));
                        continue; // consumed by the index, not a filter
                    }
                }
            }
            if n_tables > 0 {
                preds_at[d].push(c);
            }
        }

        // Build the hash indexes.
        let mut indexes: Vec<Option<HashMap<Value, Vec<usize>>>> = vec![None; n_tables];
        for (d, access) in hash_access.iter().enumerate() {
            let Some((attr, _, _)) = access else { continue };
            let table = self.db.table(bindings[d].rel);
            let mut index: HashMap<Value, Vec<usize>> = HashMap::new();
            for (i, v) in table.column(*attr).iter().enumerate() {
                if !v.is_null() {
                    index.entry(v.clone()).or_default().push(i);
                }
            }
            indexes[d] = Some(index);
        }

        let sizes: Vec<usize> = bindings
            .iter()
            .map(|b| self.db.table(b.rel).len())
            .collect();
        let mut snapshots: Vec<Vec<usize>> = Vec::new();
        if n_tables == 0 {
            // No FROM-less queries in the grammar; defensive.
        } else {
            let mut cursor = vec![0usize; n_tables];
            self.enumerate(
                &mut bindings,
                outer,
                &sizes,
                &preds_at,
                &hash_access,
                &indexes,
                0,
                &mut cursor,
                &mut snapshots,
            )?;
        }

        // Phase 2: project (plain) or group-and-aggregate.
        // Rows are produced together with their ORDER BY sort keys.
        let mut keyed_rows: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
        if !grouped {
            for snap in &snapshots {
                for (b, &r) in bindings.iter_mut().zip(snap) {
                    b.row = r;
                }
                let mut scope_stack = ScopeStack {
                    exec: self,
                    scopes: outer,
                    inner: &bindings,
                };
                let row = scope_stack.project(&s.items)?;
                let mut sort_key = Vec::with_capacity(s.order_by.len());
                for item in &s.order_by {
                    sort_key.push(match &item.key {
                        OrderKey::Position(p) => position_value(&row, *p)?,
                        OrderKey::Expr(e) => scope_stack.eval_scalar(e)?,
                    });
                }
                keyed_rows.push((row, sort_key));
            }
        } else {
            // Group snapshots by the GROUP BY key.
            let mut groups: Vec<(Vec<Value>, Vec<Vec<usize>>)> = Vec::new();
            let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
            for snap in &snapshots {
                for (b, &r) in bindings.iter_mut().zip(snap) {
                    b.row = r;
                }
                let mut scope_stack = ScopeStack {
                    exec: self,
                    scopes: outer,
                    inner: &bindings,
                };
                let key: Vec<Value> = s
                    .group_by
                    .iter()
                    .map(|e| scope_stack.eval_scalar(e))
                    .collect::<SqlResult<_>>()?;
                match index.get(&key) {
                    Some(&gi) => groups[gi].1.push(snap.clone()),
                    None => {
                        index.insert(key.clone(), groups.len());
                        groups.push((key, vec![snap.clone()]));
                    }
                }
            }
            // SQL: an aggregate query with no GROUP BY over an empty
            // input still yields one (empty) group.
            if s.group_by.is_empty() && groups.is_empty() {
                groups.push((Vec::new(), Vec::new()));
            }
            for (_, group_rows) in &groups {
                let mut ge = GroupEval {
                    exec: self,
                    outer,
                    bindings: &mut bindings,
                    group: group_rows,
                    group_by: &s.group_by,
                };
                if let Some(h) = &s.having {
                    if ge.eval_predicate(h)? != Some(true) {
                        continue;
                    }
                }
                let mut row = Vec::new();
                for item in &s.items {
                    match item {
                        SelectItem::Wildcard => {
                            return Err(SqlError::semantic("`*` is not allowed in a grouped query"))
                        }
                        SelectItem::Expr { expr, .. } => row.push(ge.eval(expr)?),
                    }
                }
                let mut sort_key = Vec::with_capacity(s.order_by.len());
                for item in &s.order_by {
                    sort_key.push(match &item.key {
                        OrderKey::Position(p) => position_value(&row, *p)?,
                        OrderKey::Expr(e) => ge.eval(e)?,
                    });
                }
                keyed_rows.push((row, sort_key));
            }
        }

        if s.distinct {
            let mut seen = HashSet::new();
            keyed_rows.retain(|(r, _)| seen.insert(r.clone()));
        }
        if !s.order_by.is_empty() {
            let descs: Vec<bool> = s.order_by.iter().map(|o| o.desc).collect();
            keyed_rows.sort_by(|(_, ka), (_, kb)| {
                for (i, (a, b)) in ka.iter().zip(kb).enumerate() {
                    let ord = a.cmp(b);
                    let ord = if descs[i] { ord.reverse() } else { ord };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
        }
        let rows: Vec<Vec<Value>> = keyed_rows.into_iter().map(|(r, _)| r).collect();
        Ok(ResultSet { columns, rows })
    }

    /// Recursive join enumeration with pushdown and hash access.
    #[allow(clippy::too_many_arguments)]
    fn enumerate(
        &self,
        bindings: &mut Vec<Binding>,
        outer: &[Binding],
        sizes: &[usize],
        preds_at: &[Vec<&Expr>],
        hash_access: &[Option<(AttrId, usize, AttrId)>],
        indexes: &[Option<HashMap<Value, Vec<usize>>>],
        depth: usize,
        cursor: &mut Vec<usize>,
        snapshots: &mut Vec<Vec<usize>>,
    ) -> SqlResult<()> {
        if depth == bindings.len() {
            snapshots.push(cursor.clone());
            return Ok(());
        }
        // Candidate rows: hash lookup when available, else full scan.
        let candidates: Vec<usize> = match (&hash_access[depth], &indexes[depth]) {
            (Some((_, probe_depth, probe_attr)), Some(index)) => {
                let probe_row = cursor[*probe_depth];
                let v = self
                    .db
                    .table(bindings[*probe_depth].rel)
                    .cell(probe_row, *probe_attr);
                if v.is_null() {
                    Vec::new()
                } else {
                    index.get(v).cloned().unwrap_or_default()
                }
            }
            _ => (0..sizes[depth]).collect(),
        };
        'rows: for row in candidates {
            cursor[depth] = row;
            for (b, &r) in bindings.iter_mut().zip(cursor.iter()) {
                b.row = r;
            }
            {
                let mut scope = ScopeStack {
                    exec: self,
                    scopes: outer,
                    inner: bindings,
                };
                for p in &preds_at[depth] {
                    if scope.eval_predicate(p)? != Some(true) {
                        continue 'rows;
                    }
                }
            }
            self.enumerate(
                bindings,
                outer,
                sizes,
                preds_at,
                hash_access,
                indexes,
                depth + 1,
                cursor,
                snapshots,
            )?;
        }
        Ok(())
    }

    fn output_columns(&self, s: &Select, bindings: &[Binding]) -> SqlResult<Vec<String>> {
        let mut out = Vec::new();
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    for b in bindings {
                        let rel = self.db.schema.relation(b.rel);
                        for a in rel.attributes() {
                            out.push(format!("{}.{}", b.name, a.name));
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let name = alias.clone().unwrap_or_else(|| match expr {
                        Expr::Column(c) => c.to_string(),
                        Expr::CountStar => "count(*)".to_string(),
                        Expr::CountDistinct(_) => "count(distinct)".to_string(),
                        Expr::Agg { func, .. } => format!("{func:?}").to_lowercase(),
                        _ => "?column?".to_string(),
                    });
                    out.push(name);
                }
            }
        }
        Ok(out)
    }
}

/// Statically resolves a column against the FROM bindings (no outer
/// scopes): `Some((binding index, attr))` on an unambiguous hit.
fn static_resolve(db: &Database, bindings: &[Binding], c: &ColumnRef) -> Option<(usize, AttrId)> {
    let mut found = None;
    for (i, b) in bindings.iter().enumerate() {
        if let Some(q) = &c.qualifier {
            if q != &b.name {
                continue;
            }
        }
        if let Some(attr) = db.schema.relation(b.rel).attr_id(&c.name) {
            if found.is_some() {
                return None; // ambiguous — let evaluation report it
            }
            found = Some((i, attr));
        }
    }
    found
}

/// The shallowest depth at which every column of `e` is bound: the max
/// binding index referenced, 0 for outer-only/literal expressions, and
/// the last depth for anything containing a subquery (whose correlated
/// references we do not analyse).
fn expr_depth(db: &Database, bindings: &[Binding], e: &Expr, n_tables: usize) -> usize {
    let last = n_tables.saturating_sub(1);
    fn walk(db: &Database, bindings: &[Binding], e: &Expr, max: &mut usize) -> bool {
        match e {
            Expr::Column(c) => {
                if let Some((d, _)) = static_resolve(db, bindings, c) {
                    *max = (*max).max(d);
                }
                true
            }
            Expr::Literal(_) => true,
            Expr::Cmp { left, right, .. } => {
                walk(db, bindings, left, max) && walk(db, bindings, right, max)
            }
            Expr::And(l, r) | Expr::Or(l, r) => {
                walk(db, bindings, l, max) && walk(db, bindings, r, max)
            }
            Expr::Not(x) | Expr::IsNull { expr: x, .. } => walk(db, bindings, x, max),
            Expr::InList { expr, list, .. } => {
                walk(db, bindings, expr, max) && list.iter().all(|i| walk(db, bindings, i, max))
            }
            // Subqueries may reference anything; pin to the last depth.
            Expr::InSubquery { .. } | Expr::Exists { .. } => false,
            Expr::CountStar | Expr::CountDistinct(_) | Expr::Agg { .. } => true,
        }
    }
    let mut max = 0usize;
    if walk(db, bindings, e, &mut max) {
        max.min(last)
    } else {
        last
    }
}

/// 1-based output-position lookup for `ORDER BY 2`.
fn position_value(row: &[Value], pos: usize) -> SqlResult<Value> {
    row.get(pos - 1)
        .cloned()
        .ok_or_else(|| SqlError::semantic(format!("ORDER BY position {pos} out of range")))
}

/// Evaluation over one group of rows: scalars must be grouping
/// expressions (evaluated on the group's first row), aggregates fold
/// over every row with SQL NULL-skipping semantics.
struct GroupEval<'a, 'b> {
    exec: &'b Executor<'a>,
    outer: &'b [Binding],
    bindings: &'b mut Vec<Binding>,
    group: &'b [Vec<usize>],
    group_by: &'b [Expr],
}

impl<'a, 'b> GroupEval<'a, 'b> {
    fn scalar_on_row(&mut self, snap: &[usize], e: &Expr) -> SqlResult<Value> {
        for (b, &r) in self.bindings.iter_mut().zip(snap) {
            b.row = r;
        }
        let mut scope = ScopeStack {
            exec: self.exec,
            scopes: self.outer,
            inner: self.bindings,
        };
        scope.eval_scalar(e)
    }

    /// Non-null values of `e` across the group, in row order.
    fn column_values(&mut self, e: &Expr) -> SqlResult<Vec<Value>> {
        let snaps: Vec<Vec<usize>> = self.group.to_vec();
        let mut out = Vec::with_capacity(snaps.len());
        for snap in &snaps {
            let v = self.scalar_on_row(snap, e)?;
            if !v.is_null() {
                out.push(v);
            }
        }
        Ok(out)
    }

    fn eval(&mut self, e: &Expr) -> SqlResult<Value> {
        match e {
            Expr::CountStar => Ok(Value::Int(self.group.len() as i64)),
            Expr::CountDistinct(cols) => {
                let snaps: Vec<Vec<usize>> = self.group.to_vec();
                let mut seen: HashSet<Vec<Value>> = HashSet::new();
                'rows: for snap in &snaps {
                    let mut key = Vec::with_capacity(cols.len());
                    for c in cols {
                        let v = self.scalar_on_row(snap, &Expr::Column(c.clone()))?;
                        if v.is_null() {
                            continue 'rows;
                        }
                        key.push(v);
                    }
                    seen.insert(key);
                }
                Ok(Value::Int(seen.len() as i64))
            }
            Expr::Agg { func, arg } => {
                if arg.contains_aggregate() {
                    return Err(SqlError::semantic("nested aggregates are not allowed"));
                }
                let vals = self.column_values(arg)?;
                Ok(match func {
                    AggFunc::Count => Value::Int(vals.len() as i64),
                    AggFunc::Min => vals.iter().min().cloned().unwrap_or(Value::Null),
                    AggFunc::Max => vals.iter().max().cloned().unwrap_or(Value::Null),
                    AggFunc::Sum => sum_values(&vals)?,
                    AggFunc::Avg => match sum_values(&vals)? {
                        Value::Null => Value::Null,
                        Value::Int(total) => Value::float(total as f64 / vals.len() as f64),
                        Value::Float(total) => Value::float(total.get() / vals.len() as f64),
                        other => {
                            return Err(SqlError::semantic(format!(
                                "AVG over non-numeric value {other}"
                            )))
                        }
                    },
                })
            }
            Expr::Literal(v) => Ok(v.clone()),
            scalar => {
                // A bare scalar must be one of the grouping expressions
                // (SQL-92 rule); evaluate it on the first group row.
                if !self.group_by.iter().any(|g| g == scalar) {
                    return Err(SqlError::semantic(
                        "non-aggregate select item must appear in GROUP BY",
                    ));
                }
                let Some(first) = self.group.first().cloned() else {
                    return Ok(Value::Null);
                };
                self.scalar_on_row(&first, scalar)
            }
        }
    }

    /// Three-valued HAVING evaluation; comparisons may mix aggregates
    /// and grouping expressions. Subqueries are not supported here.
    fn eval_predicate(&mut self, e: &Expr) -> SqlResult<Option<bool>> {
        match e {
            Expr::And(l, r) => {
                let (a, b) = (self.eval_predicate(l)?, self.eval_predicate(r)?);
                Ok(match (a, b) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                })
            }
            Expr::Or(l, r) => {
                let (a, b) = (self.eval_predicate(l)?, self.eval_predicate(r)?);
                Ok(match (a, b) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                })
            }
            Expr::Not(x) => Ok(self.eval_predicate(x)?.map(|b| !b)),
            Expr::Cmp { op, left, right } => {
                let l = self.eval(left)?;
                let r = self.eval(right)?;
                if l.is_null() || r.is_null() {
                    return Ok(None);
                }
                let ord = l.cmp(&r);
                Ok(Some(match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => ord.is_ne(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                }))
            }
            Expr::IsNull { expr, negated } => {
                let is_null = self.eval(expr)?.is_null();
                Ok(Some(if *negated { !is_null } else { is_null }))
            }
            _ => Err(SqlError::semantic("unsupported predicate form in HAVING")),
        }
    }
}

/// SQL SUM: NULL on empty input, integer sum stays integral, floats
/// (or an int/float mix) sum as doubles. Integer overflow is an error.
fn sum_values(vals: &[Value]) -> SqlResult<Value> {
    if vals.is_empty() {
        return Ok(Value::Null);
    }
    if vals.iter().all(|v| matches!(v, Value::Int(_))) {
        let mut total: i64 = 0;
        // The all() guard above admits only Value::Int here.
        for v in vals {
            if let Value::Int(i) = v {
                total = total
                    .checked_add(*i)
                    .ok_or_else(|| SqlError::semantic("SUM overflow"))?;
            }
        }
        return Ok(Value::Int(total));
    }
    let mut total = 0.0f64;
    for v in vals {
        match v {
            Value::Int(i) => total += *i as f64,
            Value::Float(x) => total += x.get(),
            other => {
                return Err(SqlError::semantic(format!(
                    "SUM over non-numeric value {other}"
                )))
            }
        }
    }
    Ok(Value::float(total))
}

/// Resolution context: the innermost scope (`inner`) plus the stack of
/// outer scopes for correlated subqueries.
struct ScopeStack<'a, 'b> {
    exec: &'b Executor<'a>,
    scopes: &'b [Binding],
    inner: &'b [Binding],
}

impl<'a, 'b> ScopeStack<'a, 'b> {
    fn resolve(&self, c: &ColumnRef) -> SqlResult<(RelId, usize, AttrId)> {
        // Innermost first, then outer scopes right-to-left.
        let inner_hit = self.lookup_in(self.inner, c)?;
        if let Some(hit) = inner_hit {
            return Ok(hit);
        }
        // Outer bindings form one flat slice; search it as a single
        // scope (sufficient for one nesting level of correlation, and
        // deeper levels just see all outer bindings).
        if let Some(hit) = self.lookup_in(self.scopes, c)? {
            return Ok(hit);
        }
        Err(SqlError::semantic(format!("unknown column `{c}`")))
    }

    fn lookup_in(
        &self,
        scope: &[Binding],
        c: &ColumnRef,
    ) -> SqlResult<Option<(RelId, usize, AttrId)>> {
        let mut found: Option<(RelId, usize, AttrId)> = None;
        for b in scope {
            if let Some(q) = &c.qualifier {
                if q != &b.name {
                    continue;
                }
            }
            let rel = self.exec.db.schema.relation(b.rel);
            if let Some(attr) = rel.attr_id(&c.name) {
                if found.is_some() {
                    return Err(SqlError::semantic(format!("ambiguous column `{c}`")));
                }
                found = Some((b.rel, b.row, attr));
            } else if c.qualifier.is_some() {
                return Err(SqlError::semantic(format!("unknown column `{c}`")));
            }
        }
        Ok(found)
    }

    fn column_value(&self, c: &ColumnRef) -> SqlResult<Value> {
        let (rel, row, attr) = self.resolve(c)?;
        Ok(self.exec.db.table(rel).cell(row, attr).clone())
    }

    fn eval_scalar(&mut self, e: &Expr) -> SqlResult<Value> {
        match e {
            Expr::Column(c) => self.column_value(c),
            Expr::Literal(v) => Ok(v.clone()),
            _ => Err(SqlError::semantic(
                "expression not valid in scalar position",
            )),
        }
    }

    /// Three-valued logic: `None` is SQL UNKNOWN.
    fn eval_predicate(&mut self, e: &Expr) -> SqlResult<Option<bool>> {
        match e {
            Expr::Cmp { op, left, right } => {
                let l = self.eval_scalar(left)?;
                let r = self.eval_scalar(right)?;
                if l.is_null() || r.is_null() {
                    return Ok(None);
                }
                let ord = l.cmp(&r);
                Ok(Some(match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => ord.is_ne(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                }))
            }
            Expr::And(l, r) => {
                let a = self.eval_predicate(l)?;
                let b = self.eval_predicate(r)?;
                Ok(match (a, b) {
                    (Some(false), _) | (_, Some(false)) => Some(false),
                    (Some(true), Some(true)) => Some(true),
                    _ => None,
                })
            }
            Expr::Or(l, r) => {
                let a = self.eval_predicate(l)?;
                let b = self.eval_predicate(r)?;
                Ok(match (a, b) {
                    (Some(true), _) | (_, Some(true)) => Some(true),
                    (Some(false), Some(false)) => Some(false),
                    _ => None,
                })
            }
            Expr::Not(x) => Ok(self.eval_predicate(x)?.map(|b| !b)),
            Expr::IsNull { expr, negated } => {
                let v = self.eval_scalar(expr)?;
                let is_null = v.is_null();
                Ok(Some(if *negated { !is_null } else { is_null }))
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = self.eval_scalar(expr)?;
                if v.is_null() {
                    return Ok(None);
                }
                let mut saw_null = false;
                for item in list {
                    let w = self.eval_scalar(item)?;
                    if w.is_null() {
                        saw_null = true;
                    } else if w == v {
                        return Ok(Some(!negated));
                    }
                }
                if saw_null {
                    Ok(None)
                } else {
                    Ok(Some(*negated))
                }
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                let v = self.eval_scalar(expr)?;
                if v.is_null() {
                    return Ok(None);
                }
                let rs = self.run_subquery(query)?;
                if rs.columns.len() != 1 {
                    return Err(SqlError::semantic(
                        "IN subquery must project exactly one column",
                    ));
                }
                let mut saw_null = false;
                for row in &rs.rows {
                    if row[0].is_null() {
                        saw_null = true;
                    } else if row[0] == v {
                        return Ok(Some(!negated));
                    }
                }
                if saw_null {
                    Ok(None)
                } else {
                    Ok(Some(*negated))
                }
            }
            Expr::Exists { query, negated } => {
                let rs = self.run_subquery(query)?;
                let exists = !rs.rows.is_empty();
                Ok(Some(if *negated { !exists } else { exists }))
            }
            Expr::Column(_) | Expr::Literal(_) => {
                // A bare boolean column/literal.
                match self.eval_scalar(e)? {
                    Value::Bool(b) => Ok(Some(b)),
                    Value::Null => Ok(None),
                    v => Err(SqlError::semantic(format!(
                        "expected a boolean predicate, got {v}"
                    ))),
                }
            }
            Expr::CountStar | Expr::CountDistinct(_) | Expr::Agg { .. } => {
                Err(SqlError::semantic("aggregates are not allowed in WHERE"))
            }
        }
    }

    fn run_subquery(&mut self, q: &Query) -> SqlResult<ResultSet> {
        // The subquery sees current inner bindings as outer scope.
        let mut combined: Vec<Binding> = self.scopes.to_vec();
        combined.extend(self.inner.iter().cloned());
        self.exec.query(q, &mut combined)
    }

    fn project(&mut self, items: &[SelectItem]) -> SqlResult<Vec<Value>> {
        let mut out = Vec::new();
        for item in items {
            match item {
                SelectItem::Wildcard => {
                    for b in self.inner {
                        let rel = self.exec.db.schema.relation(b.rel);
                        for i in 0..rel.arity() {
                            out.push(
                                self.exec
                                    .db
                                    .table(b.rel)
                                    .cell(b.row, AttrId(i as u16))
                                    .clone(),
                            );
                        }
                    }
                }
                SelectItem::Expr { expr, .. } => out.push(self.eval_scalar(expr)?),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Catalog;

    fn db() -> Database {
        let mut c = Catalog::new();
        c.load_script(
            "CREATE TABLE Person (id INT UNIQUE, name VARCHAR(20), zip CHAR(5));
             CREATE TABLE HEmployee (no INT, date DATE, salary REAL, UNIQUE(no, date));
             INSERT INTO Person VALUES (1, 'ann', '69100'), (2, 'bob', '69100'),
                                       (3, 'cid', '75000'), (4, NULL, NULL);
             INSERT INTO HEmployee VALUES
                (1, DATE '1996-01-01', 100.0),
                (1, DATE '1996-02-01', 120.0),
                (3, DATE '1996-01-01', 90.0);",
        )
        .unwrap();
        c.into_database()
    }

    #[test]
    fn simple_projection() {
        let d = db();
        let rs = run_sql(&d, "SELECT name FROM Person WHERE id = 2").unwrap();
        assert_eq!(rs.columns, vec!["name"]);
        assert_eq!(rs.rows, vec![vec![Value::str("bob")]]);
    }

    #[test]
    fn wildcard_projection() {
        let d = db();
        let rs = run_sql(&d, "SELECT * FROM Person WHERE id = 1").unwrap();
        assert_eq!(rs.columns.len(), 3);
        assert_eq!(rs.rows[0].len(), 3);
    }

    #[test]
    fn count_star_and_count_distinct() {
        let d = db();
        assert_eq!(
            run_sql(&d, "SELECT COUNT(*) FROM Person")
                .unwrap()
                .count()
                .unwrap(),
            4
        );
        assert_eq!(
            run_sql(&d, "SELECT COUNT(DISTINCT zip) FROM Person")
                .unwrap()
                .count()
                .unwrap(),
            2 // NULL zip dropped
        );
        assert_eq!(
            run_sql(&d, "SELECT COUNT(DISTINCT no) FROM HEmployee")
                .unwrap()
                .count()
                .unwrap(),
            2
        );
        assert_eq!(
            run_sql(&d, "SELECT COUNT(DISTINCT no, date) FROM HEmployee")
                .unwrap()
                .count()
                .unwrap(),
            3
        );
    }

    #[test]
    fn equi_join_where_form() {
        let d = db();
        let rs = run_sql(
            &d,
            "SELECT DISTINCT p.name FROM Person p, HEmployee e WHERE e.no = p.id",
        )
        .unwrap();
        let mut names: Vec<String> = rs.rows.iter().map(|r| format!("{}", r[0])).collect();
        names.sort();
        assert_eq!(names, vec!["'ann'", "'cid'"]);
    }

    #[test]
    fn join_on_form_matches_where_form() {
        let d = db();
        let a = run_sql(
            &d,
            "SELECT DISTINCT p.id FROM Person p JOIN HEmployee e ON e.no = p.id",
        )
        .unwrap();
        let b = run_sql(
            &d,
            "SELECT DISTINCT p.id FROM Person p, HEmployee e WHERE e.no = p.id",
        )
        .unwrap();
        let (mut ra, mut rb) = (a.rows, b.rows);
        ra.sort();
        rb.sort();
        assert_eq!(ra, rb);
    }

    #[test]
    fn count_distinct_join_matches_relational_counting() {
        let d = db();
        // SQL: ‖Person[id] ⋈ HEmployee[no]‖
        let via_sql = run_sql(
            &d,
            "SELECT COUNT(DISTINCT p.id) FROM Person p, HEmployee e WHERE p.id = e.no",
        )
        .unwrap()
        .count()
        .unwrap();
        let person = d.rel("Person").unwrap();
        let emp = d.rel("HEmployee").unwrap();
        let join = dbre_relational::EquiJoin::try_new(
            dbre_relational::IndSide::single(person, AttrId(0)),
            dbre_relational::IndSide::single(emp, AttrId(0)),
        )
        .unwrap();
        let stats = dbre_relational::join_stats(&d, &join);
        assert_eq!(via_sql, stats.n_join);
    }

    #[test]
    fn in_subquery_uncorrelated() {
        let d = db();
        let rs = run_sql(
            &d,
            "SELECT name FROM Person WHERE id IN (SELECT no FROM HEmployee)",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn not_in_subquery_with_null_semantics() {
        let d = db();
        // ids {1,2,3,4}; HEmployee.no = {1,1,3}; NOT IN keeps {2,4}.
        let rs = run_sql(
            &d,
            "SELECT id FROM Person WHERE id NOT IN (SELECT no FROM HEmployee)",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn exists_correlated() {
        let d = db();
        let rs = run_sql(
            &d,
            "SELECT name FROM Person p WHERE EXISTS (SELECT * FROM HEmployee e WHERE e.no = p.id)",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 2);
        let rs = run_sql(
            &d,
            "SELECT id FROM Person p WHERE NOT EXISTS \
             (SELECT * FROM HEmployee e WHERE e.no = p.id)",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 2);
    }

    #[test]
    fn intersect_set_semantics() {
        let d = db();
        let rs = run_sql(
            &d,
            "SELECT id FROM Person INTERSECT SELECT no FROM HEmployee",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 2); // {1, 3}, duplicates collapsed
    }

    #[test]
    fn union_set_semantics() {
        let d = db();
        let rs = run_sql(&d, "SELECT id FROM Person UNION SELECT no FROM HEmployee").unwrap();
        assert_eq!(rs.rows.len(), 4); // {1,2,3,4}
    }

    #[test]
    fn null_comparisons_are_unknown() {
        let d = db();
        // name = NULL never matches, including the NULL row.
        let rs = run_sql(&d, "SELECT id FROM Person WHERE name = NULL").unwrap();
        assert!(rs.rows.is_empty());
        let rs = run_sql(&d, "SELECT id FROM Person WHERE name IS NULL").unwrap();
        assert_eq!(rs.rows.len(), 1);
        let rs = run_sql(&d, "SELECT id FROM Person WHERE name IS NOT NULL").unwrap();
        assert_eq!(rs.rows.len(), 3);
    }

    #[test]
    fn ambiguous_and_unknown_columns_error() {
        let d = db();
        assert!(run_sql(&d, "SELECT ghost FROM Person").is_err());
        assert!(run_sql(&d, "SELECT p.ghost FROM Person p").is_err());
        // `id` appears once in Person, `no` once — but joining the same
        // table twice makes unqualified columns ambiguous.
        assert!(run_sql(&d, "SELECT id FROM Person a, Person b").is_err());
        assert!(run_sql(&d, "SELECT * FROM Person, Person").is_err());
    }

    #[test]
    fn in_list_evaluation() {
        let d = db();
        let rs = run_sql(&d, "SELECT id FROM Person WHERE id IN (1, 3, 9)").unwrap();
        assert_eq!(rs.rows.len(), 2);
        let rs = run_sql(&d, "SELECT id FROM Person WHERE id NOT IN (1, 3)").unwrap();
        assert_eq!(rs.rows.len(), 2);
        // NOT IN with a NULL in the list filters everything (UNKNOWN).
        let rs = run_sql(&d, "SELECT id FROM Person WHERE id NOT IN (1, NULL)").unwrap();
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn empty_table_joins() {
        let mut c = Catalog::new();
        c.load_script("CREATE TABLE E (x INT); CREATE TABLE F (y INT); INSERT INTO F VALUES (1)")
            .unwrap();
        let d = c.into_database();
        let rs = run_sql(&d, "SELECT * FROM E, F WHERE x = y").unwrap();
        assert!(rs.rows.is_empty());
        let rs = run_sql(&d, "SELECT COUNT(*) FROM E").unwrap();
        assert_eq!(rs.count().unwrap(), 0);
    }

    #[test]
    fn group_by_with_count() {
        let d = db();
        // Paychecks per employee… here: history rows per zip.
        let rs = run_sql(
            &d,
            "SELECT zip, COUNT(*) FROM Person GROUP BY zip ORDER BY 2 DESC, 1",
        )
        .unwrap();
        // zips: '69100' ×2, '75000' ×1, NULL ×1 (NULL groups together).
        assert_eq!(rs.rows.len(), 3);
        assert_eq!(rs.rows[0], vec![Value::str("69100"), Value::Int(2)]);
    }

    #[test]
    fn aggregates_min_max_sum_avg() {
        let d = db();
        let rs = run_sql(
            &d,
            "SELECT MIN(salary), MAX(salary), SUM(salary), AVG(salary), COUNT(salary) \
             FROM HEmployee",
        )
        .unwrap();
        assert_eq!(rs.rows.len(), 1);
        assert_eq!(rs.rows[0][0], Value::float(90.0));
        assert_eq!(rs.rows[0][1], Value::float(120.0));
        assert_eq!(rs.rows[0][2], Value::float(310.0));
        assert_eq!(rs.rows[0][4], Value::Int(3));
    }

    #[test]
    fn aggregates_skip_nulls_and_empty_groups_yield_null() {
        let d = db();
        // name has one NULL: COUNT(name) = 3 of 4 rows.
        let c = run_sql(&d, "SELECT COUNT(name) FROM Person").unwrap();
        assert_eq!(c.rows[0][0], Value::Int(3));
        // Empty input, no GROUP BY: one row, COUNT 0, MIN NULL.
        let rs = run_sql(&d, "SELECT COUNT(*), MIN(id) FROM Person WHERE id > 999").unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(0), Value::Null]]);
        // Empty input WITH group by: zero rows.
        let rs = run_sql(
            &d,
            "SELECT zip, COUNT(*) FROM Person WHERE id > 999 GROUP BY zip",
        )
        .unwrap();
        assert!(rs.rows.is_empty());
    }

    #[test]
    fn having_filters_groups() {
        let d = db();
        let rs = run_sql(
            &d,
            "SELECT no, COUNT(*) FROM HEmployee GROUP BY no HAVING COUNT(*) > 1",
        )
        .unwrap();
        assert_eq!(rs.rows, vec![vec![Value::Int(1), Value::Int(2)]]);
    }

    #[test]
    fn grouped_query_rejects_ungrouped_columns() {
        let d = db();
        assert!(run_sql(&d, "SELECT name, COUNT(*) FROM Person GROUP BY zip").is_err());
        assert!(run_sql(&d, "SELECT * FROM Person GROUP BY zip").is_err());
        assert!(run_sql(&d, "SELECT id FROM Person WHERE COUNT(*) > 1").is_err());
    }

    #[test]
    fn order_by_columns_and_positions() {
        let d = db();
        let rs = run_sql(&d, "SELECT id FROM Person ORDER BY id DESC").unwrap();
        assert_eq!(rs.rows[0], vec![Value::Int(4)]);
        let rs = run_sql(&d, "SELECT id, name FROM Person ORDER BY 2, 1").unwrap();
        // NULL name sorts first under engine order.
        assert_eq!(rs.rows[0][0], Value::Int(4));
        assert!(run_sql(&d, "SELECT id FROM Person ORDER BY 9").is_err());
    }

    #[test]
    fn order_by_expression_not_in_projection() {
        let d = db();
        let rs = run_sql(&d, "SELECT name FROM Person ORDER BY id DESC").unwrap();
        assert_eq!(rs.rows[0], vec![Value::Null]); // id=4 has NULL name
    }

    #[test]
    fn count_distinct_within_groups() {
        let d = db();
        let rs = run_sql(
            &d,
            "SELECT no, COUNT(DISTINCT date) FROM HEmployee GROUP BY no ORDER BY no",
        )
        .unwrap();
        assert_eq!(rs.rows[0], vec![Value::Int(1), Value::Int(2)]);
        assert_eq!(rs.rows[1], vec![Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn three_valued_or() {
        let d = db();
        // For the NULL-name row: name = 'x' is UNKNOWN, id = 4 is TRUE;
        // UNKNOWN OR TRUE = TRUE.
        let rs = run_sql(&d, "SELECT id FROM Person WHERE name = 'zz' OR id = 4").unwrap();
        assert_eq!(rs.rows.len(), 1);
    }
}
