//! The `‖·‖` counting primitives expressed as real SQL, and the
//! [`SqlBackend`] that serves them through the counting seam.
//!
//! §2 of the paper defines `‖r[X]‖` as
//! `SELECT COUNT (DISTINCT X) FROM R` — "this function can be computed
//! in any SQL-like language". The pipeline normally uses the columnar
//! backends of `dbre-relational` for speed; this module generates and
//! executes the *actual SQL* through this crate's executor, so the
//! interchangeability claim is a tested property rather than a remark
//! (the three-way backend differential suite pins it).
//!
//! [`SqlBackend`] implements
//! [`CountBackend`](dbre_relational::backend::CountBackend) — it lives
//! here rather than in `dbre-relational` to respect the dependency
//! direction (the relational substrate knows nothing about SQL). The
//! cardinality probes (`count_distinct`, `join_stats`, and through
//! them `ind_holds`) run generated SQL; the probes the paper never
//! claims SQL for — row-index LHS groups, value projections, stripped
//! partitions — fall back to the `Value`-based reference semantics
//! client-side, exactly as a DBRE tool sitting next to a legacy DBMS
//! would post-process fetched rows.

use dbre_relational::attr::AttrId;
use dbre_relational::backend::{CountBackend, ReferenceBackend};
use dbre_relational::counting::{EquiJoin, JoinStats};
use dbre_relational::database::Database;
use dbre_relational::deps::IndSide;
use dbre_relational::schema::RelId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{run_sql, SqlResult};

/// Renders an identifier for the generated SQL. Hyphenated legacy
/// names (`project-name`) must be double-quoted: left bare in an
/// expression they read as subtraction (`project - name`), silently
/// changing the counted value wherever both operands happen to resolve.
/// Anything not lexable as a plain identifier is double-quoted too.
pub fn ident(name: &str) -> String {
    let plain = name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if plain {
        name.to_string()
    } else {
        format!("\"{name}\"")
    }
}

fn side_cols(db: &Database, side: &IndSide, alias: &str) -> Vec<String> {
    let rel = db.schema.relation(side.rel);
    side.attrs
        .iter()
        .map(|a| format!("{alias}.{}", ident(rel.attr_name(*a))))
        .collect()
}

/// The SQL text for `‖r[X]‖` of one side.
pub fn count_side_sql(db: &Database, side: &IndSide) -> String {
    let rel = db.schema.relation(side.rel);
    format!(
        "SELECT COUNT(DISTINCT {}) FROM {} x",
        side_cols(db, side, "x").join(", "),
        ident(&rel.name)
    )
}

/// The SQL text for `‖r_k[A_k] ⋈ r_l[A_l]‖`.
pub fn count_join_sql(db: &Database, join: &EquiJoin) -> String {
    let lrel = db.schema.relation(join.left.rel);
    let rrel = db.schema.relation(join.right.rel);
    let lcols = side_cols(db, &join.left, "x");
    let rcols = side_cols(db, &join.right, "y");
    let conds: Vec<String> = lcols
        .iter()
        .zip(&rcols)
        .map(|(l, r)| format!("{l} = {r}"))
        .collect();
    format!(
        "SELECT COUNT(DISTINCT {}) FROM {} x, {} y WHERE {}",
        lcols.join(", "),
        ident(&lrel.name),
        ident(&rrel.name),
        conds.join(" AND ")
    )
}

/// Computes the three IND-Discovery cardinalities by *executing SQL*
/// against the database — the fidelity path, also available without
/// going through a [`SqlBackend`].
pub fn join_stats_via_sql(db: &Database, join: &EquiJoin) -> SqlResult<JoinStats> {
    let n_left = run_sql(db, &count_side_sql(db, &join.left))?.count()?;
    let n_right = run_sql(db, &count_side_sql(db, &join.right))?.count()?;
    let n_join = run_sql(db, &count_join_sql(db, join))?.count()?;
    Ok(JoinStats {
        n_left,
        n_right,
        n_join,
    })
}

/// The generated-SQL counting backend: every `‖·‖` probe is a real
/// `SELECT COUNT(DISTINCT …)` through this crate's executor, the way a
/// DBRE tool would interrogate a live legacy DBMS.
///
/// The backend trait is infallible by design (counting cannot fail on
/// a well-formed schema); if a generated statement nevertheless fails
/// to execute, the probe falls back to the reference computation and
/// the failure is counted in [`SqlBackend::failures`] — the
/// differential tests assert that counter stays at zero, so a quoting
/// or generation bug cannot hide behind the fallback.
#[derive(Debug, Default)]
pub struct SqlBackend {
    reference: ReferenceBackend,
    failures: AtomicU64,
}

impl SqlBackend {
    /// A fresh SQL backend.
    pub fn new() -> Self {
        SqlBackend::default()
    }

    /// How many generated statements failed to execute and were served
    /// by the reference fallback instead. Zero on a healthy backend.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// `‖rel[attrs]‖` via SQL, falling back to the reference scan (and
    /// counting the failure) if the statement does not execute.
    fn count_side(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> usize {
        let side = IndSide::new(rel, attrs.to_vec());
        match run_sql(db, &count_side_sql(db, &side)).and_then(|rs| rs.count()) {
            Ok(n) => n,
            Err(_) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                self.reference.count_distinct(db, rel, attrs)
            }
        }
    }
}

impl CountBackend for SqlBackend {
    fn name(&self) -> &'static str {
        "sql"
    }

    fn count_distinct(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> usize {
        if attrs.is_empty() {
            // `COUNT(DISTINCT)` needs at least one column; the empty
            // projection is a degenerate probe only the test harness
            // produces. Served by the reference semantics, not counted
            // as a failure.
            return self.reference.count_distinct(db, rel, attrs);
        }
        self.count_side(db, rel, attrs)
    }

    fn join_stats(&self, db: &Database, join: &EquiJoin) -> JoinStats {
        match join_stats_via_sql(db, join) {
            Ok(stats) => stats,
            Err(_) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                self.reference.join_stats(db, join)
            }
        }
    }

    fn lhs_groups(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<Vec<Vec<usize>>> {
        // Row indices are not expressible in the legacy SQL subset
        // (and the paper only claims SQL for the `‖·‖` counts, §2);
        // group client-side with the reference semantics, like a tool
        // post-processing fetched rows.
        self.reference.lhs_groups(db, rel, attrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_names_get_quoted() {
        assert_eq!(ident("weird name"), "\"weird name\"");
        assert_eq!(ident("3col"), "\"3col\"");
        assert_eq!(ident("plain_name-2"), "\"plain_name-2\"");
        assert_eq!(ident("plain_name2"), "plain_name2");
    }

    #[test]
    fn sql_backend_composite_join_round_trip() {
        use crate::Catalog;
        let mut cat = Catalog::new();
        cat.load_script(
            "CREATE TABLE A (x INT, y INT); CREATE TABLE B (u INT, v INT);
             INSERT INTO A VALUES (1,1), (1,2), (2,1), (1,1);
             INSERT INTO B VALUES (1,1), (2,1), (3,3);",
        )
        .unwrap();
        let db = cat.into_database();
        let (a, a_ids) = db.resolve("A", &["x", "y"]).unwrap();
        let (b, b_ids) = db.resolve("B", &["u", "v"]).unwrap();
        let join = EquiJoin::try_new(IndSide::new(a, a_ids), IndSide::new(b, b_ids)).unwrap();
        let backend = SqlBackend::new();
        let stats = backend.join_stats(&db, &join);
        assert_eq!(stats, ReferenceBackend.join_stats(&db, &join));
        assert_eq!(stats.n_join, 2); // pairs (1,1) and (2,1)
        assert_eq!(backend.failures(), 0, "no statement fell back");
    }

    #[test]
    fn sql_backend_quoted_identifiers_round_trip() {
        use crate::Catalog;
        let mut cat = Catalog::new();
        // Hyphenated legacy names: bare `x.zip-code` would lex as a
        // subtraction, so generation must quote.
        cat.load_script(
            "CREATE TABLE Addr (\"zip-code\" INT, \"street name\" CHAR(20));
             INSERT INTO Addr VALUES (10, 'a'), (10, 'b'), (20, 'c');",
        )
        .unwrap();
        let db = cat.into_database();
        let (rel, ids) = db.resolve("Addr", &["zip-code"]).unwrap();
        let side = IndSide::new(rel, ids.clone());
        assert_eq!(
            count_side_sql(&db, &side),
            "SELECT COUNT(DISTINCT x.\"zip-code\") FROM Addr x"
        );
        let backend = SqlBackend::new();
        assert_eq!(backend.count_distinct(&db, rel, &ids), 2);
        let (_, both) = db.resolve("Addr", &["zip-code", "street name"]).unwrap();
        assert_eq!(backend.count_distinct(&db, rel, &both), 3);
        assert_eq!(backend.failures(), 0, "quoted identifiers executed");
    }
}
