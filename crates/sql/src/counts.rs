//! The `‖·‖` counting primitives expressed as real SQL, and the
//! [`SqlBackend`] that serves them through the counting seam.
//!
//! §2 of the paper defines `‖r[X]‖` as
//! `SELECT COUNT (DISTINCT X) FROM R` — "this function can be computed
//! in any SQL-like language". The pipeline normally uses the columnar
//! backends of `dbre-relational` for speed; this module generates and
//! executes the *actual SQL* through this crate's executor, so the
//! interchangeability claim is a tested property rather than a remark
//! (the three-way backend differential suite pins it).
//!
//! [`SqlBackend`] implements
//! [`CountBackend`](dbre_relational::backend::CountBackend) — it lives
//! here rather than in `dbre-relational` to respect the dependency
//! direction (the relational substrate knows nothing about SQL). The
//! cardinality probes (`count_distinct`, `join_stats`, and through
//! them `ind_holds`) run generated SQL; the probes the paper never
//! claims SQL for — row-index LHS groups, value projections, stripped
//! partitions — fall back to the `Value`-based reference semantics
//! client-side, exactly as a DBRE tool sitting next to a legacy DBMS
//! would post-process fetched rows.

use dbre_relational::attr::AttrId;
use dbre_relational::backend::{BackendExecStats, CountBackend, EncodedBackend, ReferenceBackend};
use dbre_relational::counting::{EquiJoin, JoinStats};
use dbre_relational::database::Database;
use dbre_relational::deps::IndSide;
use dbre_relational::encode::ColumnDict;
use dbre_relational::schema::RelId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::batch::{execute_query_batch, BatchReport};
use crate::executor::{execute_query, ResultSet};
use crate::{run_sql, SqlResult};

/// Renders an identifier for the generated SQL. Hyphenated legacy
/// names (`project-name`) must be double-quoted: left bare in an
/// expression they read as subtraction (`project - name`), silently
/// changing the counted value wherever both operands happen to resolve.
/// Anything not lexable as a plain identifier is double-quoted too,
/// with embedded double quotes escaped by doubling (SQL-92) so a name
/// containing `"` round-trips through the lexer instead of producing
/// an unparseable statement.
pub fn ident(name: &str) -> String {
    let plain = name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if plain {
        name.to_string()
    } else {
        format!("\"{}\"", name.replace('"', "\"\""))
    }
}

fn side_cols(db: &Database, side: &IndSide, alias: &str) -> Vec<String> {
    let rel = db.schema.relation(side.rel);
    side.attrs
        .iter()
        .map(|a| format!("{alias}.{}", ident(rel.attr_name(*a))))
        .collect()
}

/// The SQL text for `‖r[X]‖` of one side.
pub fn count_side_sql(db: &Database, side: &IndSide) -> String {
    let rel = db.schema.relation(side.rel);
    format!(
        "SELECT COUNT(DISTINCT {}) FROM {} x",
        side_cols(db, side, "x").join(", "),
        ident(&rel.name)
    )
}

/// The SQL text for `‖r_k[A_k] ⋈ r_l[A_l]‖`.
pub fn count_join_sql(db: &Database, join: &EquiJoin) -> String {
    let lrel = db.schema.relation(join.left.rel);
    let rrel = db.schema.relation(join.right.rel);
    let lcols = side_cols(db, &join.left, "x");
    let rcols = side_cols(db, &join.right, "y");
    let conds: Vec<String> = lcols
        .iter()
        .zip(&rcols)
        .map(|(l, r)| format!("{l} = {r}"))
        .collect();
    format!(
        "SELECT COUNT(DISTINCT {}) FROM {} x, {} y WHERE {}",
        lcols.join(", "),
        ident(&lrel.name),
        ident(&rrel.name),
        conds.join(" AND ")
    )
}

/// Computes the three IND-Discovery cardinalities by *executing SQL*
/// against the database — the fidelity path, also available without
/// going through a [`SqlBackend`].
pub fn join_stats_via_sql(db: &Database, join: &EquiJoin) -> SqlResult<JoinStats> {
    let n_left = run_sql(db, &count_side_sql(db, &join.left))?.count()?;
    let n_right = run_sql(db, &count_side_sql(db, &join.right))?.count()?;
    let n_join = run_sql(db, &count_join_sql(db, join))?.count()?;
    Ok(JoinStats {
        n_left,
        n_right,
        n_join,
    })
}

/// The generated-SQL counting backend: every `‖·‖` probe is a real
/// `SELECT COUNT(DISTINCT …)` through this crate's executor, the way a
/// DBRE tool would interrogate a live legacy DBMS.
///
/// Statements execute on the batch path
/// ([`crate::batch::execute_query_batch`]) backed by an owned
/// [`EncodedBackend`] — the probe shapes lower straight onto the
/// dictionary-code kernels, so the dictionaries built for one probe
/// serve every later probe touching the same columns. Queries the
/// batch model cannot express run through the tuple interpreter;
/// [`SqlBackend::exec_stats`] reports how often each path served.
///
/// The backend trait is infallible by design (counting cannot fail on
/// a well-formed schema); if a generated statement nevertheless fails
/// to execute, the probe falls back to the reference computation and
/// the failure is counted in [`SqlBackend::failures`] — the
/// differential tests assert that counter stays at zero, so a quoting
/// or generation bug cannot hide behind the fallback.
#[derive(Default)]
pub struct SqlBackend {
    reference: ReferenceBackend,
    /// Dictionary caches + counting kernels behind the batch executor.
    encoded: EncodedBackend,
    failures: AtomicU64,
    batch_ops: AtomicU64,
    tuple_ops: AtomicU64,
}

// Compile-time proof the SQL backend can be shared by concurrent
// sessions like the in-crate backends (which `dbre-relational`
// asserts the same way): nothing but atomics and the already-`Sync`
// reference/encoded backends inside.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<SqlBackend>();
};

impl std::fmt::Debug for SqlBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SqlBackend")
            .field("failures", &self.failures)
            .field("batch_ops", &self.batch_ops)
            .field("tuple_ops", &self.tuple_ops)
            .finish_non_exhaustive()
    }
}

impl SqlBackend {
    /// A fresh SQL backend.
    pub fn new() -> Self {
        SqlBackend::default()
    }

    /// How many generated statements failed to execute and were served
    /// by the reference fallback instead. Zero on a healthy backend.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }

    /// Executes one generated statement: batch path first, whole-query
    /// tuple interpretation when the shape (or an execution error)
    /// falls outside the batch model. Each path's use is counted.
    fn run_probe(&self, db: &Database, sql: &str) -> SqlResult<ResultSet> {
        let query = crate::parser::parse_query(sql)?;
        let mut report = BatchReport::default();
        let batch = execute_query_batch(db, &self.encoded, &query, &mut report);
        self.batch_ops
            .fetch_add(report.batch_ops, Ordering::Relaxed);
        self.tuple_ops
            .fetch_add(report.fallback_ops, Ordering::Relaxed);
        if let Ok(Some(rs)) = batch {
            return Ok(rs);
        }
        self.tuple_ops.fetch_add(1, Ordering::Relaxed);
        execute_query(db, &query)
    }

    /// `‖rel[attrs]‖` via SQL, falling back to the reference scan (and
    /// counting the failure) if the statement does not execute.
    fn count_side(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> usize {
        let side = IndSide::new(rel, attrs.to_vec());
        match self
            .run_probe(db, &count_side_sql(db, &side))
            .and_then(|rs| rs.count())
        {
            Ok(n) => n,
            Err(_) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                self.reference.count_distinct(db, rel, attrs)
            }
        }
    }

    /// The three IND-Discovery cardinalities via generated SQL on the
    /// batch path.
    fn join_stats_probe(&self, db: &Database, join: &EquiJoin) -> SqlResult<JoinStats> {
        let n_left = self
            .run_probe(db, &count_side_sql(db, &join.left))?
            .count()?;
        let n_right = self
            .run_probe(db, &count_side_sql(db, &join.right))?
            .count()?;
        let n_join = self.run_probe(db, &count_join_sql(db, join))?.count()?;
        Ok(JoinStats {
            n_left,
            n_right,
            n_join,
        })
    }
}

impl CountBackend for SqlBackend {
    fn name(&self) -> &'static str {
        "sql"
    }

    fn count_distinct(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> usize {
        if attrs.is_empty() {
            // `COUNT(DISTINCT)` needs at least one column; the empty
            // projection is a degenerate probe only the test harness
            // produces. Served by the reference semantics, not counted
            // as a failure.
            return self.reference.count_distinct(db, rel, attrs);
        }
        self.count_side(db, rel, attrs)
    }

    fn join_stats(&self, db: &Database, join: &EquiJoin) -> JoinStats {
        match self.join_stats_probe(db, join) {
            Ok(stats) => stats,
            Err(_) => {
                self.failures.fetch_add(1, Ordering::Relaxed);
                self.reference.join_stats(db, join)
            }
        }
    }

    fn lhs_groups(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<Vec<Vec<usize>>> {
        // Row indices are not expressible in the legacy SQL subset
        // (and the paper only claims SQL for the `‖·‖` counts, §2);
        // group client-side with the reference semantics, like a tool
        // post-processing fetched rows.
        self.reference.lhs_groups(db, rel, attrs)
    }

    fn column_dict(&self, db: &Database, rel: RelId, attr: AttrId) -> Option<Arc<ColumnDict>> {
        Some(EncodedBackend::column_dict(&self.encoded, db, rel, attr))
    }

    fn exec_stats(&self) -> BackendExecStats {
        BackendExecStats {
            fallback_failures: self.failures.load(Ordering::Relaxed),
            batch_ops: self.batch_ops.load(Ordering::Relaxed),
            tuple_fallback_ops: self.tuple_ops.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn odd_names_get_quoted() {
        assert_eq!(ident("weird name"), "\"weird name\"");
        assert_eq!(ident("3col"), "\"3col\"");
        assert_eq!(ident("plain_name-2"), "\"plain_name-2\"");
        assert_eq!(ident("plain_name2"), "plain_name2");
        // Embedded quotes are escaped by doubling, not passed through.
        assert_eq!(ident("wei\"rd"), "\"wei\"\"rd\"");
        assert_eq!(ident("\""), "\"\"\"\"");
    }

    #[test]
    fn sql_backend_composite_join_round_trip() {
        use crate::Catalog;
        let mut cat = Catalog::new();
        cat.load_script(
            "CREATE TABLE A (x INT, y INT); CREATE TABLE B (u INT, v INT);
             INSERT INTO A VALUES (1,1), (1,2), (2,1), (1,1);
             INSERT INTO B VALUES (1,1), (2,1), (3,3);",
        )
        .unwrap();
        let db = cat.into_database();
        let (a, a_ids) = db.resolve("A", &["x", "y"]).unwrap();
        let (b, b_ids) = db.resolve("B", &["u", "v"]).unwrap();
        let join = EquiJoin::try_new(IndSide::new(a, a_ids), IndSide::new(b, b_ids)).unwrap();
        let backend = SqlBackend::new();
        let stats = backend.join_stats(&db, &join);
        assert_eq!(stats, ReferenceBackend.join_stats(&db, &join));
        assert_eq!(stats.n_join, 2); // pairs (1,1) and (2,1)
        assert_eq!(backend.failures(), 0, "no statement fell back");
    }

    #[test]
    fn sql_backend_quoted_identifiers_round_trip() {
        use crate::Catalog;
        let mut cat = Catalog::new();
        // Hyphenated legacy names: bare `x.zip-code` would lex as a
        // subtraction, so generation must quote.
        cat.load_script(
            "CREATE TABLE Addr (\"zip-code\" INT, \"street name\" CHAR(20));
             INSERT INTO Addr VALUES (10, 'a'), (10, 'b'), (20, 'c');",
        )
        .unwrap();
        let db = cat.into_database();
        let (rel, ids) = db.resolve("Addr", &["zip-code"]).unwrap();
        let side = IndSide::new(rel, ids.clone());
        assert_eq!(
            count_side_sql(&db, &side),
            "SELECT COUNT(DISTINCT x.\"zip-code\") FROM Addr x"
        );
        let backend = SqlBackend::new();
        assert_eq!(backend.count_distinct(&db, rel, &ids), 2);
        let (_, both) = db.resolve("Addr", &["zip-code", "street name"]).unwrap();
        assert_eq!(backend.count_distinct(&db, rel, &both), 3);
        assert_eq!(backend.failures(), 0, "quoted identifiers executed");
    }
}
