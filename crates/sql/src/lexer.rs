//! Hand-written SQL lexer.
//!
//! Notable subset decisions (documented here once, relied on
//! everywhere):
//!
//! * keywords are case-insensitive; identifiers are case-preserving and
//!   compared exactly by later stages;
//! * `-` is an identifier character when it directly follows an
//!   identifier character and is directly followed by one
//!   (`zip-code`, `Ass-Dept`) — the subset has no arithmetic, and the
//!   paper's worked example requires hyphenated attribute names;
//! * `--` starts a line comment, `/* … */` a block comment;
//! * string literals use single quotes with `''` as the escape;
//! * double-quoted words are *delimited identifiers*.

use crate::error::{Pos, SqlError, SqlResult};
use crate::token::{Keyword, Tok, Token};

/// Tokenizes `src` into a vector ending with [`Tok::Eof`].
pub fn tokenize(src: &str) -> SqlResult<Vec<Token>> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            i: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn pos(&self) -> Pos {
        Pos {
            line: self.line,
            col: self.col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.i).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.i + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn err(&self, message: impl Into<String>) -> SqlError {
        SqlError::Lex {
            pos: self.pos(),
            message: message.into(),
        }
    }

    fn push(&mut self, tok: Tok, pos: Pos) {
        self.out.push(Token { tok, pos });
    }

    fn run(mut self) -> SqlResult<Vec<Token>> {
        loop {
            // Skip whitespace and comments.
            loop {
                match self.peek() {
                    Some(c) if c.is_ascii_whitespace() => {
                        self.bump();
                    }
                    Some(b'-') if self.peek2() == Some(b'-') => {
                        while let Some(c) = self.bump() {
                            if c == b'\n' {
                                break;
                            }
                        }
                    }
                    Some(b'/') if self.peek2() == Some(b'*') => {
                        self.bump();
                        self.bump();
                        let mut closed = false;
                        while let Some(c) = self.bump() {
                            if c == b'*' && self.peek() == Some(b'/') {
                                self.bump();
                                closed = true;
                                break;
                            }
                        }
                        if !closed {
                            return Err(self.err("unterminated block comment"));
                        }
                    }
                    _ => break,
                }
            }
            let pos = self.pos();
            let Some(c) = self.peek() else {
                self.push(Tok::Eof, pos);
                return Ok(self.out);
            };
            match c {
                b'(' => {
                    self.bump();
                    self.push(Tok::LParen, pos);
                }
                b')' => {
                    self.bump();
                    self.push(Tok::RParen, pos);
                }
                b',' => {
                    self.bump();
                    self.push(Tok::Comma, pos);
                }
                b';' => {
                    self.bump();
                    self.push(Tok::Semi, pos);
                }
                b'.' => {
                    self.bump();
                    self.push(Tok::Dot, pos);
                }
                b'*' => {
                    self.bump();
                    self.push(Tok::Star, pos);
                }
                b'=' => {
                    self.bump();
                    self.push(Tok::Eq, pos);
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(Tok::Ne, pos);
                    } else {
                        return Err(self.err("expected `=` after `!`"));
                    }
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        Some(b'>') => {
                            self.bump();
                            self.push(Tok::Ne, pos);
                        }
                        Some(b'=') => {
                            self.bump();
                            self.push(Tok::Le, pos);
                        }
                        _ => self.push(Tok::Lt, pos),
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        self.push(Tok::Ge, pos);
                    } else {
                        self.push(Tok::Gt, pos);
                    }
                }
                // A `-` not starting a comment introduces a negative
                // number literal (the subset has no subtraction).
                b'-' if matches!(self.peek2(), Some(c) if c.is_ascii_digit()) => {
                    self.bump();
                    self.number(pos, true)?;
                }
                b'\'' => self.string(pos)?,
                b'"' => self.delimited_ident(pos)?,
                b'0'..=b'9' => self.number(pos, false)?,
                c if c.is_ascii_alphabetic() || c == b'_' => self.word(pos),
                other => {
                    return Err(self.err(format!("unexpected character `{}`", char::from(other))))
                }
            }
        }
    }

    fn string(&mut self, pos: Pos) -> SqlResult<()> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some(b'\'') => {
                    if self.peek() == Some(b'\'') {
                        self.bump();
                        s.push('\'');
                    } else {
                        break;
                    }
                }
                Some(c) => s.push(char::from(c)),
            }
        }
        self.push(Tok::Str(s), pos);
        Ok(())
    }

    fn delimited_ident(&mut self, pos: Pos) -> SqlResult<()> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated delimited identifier")),
                Some(b'"') => {
                    // `""` inside a delimited identifier is an escaped
                    // quote (SQL-92), mirroring `''` in string literals.
                    if self.peek() == Some(b'"') {
                        self.bump();
                        s.push('"');
                    } else {
                        break;
                    }
                }
                Some(c) => s.push(char::from(c)),
            }
        }
        if s.is_empty() {
            return Err(self.err("empty delimited identifier"));
        }
        self.push(Tok::Ident(s), pos);
        Ok(())
    }

    fn number(&mut self, pos: Pos, negative: bool) -> SqlResult<()> {
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(c) if c.is_ascii_digit()) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E'))
            && matches!(self.peek2(), Some(c) if c.is_ascii_digit() || c == b'+' || c == b'-')
        {
            is_float = true;
            self.bump();
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.bump();
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        // Only ASCII digit/sign/dot bytes were bumped, so the slice
        // is valid UTF-8; lossy conversion is borrowed and free.
        let text = String::from_utf8_lossy(&self.src[start..self.i]);
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| self.err(format!("bad float literal `{text}`")))?;
            self.push(Tok::Float(if negative { -v } else { v }), pos);
        } else {
            // Apply the sign before the range check so i64::MIN, whose
            // magnitude alone exceeds i64::MAX, still lexes.
            let magnitude: i128 = text
                .parse()
                .map_err(|_| self.err(format!("integer literal out of range `{text}`")))?;
            let signed = if negative { -magnitude } else { magnitude };
            let v = i64::try_from(signed)
                .map_err(|_| self.err(format!("integer literal out of range `{text}`")))?;
            self.push(Tok::Int(v), pos);
        }
        Ok(())
    }

    fn word(&mut self, pos: Pos) {
        let start = self.i;
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_alphanumeric() || c == b'_' => {
                    self.bump();
                }
                // Hyphen continues an identifier only when followed by
                // an identifier character: `zip-code` lexes as one
                // token, while `a --comment` does not.
                Some(b'-')
                    if matches!(self.peek2(),
                        Some(c) if c.is_ascii_alphanumeric() || c == b'_') =>
                {
                    self.bump();
                }
                _ => break,
            }
        }
        // Only ASCII identifier bytes were bumped (see the loop above).
        let text = String::from_utf8_lossy(&self.src[start..self.i]);
        // Words containing `-` can never be keywords.
        match Keyword::from_word(&text) {
            Some(kw) if !text.contains('-') => self.push(Tok::Kw(kw), pos),
            _ => self.push(Tok::Ident(text.to_string()), pos),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_select() {
        let ts = toks("SELECT a FROM t;");
        assert_eq!(
            ts,
            vec![
                Tok::Kw(Keyword::Select),
                Tok::Ident("a".into()),
                Tok::Kw(Keyword::From),
                Tok::Ident("t".into()),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn hyphenated_identifiers() {
        let ts = toks("select project-name from Ass-Dept");
        assert!(ts.contains(&Tok::Ident("project-name".into())));
        assert!(ts.contains(&Tok::Ident("Ass-Dept".into())));
    }

    #[test]
    fn line_comment_not_confused_with_hyphen() {
        let ts = toks("a -- comment to end\n b");
        assert_eq!(
            ts,
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn block_comment() {
        let ts = toks("a /* hi\nthere */ b");
        assert_eq!(
            ts,
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
        assert!(tokenize("/* unterminated").is_err());
    }

    #[test]
    fn operators() {
        let ts = toks("= <> != < <= > >= . , * ( ) ;");
        assert_eq!(
            ts,
            vec![
                Tok::Eq,
                Tok::Ne,
                Tok::Ne,
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Dot,
                Tok::Comma,
                Tok::Star,
                Tok::LParen,
                Tok::RParen,
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn numbers() {
        let ts = toks("12 3.5 2e3 1.5e-2");
        assert_eq!(
            ts,
            vec![
                Tok::Int(12),
                Tok::Float(3.5),
                Tok::Float(2000.0),
                Tok::Float(0.015),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_with_escape() {
        let ts = toks("'o''brien' ''");
        assert_eq!(
            ts,
            vec![Tok::Str("o'brien".into()), Tok::Str("".into()), Tok::Eof]
        );
        assert!(tokenize("'unterminated").is_err());
    }

    #[test]
    fn delimited_identifiers() {
        let ts = toks("\"select\" \"weird name\"");
        assert_eq!(
            ts,
            vec![
                Tok::Ident("select".into()),
                Tok::Ident("weird name".into()),
                Tok::Eof
            ]
        );
        assert!(tokenize("\"\"").is_err());
    }

    #[test]
    fn delimited_identifier_quote_escape() {
        // `""` inside a delimited identifier is one literal quote.
        assert_eq!(
            toks("\"wei\"\"rd\""),
            vec![Tok::Ident("wei\"rd".into()), Tok::Eof]
        );
        // An identifier that is nothing but a quote.
        assert_eq!(toks("\"\"\"\""), vec![Tok::Ident("\"".into()), Tok::Eof]);
        // Trailing escaped quote, then a real close.
        assert_eq!(toks("\"x\"\"\""), vec![Tok::Ident("x\"".into()), Tok::Eof]);
        // The empty identifier stays rejected; an unterminated escape is
        // unterminated, not empty.
        assert!(tokenize("\"\"").is_err());
        assert!(tokenize("\"a\"\"").is_err());
    }

    #[test]
    fn keywords_case_insensitive() {
        assert_eq!(
            toks("select SELECT SeLeCt"),
            vec![
                Tok::Kw(Keyword::Select),
                Tok::Kw(Keyword::Select),
                Tok::Kw(Keyword::Select),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_track_lines() {
        let tokens = tokenize("a\n  b").unwrap();
        assert_eq!(tokens[0].pos.line, 1);
        assert_eq!(tokens[1].pos.line, 2);
        assert_eq!(tokens[1].pos.col, 3);
    }

    #[test]
    fn negative_numbers() {
        assert_eq!(
            toks("-3 -2.5"),
            vec![Tok::Int(-3), Tok::Float(-2.5), Tok::Eof]
        );
        // `--3` is still a comment, not double negation.
        assert_eq!(toks("--3\n4"), vec![Tok::Int(4), Tok::Eof]);
    }

    #[test]
    fn rejects_garbage() {
        assert!(tokenize("@").is_err());
        assert!(tokenize("! x").is_err());
    }

    #[test]
    fn hyphen_word_is_never_keyword() {
        // `in-box` must lex as an identifier even though `in` is a keyword.
        let ts = toks("in-box");
        assert_eq!(ts, vec![Tok::Ident("in-box".into()), Tok::Eof]);
    }
}
