//! Four-way backend differential suite: [`ReferenceBackend`],
//! [`EncodedBackend`], [`PagedBackend`], and [`SqlBackend`] must agree
//! *exactly* on every probe of the counting seam — `‖·‖` counts, join
//! stats, FD checks, LHS row groups — over generated tables biased
//! toward collisions, NULLs, and NaN.
//!
//! This is the paper's §2 interchangeability claim ("this function can
//! be computed in any SQL-like language") as a tested property: the
//! SQL path executes real generated `SELECT COUNT(DISTINCT …)`
//! statements, and [`SqlBackend::failures`] is asserted zero in every
//! property, so a quoting or generation bug cannot hide behind the
//! reference fallback. The same file gates the default and `parallel`
//! builds, and a CI leg re-runs the whole core pipeline suite with
//! `DBRE_BACKEND=sql` on top (the suite here always covers all four
//! backends regardless of that variable).

// Test-support helpers outside #[test] fns; panicking on fixture
// failure is test behaviour.
#![allow(clippy::expect_used)]

use std::sync::Arc;

use dbre_relational::attr::AttrId;
use dbre_relational::backend::{CountBackend, EncodedBackend, ReferenceBackend};
use dbre_relational::bufpool::BufferPool;
use dbre_relational::counting::EquiJoin;
use dbre_relational::database::Database;
use dbre_relational::deps::{Fd, IndSide};
use dbre_relational::pages::PagedBackend;
use dbre_relational::schema::{RelId, Relation};
use dbre_relational::table::Table;
use dbre_relational::value::{Domain, Value};
use dbre_sql::batch::{execute_query_batch, BatchReport};
use dbre_sql::{execute_query, parse_query, SqlBackend};
use proptest::prelude::*;

// ---- generators (collision/NULL/NaN-biased, like encode_differential)

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..4).prop_map(Value::Int),
        (0i64..4).prop_map(Value::Int),
        (0i64..4).prop_map(Value::Int),
        Just(Value::Null),
        Just(Value::Null),
        Just(Value::str("a")),
        Just(Value::str("b")),
        Just(Value::float(f64::NAN)),
        Just(Value::float(0.5)),
        Just(Value::float(-0.0)),
    ]
}

fn raw_rows(max_arity: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    prop::collection::vec(prop::collection::vec(value(), max_arity), 0..30)
}

fn make_table(arity: usize, rows: Vec<Vec<Value>>) -> Table {
    let rows = rows.into_iter().map(|mut r| {
        r.truncate(arity);
        r
    });
    Table::from_rows(arity, rows).expect("rows match arity")
}

/// `(table, non-empty attrs)`: the SQL path needs at least one column
/// (`COUNT(DISTINCT)` of nothing is not a statement); the empty-attrs
/// degenerate probe is covered by `encode_differential`.
fn table_and_attrs() -> impl Strategy<Value = (Table, Vec<AttrId>)> {
    (1usize..5, raw_rows(4), prop::collection::vec(0u16..4, 1..4)).prop_map(
        |(arity, rows, attrs)| {
            let attrs = attrs
                .into_iter()
                .map(|i| AttrId(i % arity as u16))
                .collect();
            (make_table(arity, rows), attrs)
        },
    )
}

#[allow(clippy::type_complexity)]
fn join_case() -> impl Strategy<Value = (Table, Vec<AttrId>, Table, Vec<AttrId>)> {
    (
        1usize..4,
        1usize..4,
        raw_rows(3),
        raw_rows(3),
        prop::collection::vec((0u16..3, 0u16..3), 1..3),
    )
        .prop_map(|(la, ra, lrows, rrows, pairs)| {
            let lattrs = pairs.iter().map(|&(l, _)| AttrId(l % la as u16)).collect();
            let rattrs = pairs.iter().map(|&(_, r)| AttrId(r % ra as u16)).collect();
            (make_table(la, lrows), lattrs, make_table(ra, rrows), rattrs)
        })
}

/// Wraps tables into a database with plainly-named relations/columns
/// so generated SQL parses (`add_relation_with_table` skips domain
/// validation, so the mixed-type proptest columns are fine — the
/// executor compares `Value`s structurally, like the reference).
fn db_of(tables: &[&Table]) -> (Database, Vec<RelId>) {
    let mut db = Database::new();
    let mut rels = Vec::new();
    for (k, t) in tables.iter().enumerate() {
        let cols: Vec<(String, Domain)> = (0..t.arity())
            .map(|i| (format!("c{i}"), Domain::Int))
            .collect();
        let named: Vec<(&str, Domain)> = cols.iter().map(|(n, d)| (n.as_str(), *d)).collect();
        rels.push(
            db.add_relation_with_table(Relation::of(&format!("T{k}"), &named), (*t).clone())
                .expect("arity matches"),
        );
    }
    (db, rels)
}

/// The matrix under test. Boxed so the concrete types share one loop;
/// the SQL backend is returned separately for its failure probe. The
/// paged backend runs with a deliberately tiny pool (one page) so every
/// property also exercises eviction and re-fault paths; correctness
/// must not depend on residency.
fn backends() -> (Vec<Box<dyn CountBackend>>, SqlBackend) {
    (
        vec![
            Box::new(ReferenceBackend),
            Box::new(EncodedBackend::new()),
            Box::new(PagedBackend::with_pool(Arc::new(
                BufferPool::with_capacity_pages(1),
            ))),
        ],
        SqlBackend::new(),
    )
}

proptest! {
    /// `‖r[attrs]‖` agrees across all four backends.
    #[test]
    fn counts_agree(case in table_and_attrs()) {
        let (t, attrs) = case;
        let (db, rels) = db_of(&[&t]);
        let rel = rels[0];
        let (others, sql) = backends();
        let expected = ReferenceBackend.count_distinct(&db, rel, &attrs);
        for b in &others {
            prop_assert_eq!(b.count_distinct(&db, rel, &attrs), expected, "backend {}", b.name());
        }
        prop_assert_eq!(sql.count_distinct(&db, rel, &attrs), expected, "backend sql");
        prop_assert_eq!(sql.failures(), 0, "generated SQL must execute");
    }

    /// The three IND-Discovery cardinalities agree across backends,
    /// including composite joins.
    #[test]
    fn join_stats_agree(case in join_case()) {
        let (lt, lattrs, rt, rattrs) = case;
        let (db, rels) = db_of(&[&lt, &rt]);
        let join = EquiJoin::try_new(
            IndSide::new(rels[0], lattrs),
            IndSide::new(rels[1], rattrs),
        )
        .expect("equal arity by construction");
        let (others, sql) = backends();
        let expected = ReferenceBackend.join_stats(&db, &join);
        for b in &others {
            prop_assert_eq!(b.join_stats(&db, &join), expected, "backend {}", b.name());
        }
        prop_assert_eq!(sql.join_stats(&db, &join), expected, "backend sql");
        prop_assert_eq!(sql.failures(), 0, "generated SQL must execute");

        // ind_holds is derived from join_stats through the seam; pin
        // the derived answer too (left side included iff n_join = n_left).
        let ind = dbre_relational::deps::Ind {
            lhs: join.left.clone(),
            rhs: join.right.clone(),
        };
        let holds = db.ind_holds(&ind);
        for b in &others {
            prop_assert_eq!(b.ind_holds(&db, &ind), holds, "backend {}", b.name());
        }
        prop_assert_eq!(sql.ind_holds(&db, &ind), holds, "backend sql");
    }

    /// FD checks (SQL NULL convention) agree across backends.
    #[test]
    fn fd_checks_agree(
        case in table_and_attrs(),
        rhs_seed in prop::collection::vec(0u16..4, 1..3),
    ) {
        let (t, lhs) = case;
        let rhs: Vec<AttrId> = rhs_seed
            .into_iter()
            .map(|i| AttrId(i % t.arity() as u16))
            .collect();
        let (db, rels) = db_of(&[&t]);
        let fd = Fd::new(
            rels[0],
            lhs.iter().copied().collect(),
            rhs.iter().copied().collect(),
        );
        let (others, sql) = backends();
        let expected = db.fd_holds(&fd);
        for b in &others {
            prop_assert_eq!(b.fd_holds(&db, &fd), expected, "backend {}", b.name());
        }
        prop_assert_eq!(sql.fd_holds(&db, &fd), expected, "backend sql");
        prop_assert_eq!(sql.failures(), 0, "generated SQL must execute");
    }

    /// LHS row groups (row indices, SQL NULL convention) agree across
    /// backends — membership and ordering.
    #[test]
    fn lhs_groups_agree(case in table_and_attrs()) {
        let (t, attrs) = case;
        let (db, rels) = db_of(&[&t]);
        let rel = rels[0];
        let (others, sql) = backends();
        let expected = ReferenceBackend.lhs_groups(&db, rel, &attrs);
        for b in &others {
            prop_assert_eq!(&b.lhs_groups(&db, rel, &attrs), &expected, "backend {}", b.name());
        }
        prop_assert_eq!(&sql.lhs_groups(&db, rel, &attrs), &expected, "backend sql");
    }

    /// The paged backend agrees with the reference at *any* buffer-pool
    /// capacity, down to a single resident page: the streaming kernels
    /// hold page `Arc`s while they work, so eviction pressure can slow
    /// a probe but never change its answer, and no probe may silently
    /// degrade to the reference fallback.
    #[test]
    fn paged_backend_agrees_at_any_pool_capacity(
        case in table_and_attrs(),
        capacity_pages in 1usize..6,
    ) {
        let (t, attrs) = case;
        let (db, rels) = db_of(&[&t]);
        let rel = rels[0];
        let paged = PagedBackend::with_pool(Arc::new(
            BufferPool::with_capacity_pages(capacity_pages),
        ));
        paged.prewarm(&db, rel);
        prop_assert_eq!(
            paged.count_distinct(&db, rel, &attrs),
            ReferenceBackend.count_distinct(&db, rel, &attrs),
            "count_distinct at {} pages", capacity_pages
        );
        prop_assert_eq!(
            paged.lhs_groups(&db, rel, &attrs),
            ReferenceBackend.lhs_groups(&db, rel, &attrs),
            "lhs_groups at {} pages", capacity_pages
        );
        prop_assert_eq!(
            paged.exec_stats().fallback_failures, 0,
            "paged probes must stream, not fall back"
        );
    }
}

// ---- batch-vs-tuple query differential ---------------------------------
//
// The properties above pin the counting seam; these pin the *executor*:
// every generated in-model query must produce byte-identical results on
// the batch path and the tuple interpreter, over the same NULL-heavy /
// NaN-biased tables. The generators deliberately cover both NULL
// conventions the executor implements — `COUNT(DISTINCT …)` drops
// NULL-bearing tuples (SQL counting convention), while `DISTINCT`
// projections and set operations compare rows structurally, where a
// NULL row *does* equal a NULL row.

/// A literal in generated SQL text (NULL included: comparisons against
/// it must stay UNKNOWN on both paths).
fn literal() -> impl Strategy<Value = String> {
    prop_oneof![
        (0i64..4).prop_map(|i| i.to_string()),
        Just("'a'".to_string()),
        Just("'b'".to_string()),
        Just("0.5".to_string()),
        Just("NULL".to_string()),
    ]
}

/// One WHERE conjunct, with column indices resolved modulo the actual
/// arity at render time (the vendored proptest has no `flat_map`):
/// mask-compilable shapes plus the same-table column equality that
/// forces the batch path through its per-batch residual fallback.
#[derive(Debug, Clone)]
enum PredSpec {
    Cmp(usize, usize, String),
    IsNull(usize, bool),
    InList(usize, bool, Vec<String>),
    ColEq(usize, usize),
}

const CMP_OPS: [&str; 6] = ["=", "<>", "<", "<=", ">", ">="];

impl PredSpec {
    fn render(&self, alias: &str, arity: usize) -> String {
        let col = |i: usize| format!("{alias}.c{}", i % arity);
        match self {
            PredSpec::Cmp(c, op, lit) => format!("{} {} {lit}", col(*c), CMP_OPS[*op]),
            PredSpec::IsNull(c, negated) => {
                format!("{} IS {}NULL", col(*c), if *negated { "NOT " } else { "" })
            }
            PredSpec::InList(c, negated, lits) => format!(
                "{} {}IN ({})",
                col(*c),
                if *negated { "NOT " } else { "" },
                lits.join(", ")
            ),
            PredSpec::ColEq(a, b) => format!("{} = {}", col(*a), col(*b)),
        }
    }
}

fn pred_spec() -> impl Strategy<Value = PredSpec> {
    prop_oneof![
        (0usize..4, 0usize..6, literal()).prop_map(|(c, o, l)| PredSpec::Cmp(c, o, l)),
        (0usize..4, any::<bool>()).prop_map(|(c, n)| PredSpec::IsNull(c, n)),
        (
            0usize..4,
            any::<bool>(),
            prop::collection::vec(literal(), 1..4)
        )
            .prop_map(|(c, n, ls)| PredSpec::InList(c, n, ls)),
        (0usize..4, 0usize..4).prop_map(|(a, b)| PredSpec::ColEq(a, b)),
    ]
}

/// The projection/aggregate list, column indices modulo arity.
#[derive(Debug, Clone)]
enum SinkSpec {
    CountStar,
    CountDistinct(Vec<usize>),
    Project(Vec<usize>, bool),
}

impl SinkSpec {
    fn render(&self, alias: &str, arity: usize) -> String {
        let cols = |ix: &[usize]| {
            ix.iter()
                .map(|i| format!("{alias}.c{}", i % arity))
                .collect::<Vec<_>>()
                .join(", ")
        };
        match self {
            SinkSpec::CountStar => "COUNT(*)".to_string(),
            SinkSpec::CountDistinct(ix) => format!("COUNT(DISTINCT {})", cols(ix)),
            SinkSpec::Project(ix, distinct) => {
                format!("{}{}", if *distinct { "DISTINCT " } else { "" }, cols(ix))
            }
        }
    }
}

fn sink_spec() -> impl Strategy<Value = SinkSpec> {
    prop_oneof![
        Just(SinkSpec::CountStar),
        prop::collection::vec(0usize..4, 1..3).prop_map(SinkSpec::CountDistinct),
        (prop::collection::vec(0usize..4, 1..3), any::<bool>())
            .prop_map(|(ix, d)| SinkSpec::Project(ix, d)),
    ]
}

/// Executes `sql` on both paths and asserts identical results. The
/// generated shapes are all inside the batch model, so `None` (shape
/// rejection) is a failure here, not a fallback.
fn assert_batch_matches_tuple(db: &Database, sql: &str) -> Result<(), TestCaseError> {
    let q = parse_query(sql).expect("generated SQL parses");
    let backend = EncodedBackend::new();
    let mut report = BatchReport::default();
    let batch = execute_query_batch(db, &backend, &q, &mut report)
        .expect("batch execution succeeds")
        .unwrap_or_else(|| panic!("batch path rejected in-model query: {sql}"));
    let tuple = execute_query(db, &q).expect("tuple execution succeeds");
    prop_assert_eq!(batch, tuple, "batch != tuple for: {}", sql);
    Ok(())
}

proptest! {
    /// Single-table scans: counts, DISTINCT counts, projections (plain
    /// and DISTINCT, order-sensitive), masks and residuals.
    #[test]
    fn batch_single_table_matches_tuple(
        arity in 1usize..4,
        rows in raw_rows(4),
        sink in sink_spec(),
        preds in prop::collection::vec(pred_spec(), 0..3),
    ) {
        let t = make_table(arity, rows);
        let (db, _) = db_of(&[&t]);
        let mut sql = format!("SELECT {} FROM T0 x", sink.render("x", arity));
        if !preds.is_empty() {
            let parts: Vec<String> = preds.iter().map(|p| p.render("x", arity)).collect();
            sql.push_str(&format!(" WHERE {}", parts.join(" AND ")));
        }
        assert_batch_matches_tuple(&db, &sql)?;
    }

    /// Two-table equi-joins: translated hash probes, both counting and
    /// enumeration sinks, masks/residuals on either side.
    #[test]
    fn batch_join_matches_tuple(
        la in 1usize..4,
        ra in 1usize..4,
        lrows in raw_rows(3),
        rrows in raw_rows(3),
        pairs in prop::collection::vec((0usize..3, 0usize..3), 1..3),
        count_left in any::<bool>(),
        star in any::<bool>(),
        preds in prop::collection::vec((pred_spec(), any::<bool>()), 0..3),
    ) {
        let lt = make_table(la, lrows);
        let rt = make_table(ra, rrows);
        let (db, _) = db_of(&[&lt, &rt]);
        let mut conds: Vec<String> = pairs
            .iter()
            .map(|&(i, j)| format!("x.c{} = y.c{}", i % la, j % ra))
            .collect();
        for (p, on_left) in &preds {
            conds.push(if *on_left {
                p.render("x", la)
            } else {
                p.render("y", ra)
            });
        }
        let sink = if star {
            "COUNT(*)".to_string()
        } else if count_left {
            // Counted columns = the left join columns: the shape that
            // lowers onto the intersection kernel when unmasked.
            let cols: Vec<String> = pairs.iter().map(|&(i, _)| format!("x.c{}", i % la)).collect();
            format!("COUNT(DISTINCT {})", cols.join(", "))
        } else {
            let cols: Vec<String> = pairs.iter().map(|&(_, j)| format!("y.c{}", j % ra)).collect();
            format!("DISTINCT {}", cols.join(", "))
        };
        let sql = format!(
            "SELECT {sink} FROM T0 x, T1 y WHERE {}",
            conds.join(" AND ")
        );
        assert_batch_matches_tuple(&db, &sql)?;
    }

    /// Set operations: structural NULL equality, dedup, sorted output,
    /// right-associative chains — batch and tuple agree.
    #[test]
    fn batch_set_ops_match_tuple(
        arity0 in 1usize..4,
        arity1 in 1usize..4,
        rows0 in raw_rows(3),
        rows1 in raw_rows(3),
        width in 1usize..3,
        intersect in any::<bool>(),
        chain in any::<bool>(),
    ) {
        let t0 = make_table(arity0, rows0);
        let t1 = make_table(arity1, rows1);
        let (db, _) = db_of(&[&t0, &t1]);
        let cols = |alias: &str, arity: usize| -> String {
            (0..width)
                .map(|i| format!("{alias}.c{}", i % arity))
                .collect::<Vec<_>>()
                .join(", ")
        };
        let op = if intersect { "INTERSECT" } else { "UNION" };
        let mut sql = format!(
            "SELECT {} FROM T0 x {op} SELECT {} FROM T1 y",
            cols("x", arity0),
            cols("y", arity1)
        );
        if chain {
            sql.push_str(&format!(" UNION SELECT {} FROM T0 z", cols("z", arity0)));
        }
        assert_batch_matches_tuple(&db, &sql)?;
    }
}
