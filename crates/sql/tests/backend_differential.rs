//! Three-way backend differential suite: [`ReferenceBackend`],
//! [`EncodedBackend`], and [`SqlBackend`] must agree *exactly* on
//! every probe of the counting seam — `‖·‖` counts, join stats, FD
//! checks, LHS row groups — over generated tables biased toward
//! collisions, NULLs, and NaN.
//!
//! This is the paper's §2 interchangeability claim ("this function can
//! be computed in any SQL-like language") as a tested property: the
//! SQL path executes real generated `SELECT COUNT(DISTINCT …)`
//! statements, and [`SqlBackend::failures`] is asserted zero in every
//! property, so a quoting or generation bug cannot hide behind the
//! reference fallback. The same file gates the default and `parallel`
//! builds, and a CI leg re-runs the whole core pipeline suite with
//! `DBRE_BACKEND=sql` on top (the suite here always covers all three
//! backends regardless of that variable).

// Test-support helpers outside #[test] fns; panicking on fixture
// failure is test behaviour.
#![allow(clippy::expect_used)]

use dbre_relational::attr::AttrId;
use dbre_relational::backend::{CountBackend, EncodedBackend, ReferenceBackend};
use dbre_relational::counting::EquiJoin;
use dbre_relational::database::Database;
use dbre_relational::deps::{Fd, IndSide};
use dbre_relational::schema::{RelId, Relation};
use dbre_relational::table::Table;
use dbre_relational::value::{Domain, Value};
use dbre_sql::SqlBackend;
use proptest::prelude::*;

// ---- generators (collision/NULL/NaN-biased, like encode_differential)

fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..4).prop_map(Value::Int),
        (0i64..4).prop_map(Value::Int),
        (0i64..4).prop_map(Value::Int),
        Just(Value::Null),
        Just(Value::Null),
        Just(Value::str("a")),
        Just(Value::str("b")),
        Just(Value::float(f64::NAN)),
        Just(Value::float(0.5)),
        Just(Value::float(-0.0)),
    ]
}

fn raw_rows(max_arity: usize) -> impl Strategy<Value = Vec<Vec<Value>>> {
    prop::collection::vec(prop::collection::vec(value(), max_arity), 0..30)
}

fn make_table(arity: usize, rows: Vec<Vec<Value>>) -> Table {
    let rows = rows.into_iter().map(|mut r| {
        r.truncate(arity);
        r
    });
    Table::from_rows(arity, rows).expect("rows match arity")
}

/// `(table, non-empty attrs)`: the SQL path needs at least one column
/// (`COUNT(DISTINCT)` of nothing is not a statement); the empty-attrs
/// degenerate probe is covered by `encode_differential`.
fn table_and_attrs() -> impl Strategy<Value = (Table, Vec<AttrId>)> {
    (1usize..5, raw_rows(4), prop::collection::vec(0u16..4, 1..4)).prop_map(
        |(arity, rows, attrs)| {
            let attrs = attrs
                .into_iter()
                .map(|i| AttrId(i % arity as u16))
                .collect();
            (make_table(arity, rows), attrs)
        },
    )
}

#[allow(clippy::type_complexity)]
fn join_case() -> impl Strategy<Value = (Table, Vec<AttrId>, Table, Vec<AttrId>)> {
    (
        1usize..4,
        1usize..4,
        raw_rows(3),
        raw_rows(3),
        prop::collection::vec((0u16..3, 0u16..3), 1..3),
    )
        .prop_map(|(la, ra, lrows, rrows, pairs)| {
            let lattrs = pairs.iter().map(|&(l, _)| AttrId(l % la as u16)).collect();
            let rattrs = pairs.iter().map(|&(_, r)| AttrId(r % ra as u16)).collect();
            (make_table(la, lrows), lattrs, make_table(ra, rrows), rattrs)
        })
}

/// Wraps tables into a database with plainly-named relations/columns
/// so generated SQL parses (`add_relation_with_table` skips domain
/// validation, so the mixed-type proptest columns are fine — the
/// executor compares `Value`s structurally, like the reference).
fn db_of(tables: &[&Table]) -> (Database, Vec<RelId>) {
    let mut db = Database::new();
    let mut rels = Vec::new();
    for (k, t) in tables.iter().enumerate() {
        let cols: Vec<(String, Domain)> = (0..t.arity())
            .map(|i| (format!("c{i}"), Domain::Int))
            .collect();
        let named: Vec<(&str, Domain)> = cols.iter().map(|(n, d)| (n.as_str(), *d)).collect();
        rels.push(
            db.add_relation_with_table(Relation::of(&format!("T{k}"), &named), (*t).clone())
                .expect("arity matches"),
        );
    }
    (db, rels)
}

/// The matrix under test. Boxed so the three concrete types share one
/// loop; the SQL backend is returned separately for its failure probe.
fn backends() -> (Vec<Box<dyn CountBackend>>, SqlBackend) {
    (
        vec![Box::new(ReferenceBackend), Box::new(EncodedBackend::new())],
        SqlBackend::new(),
    )
}

proptest! {
    /// `‖r[attrs]‖` agrees across all three backends.
    #[test]
    fn counts_agree(case in table_and_attrs()) {
        let (t, attrs) = case;
        let (db, rels) = db_of(&[&t]);
        let rel = rels[0];
        let (others, sql) = backends();
        let expected = ReferenceBackend.count_distinct(&db, rel, &attrs);
        for b in &others {
            prop_assert_eq!(b.count_distinct(&db, rel, &attrs), expected, "backend {}", b.name());
        }
        prop_assert_eq!(sql.count_distinct(&db, rel, &attrs), expected, "backend sql");
        prop_assert_eq!(sql.failures(), 0, "generated SQL must execute");
    }

    /// The three IND-Discovery cardinalities agree across backends,
    /// including composite joins.
    #[test]
    fn join_stats_agree(case in join_case()) {
        let (lt, lattrs, rt, rattrs) = case;
        let (db, rels) = db_of(&[&lt, &rt]);
        let join = EquiJoin::try_new(
            IndSide::new(rels[0], lattrs),
            IndSide::new(rels[1], rattrs),
        )
        .expect("equal arity by construction");
        let (others, sql) = backends();
        let expected = ReferenceBackend.join_stats(&db, &join);
        for b in &others {
            prop_assert_eq!(b.join_stats(&db, &join), expected, "backend {}", b.name());
        }
        prop_assert_eq!(sql.join_stats(&db, &join), expected, "backend sql");
        prop_assert_eq!(sql.failures(), 0, "generated SQL must execute");

        // ind_holds is derived from join_stats through the seam; pin
        // the derived answer too (left side included iff n_join = n_left).
        let ind = dbre_relational::deps::Ind {
            lhs: join.left.clone(),
            rhs: join.right.clone(),
        };
        let holds = db.ind_holds(&ind);
        for b in &others {
            prop_assert_eq!(b.ind_holds(&db, &ind), holds, "backend {}", b.name());
        }
        prop_assert_eq!(sql.ind_holds(&db, &ind), holds, "backend sql");
    }

    /// FD checks (SQL NULL convention) agree across backends.
    #[test]
    fn fd_checks_agree(
        case in table_and_attrs(),
        rhs_seed in prop::collection::vec(0u16..4, 1..3),
    ) {
        let (t, lhs) = case;
        let rhs: Vec<AttrId> = rhs_seed
            .into_iter()
            .map(|i| AttrId(i % t.arity() as u16))
            .collect();
        let (db, rels) = db_of(&[&t]);
        let fd = Fd::new(
            rels[0],
            lhs.iter().copied().collect(),
            rhs.iter().copied().collect(),
        );
        let (others, sql) = backends();
        let expected = db.fd_holds(&fd);
        for b in &others {
            prop_assert_eq!(b.fd_holds(&db, &fd), expected, "backend {}", b.name());
        }
        prop_assert_eq!(sql.fd_holds(&db, &fd), expected, "backend sql");
        prop_assert_eq!(sql.failures(), 0, "generated SQL must execute");
    }

    /// LHS row groups (row indices, SQL NULL convention) agree across
    /// backends — membership and ordering.
    #[test]
    fn lhs_groups_agree(case in table_and_attrs()) {
        let (t, attrs) = case;
        let (db, rels) = db_of(&[&t]);
        let rel = rels[0];
        let (others, sql) = backends();
        let expected = ReferenceBackend.lhs_groups(&db, rel, &attrs);
        for b in &others {
            prop_assert_eq!(&b.lhs_groups(&db, rel, &attrs), &expected, "backend {}", b.name());
        }
        prop_assert_eq!(&sql.lhs_groups(&db, rel, &attrs), &expected, "backend sql");
    }
}
