//! Property tests for the SQL substrate: the lexer/parser must be total
//! (no panics on arbitrary input) and literal round-trips must preserve
//! values through rendering + parsing + catalog loading.

use dbre_relational::value::Value;
use dbre_sql::catalog::Catalog;
use dbre_sql::executor::run_sql;
use dbre_sql::lexer::tokenize;
use dbre_sql::parser::parse_script;
use proptest::prelude::*;

/// Renders a value as a SQL literal.
fn render_literal(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Float(x) => format!("{:?}", x.get()),
        Value::Str(s) => format!("'{}'", s.replace('\'', "''")),
        Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
        Value::Date(d) => format!("DATE '{d}'"),
    }
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only: NaN/inf have no SQL literal form.
        (-1.0e10f64..1.0e10).prop_map(Value::float),
        "[a-z ']{0,12}".prop_map(Value::str),
        any::<bool>().prop_map(Value::Bool),
        (0i32..40000).prop_map(|d| Value::Date(dbre_relational::Date(d))),
    ]
}

proptest! {
    #[test]
    fn tokenizer_is_total(src in "\\PC{0,200}") {
        // Must never panic; errors are fine.
        let _ = tokenize(&src);
    }

    #[test]
    fn parser_is_total_on_token_soup(src in "(select|from|where|[a-z]{1,4}|[0-9]{1,3}|[(),;.*=<>'\"-]| ){0,60}") {
        let _ = parse_script(&src);
    }

    #[test]
    fn literal_roundtrip_through_insert(vals in prop::collection::vec(value_strategy(), 1..8)) {
        // One row of N values into a table of N text-agnostic columns.
        let cols: Vec<String> = (0..vals.len())
            .map(|i| {
                let ty = match &vals[i] {
                    Value::Null => "INT",
                    Value::Int(_) => "INT",
                    Value::Float(_) => "REAL",
                    Value::Str(_) => "VARCHAR(40)",
                    Value::Bool(_) => "BOOLEAN",
                    Value::Date(_) => "DATE",
                };
                format!("c{i} {ty}")
            })
            .collect();
        let lits: Vec<String> = vals.iter().map(render_literal).collect();
        let script = format!(
            "CREATE TABLE T ({}); INSERT INTO T VALUES ({});",
            cols.join(", "),
            lits.join(", ")
        );
        let mut cat = Catalog::new();
        cat.load_script(&script).unwrap();
        let db = cat.into_database();
        let rel = db.rel("T").unwrap();
        let got = db.table(rel).row(0);
        prop_assert_eq!(got, vals);
    }

    #[test]
    fn hash_join_matches_counting_primitives(
        left in prop::collection::vec((0i64..8, 0i64..5), 0..25),
        right in prop::collection::vec((0i64..8, 0i64..5), 0..25),
    ) {
        // The executor's hash-join path must agree with the relational
        // counting primitives on arbitrary data, including duplicates.
        let mut script = String::from(
            "CREATE TABLE L (a INT, extra INT); CREATE TABLE R (b INT, extra2 INT);",
        );
        for (a, x) in &left {
            script.push_str(&format!("INSERT INTO L VALUES ({a}, {x});"));
        }
        for (b, x) in &right {
            script.push_str(&format!("INSERT INTO R VALUES ({b}, {x});"));
        }
        let mut cat = Catalog::new();
        cat.load_script(&script).unwrap();
        let db = cat.into_database();

        let via_sql = run_sql(&db, "SELECT COUNT(DISTINCT a) FROM L, R WHERE a = b")
            .unwrap()
            .count()
            .unwrap();
        let l = db.rel("L").unwrap();
        let r = db.rel("R").unwrap();
        let join = dbre_relational::EquiJoin::try_new(
            dbre_relational::IndSide::single(l, dbre_relational::AttrId(0)),
            dbre_relational::IndSide::single(r, dbre_relational::AttrId(0)),
        ).unwrap();
        let stats = dbre_relational::join_stats(&db, &join);
        prop_assert_eq!(via_sql, stats.n_join);

        // Join cardinality (bag semantics) equals the nested-loop count.
        let joined = run_sql(&db, "SELECT COUNT(*) FROM L, R WHERE a = b")
            .unwrap()
            .count()
            .unwrap();
        let expected: usize = left
            .iter()
            .map(|(a, _)| right.iter().filter(|(b, _)| b == a).count())
            .sum();
        prop_assert_eq!(joined, expected);
    }

    #[test]
    fn count_star_equals_row_count(n in 0usize..30) {
        let mut script = String::from("CREATE TABLE T (x INT);");
        for i in 0..n {
            script.push_str(&format!("INSERT INTO T VALUES ({i});"));
        }
        let mut cat = Catalog::new();
        cat.load_script(&script).unwrap();
        let db = cat.into_database();
        let c = run_sql(&db, "SELECT COUNT(*) FROM T").unwrap().count().unwrap();
        prop_assert_eq!(c, n);
        let d = run_sql(&db, "SELECT COUNT(DISTINCT x) FROM T").unwrap().count().unwrap();
        prop_assert_eq!(d, n);
    }
}
