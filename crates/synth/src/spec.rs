//! Synthetic conceptual-schema specifications and their random
//! generator.
//!
//! A [`SynthSpec`] is the *ground truth*: entities with integer
//! identifiers (single-attribute or composite, per
//! [`SynthConfig::p_composite_key`]), many-to-one foreign keys between
//! entities, many-to-many relationship relations, and is-a edges. The forward
//! mapping ([`crate::construct`]) turns it into a normalized 3NF
//! database; the denormalizer then merges attributes along chosen FK
//! edges — producing exactly the kind of legacy 1NF/2NF schema the
//! paper reverse-engineers, with the normalized schema as the answer
//! key.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of entities.
    pub n_entities: usize,
    /// Value attributes per entity (uniform in this range, inclusive).
    pub attrs_per_entity: (usize, usize),
    /// Number of many-to-many relationship relations.
    pub n_relationships: usize,
    /// Participants per relationship (2 or 3, uniform).
    pub max_relationship_arity: usize,
    /// Extra entity→entity foreign keys.
    pub n_entity_fks: usize,
    /// Number of is-a specializations.
    pub n_isa: usize,
    /// Probability that an entity uses a *composite* (two-attribute)
    /// identifier instead of a single one.
    pub p_composite_key: f64,
    /// Rows per entity.
    pub rows_per_entity: usize,
    /// Rows per relationship relation.
    pub rows_per_relationship: usize,
    /// RNG seed (everything downstream is deterministic given this).
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            n_entities: 6,
            attrs_per_entity: (1, 3),
            n_relationships: 3,
            max_relationship_arity: 3,
            n_entity_fks: 3,
            n_isa: 1,
            p_composite_key: 0.0,
            rows_per_entity: 200,
            rows_per_relationship: 400,
            seed: 42,
        }
    }
}

/// One entity of the conceptual schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntitySpec {
    /// Relation/entity name (`Ent3`).
    pub name: String,
    /// Identifier attribute names (`ent3_id`, or `ent3_id_hi` +
    /// `ent3_id_lo` for composite identifiers) — deliberately reused as
    /// the FK attribute names at referencing sites, so that recovered
    /// relations carry the same attribute sets as the ground truth
    /// (the *pipeline* never looks at names; only the metrics do).
    pub key_attrs: Vec<String>,
    /// Value attribute names (`ent3_a0`, …).
    pub attrs: Vec<String>,
    /// is-a parent (index into `entities`), if specialized.
    pub isa_parent: Option<usize>,
    /// Row count (≤ parent's when specialized).
    pub rows: usize,
}

/// Where an FK attribute lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FkSource {
    /// An entity relation (index into `entities`).
    Entity(usize),
    /// A relationship relation (index into `relationships`).
    Relationship(usize),
}

/// A foreign-key edge: `source.attrs → entities[target].key`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FkEdge {
    /// Which relation holds the FK attributes.
    pub source: FkSource,
    /// The FK attribute names (equal the target's `key_attrs`,
    /// possibly suffixed on collision), positionally parallel to them.
    pub attrs: Vec<String>,
    /// Referenced entity index.
    pub target: usize,
}

/// A many-to-many relationship relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationshipSpec {
    /// Relation name (`Rel1`).
    pub name: String,
    /// Participant entity indices.
    pub participants: Vec<usize>,
    /// FK attribute name lists, parallel to `participants` (composite
    /// participants contribute several columns).
    pub ref_attrs: Vec<Vec<String>>,
    /// Own value attributes.
    pub attrs: Vec<String>,
    /// Row count.
    pub rows: usize,
}

/// The full conceptual specification.
#[derive(Debug, Clone, Default)]
pub struct SynthSpec {
    /// Entities.
    pub entities: Vec<EntitySpec>,
    /// Relationship relations.
    pub relationships: Vec<RelationshipSpec>,
    /// Entity→entity FK edges (relationship refs are implied by
    /// [`RelationshipSpec::participants`]).
    pub entity_fks: Vec<FkEdge>,
}

impl SynthSpec {
    /// All FK edges, entity FKs first then relationship refs, in
    /// deterministic order.
    pub fn all_fk_edges(&self) -> Vec<FkEdge> {
        let mut edges = self.entity_fks.clone();
        for (ri, r) in self.relationships.iter().enumerate() {
            for (pi, &target) in r.participants.iter().enumerate() {
                edges.push(FkEdge {
                    source: FkSource::Relationship(ri),
                    attrs: r.ref_attrs[pi].clone(),
                    target,
                });
            }
        }
        edges
    }

    /// The relation name of an FK source.
    pub fn source_name(&self, s: FkSource) -> &str {
        match s {
            FkSource::Entity(i) => &self.entities[i].name,
            FkSource::Relationship(i) => &self.relationships[i].name,
        }
    }

    /// Value-attribute cardinality used by the data generator: values
    /// of `attr j` are `id % (3 + j)` — functional in the id, small
    /// enough to exercise duplicate grouping.
    pub fn attr_value(entity: usize, attr_j: usize, id: i64) -> String {
        format!("e{entity}a{attr_j}_v{}", id % (3 + attr_j as i64))
    }

    /// Radix of the composite-key encoding.
    pub const COMPOSITE_BASE: i64 = 10;

    /// Encodes an instance index as key-column values: identity for
    /// single-attribute identifiers, `(id / B, id % B)` for composite
    /// ones. The encoding is injective, so composite keys stay unique.
    pub fn key_values(width: usize, id: i64) -> Vec<i64> {
        match width {
            1 => vec![id],
            2 => vec![id / Self::COMPOSITE_BASE, id % Self::COMPOSITE_BASE],
            other => panic!("unsupported key width {other}"),
        }
    }
}

/// Generates a random specification.
pub fn generate_spec(cfg: &SynthConfig) -> SynthSpec {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut spec = SynthSpec::default();

    // Entities; is-a parents point at lower indices (acyclic).
    for i in 0..cfg.n_entities {
        let n_attrs = rng.random_range(cfg.attrs_per_entity.0..=cfg.attrs_per_entity.1);
        let key_attrs = if rng.random_bool(cfg.p_composite_key.clamp(0.0, 1.0)) {
            vec![format!("ent{i}_id_hi"), format!("ent{i}_id_lo")]
        } else {
            vec![format!("ent{i}_id")]
        };
        spec.entities.push(EntitySpec {
            name: format!("Ent{i}"),
            key_attrs,
            attrs: (0..n_attrs).map(|j| format!("ent{i}_a{j}")).collect(),
            isa_parent: None,
            rows: cfg.rows_per_entity,
        });
    }
    let mut isa_done = 0;
    while isa_done < cfg.n_isa && cfg.n_entities >= 2 {
        let child = rng.random_range(1..cfg.n_entities);
        let parent = rng.random_range(0..child);
        if spec.entities[child].isa_parent.is_none()
            && spec.entities[parent].isa_parent != Some(child)
        {
            spec.entities[child].isa_parent = Some(parent);
            spec.entities[child].rows = (spec.entities[parent].rows / 2).max(1);
            // A specialization shares its parent's identifier shape.
            if spec.entities[child].key_attrs.len() != spec.entities[parent].key_attrs.len() {
                let c = child;
                spec.entities[c].key_attrs = if spec.entities[parent].key_attrs.len() == 2 {
                    vec![format!("ent{c}_id_hi"), format!("ent{c}_id_lo")]
                } else {
                    vec![format!("ent{c}_id")]
                };
            }
            isa_done += 1;
        } else {
            break;
        }
    }

    // Entity→entity FKs: source must differ from target; avoid is-a
    // children as drop-complicating sources of confusion is fine, any
    // pair works for the pipeline.
    for _ in 0..cfg.n_entity_fks {
        if cfg.n_entities < 2 {
            break;
        }
        let source = rng.random_range(0..cfg.n_entities);
        let mut target = rng.random_range(0..cfg.n_entities);
        if target == source {
            target = (target + 1) % cfg.n_entities;
        }
        let bases = spec.entities[target].key_attrs.clone();
        let attrs: Vec<String> = bases
            .iter()
            .map(|b| unique_attr_name(&spec, FkSource::Entity(source), b))
            .collect();
        spec.entity_fks.push(FkEdge {
            source: FkSource::Entity(source),
            attrs,
            target,
        });
    }

    // Relationships.
    for i in 0..cfg.n_relationships {
        if cfg.n_entities < 2 {
            break;
        }
        let arity = rng.random_range(2..=cfg.max_relationship_arity.max(2));
        let mut participants = Vec::new();
        while participants.len() < arity {
            let e = rng.random_range(0..cfg.n_entities);
            if !participants.contains(&e) {
                participants.push(e);
            }
            if participants.len() >= cfg.n_entities {
                break;
            }
        }
        let ref_attrs: Vec<Vec<String>> = participants
            .iter()
            .map(|&e| spec.entities[e].key_attrs.clone())
            .collect();
        let n_attrs = rng.random_range(0..=2);
        spec.relationships.push(RelationshipSpec {
            name: format!("Rel{i}"),
            participants,
            ref_attrs,
            attrs: (0..n_attrs).map(|j| format!("rel{i}_a{j}")).collect(),
            rows: cfg.rows_per_relationship,
        });
    }

    spec
}

fn unique_attr_name(spec: &SynthSpec, source: FkSource, base: &str) -> String {
    let existing: Vec<&str> = match source {
        FkSource::Entity(i) => {
            let e = &spec.entities[i];
            e.key_attrs
                .iter()
                .map(String::as_str)
                .chain(e.attrs.iter().map(String::as_str))
                .chain(
                    spec.entity_fks
                        .iter()
                        .filter(|f| f.source == source)
                        .flat_map(|f| f.attrs.iter().map(String::as_str)),
                )
                .collect()
        }
        FkSource::Relationship(i) => {
            let r = &spec.relationships[i];
            r.ref_attrs
                .iter()
                .flatten()
                .chain(r.attrs.iter())
                .map(String::as_str)
                .collect()
        }
    };
    if !existing.contains(&base) {
        return base.to_string();
    }
    let mut k = 2;
    loop {
        let cand = format!("{base}_{k}");
        if !existing.contains(&cand.as_str()) {
            return cand;
        }
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::default();
        let a = generate_spec(&cfg);
        let b = generate_spec(&cfg);
        assert_eq!(a.entities, b.entities);
        assert_eq!(a.relationships, b.relationships);
        assert_eq!(a.entity_fks, b.entity_fks);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_spec(&SynthConfig::default());
        let b = generate_spec(&SynthConfig {
            seed: 7,
            ..Default::default()
        });
        // Structures may coincide on tiny configs, but FK targets are
        // random; compare the full picture.
        assert!(a.entity_fks != b.entity_fks || a.relationships != b.relationships);
    }

    #[test]
    fn spec_is_well_formed() {
        let cfg = SynthConfig {
            n_entities: 8,
            n_relationships: 4,
            n_entity_fks: 5,
            n_isa: 2,
            ..Default::default()
        };
        let spec = generate_spec(&cfg);
        assert_eq!(spec.entities.len(), 8);
        for fk in &spec.entity_fks {
            let FkSource::Entity(s) = fk.source else {
                panic!("entity fk from relationship")
            };
            assert_ne!(s, fk.target, "self-referencing fk");
            assert!(fk.target < spec.entities.len());
        }
        for r in &spec.relationships {
            assert!(r.participants.len() >= 2);
            assert_eq!(r.participants.len(), r.ref_attrs.len());
            let mut p = r.participants.clone();
            p.dedup();
            assert_eq!(p.len(), r.participants.len(), "duplicate participant");
        }
        for (i, e) in spec.entities.iter().enumerate() {
            if let Some(p) = e.isa_parent {
                assert!(p < i, "is-a parent must precede child");
                assert!(e.rows <= spec.entities[p].rows);
            }
        }
    }

    #[test]
    fn all_fk_edges_includes_relationship_refs() {
        let spec = generate_spec(&SynthConfig::default());
        let edges = spec.all_fk_edges();
        let rel_edges = edges
            .iter()
            .filter(|e| matches!(e.source, FkSource::Relationship(_)))
            .count();
        let expected: usize = spec
            .relationships
            .iter()
            .map(|r| r.participants.len())
            .sum();
        assert_eq!(rel_edges, expected);
        assert_eq!(edges.len(), expected + spec.entity_fks.len());
    }

    #[test]
    fn attr_values_are_functional_in_id() {
        assert_eq!(
            SynthSpec::attr_value(1, 0, 3),
            SynthSpec::attr_value(1, 0, 3)
        );
        assert_eq!(
            SynthSpec::attr_value(1, 0, 0),
            SynthSpec::attr_value(1, 0, 3)
        );
        assert_ne!(
            SynthSpec::attr_value(1, 0, 0),
            SynthSpec::attr_value(1, 0, 1)
        );
    }

    #[test]
    fn fk_attr_name_collisions_get_suffixes() {
        // Force two FKs from Ent0 to Ent1.
        let mut spec = SynthSpec {
            entities: vec![
                EntitySpec {
                    name: "Ent0".into(),
                    key_attrs: vec!["ent0_id".into()],
                    attrs: vec![],
                    isa_parent: None,
                    rows: 5,
                },
                EntitySpec {
                    name: "Ent1".into(),
                    key_attrs: vec!["ent1_id".into()],
                    attrs: vec![],
                    isa_parent: None,
                    rows: 5,
                },
            ],
            ..Default::default()
        };
        let a1 = unique_attr_name(&spec, FkSource::Entity(0), "ent1_id");
        spec.entity_fks.push(FkEdge {
            source: FkSource::Entity(0),
            attrs: vec![a1.clone()],
            target: 1,
        });
        let a2 = unique_attr_name(&spec, FkSource::Entity(0), "ent1_id");
        assert_eq!(a1, "ent1_id");
        assert_eq!(a2, "ent1_id_2");
    }
}
