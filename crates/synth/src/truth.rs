//! The ground-truth-backed expert: an [`Oracle`] that answers every
//! question from the answer key. It is the *upper bound* on what the
//! interactive method can achieve — benchmark X3 compares it against
//! [`dbre_core::AutoOracle`] policies and the conservative
//! [`dbre_core::DenyOracle`].

use crate::construct::{GroundTruth, JoinKind};
use dbre_core::oracle::{FdContext, HiddenContext, NamingContext, NeiContext, NeiDecision, Oracle};
use dbre_relational::database::Database;
use dbre_relational::deps::IndSide;

/// Expert user with perfect knowledge of the ground truth.
#[derive(Debug, Clone)]
pub struct TruthOracle {
    truth: GroundTruth,
}

impl TruthOracle {
    /// Wraps an answer key.
    pub fn new(truth: GroundTruth) -> Self {
        TruthOracle { truth }
    }

    fn side_names(db: &Database, side: &IndSide) -> (String, Vec<String>) {
        let rel = db.schema.relation(side.rel);
        (
            rel.name.clone(),
            side.attrs
                .iter()
                .map(|a| rel.attr_name(*a).to_string())
                .collect(),
        )
    }
}

impl Oracle for TruthOracle {
    fn resolve_nei(&mut self, ctx: &NeiContext<'_>) -> NeiDecision {
        let left = Self::side_names(ctx.db, &ctx.join.left);
        let right = Self::side_names(ctx.db, &ctx.join.right);
        for spec in &self.truth.join_specs {
            let sl = (&spec.left.0, &spec.left.1);
            let sr = (&spec.right.0, &spec.right.1);
            let forward = sl == (&left.0, &left.1) && sr == (&right.0, &right.1);
            let backward = sl == (&right.0, &right.1) && sr == (&left.0, &left.1);
            if !forward && !backward {
                continue;
            }
            return match spec.kind {
                // A lost shared identifier: conceptualize it.
                JoinKind::Shared { .. } => NeiDecision::Conceptualize,
                // A corrupted FK or is-a: force the true direction —
                // the spec's left side is always the contained one.
                JoinKind::Fk { .. } | JoinKind::IsA { .. } => {
                    if forward {
                        NeiDecision::ForceLeftInRight
                    } else {
                        NeiDecision::ForceRightInLeft
                    }
                }
            };
        }
        NeiDecision::Ignore
    }

    fn enforce_fd(&mut self, ctx: &FdContext<'_>) -> bool {
        // Enforce when the candidate's (relation, LHS) pair is an
        // expected embedded dependency and the RHS attribute belongs to
        // its expected right-hand side (corruption noise must not trick
        // the expert into keeping junk-valued attributes out — the
        // expert "knows" the application domain).
        let relation = ctx.db.schema.relation(ctx.fd.rel);
        let lhs: Vec<String> = ctx
            .fd
            .lhs
            .iter()
            .map(|a| relation.attr_name(a).to_string())
            .collect();
        let rhs: Vec<String> = ctx
            .fd
            .rhs
            .iter()
            .map(|a| relation.attr_name(a).to_string())
            .collect();
        self.truth.expected_fds.iter().any(|fd| {
            fd.rel == relation.name
                && fd.lhs == lhs
                && rhs.iter().all(|b| {
                    fd.rhs
                        .iter()
                        .any(|e| b == e || b.starts_with(&format!("{e}_")))
                })
        })
    }

    fn conceptualize_hidden(&mut self, ctx: &HiddenContext<'_>) -> bool {
        let relation = ctx.db.schema.relation(ctx.candidate.rel);
        let attrs: Vec<String> = ctx
            .candidate
            .attrs
            .iter()
            .map(|a| relation.attr_name(a).to_string())
            .collect();
        self.truth.hidden_sites.iter().any(|(rel, site_attrs, _)| {
            rel == &relation.name && {
                // QualAttrs carries a *set* (sorted by attr id);
                // compare as sets.
                let mut a = attrs.clone();
                let mut b = site_attrs.clone();
                a.sort();
                b.sort();
                a == b
            }
        })
    }

    fn name_new_relation(&mut self, ctx: &NamingContext<'_>) -> String {
        // Names do not influence the quality metrics (those compare
        // attribute-name sets); keep the derived default.
        ctx.default_name.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_workload, DenormConfig};
    use crate::spec::{generate_spec, SynthConfig};
    use dbre_relational::counting::{EquiJoin, JoinStats};

    fn workload() -> (Database, GroundTruth) {
        let spec = generate_spec(&SynthConfig {
            n_entities: 5,
            n_relationships: 2,
            n_entity_fks: 3,
            rows_per_entity: 30,
            rows_per_relationship: 40,
            ..Default::default()
        });
        build_workload(
            &spec,
            &DenormConfig {
                p_embed: 1.0,
                p_drop: 1.0,
                ..Default::default()
            },
            1,
        )
    }

    #[test]
    fn fk_nei_forces_true_direction() {
        let (db, truth) = workload();
        let Some(spec) = truth
            .join_specs
            .iter()
            .find(|s| matches!(s.kind, JoinKind::Fk { .. }))
        else {
            return; // plan may have dropped everything referenced
        };
        let mut oracle = TruthOracle::new(truth.clone());
        let lcols: Vec<&str> = spec.left.1.iter().map(String::as_str).collect();
        let rcols: Vec<&str> = spec.right.1.iter().map(String::as_str).collect();
        let (lrel, lids) = db.resolve(&spec.left.0, &lcols).unwrap();
        let (rrel, rids) = db.resolve(&spec.right.0, &rcols).unwrap();
        let join = EquiJoin::try_new(IndSide::new(lrel, lids), IndSide::new(rrel, rids)).unwrap();
        let ctx = NeiContext {
            db: &db,
            join: &join,
            stats: JoinStats {
                n_left: 10,
                n_right: 12,
                n_join: 9,
            },
        };
        assert_eq!(oracle.resolve_nei(&ctx), NeiDecision::ForceLeftInRight);
        // Flipped join forces the other way.
        let flipped = EquiJoin::try_new(join.right.clone(), join.left.clone()).unwrap();
        let ctx = NeiContext {
            db: &db,
            join: &flipped,
            stats: JoinStats {
                n_left: 12,
                n_right: 10,
                n_join: 9,
            },
        };
        assert_eq!(oracle.resolve_nei(&ctx), NeiDecision::ForceRightInLeft);
    }

    #[test]
    fn unknown_join_is_ignored() {
        let (db, truth) = workload();
        let mut oracle = TruthOracle::new(truth);
        // Join two arbitrary value attributes — not a navigation.
        let names: Vec<String> = db.schema.iter().map(|(_, r)| r.name.clone()).collect();
        let rel0 = db.rel(&names[0]).unwrap();
        let join = EquiJoin::try_new(IndSide::single(rel0, dbre_relational::AttrId(0)), {
            IndSide::single(rel0, dbre_relational::AttrId(0))
        })
        .unwrap();
        let ctx = NeiContext {
            db: &db,
            join: &join,
            stats: JoinStats {
                n_left: 1,
                n_right: 1,
                n_join: 1,
            },
        };
        assert_eq!(oracle.resolve_nei(&ctx), NeiDecision::Ignore);
    }

    #[test]
    fn hidden_sites_conceptualized() {
        let (db, truth) = workload();
        if truth.hidden_sites.is_empty() {
            return;
        }
        let (rel_name, site_attrs, _) = truth.hidden_sites[0].clone();
        let all_sites = truth.hidden_sites.clone();
        let mut oracle = TruthOracle::new(truth);
        let cols: Vec<&str> = site_attrs.iter().map(String::as_str).collect();
        let (rel, set) = db.resolve_set(&rel_name, &cols).unwrap();
        let cand = dbre_relational::QualAttrs::new(rel, set);
        assert!(oracle.conceptualize_hidden(&HiddenContext {
            db: &db,
            candidate: &cand
        }));
        // A non-site attribute is declined.
        let other =
            dbre_relational::QualAttrs::new(rel, dbre_relational::AttrSet::from_indices([0u16]));
        let relation = db.schema.relation(rel);
        // The oracle set-matches against *every* hidden site of the
        // relation, so only assert a decline when no site is exactly
        // `{attr 0}`.
        let attr0 = relation.attr_name(dbre_relational::AttrId(0));
        if !all_sites
            .iter()
            .any(|(r, site, _)| r == &rel_name && site.len() == 1 && site[0] == attr0)
        {
            assert!(!oracle.conceptualize_hidden(&HiddenContext {
                db: &db,
                candidate: &other
            }));
        }
    }
}
