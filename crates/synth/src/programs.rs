//! Application-program generation.
//!
//! Given the ground truth's navigation specs, emits legacy application
//! programs exhibiting a configurable fraction of them — rotating
//! through the equi-join forms the paper enumerates (§4): unnested
//! `WHERE` joins, `JOIN … ON`, nested `IN` subqueries, correlated
//! `EXISTS`, and `INTERSECT` — plus join-free noise programs, some as
//! plain SQL scripts and some as embedded SQL in host code.

use crate::construct::{GroundTruth, JoinSpec};
use dbre_extract::ProgramSource;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Program-generation knobs.
#[derive(Debug, Clone)]
pub struct ProgramConfig {
    /// Fraction of navigation specs that get at least one program.
    pub coverage: f64,
    /// Number of join-free noise programs.
    pub noise_programs: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for ProgramConfig {
    fn default() -> Self {
        ProgramConfig {
            coverage: 1.0,
            noise_programs: 2,
            seed: 11,
        }
    }
}

/// Generated programs plus which specs they cover.
#[derive(Debug, Clone)]
pub struct GeneratedPrograms {
    /// The program files.
    pub programs: Vec<ProgramSource>,
    /// Parallel to `truth.join_specs`: covered by some program?
    pub covered: Vec<bool>,
}

/// Emits programs for the workload.
pub fn generate_programs(truth: &GroundTruth, cfg: &ProgramConfig) -> GeneratedPrograms {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7072_6f67);
    let mut programs = Vec::new();
    let mut covered = vec![false; truth.join_specs.len()];

    for (i, spec) in truth.join_specs.iter().enumerate() {
        if !rng.random_bool(cfg.coverage.clamp(0.0, 1.0)) {
            continue;
        }
        covered[i] = true;
        let form = i % 5;
        programs.push(render_program(spec, i, form));
    }

    for k in 0..cfg.noise_programs {
        // Join-free selections over arbitrary relations.
        let rel = &truth.spec.entities[k % truth.spec.entities.len().max(1)];
        if truth.plan.dropped[k % truth.spec.entities.len().max(1)] {
            continue;
        }
        programs.push(ProgramSource::sql(
            format!("noise_{k}.sql"),
            format!(
                "SELECT {key} FROM {rel} WHERE {key} > {k};",
                key = rel.key_attrs[0],
                rel = rel.name
            ),
        ));
    }

    GeneratedPrograms { programs, covered }
}

/// Renders one navigation in one of the five legacy forms. Composite
/// navigations (several columns) use multi-conjunct forms; the nested
/// `IN` form is single-column-only in the SQL subset, so composite
/// specs fall back to the unnested `WHERE` form there.
fn render_program(spec: &JoinSpec, idx: usize, form: usize) -> ProgramSource {
    let (lr, lcols) = (&spec.left.0, &spec.left.1);
    let (rr, rcols) = (&spec.right.0, &spec.right.1);
    let composite = lcols.len() > 1;
    let conds = |lq: &str, rq: &str| -> String {
        lcols
            .iter()
            .zip(rcols)
            .map(|(l, r)| format!("{lq}.{l} = {rq}.{r}"))
            .collect::<Vec<_>>()
            .join(" AND ")
    };
    let la0 = &lcols[0];
    let ra0 = &rcols[0];
    match form {
        // Nested IN subquery (unary navigations only).
        2 if !composite => ProgramSource::sql(
            format!("batch_{idx}.sql"),
            format!("SELECT x.{la0} FROM {lr} x WHERE x.{la0} IN (SELECT y.{ra0} FROM {rr} y);"),
        ),
        // Explicit JOIN … ON.
        1 => ProgramSource::sql(
            format!("form_{idx}.sql"),
            format!("SELECT * FROM {lr} x JOIN {rr} y ON {};", conds("x", "y")),
        ),
        // Correlated EXISTS inside embedded C.
        3 => ProgramSource::embedded(
            format!("prog_{idx}.c"),
            format!(
                "int main() {{\n  EXEC SQL SELECT x.{la0} FROM {lr} x \
                 WHERE EXISTS (SELECT * FROM {rr} y WHERE {});\n  return 0;\n}}\n",
                conds("x", "y")
            ),
        ),
        // INTERSECT batch check, COBOL-style embedding.
        4 => ProgramSource::embedded(
            format!("check_{idx}.cob"),
            format!(
                "PROCEDURE DIVISION.\n EXEC SQL \
                 SELECT {} FROM {lr} INTERSECT SELECT {} FROM {rr} END-EXEC.\n",
                lcols.join(", "),
                rcols.join(", ")
            ),
        ),
        // Unnested WHERE join (default, and the composite fallback).
        _ => ProgramSource::sql(
            format!("report_{idx}.sql"),
            format!(
                "SELECT x.{la0} FROM {lr} x, {rr} y WHERE {};",
                conds("x", "y")
            ),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_workload, DenormConfig};
    use crate::spec::{generate_spec, SynthConfig};
    use dbre_extract::{extract_programs, ExtractConfig};

    fn workload() -> (dbre_relational::Database, GroundTruth) {
        let spec = generate_spec(&SynthConfig {
            n_entities: 5,
            n_relationships: 2,
            n_entity_fks: 3,
            rows_per_entity: 30,
            rows_per_relationship: 40,
            ..Default::default()
        });
        build_workload(&spec, &DenormConfig::default(), 1)
    }

    #[test]
    fn full_coverage_covers_every_spec() {
        let (_, truth) = workload();
        let gen = generate_programs(&truth, &ProgramConfig::default());
        assert!(gen.covered.iter().all(|&c| c));
        assert!(gen.programs.len() >= truth.join_specs.len());
    }

    #[test]
    fn zero_coverage_emits_only_noise() {
        let (_, truth) = workload();
        let gen = generate_programs(
            &truth,
            &ProgramConfig {
                coverage: 0.0,
                noise_programs: 3,
                ..Default::default()
            },
        );
        assert!(gen.covered.iter().all(|&c| !c));
        assert!(gen.programs.len() <= 3);
    }

    #[test]
    fn extraction_recovers_covered_joins() {
        let (db, truth) = workload();
        let gen = generate_programs(&truth, &ProgramConfig::default());
        let extraction = extract_programs(&db.schema, &gen.programs, &ExtractConfig::default());
        assert!(
            extraction.warnings.is_empty(),
            "programs must parse cleanly: {:?}",
            extraction.warnings
        );
        // Every covered spec appears (canonically) in the extraction.
        let rendered: Vec<String> = extraction
            .joins
            .iter()
            .map(|j| j.join.render(&db.schema))
            .collect();
        for (i, spec) in truth.join_specs.iter().enumerate() {
            if !gen.covered[i] {
                continue;
            }
            let a = format!(
                "{}[{}] |><| {}[{}]",
                spec.left.0,
                spec.left.1.join(", "),
                spec.right.0,
                spec.right.1.join(", ")
            );
            let b = format!(
                "{}[{}] |><| {}[{}]",
                spec.right.0,
                spec.right.1.join(", "),
                spec.left.0,
                spec.left.1.join(", ")
            );
            assert!(
                rendered.contains(&a) || rendered.contains(&b),
                "missing join {a} in {rendered:?}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let (_, truth) = workload();
        let a = generate_programs(&truth, &ProgramConfig::default());
        let b = generate_programs(&truth, &ProgramConfig::default());
        assert_eq!(a.covered, b.covered);
        assert_eq!(
            a.programs.iter().map(|p| &p.text).collect::<Vec<_>>(),
            b.programs.iter().map(|p| &p.text).collect::<Vec<_>>()
        );
    }
}
