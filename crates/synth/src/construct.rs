//! Forward mapping (spec → normalized 3NF database with data),
//! controlled denormalization (→ the legacy 1NF/2NF database the
//! pipeline gets), corruption injection, and the [`GroundTruth`]
//! answer key.

use crate::spec::{FkEdge, FkSource, SynthSpec};
use dbre_relational::attr::AttrId;
use dbre_relational::database::Database;
use dbre_relational::schema::Relation;
use dbre_relational::value::{Domain, Value};
use dbre_relational::{AttrSet, Attribute};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Which denormalizations were applied.
#[derive(Debug, Clone, Default)]
pub struct DenormPlan {
    /// Per FK edge (indexing [`SynthSpec::all_fk_edges`]): were the
    /// target's value attributes embedded into the source?
    pub embedded: Vec<bool>,
    /// Per entity: was its relation dropped from the legacy schema
    /// (making its identifier a *hidden object*)?
    pub dropped: Vec<bool>,
}

/// Plan-generation knobs.
#[derive(Debug, Clone)]
pub struct DenormConfig {
    /// Probability that an FK edge embeds the target's attributes.
    pub p_embed: f64,
    /// Probability that a droppable entity is dropped.
    pub p_drop: f64,
    /// Seed for the plan (independent of the spec seed).
    pub seed: u64,
}

impl Default for DenormConfig {
    fn default() -> Self {
        DenormConfig {
            p_embed: 0.6,
            p_drop: 0.5,
            seed: 7,
        }
    }
}

/// An expected dependency, expressed with names (schema-independent).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedFd {
    /// Relation name.
    pub rel: String,
    /// LHS attribute names.
    pub lhs: Vec<String>,
    /// RHS attribute names.
    pub rhs: Vec<String>,
    /// Is there any program navigation that can surface this FD?
    pub reachable: bool,
}

/// An expected inclusion dependency, by names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedInd {
    /// Source relation / attributes.
    pub lhs: (String, Vec<String>),
    /// Target relation / attributes.
    pub rhs: (String, Vec<String>),
    /// Surfaced by some program navigation?
    pub reachable: bool,
}

/// What a program join corresponds to in the ground truth.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinKind {
    /// A kept FK edge: source values ⊆ target ids.
    Fk {
        /// Index into [`SynthSpec::all_fk_edges`].
        edge: usize,
    },
    /// An is-a edge: child ids ⊆ parent ids.
    IsA {
        /// Child entity index.
        child: usize,
        /// Parent entity index.
        parent: usize,
    },
    /// Two referencing sites of a *dropped* entity: both value sets are
    /// subsets of the lost identifier — a non-empty intersection.
    Shared {
        /// The dropped entity.
        entity: usize,
    },
}

/// A navigation the application programs may exhibit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinSpec {
    /// Left relation / attribute list (composite identifiers navigate
    /// on several columns at once).
    pub left: (String, Vec<String>),
    /// Right relation / attribute list, positionally parallel.
    pub right: (String, Vec<String>),
    /// Ground-truth meaning.
    pub kind: JoinKind,
}

/// The complete answer key for one synthetic workload.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// The conceptual spec.
    pub spec: SynthSpec,
    /// The denormalization plan.
    pub plan: DenormPlan,
    /// The normalized 3NF schema (the recovery target), with data.
    pub normalized: Database,
    /// FDs the pipeline should elicit (one per embedded edge).
    pub expected_fds: Vec<NamedFd>,
    /// INDs the pipeline should elicit (kept FKs + is-a edges).
    pub expected_inds: Vec<NamedInd>,
    /// Dropped-entity identifier sites `(relation, attrs, entity)` —
    /// hidden objects.
    pub hidden_sites: Vec<(String, Vec<String>, usize)>,
    /// All possible navigations, for the program generator.
    pub join_specs: Vec<JoinSpec>,
}

/// Builds the normalized database (schema, keys, extension) for a spec.
///
/// Data is deterministic given `seed`: entity ids are dense `0..rows`,
/// value attributes are functions of the id, FK values are uniform over
/// target ids, relationship keys are distinct tuples.
pub fn build_normalized(spec: &SynthSpec, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6e6f_726d);
    let mut db = Database::new();

    // Entities.
    for (i, e) in spec.entities.iter().enumerate() {
        let key_width = e.key_attrs.len();
        let mut attrs: Vec<Attribute> = e.key_attrs.iter().map(Attribute::int).collect();
        attrs.extend(e.attrs.iter().map(Attribute::text));
        // Entity-FK columns.
        let fks: Vec<&FkEdge> = spec
            .entity_fks
            .iter()
            .filter(|f| f.source == FkSource::Entity(i))
            .collect();
        for f in &fks {
            attrs.extend(f.attrs.iter().map(Attribute::int));
        }
        let rel = db
            .add_relation(Relation::new(e.name.clone(), attrs).expect("unique attr names"))
            .expect("unique entity names");
        db.constraints
            .add_key(rel, AttrSet::from_indices(0..key_width as u16));

        for id in 0..e.rows as i64 {
            let mut row: Vec<Value> = SynthSpec::key_values(key_width, id)
                .into_iter()
                .map(Value::Int)
                .collect();
            for (j, _) in e.attrs.iter().enumerate() {
                row.push(Value::str(SynthSpec::attr_value(i, j, id)));
            }
            for f in &fks {
                // Reference only the lower ¾ of target ids: FK value
                // sets are then *strict* subsets, so IND-Discovery
                // elicits a single direction (like real data, where
                // some customers have no orders).
                let target = &spec.entities[f.target];
                let t = rng.random_range(0..referenced_range(target.rows));
                row.extend(
                    SynthSpec::key_values(target.key_attrs.len(), t)
                        .into_iter()
                        .map(Value::Int),
                );
            }
            db.insert(rel, row).expect("row matches header");
        }
    }

    // Relationships.
    for (ri, r) in spec.relationships.iter().enumerate() {
        let mut attrs: Vec<Attribute> = r.ref_attrs.iter().flatten().map(Attribute::int).collect();
        let key_width = attrs.len();
        attrs.extend(r.attrs.iter().map(Attribute::text));
        let rel = db
            .add_relation(Relation::new(r.name.clone(), attrs).expect("unique attr names"))
            .expect("unique relationship names");
        db.constraints
            .add_key(rel, AttrSet::from_indices(0..key_width as u16));
        let mut seen: HashSet<Vec<i64>> = HashSet::new();
        let mut attempts = 0;
        while seen.len() < r.rows && attempts < r.rows * 20 {
            attempts += 1;
            // Pick one instance per participant; the instance tuple is
            // the logical key, its encoding the stored key.
            let instances: Vec<i64> = r
                .participants
                .iter()
                .map(|&e| rng.random_range(0..referenced_range(spec.entities[e].rows)))
                .collect();
            if !seen.insert(instances.clone()) {
                continue;
            }
            let mut row: Vec<Value> = Vec::with_capacity(key_width + r.attrs.len());
            for (&e, &inst) in r.participants.iter().zip(&instances) {
                row.extend(
                    SynthSpec::key_values(spec.entities[e].key_attrs.len(), inst)
                        .into_iter()
                        .map(Value::Int),
                );
            }
            for j in 0..r.attrs.len() {
                row.push(Value::str(format!("r{ri}a{j}_v{}", rng.random_range(0..9))));
            }
            db.insert(rel, row).expect("row matches header");
        }
    }

    db.constraints.normalize();
    db.validate_dictionary().expect("generated data is valid");
    db
}

/// The portion of an entity's id space that FK values are drawn from
/// (strict subset → single-direction inclusions).
fn referenced_range(rows: usize) -> i64 {
    ((rows * 3) / 4).max(1) as i64
}

/// Draws a denormalization plan: embeds edges with `p_embed`, then
/// drops entities whose every incoming edge is embedded (and that have
/// no outgoing FKs, no is-a involvement, and at least one incoming
/// edge) with `p_drop`.
pub fn plan_denormalization(spec: &SynthSpec, cfg: &DenormConfig) -> DenormPlan {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x706c_616e);
    let edges = spec.all_fk_edges();
    let embedded: Vec<bool> = edges
        .iter()
        .map(|e| {
            // Embedding is meaningful only when the target has attrs.
            !spec.entities[e.target].attrs.is_empty() && rng.random_bool(cfg.p_embed)
        })
        .collect();

    let isa_involved: HashSet<usize> = spec
        .entities
        .iter()
        .enumerate()
        .flat_map(|(i, e)| e.isa_parent.map(|p| [i, p]).into_iter().flatten())
        .collect();
    let mut dropped = vec![false; spec.entities.len()];
    for (ei, _) in spec.entities.iter().enumerate() {
        let incoming: Vec<usize> = edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.target == ei)
            .map(|(k, _)| k)
            .collect();
        let has_outgoing = spec
            .entity_fks
            .iter()
            .any(|f| f.source == FkSource::Entity(ei));
        let droppable = !incoming.is_empty()
            && incoming
                .iter()
                .all(|&k| embedded[k] || spec.entities[ei].attrs.is_empty())
            && !has_outgoing
            && !isa_involved.contains(&ei);
        if droppable && rng.random_bool(cfg.p_drop) {
            dropped[ei] = true;
        }
    }
    DenormPlan { embedded, dropped }
}

/// Builds the denormalized (legacy) database plus the ground truth.
pub fn build_workload(
    spec: &SynthSpec,
    cfg: &DenormConfig,
    data_seed: u64,
) -> (Database, GroundTruth) {
    let normalized = build_normalized(spec, data_seed);
    let plan = plan_denormalization(spec, cfg);
    let edges = spec.all_fk_edges();

    // ---- Legacy schema ----
    let mut db = Database::new();
    // Entities (except dropped ones), with embedded columns appended.
    for (i, e) in spec.entities.iter().enumerate() {
        if plan.dropped[i] {
            continue;
        }
        copy_relation_with_embeds(
            &mut db,
            &normalized,
            spec,
            &plan,
            &edges,
            FkSource::Entity(i),
            &e.name,
        );
    }
    for (ri, r) in spec.relationships.iter().enumerate() {
        copy_relation_with_embeds(
            &mut db,
            &normalized,
            spec,
            &plan,
            &edges,
            FkSource::Relationship(ri),
            &r.name,
        );
    }
    db.constraints.normalize();
    db.validate_dictionary()
        .expect("denormalized data stays dictionary-valid");

    // ---- Ground truth ----
    let mut truth = GroundTruth {
        spec: spec.clone(),
        plan: plan.clone(),
        normalized,
        expected_fds: Vec::new(),
        expected_inds: Vec::new(),
        hidden_sites: Vec::new(),
        join_specs: Vec::new(),
    };

    // Kept-FK joins and INDs.
    for (k, edge) in edges.iter().enumerate() {
        let src_dropped = matches!(edge.source, FkSource::Entity(s) if plan.dropped[s]);
        if src_dropped {
            continue;
        }
        let source_name = spec.source_name(edge.source).to_string();
        let target = &spec.entities[edge.target];
        if !plan.dropped[edge.target] {
            truth.join_specs.push(JoinSpec {
                left: (source_name.clone(), edge.attrs.clone()),
                right: (target.name.clone(), target.key_attrs.clone()),
                kind: JoinKind::Fk { edge: k },
            });
            truth.expected_inds.push(NamedInd {
                lhs: (source_name.clone(), edge.attrs.clone()),
                rhs: (target.name.clone(), target.key_attrs.clone()),
                reachable: true,
            });
        }
        if plan.embedded[k] {
            truth.expected_fds.push(NamedFd {
                rel: source_name,
                lhs: edge.attrs.clone(),
                rhs: target.attrs.clone(),
                reachable: true, // refined below for dropped targets
            });
        }
    }

    // is-a joins and INDs.
    for (ci, c) in spec.entities.iter().enumerate() {
        if plan.dropped[ci] {
            continue;
        }
        if let Some(pi) = c.isa_parent {
            let p = &spec.entities[pi];
            truth.join_specs.push(JoinSpec {
                left: (c.name.clone(), c.key_attrs.clone()),
                right: (p.name.clone(), p.key_attrs.clone()),
                kind: JoinKind::IsA {
                    child: ci,
                    parent: pi,
                },
            });
            truth.expected_inds.push(NamedInd {
                lhs: (c.name.clone(), c.key_attrs.clone()),
                rhs: (p.name.clone(), p.key_attrs.clone()),
                reachable: true,
            });
        }
    }

    // Dropped entities: pairwise joins between referencing sites.
    for (ei, _) in spec.entities.iter().enumerate() {
        if !plan.dropped[ei] {
            continue;
        }
        let sites: Vec<(String, Vec<String>)> = edges
            .iter()
            .filter(|edge| edge.target == ei)
            .filter(|edge| !matches!(edge.source, FkSource::Entity(s) if plan.dropped[s]))
            .map(|edge| {
                (
                    spec.source_name(edge.source).to_string(),
                    edge.attrs.clone(),
                )
            })
            .collect();
        for site in &sites {
            truth
                .hidden_sites
                .push((site.0.clone(), site.1.clone(), ei));
        }
        for a in 0..sites.len() {
            for b in a + 1..sites.len() {
                truth.join_specs.push(JoinSpec {
                    left: sites[a].clone(),
                    right: sites[b].clone(),
                    kind: JoinKind::Shared { entity: ei },
                });
            }
        }
        if sites.len() < 2 {
            // The identifier appears at a single site: no navigation
            // can surface it. Mark its FD (if any) unreachable.
            for site in &sites {
                for fd in truth.expected_fds.iter_mut() {
                    if fd.rel == site.0 && fd.lhs == site.1 {
                        fd.reachable = false;
                    }
                }
            }
        }
    }

    (db, truth)
}

/// Copies a relation from the normalized database into the legacy one,
/// appending embedded target attributes for each embedded FK edge of
/// this source.
fn copy_relation_with_embeds(
    db: &mut Database,
    normalized: &Database,
    spec: &SynthSpec,
    plan: &DenormPlan,
    edges: &[FkEdge],
    source: FkSource,
    name: &str,
) {
    let src_rel = normalized
        .rel(name)
        .expect("relation exists in normalized db");
    let src_relation = normalized.schema.relation(src_rel).clone();
    let src_table = normalized.table(src_rel);

    let mut attrs: Vec<Attribute> = src_relation.attributes().to_vec();
    // (fk column indexes in source, target entity)
    let mut embeds: Vec<(Vec<usize>, usize)> = Vec::new();
    for (k, edge) in edges.iter().enumerate() {
        if edge.source != source || !plan.embedded[k] {
            continue;
        }
        let fk_cols: Vec<usize> = edge
            .attrs
            .iter()
            .map(|a| src_relation.attr_id(a).expect("fk column exists").index())
            .collect();
        embeds.push((fk_cols, edge.target));
        for a in &spec.entities[edge.target].attrs {
            // Embedded columns keep the target attribute name (suffix
            // on collision with anything already present).
            let mut n = a.clone();
            let mut k2 = 2;
            while attrs.iter().any(|x| x.name == n) {
                n = format!("{a}_{k2}");
                k2 += 1;
            }
            attrs.push(Attribute::new(n, Domain::Text));
        }
    }

    let rel = db
        .add_relation(Relation::new(name, attrs).expect("names deduplicated above"))
        .expect("unique relation names");
    // Same key as in the normalized schema.
    let key = normalized
        .constraints
        .primary_key(src_rel)
        .expect("every generated relation is keyed")
        .attrs
        .clone();
    db.constraints.add_key(rel, key);

    for i in 0..src_table.len() {
        let mut row = src_table.row(i);
        for (fk_cols, target) in &embeds {
            // Decode the referenced instance index from the key encoding.
            let parts: Vec<i64> = fk_cols
                .iter()
                .map(|&c| match &row[c] {
                    Value::Int(v) => *v,
                    other => panic!("fk column must be an integer, got {other}"),
                })
                .collect();
            let id = match parts.len() {
                1 => parts[0],
                2 => parts[0] * SynthSpec::COMPOSITE_BASE + parts[1],
                other => panic!("unsupported key width {other}"),
            };
            for (j, _) in spec.entities[*target].attrs.iter().enumerate() {
                row.push(Value::str(SynthSpec::attr_value(*target, j, id)));
            }
        }
        db.insert(rel, row).expect("row matches header");
    }
}

/// Corruption knobs.
#[derive(Debug, Clone)]
pub struct CorruptionConfig {
    /// Fraction of embedded-attribute cells overwritten with junk
    /// (breaks expected FDs).
    pub fd_noise: f64,
    /// Fraction of FK cells pointed at out-of-range ids (breaks
    /// expected INDs into near-inclusions).
    pub ind_noise: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for CorruptionConfig {
    fn default() -> Self {
        CorruptionConfig {
            fd_noise: 0.0,
            ind_noise: 0.0,
            seed: 99,
        }
    }
}

/// Injects corruption into the legacy database, guided by the truth
/// (it knows which columns are embedded attributes and which are FKs).
/// Out-of-range FK ids are unique huge integers, so keys stay valid.
pub fn corrupt(db: &mut Database, truth: &GroundTruth, cfg: &CorruptionConfig) {
    if cfg.fd_noise <= 0.0 && cfg.ind_noise <= 0.0 {
        return;
    }
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x6372_7074);
    let mut big_id = 1_000_000i64;
    let edges = truth.spec.all_fk_edges();

    for (k, edge) in edges.iter().enumerate() {
        let src_name = truth.spec.source_name(edge.source).to_string();
        let Ok(rel) = db.rel(&src_name) else { continue };
        let relation = db.schema.relation(rel).clone();
        let fk_cols: Vec<_> = edge
            .attrs
            .iter()
            .filter_map(|a| relation.attr_id(a))
            .collect();
        if fk_cols.len() != edge.attrs.len() {
            continue;
        }
        let rows = db.table(rel).len();

        // IND noise on the FK columns — but never on key columns of the
        // source (that would re-key relationship relations), so skip
        // relationship refs.
        if cfg.ind_noise > 0.0 && matches!(edge.source, FkSource::Entity(_)) {
            for i in 0..rows {
                if rng.random_bool(cfg.ind_noise) {
                    for &col in &fk_cols {
                        big_id += 1;
                        set_cell(db, rel, i, col, Value::Int(big_id));
                    }
                }
            }
        }

        // FD noise on embedded columns.
        if cfg.fd_noise > 0.0 && truth.plan.embedded[k] {
            for a in &truth.spec.entities[edge.target].attrs {
                let Some(col) = relation.attr_id(a) else {
                    continue;
                };
                for i in 0..rows {
                    if rng.random_bool(cfg.fd_noise) {
                        big_id += 1;
                        set_cell(db, rel, i, col, Value::str(format!("junk{big_id}")));
                    }
                }
            }
        }
    }
}

/// Overwrites a cell (columnar tables have no in-place API; rebuilds
/// the column cheaply through push-based copy is overkill, so go
/// through a full row replacement).
fn set_cell(db: &mut Database, rel: dbre_relational::RelId, row: usize, col: AttrId, value: Value) {
    let mut table = db.table(rel).clone();
    // Rebuild with the one cell changed.
    let mut rows: Vec<Vec<Value>> = table.rows().collect();
    rows[row][col.index()] = value;
    table = dbre_relational::Table::from_rows(table.arity(), rows).expect("same arity");
    db.replace_table(rel, table).expect("same arity");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{generate_spec, SynthConfig};

    fn small_cfg() -> SynthConfig {
        SynthConfig {
            n_entities: 5,
            n_relationships: 2,
            n_entity_fks: 3,
            n_isa: 1,
            rows_per_entity: 40,
            rows_per_relationship: 60,
            ..Default::default()
        }
    }

    #[test]
    fn normalized_db_is_valid_and_keyed() {
        let spec = generate_spec(&small_cfg());
        let db = build_normalized(&spec, 1);
        db.validate_dictionary().unwrap();
        assert_eq!(
            db.schema.len(),
            spec.entities.len() + spec.relationships.len()
        );
        for (rel, _) in db.schema.iter() {
            assert!(db.constraints.primary_key(rel).is_some());
        }
    }

    #[test]
    fn normalized_fk_inds_hold() {
        let spec = generate_spec(&small_cfg());
        let db = build_normalized(&spec, 1);
        for edge in spec.all_fk_edges() {
            let src = db.rel(spec.source_name(edge.source)).unwrap();
            let tgt = db.rel(&spec.entities[edge.target].name).unwrap();
            let (_, src_ids) = db
                .resolve(
                    spec.source_name(edge.source),
                    &edge.attrs.iter().map(String::as_str).collect::<Vec<_>>(),
                )
                .unwrap();
            let tgt_ids: Vec<AttrId> = (0..edge.attrs.len() as u16).map(AttrId).collect();
            let ind = dbre_relational::Ind::new(
                dbre_relational::IndSide::new(src, src_ids),
                dbre_relational::IndSide::new(tgt, tgt_ids),
            )
            .unwrap();
            assert!(db.ind_holds(&ind), "FK IND must hold in normalized data");
        }
    }

    #[test]
    fn workload_embeds_and_drops_per_plan() {
        let spec = generate_spec(&small_cfg());
        let cfg = DenormConfig {
            p_embed: 1.0,
            p_drop: 1.0,
            ..Default::default()
        };
        let (db, truth) = build_workload(&spec, &cfg, 1);
        // Dropped entities absent from the legacy schema.
        for (i, e) in spec.entities.iter().enumerate() {
            assert_eq!(
                db.schema.rel_id(&e.name).is_none(),
                truth.plan.dropped[i],
                "{}",
                e.name
            );
        }
        // Every embedded edge appears as an expected FD that holds in
        // the legacy extension.
        for fd in &truth.expected_fds {
            let rel = db.rel(&fd.rel).unwrap();
            let relation = db.schema.relation(rel);
            let lhs: Vec<&str> = fd.lhs.iter().map(String::as_str).collect();
            let lhs_set = relation.attr_set(&lhs).unwrap();
            // Embedded columns may be suffixed on collision; check the
            // unsuffixed common case.
            let rhs_ids: Vec<_> = fd.rhs.iter().filter_map(|n| relation.attr_id(n)).collect();
            if rhs_ids.len() != fd.rhs.len() {
                continue;
            }
            let f = dbre_relational::Fd::new(rel, lhs_set, AttrSet::from_iter_ids(rhs_ids));
            assert!(db.fd_holds(&f), "expected FD must hold: {fd:?}");
        }
    }

    #[test]
    fn kept_fk_inds_hold_in_legacy_db() {
        let spec = generate_spec(&small_cfg());
        let (db, truth) = build_workload(&spec, &DenormConfig::default(), 1);
        for ind in &truth.expected_inds {
            let lrel = db.rel(&ind.lhs.0).unwrap();
            let rrel = db.rel(&ind.rhs.0).unwrap();
            let (_, lids) = db
                .resolve(
                    &ind.lhs.0,
                    &ind.lhs.1.iter().map(String::as_str).collect::<Vec<_>>(),
                )
                .unwrap();
            let (_, rids) = db
                .resolve(
                    &ind.rhs.0,
                    &ind.rhs.1.iter().map(String::as_str).collect::<Vec<_>>(),
                )
                .unwrap();
            let i = dbre_relational::Ind::new(
                dbre_relational::IndSide::new(lrel, lids),
                dbre_relational::IndSide::new(rrel, rids),
            )
            .unwrap();
            assert!(db.ind_holds(&i), "expected IND must hold: {ind:?}");
        }
    }

    #[test]
    fn shared_join_specs_only_for_dropped_entities() {
        let spec = generate_spec(&small_cfg());
        let cfg = DenormConfig {
            p_embed: 1.0,
            p_drop: 1.0,
            ..Default::default()
        };
        let (_, truth) = build_workload(&spec, &cfg, 1);
        for js in &truth.join_specs {
            if let JoinKind::Shared { entity } = js.kind {
                assert!(truth.plan.dropped[entity]);
            }
        }
        // Hidden sites reference relations that exist in the legacy db.
        let (db, _) = build_workload(&spec, &cfg, 1);
        for (rel, attrs, _) in &truth.hidden_sites {
            let r = db.rel(rel).unwrap();
            for attr in attrs {
                assert!(db.schema.relation(r).attr_id(attr).is_some());
            }
        }
    }

    #[test]
    fn corruption_breaks_fds_proportionally() {
        let spec = generate_spec(&small_cfg());
        let cfg = DenormConfig {
            p_embed: 1.0,
            p_drop: 0.0,
            ..Default::default()
        };
        let (mut db, truth) = build_workload(&spec, &cfg, 1);
        assert!(!truth.expected_fds.is_empty());
        corrupt(
            &mut db,
            &truth,
            &CorruptionConfig {
                fd_noise: 0.3,
                ind_noise: 0.0,
                seed: 5,
            },
        );
        // At least one expected FD must now fail.
        let mut failed = 0;
        for fd in &truth.expected_fds {
            let rel = db.rel(&fd.rel).unwrap();
            let relation = db.schema.relation(rel);
            let lhs: Vec<&str> = fd.lhs.iter().map(String::as_str).collect();
            let lhs_set = relation.attr_set(&lhs).unwrap();
            let rhs_ids: Vec<_> = fd.rhs.iter().filter_map(|n| relation.attr_id(n)).collect();
            if rhs_ids.len() != fd.rhs.len() {
                continue;
            }
            let f = dbre_relational::Fd::new(rel, lhs_set, AttrSet::from_iter_ids(rhs_ids));
            if !db.fd_holds(&f) {
                failed += 1;
            }
        }
        assert!(failed > 0, "30% noise must break some FD");
        // Dictionary still valid (keys untouched).
        db.validate_dictionary().unwrap();
    }

    #[test]
    fn corruption_is_deterministic() {
        let spec = generate_spec(&small_cfg());
        let cfg = DenormConfig::default();
        let (mut a, truth) = build_workload(&spec, &cfg, 1);
        let (mut b, _) = build_workload(&spec, &cfg, 1);
        let ccfg = CorruptionConfig {
            fd_noise: 0.1,
            ind_noise: 0.1,
            seed: 3,
        };
        corrupt(&mut a, &truth, &ccfg);
        corrupt(&mut b, &truth, &ccfg);
        for (rel, _) in a.schema.iter() {
            assert_eq!(a.table(rel), b.table(rel));
        }
    }
}
