//! # dbre-synth
//!
//! The evaluation substrate the 1996 paper lacked: synthetic legacy
//! workloads with known answers.
//!
//! A random conceptual schema ([`spec`]) is forward-mapped to a
//! normalized 3NF database with data, then *denormalized* under a
//! controlled plan ([`construct`]) — attributes embedded along FK
//! edges, whole entities dropped into hidden objects — producing
//! exactly the kind of 1NF/2NF legacy database the paper
//! reverse-engineers, with the normalized schema as answer key
//! ([`construct::GroundTruth`]). Application programs exhibiting a
//! configurable fraction of the true navigations are generated in the
//! paper's five equi-join forms ([`programs`]); extension corruption is
//! injected on demand. [`truth::TruthOracle`] plays the perfectly
//! informed expert, and [`metrics`] scores any pipeline run with
//! precision/recall over INDs, FDs, hidden objects and the recovered
//! schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod construct;
pub mod metrics;
pub mod programs;
pub mod spec;
pub mod truth;

pub use construct::{
    build_normalized, build_workload, corrupt, plan_denormalization, CorruptionConfig,
    DenormConfig, DenormPlan, GroundTruth, JoinKind, JoinSpec, NamedFd, NamedInd,
};
pub use metrics::{evaluate, Prf, Quality};
pub use programs::{generate_programs, GeneratedPrograms, ProgramConfig};
pub use spec::{
    generate_spec, EntitySpec, FkEdge, FkSource, RelationshipSpec, SynthConfig, SynthSpec,
};
pub use truth::TruthOracle;
