//! Recovery-quality metrics: elicited dependencies and restructured
//! schema versus the ground truth.
//!
//! Everything is compared by *names* (relation name + attribute-name
//! sets), which the pipeline preserves; the pipeline itself never
//! inspects names (the paper's method explicitly avoids naming
//! assumptions), so this is measurement, not leakage.

use crate::construct::GroundTruth;
use dbre_core::pipeline::PipelineResult;
use std::collections::BTreeSet;

/// Precision / recall / F1 triple.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Prf {
    /// Correct elicited / total elicited.
    pub precision: f64,
    /// Correct elicited / total expected.
    pub recall: f64,
    /// Harmonic mean.
    pub f1: f64,
}

impl Prf {
    fn new(hits: usize, elicited: usize, expected: usize) -> Prf {
        let precision = if elicited == 0 {
            1.0
        } else {
            hits as f64 / elicited as f64
        };
        let recall = if expected == 0 {
            1.0
        } else {
            hits as f64 / expected as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Prf {
            precision,
            recall,
            f1,
        }
    }
}

/// Full quality report for one pipeline run.
#[derive(Debug, Clone, Default)]
pub struct Quality {
    /// Inclusion-dependency elicitation quality (IND-Discovery stage,
    /// excluding the conceptualized-intersection artifacts).
    pub ind: Prf,
    /// FD elicitation quality (RHS-Discovery stage).
    pub fd: Prf,
    /// Restructured-schema quality: relation attribute-sets versus the
    /// normalized ground truth (S artifacts excluded from precision).
    pub schema: Prf,
    /// Fraction of dropped entities whose relation (identifier [+
    /// attributes]) reappears in the restructured schema.
    pub hidden_recovery: f64,
    /// Expected-but-unreachable dependencies (no navigation exists) —
    /// the recall ceiling the method itself imposes.
    pub unreachable_fds: usize,
}

type SideKey = (String, BTreeSet<String>);

fn ind_key(db: &dbre_relational::Database, ind: &dbre_relational::Ind) -> (SideKey, SideKey) {
    let side = |s: &dbre_relational::IndSide| {
        let rel = db.schema.relation(s.rel);
        (
            rel.name.clone(),
            s.attrs
                .iter()
                .map(|a| rel.attr_name(*a).to_string())
                .collect(),
        )
    };
    (side(&ind.lhs), side(&ind.rhs))
}

/// Evaluates a pipeline result against the answer key. `covered`, when
/// given (parallel to `truth.join_specs`), restricts recall
/// denominators to navigations that programs actually exhibited.
pub fn evaluate(result: &PipelineResult, truth: &GroundTruth, covered: Option<&[bool]>) -> Quality {
    let db = &result.db_before;

    // ---- INDs ----
    let s_rels: BTreeSet<_> = result.ind.new_relations.iter().copied().collect();
    let elicited: Vec<(SideKey, SideKey)> = result
        .ind
        .inds
        .iter()
        .filter(|i| !s_rels.contains(&i.lhs.rel) && !s_rels.contains(&i.rhs.rel))
        .map(|i| ind_key(db, i))
        .collect();
    let is_covered =
        |spec_left: &(String, Vec<String>), spec_right: &(String, Vec<String>)| match covered {
            None => true,
            Some(flags) => truth.join_specs.iter().zip(flags).any(|(s, &c)| {
                c && ((s.left.0 == spec_left.0
                    && s.left.1 == spec_left.1
                    && s.right.0 == spec_right.0
                    && s.right.1 == spec_right.1)
                    || (s.left.0 == spec_right.0
                        && s.left.1 == spec_right.1
                        && s.right.0 == spec_left.0
                        && s.right.1 == spec_left.1))
            }),
        };
    let expected_inds: Vec<_> = truth
        .expected_inds
        .iter()
        .filter(|e| e.reachable && is_covered(&e.lhs, &e.rhs))
        .collect();
    let mut ind_hits = 0;
    for e in &expected_inds {
        let key = (
            (e.lhs.0.clone(), e.lhs.1.iter().cloned().collect()),
            (e.rhs.0.clone(), e.rhs.1.iter().cloned().collect()),
        );
        if elicited.contains(&key) {
            ind_hits += 1;
        }
    }
    let ind = Prf::new(ind_hits, elicited.len(), expected_inds.len());

    // ---- FDs ----
    let elicited_fds: Vec<(String, BTreeSet<String>, BTreeSet<String>)> = result
        .rhs
        .fds
        .iter()
        .map(|f| {
            let rel = db.schema.relation(f.rel);
            (
                rel.name.clone(),
                f.lhs.iter().map(|a| rel.attr_name(a).to_string()).collect(),
                f.rhs.iter().map(|a| rel.attr_name(a).to_string()).collect(),
            )
        })
        .collect();
    let expected_fds: Vec<_> = truth.expected_fds.iter().filter(|f| f.reachable).collect();
    let mut fd_hits = 0;
    for e in &expected_fds {
        let lhs: BTreeSet<String> = e.lhs.iter().cloned().collect();
        let hit = elicited_fds.iter().any(|(rel, l, r)| {
            rel == &e.rel
                && l == &lhs
                && e.rhs.iter().all(|want| {
                    r.iter()
                        .any(|got| got == want || got.starts_with(&format!("{want}_")))
                })
        });
        if hit {
            fd_hits += 1;
        }
    }
    // Precision: an elicited FD is correct when its (rel, lhs) pair is
    // expected (reachable or not — eliciting an unreachable truth is
    // still correct).
    let fd_correct = elicited_fds
        .iter()
        .filter(|(rel, l, _)| {
            truth
                .expected_fds
                .iter()
                .any(|e| &e.rel == rel && e.lhs.iter().cloned().collect::<BTreeSet<_>>() == *l)
        })
        .count();
    let fd = Prf {
        precision: if elicited_fds.is_empty() {
            1.0
        } else {
            fd_correct as f64 / elicited_fds.len() as f64
        },
        ..Prf::new(fd_hits, elicited_fds.len().max(1), expected_fds.len())
    };
    let fd = Prf {
        f1: if fd.precision + fd.recall == 0.0 {
            0.0
        } else {
            2.0 * fd.precision * fd.recall / (fd.precision + fd.recall)
        },
        ..fd
    };

    // ---- Schema ----
    let truth_sets: BTreeSet<BTreeSet<String>> = truth
        .normalized
        .schema
        .iter()
        .map(|(_, r)| r.attributes().iter().map(|a| a.name.clone()).collect())
        .collect();
    let recovered_all: Vec<BTreeSet<String>> =
        result
            .db
            .schema
            .iter()
            .filter(|(rel, _)| {
                // Exclude the conceptualized-intersection artifacts.
                !result.ind.new_relations.iter().any(|s| {
                    result.db.schema.relation(*s).name == result.db.schema.relation(*rel).name
                })
            })
            .map(|(_, r)| r.attributes().iter().map(|a| a.name.clone()).collect())
            .collect();
    let recovered_set: BTreeSet<BTreeSet<String>> = recovered_all.iter().cloned().collect();
    let schema_hits = truth_sets.intersection(&recovered_set).count();
    let schema = Prf::new(schema_hits, recovered_set.len(), truth_sets.len());

    // ---- Hidden-entity recovery ----
    // Only *recoverable* dropped entities count: the method can see a
    // lost identifier only through a join between two of its
    // referencing sites, so an entity with fewer than two sites (or
    // whose pairwise navigation no program exhibited) is outside any
    // method's reach — like `reachable` for FDs.
    let dropped: Vec<usize> = truth
        .plan
        .dropped
        .iter()
        .enumerate()
        .filter(|(_, &d)| d)
        .map(|(i, _)| i)
        .filter(|&ei| {
            truth.join_specs.iter().enumerate().any(|(si, s)| {
                matches!(s.kind, crate::construct::JoinKind::Shared { entity } if entity == ei)
                    && covered.is_none_or(|flags| flags[si])
            })
        })
        .collect();
    let hidden_recovery = if dropped.is_empty() {
        1.0
    } else {
        let recovered = dropped
            .iter()
            .filter(|&&ei| {
                let e = &truth.spec.entities[ei];
                let full: BTreeSet<String> = e
                    .key_attrs
                    .iter()
                    .cloned()
                    .chain(e.attrs.iter().cloned())
                    .collect();
                let id_only: BTreeSet<String> = e.key_attrs.iter().cloned().collect();
                recovered_set.contains(&full) || recovered_set.contains(&id_only)
            })
            .count();
        recovered as f64 / dropped.len() as f64
    };

    Quality {
        ind,
        fd,
        schema,
        hidden_recovery,
        unreachable_fds: truth.expected_fds.iter().filter(|f| !f.reachable).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::construct::{build_workload, corrupt, CorruptionConfig, DenormConfig};
    use crate::programs::{generate_programs, ProgramConfig};
    use crate::spec::{generate_spec, SynthConfig};
    use crate::truth::TruthOracle;
    use dbre_core::pipeline::{run_with_programs, PipelineOptions};
    use dbre_core::DenyOracle;

    fn spec_cfg() -> SynthConfig {
        SynthConfig {
            n_entities: 6,
            n_relationships: 2,
            n_entity_fks: 3,
            n_isa: 1,
            rows_per_entity: 60,
            rows_per_relationship: 90,
            // This seed yields a workload where exactly one dropped
            // entity is referenced from a single site (see the schema
            // recall comment in perfect_conditions_give_perfect_recall).
            seed: 1,
            ..Default::default()
        }
    }

    #[test]
    fn perfect_conditions_give_perfect_recall() {
        let spec = generate_spec(&spec_cfg());
        let (db, truth) = build_workload(
            &spec,
            &DenormConfig {
                p_embed: 1.0,
                p_drop: 1.0,
                ..Default::default()
            },
            1,
        );
        let programs = generate_programs(&truth, &ProgramConfig::default());
        let mut oracle = TruthOracle::new(truth.clone());
        let result = run_with_programs(
            db,
            &programs.programs,
            &mut oracle,
            &PipelineOptions::default(),
        );
        let q = evaluate(&result, &truth, Some(&programs.covered));
        assert!(
            q.ind.recall >= 0.999,
            "expected full IND recall, got {:?}",
            q.ind
        );
        assert!(
            q.fd.recall >= 0.999,
            "expected full FD recall, got {:?}\nelicited: {:?}",
            q.fd,
            result.rhs.fds
        );
        assert!(q.fd.precision >= 0.999, "{:?}", q.fd);
        assert!(
            q.hidden_recovery >= 0.999,
            "dropped entities must be recovered: {}",
            q.hidden_recovery
        );
        // Full schema recall is not always reachable: a dropped entity
        // referenced from a single site cannot be surfaced by any
        // navigation, leaving its attributes glued to the site (this
        // workload has exactly one such entity, costing two relations
        // of the 8-relation answer key).
        assert!(q.schema.recall >= 0.7, "schema recall: {:?}", q.schema);
    }

    #[test]
    fn zero_coverage_recovers_nothing() {
        let spec = generate_spec(&spec_cfg());
        let (db, truth) = build_workload(&spec, &DenormConfig::default(), 1);
        let programs = generate_programs(
            &truth,
            &ProgramConfig {
                coverage: 0.0,
                ..Default::default()
            },
        );
        let mut oracle = TruthOracle::new(truth.clone());
        let result = run_with_programs(
            db,
            &programs.programs,
            &mut oracle,
            &PipelineOptions::default(),
        );
        let q = evaluate(&result, &truth, None);
        assert_eq!(q.ind.recall, 0.0);
        assert_eq!(q.fd.recall, 0.0);
        assert!(result.ind.inds.is_empty());
    }

    #[test]
    fn deny_oracle_loses_hidden_objects_but_keeps_clean_inds() {
        let spec = generate_spec(&spec_cfg());
        let (db, truth) = build_workload(
            &spec,
            &DenormConfig {
                p_embed: 1.0,
                p_drop: 1.0,
                ..Default::default()
            },
            1,
        );
        let has_dropped = truth.plan.dropped.iter().any(|&d| d);
        let programs = generate_programs(&truth, &ProgramConfig::default());
        let mut oracle = DenyOracle;
        let result = run_with_programs(
            db,
            &programs.programs,
            &mut oracle,
            &PipelineOptions::default(),
        );
        let q = evaluate(&result, &truth, None);
        // Kept-FK INDs still elicited automatically (pure inclusion).
        assert!(q.ind.recall >= 0.999, "{:?}", q.ind);
        if has_dropped {
            // But nothing is ever conceptualized.
            assert!(result.ind.new_relations.is_empty());
        }
    }

    #[test]
    fn corruption_degrades_deny_but_not_truth_oracle() {
        let spec = generate_spec(&spec_cfg());
        let dn = DenormConfig {
            p_embed: 1.0,
            p_drop: 0.0,
            ..Default::default()
        };
        let (mut db1, truth) = build_workload(&spec, &dn, 1);
        corrupt(
            &mut db1,
            &truth,
            &CorruptionConfig {
                fd_noise: 0.05,
                ind_noise: 0.05,
                seed: 3,
            },
        );
        let db2 = db1.clone();
        let programs = generate_programs(&truth, &ProgramConfig::default());

        let mut deny = DenyOracle;
        let r_deny = run_with_programs(
            db1,
            &programs.programs,
            &mut deny,
            &PipelineOptions::default(),
        );
        let q_deny = evaluate(&r_deny, &truth, None);

        let mut tru = TruthOracle::new(truth.clone());
        let r_truth = run_with_programs(
            db2,
            &programs.programs,
            &mut tru,
            &PipelineOptions::default(),
        );
        let q_truth = evaluate(&r_truth, &truth, None);

        assert!(
            q_truth.fd.recall > q_deny.fd.recall,
            "truth {:?} vs deny {:?}",
            q_truth.fd,
            q_deny.fd
        );
        assert!(q_truth.ind.recall >= q_deny.ind.recall);
    }

    #[test]
    fn composite_key_workload_end_to_end() {
        // Every entity gets a two-attribute identifier: FKs, embeds,
        // navigations, INDs and FDs are all composite.
        let spec = generate_spec(&SynthConfig {
            n_entities: 5,
            n_relationships: 2,
            n_entity_fks: 3,
            n_isa: 1,
            p_composite_key: 1.0,
            rows_per_entity: 60,
            rows_per_relationship: 90,
            ..Default::default()
        });
        assert!(spec.entities.iter().all(|e| e.key_attrs.len() == 2));
        let (db, truth) = build_workload(
            &spec,
            &DenormConfig {
                p_embed: 1.0,
                p_drop: 0.5,
                ..Default::default()
            },
            1,
        );
        db.validate_dictionary().unwrap();
        let programs = generate_programs(&truth, &ProgramConfig::default());
        let mut oracle = TruthOracle::new(truth.clone());
        let result = run_with_programs(
            db,
            &programs.programs,
            &mut oracle,
            &PipelineOptions::default(),
        );
        assert!(result.warnings.is_empty(), "{:?}", result.warnings);
        // Composite INDs were elicited.
        assert!(
            result.ind.inds.iter().any(|i| i.lhs.attrs.len() == 2),
            "no composite IND elicited"
        );
        let q = evaluate(&result, &truth, Some(&programs.covered));
        assert!(q.ind.recall >= 0.999, "{:?}", q.ind);
        assert!(q.fd.recall >= 0.999, "{:?}", q.fd);
        assert!(q.hidden_recovery >= 0.999, "{}", q.hidden_recovery);
        // All RICs hold in the restructured extension.
        for ric in &result.restructured.ric {
            assert!(result.db.ind_holds(ric));
        }
        result.db.validate_dictionary().unwrap();
    }

    #[test]
    fn mixed_key_widths_workload() {
        let spec = generate_spec(&SynthConfig {
            n_entities: 6,
            n_relationships: 2,
            n_entity_fks: 4,
            p_composite_key: 0.5,
            rows_per_entity: 50,
            rows_per_relationship: 70,
            seed: 9,
            ..Default::default()
        });
        let widths: std::collections::BTreeSet<usize> =
            spec.entities.iter().map(|e| e.key_attrs.len()).collect();
        assert_eq!(widths.len(), 2, "seed 9 must mix key widths");
        let (db, truth) = build_workload(&spec, &DenormConfig::default(), 9);
        db.validate_dictionary().unwrap();
        let programs = generate_programs(&truth, &ProgramConfig::default());
        let mut oracle = TruthOracle::new(truth.clone());
        let result = run_with_programs(
            db,
            &programs.programs,
            &mut oracle,
            &PipelineOptions::default(),
        );
        let q = evaluate(&result, &truth, Some(&programs.covered));
        assert!(q.ind.recall >= 0.999, "{:?}", q.ind);
        assert!(q.fd.recall >= 0.999, "{:?}", q.fd);
    }

    #[test]
    fn prf_edge_cases() {
        let p = Prf::new(0, 0, 0);
        assert_eq!(p.precision, 1.0);
        assert_eq!(p.recall, 1.0);
        let p = Prf::new(1, 2, 4);
        assert!((p.precision - 0.5).abs() < 1e-12);
        assert!((p.recall - 0.25).abs() < 1e-12);
        assert!((p.f1 - 1.0 / 3.0).abs() < 1e-12);
    }
}
