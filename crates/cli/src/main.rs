//! `dbre` binary entry point — all logic lives in the library for
//! testability.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = dbre_cli::parse_args(&args);
    match dbre_cli::run(&cmd) {
        Ok(text) => print!("{text}"),
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    }
}
