//! # dbre-cli
//!
//! Command-line front end for the DBRE pipeline. The logic lives here
//! (testable); `src/main.rs` is a thin wrapper.
//!
//! ```text
//! dbre reverse --schema schema.sql [--data data.sql]
//!              [--csv Table=rows.csv]... [--programs file|dir]...
//!              [--oracle auto|deny] [--backend reference|encoded|sql|paged]
//!              [--page-cache MIB] [--spill-dir DIR] [--infer-keys]
//!              [--sketch on|off] [--sessions N] [--dot out.dot] [--quiet]
//! dbre extract --schema schema.sql [--programs file|dir]...
//! dbre example
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dbre_core::pipeline::{run_with_programs, PipelineOptions};
use dbre_core::render::{render_fds, render_inds, render_log, render_schema};
use dbre_core::{AutoOracle, DenyOracle, Oracle, SketchMode};
use dbre_extract::{ProgramSource, SourceKind};
use dbre_relational::csv::import_csv;
use dbre_sql::Catalog;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// Full pipeline run.
    Reverse(ReverseArgs),
    /// Equi-join extraction only.
    Extract(ExtractArgs),
    /// The paper's worked example.
    Example,
    /// Usage text requested (or parse failure with message).
    Help(Option<String>),
}

/// Arguments of `dbre reverse`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReverseArgs {
    /// DDL script path.
    pub schema: PathBuf,
    /// Optional INSERT script path.
    pub data: Option<PathBuf>,
    /// `Table=path.csv` extension loads.
    pub csv: Vec<(String, PathBuf)>,
    /// Program files/directories.
    pub programs: Vec<PathBuf>,
    /// `auto` (default) or `deny`.
    pub oracle: String,
    /// Counting backend: `encoded` (default), `reference`, `sql`, or
    /// `paged`.
    pub backend: String,
    /// Buffer-pool capacity in MiB for `--backend paged`
    /// (default 64).
    pub page_cache: Option<usize>,
    /// Persistent spill-cache directory: `--csv` extensions stream
    /// straight to checksummed spill files under this directory (keyed
    /// by schema fingerprint + content hash) instead of materializing,
    /// and a rerun on unchanged inputs skips the encode entirely.
    /// Implies the paged backend.
    pub spill_dir: Option<PathBuf>,
    /// Infer missing keys from the extension.
    pub infer_keys: bool,
    /// Sketch prefilter override: `--sketch on|off`. `None` defers to
    /// the `DBRE_SKETCH` environment variable (default on). Either
    /// mode produces byte-identical findings; `off` is the exact-only
    /// baseline for benchmarking.
    pub sketch: Option<SketchMode>,
    /// Service bench mode: run this many concurrent sessions over one
    /// shared snapshot and engine, print throughput and presumption
    /// latency, and check all logs against a serial run.
    pub sessions: Option<usize>,
    /// Write the EER diagram as DOT here.
    pub dot: Option<PathBuf>,
    /// Suppress the decision log.
    pub quiet: bool,
}

/// Arguments of `dbre extract`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExtractArgs {
    /// DDL script path.
    pub schema: PathBuf,
    /// Program files/directories.
    pub programs: Vec<PathBuf>,
}

/// Usage text.
pub const USAGE: &str = "\
dbre — reverse engineering of denormalized relational databases (ICDE'96)

USAGE:
  dbre reverse --schema DDL.sql [--data INSERTS.sql]
               [--csv Table=rows.csv]... [--programs FILE|DIR]...
               [--oracle auto|deny] [--backend reference|encoded|sql|paged]
               [--page-cache MIB] [--spill-dir DIR] [--infer-keys]
               [--sketch on|off] [--sessions N] [--dot OUT.dot] [--quiet]
  dbre extract --schema DDL.sql [--programs FILE|DIR]...
  dbre example
  dbre help
";

/// Parses argv (without the binary name).
pub fn parse_args(args: &[String]) -> Command {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("example") => Command::Example,
        Some("help") | None => Command::Help(None),
        Some(cmd @ ("reverse" | "extract")) => {
            let mut reverse = ReverseArgs {
                oracle: "auto".into(),
                backend: String::new(),
                ..Default::default()
            };
            let mut schema_seen = false;
            while let Some(flag) = it.next() {
                let mut value = |name: &str| -> Result<String, String> {
                    it.next()
                        .cloned()
                        .ok_or_else(|| format!("{name} expects a value"))
                };
                let r: Result<(), String> = (|| {
                    match flag.as_str() {
                        "--schema" => {
                            reverse.schema = PathBuf::from(value("--schema")?);
                            schema_seen = true;
                        }
                        "--data" => reverse.data = Some(PathBuf::from(value("--data")?)),
                        "--csv" => {
                            let v = value("--csv")?;
                            let (table, path) = v.split_once('=').ok_or_else(|| {
                                format!("--csv expects Table=path.csv, got `{v}`")
                            })?;
                            reverse.csv.push((table.to_string(), PathBuf::from(path)));
                        }
                        "--programs" => reverse.programs.push(PathBuf::from(value("--programs")?)),
                        "--oracle" => {
                            let v = value("--oracle")?;
                            if v != "auto" && v != "deny" {
                                return Err(format!("--oracle must be auto or deny, got `{v}`"));
                            }
                            reverse.oracle = v;
                        }
                        "--backend" => {
                            let v = value("--backend")?;
                            if dbre_core::BackendChoice::parse(&v).is_none() {
                                return Err(format!(
                                    "--backend must be reference, encoded, sql or paged, got `{v}`"
                                ));
                            }
                            reverse.backend = v;
                        }
                        "--page-cache" => {
                            let v = value("--page-cache")?;
                            let mib: usize =
                                v.parse().ok().filter(|m| *m > 0).ok_or_else(|| {
                                    format!("--page-cache expects a positive MiB count, got `{v}`")
                                })?;
                            reverse.page_cache = Some(mib);
                        }
                        "--spill-dir" => {
                            reverse.spill_dir = Some(PathBuf::from(value("--spill-dir")?));
                        }
                        "--infer-keys" => reverse.infer_keys = true,
                        "--sketch" => {
                            let v = value("--sketch")?;
                            reverse.sketch =
                                Some(SketchMode::parse(&v).ok_or_else(|| {
                                    format!("--sketch must be on or off, got `{v}`")
                                })?);
                        }
                        "--sessions" => {
                            let v = value("--sessions")?;
                            let n: usize = v.parse().ok().filter(|n| *n > 0).ok_or_else(|| {
                                format!("--sessions expects a positive count, got `{v}`")
                            })?;
                            reverse.sessions = Some(n);
                        }
                        "--dot" => reverse.dot = Some(PathBuf::from(value("--dot")?)),
                        "--quiet" => reverse.quiet = true,
                        other => return Err(format!("unknown flag `{other}`")),
                    }
                    Ok(())
                })();
                if let Err(m) = r {
                    return Command::Help(Some(m));
                }
            }
            if !schema_seen {
                return Command::Help(Some("--schema is required".into()));
            }
            if cmd == "extract" {
                Command::Extract(ExtractArgs {
                    schema: reverse.schema,
                    programs: reverse.programs,
                })
            } else {
                Command::Reverse(reverse)
            }
        }
        Some(other) => Command::Help(Some(format!("unknown command `{other}`"))),
    }
}

/// Collects program sources from files and directories (a directory
/// contributes every regular file it directly contains).
pub fn load_programs(paths: &[PathBuf]) -> Result<Vec<ProgramSource>, String> {
    let mut out = Vec::new();
    for path in paths {
        if path.is_dir() {
            let mut entries: Vec<PathBuf> = std::fs::read_dir(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_file())
                .collect();
            entries.sort();
            for file in entries {
                out.push(read_program(&file)?);
            }
        } else {
            out.push(read_program(path)?);
        }
    }
    Ok(out)
}

fn read_program(path: &Path) -> Result<ProgramSource, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    Ok(ProgramSource {
        name,
        text,
        kind: SourceKind::Auto,
    })
}

/// Builds the database from the reverse-command inputs.
pub fn load_database(args: &ReverseArgs) -> Result<dbre_relational::Database, String> {
    Ok(load_inputs(args)?.0)
}

/// Streamed extensions produced by [`load_inputs`], destined for
/// [`PipelineOptions::spilled`].
pub type SpilledInputs = Vec<(
    dbre_relational::RelId,
    std::sync::Arc<dbre_relational::SpilledTable>,
)>;

/// Builds the database plus any streamed extensions.
///
/// Without `--spill-dir` every `--csv` extension materializes through
/// [`import_csv`] as before and the second element is empty. With it,
/// each extension streams straight to checksummed spill files under
/// the cache directory (reruns on unchanged inputs load the committed
/// entry instead of re-encoding) and is validated against the
/// dictionary via [`dbre_relational::spill::validate_spilled`].
pub fn load_inputs(
    args: &ReverseArgs,
) -> Result<(dbre_relational::Database, SpilledInputs), String> {
    let ddl = std::fs::read_to_string(&args.schema)
        .map_err(|e| format!("cannot read {}: {e}", args.schema.display()))?;
    let mut catalog = Catalog::new();
    catalog
        .load_script(&ddl)
        .map_err(|e| format!("{}: {e}", args.schema.display()))?;
    if let Some(data) = &args.data {
        let inserts = std::fs::read_to_string(data)
            .map_err(|e| format!("cannot read {}: {e}", data.display()))?;
        catalog
            .load_script(&inserts)
            .map_err(|e| format!("{}: {e}", data.display()))?;
    }
    let mut db = catalog.into_database();
    let mut spilled: SpilledInputs = Vec::new();
    for (table, path) in &args.csv {
        let rel = db
            .rel(table)
            .map_err(|_| format!("--csv names unknown table `{table}`"))?;
        if let Some(dir) = &args.spill_dir {
            let t = dbre_relational::csv::import_csv_spilled(&mut db, rel, path, Some(dir))
                .map_err(|e| format!("{}: {e}", path.display()))?;
            spilled.push((rel, std::sync::Arc::new(t)));
        } else {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
            import_csv(&mut db, rel, &text).map_err(|e| format!("{}: {e}", path.display()))?;
        }
    }
    // Materialized tables check against the dictionary as always;
    // streamed ones go through the spilled twin (NULL counts from the
    // dictionaries, key uniqueness from the paged kernels).
    db.validate_dictionary()
        .map_err(|e| format!("extension violates the dictionary: {e}"))?;
    if !spilled.is_empty() {
        let pool = dbre_relational::BufferPool::default();
        for (rel, t) in &spilled {
            dbre_relational::spill::validate_spilled(&db, *rel, t, &pool)
                .map_err(|e| format!("extension violates the dictionary: {e}"))?;
        }
    }
    Ok((db, spilled))
}

/// Runs a parsed command, returning the text to print (and optionally
/// writing the DOT file for `reverse --dot`).
pub fn run(cmd: &Command) -> Result<String, String> {
    match cmd {
        Command::Help(None) => Ok(USAGE.to_string()),
        Command::Help(Some(msg)) => Err(format!("{msg}\n\n{USAGE}")),
        Command::Example => {
            let result = dbre_core::example::run_paper_example();
            Ok(render_result(&result, false))
        }
        Command::Extract(args) => {
            let reverse = ReverseArgs {
                schema: args.schema.clone(),
                oracle: "auto".into(),
                ..Default::default()
            };
            let db = load_database(&reverse)?;
            let programs = load_programs(&args.programs)?;
            let extraction = dbre_extract::extract_programs(
                &db.schema,
                &programs,
                &dbre_extract::ExtractConfig::default(),
            );
            let mut out = String::new();
            let _ = writeln!(out, "# Q — extracted equi-joins\n");
            for j in &extraction.joins {
                let provenance: Vec<&str> =
                    j.provenance.iter().map(|p| p.program.as_str()).collect();
                let _ = writeln!(
                    out,
                    "{:<55} [{}]",
                    j.join.render(&db.schema),
                    provenance.join(", ")
                );
            }
            for w in &extraction.warnings {
                let _ = writeln!(out, "warning: {w}");
            }
            Ok(out)
        }
        Command::Reverse(args) => {
            let (db, spilled) = load_inputs(args)?;
            let programs = load_programs(&args.programs)?;
            let mut options = PipelineOptions {
                infer_missing_keys: args.infer_keys,
                ..Default::default()
            };
            if let Some(choice) = dbre_core::BackendChoice::parse(&args.backend) {
                options.backend = choice;
            } else if !spilled.is_empty() {
                // `--spill-dir` without an explicit `--backend` means
                // paged — streamed extensions only exist there.
                options.backend = dbre_core::BackendChoice::Paged;
            }
            options.spilled = spilled;
            options.page_cache = args.page_cache.map(|mib| mib * 1024 * 1024);
            if let Some(mode) = args.sketch {
                options.sketch = mode;
            }
            if let Some(n) = args.sessions {
                return run_service_bench(db, &programs, &options, args, n);
            }
            let mut auto;
            let mut deny;
            let oracle: &mut dyn Oracle = if args.oracle == "deny" {
                deny = DenyOracle;
                &mut deny
            } else {
                auto = AutoOracle::default();
                &mut auto
            };
            let result = run_with_programs(db, &programs, oracle, &options);
            if let Some(dot_path) = &args.dot {
                std::fs::write(dot_path, result.eer.render_dot())
                    .map_err(|e| format!("cannot write {}: {e}", dot_path.display()))?;
            }
            Ok(render_result(&result, args.quiet))
        }
    }
}

/// `--sessions N`: one serial reference run, then `n` concurrent
/// sessions over a shared snapshot and engine, rendered as the normal
/// findings (identical across sessions by construction — and checked)
/// plus a throughput/latency section.
fn run_service_bench(
    db: dbre_relational::Database,
    programs: &[ProgramSource],
    options: &PipelineOptions,
    args: &ReverseArgs,
    n: usize,
) -> Result<String, String> {
    use dbre_core::service::{run_service, shared_engine};

    if !options.spilled.is_empty() {
        return Err(
            "--sessions (service mode) needs materialized extensions; drop --spill-dir".into(),
        );
    }
    let extraction = dbre_extract::extract_programs(&db.schema, programs, &options.extract);
    let q = extraction.q();

    // Serial reference: the determinism gate below compares every
    // concurrent session's log against this run.
    let serial = {
        let mut auto;
        let mut deny;
        let oracle: &mut dyn Oracle = if args.oracle == "deny" {
            deny = DenyOracle;
            &mut deny
        } else {
            auto = AutoOracle::default();
            &mut auto
        };
        dbre_core::pipeline::run_with_q(db.clone(), &q, oracle, options)
    };
    if let Some(dot_path) = &args.dot {
        std::fs::write(dot_path, serial.eer.render_dot())
            .map_err(|e| format!("cannot write {}: {e}", dot_path.display()))?;
    }

    let snapshot = dbre_relational::DbSnapshot::new(db);
    let engine = shared_engine(options);
    let report = if args.oracle == "deny" {
        run_service(&snapshot, &engine, &q, options, n, |_| DenyOracle)
    } else {
        run_service(&snapshot, &engine, &q, options, n, |_| {
            AutoOracle::default()
        })
    };

    let mut out = render_result(&serial, args.quiet);
    let _ = writeln!(out, "\n# Service bench\n");
    let _ = writeln!(out, "sessions                 {n}");
    let _ = writeln!(
        out,
        "wall time            {:>9.3} ms",
        report.wall.as_secs_f64() * 1e3
    );
    let _ = writeln!(
        out,
        "throughput           {:>9.1} sessions/sec",
        report.sessions_per_sec()
    );
    match report.presumption_percentiles() {
        Some((p50, p99)) => {
            let _ = writeln!(
                out,
                "presumption latency  p50 {:.1} us, p99 {:.1} us",
                p50.as_secs_f64() * 1e6,
                p99.as_secs_f64() * 1e6
            );
        }
        None => {
            let _ = writeln!(out, "presumption latency  (oracle never consulted)");
        }
    }
    let agree = report.logs_identical()
        && report
            .outcomes
            .first()
            .is_none_or(|o| o.result.log == serial.log);
    let _ = writeln!(
        out,
        "log agreement        {}",
        if agree {
            "all session logs byte-identical to the serial run"
        } else {
            "DIVERGED — concurrent sessions disagree with the serial run"
        }
    );
    if !agree {
        return Err(out);
    }
    Ok(out)
}

fn render_result(result: &dbre_core::pipeline::PipelineResult, quiet: bool) -> String {
    let mut out = String::new();
    if !result.provenance.is_empty() {
        let _ = writeln!(out, "# Q — navigations found in the programs\n");
        for (join, provenance) in &result.provenance {
            let programs: Vec<&str> = provenance.iter().map(|p| p.program.as_str()).collect();
            let _ = writeln!(
                out,
                "{:<55} [{}]",
                join.render(&result.db_before.schema),
                programs.join(", ")
            );
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out, "# Elicited inclusion dependencies\n");
    let _ = writeln!(out, "{}", render_inds(&result.db_before, &result.ind.inds));
    let _ = writeln!(out, "\n# Elicited functional dependencies\n");
    let _ = writeln!(out, "{}", render_fds(&result.db_before, &result.rhs.fds));
    let _ = writeln!(out, "\n# Restructured schema (3NF)\n");
    let _ = writeln!(out, "{}", render_schema(&result.db));
    let _ = writeln!(out, "\n# Referential integrity constraints\n");
    let _ = writeln!(out, "{}", render_inds(&result.db, &result.restructured.ric));
    let _ = writeln!(out, "\n# EER schema\n");
    let _ = writeln!(out, "{}", result.eer.render_text());
    if !result.stage_errors.is_empty() {
        let _ = writeln!(out, "\n# Degraded stages\n");
        for se in &result.stage_errors {
            let _ = writeln!(out, "{se}");
        }
        let _ = writeln!(
            out,
            "\nThe outputs above are partial: each degraded stage fell back to an empty result."
        );
    }
    for w in &result.warnings {
        let _ = writeln!(out, "warning: {w}");
    }
    let x = &result.stats.backend_exec;
    if x.fallback_failures > 0 {
        // A probe that failed to execute was silently served by the
        // reference fallback — the counts are right, but the backend
        // under test was not the one answering. Degraded-stage loud.
        let _ = writeln!(
            out,
            "warning: backend `{}` degraded: {} probe(s) failed to execute and fell \
             back to the reference computation",
            result.stats.backend, x.fallback_failures
        );
    }
    let _ = writeln!(out, "\n# Pipeline statistics\n");
    let c = &result.stats.counters;
    let _ = writeln!(
        out,
        "counting engine: backend `{}`, {} cache hits, {} misses, {} rows scanned",
        result.stats.backend, c.cache_hits, c.cache_misses, c.rows_scanned
    );
    if x.batch_ops + x.tuple_fallback_ops > 0 {
        let _ = writeln!(
            out,
            "sql executor: {} batch ops, {} tuple fallbacks",
            x.batch_ops, x.tuple_fallback_ops
        );
    }
    let p = &result.stats.page_cache;
    // Unary counts are served straight from dictionary metadata, so a
    // tiny paged run can legitimately finish without touching a page —
    // still print the line whenever the paged backend ran.
    if result.stats.backend == "paged" || p.hits + p.misses > 0 {
        let _ = writeln!(
            out,
            "page cache: {} hits, {} misses, {} evictions",
            p.hits, p.misses, p.evictions
        );
    }
    let sc = &result.stats.spill_cache;
    if sc.hits + sc.misses > 0 {
        // A hit means the table loaded from a committed `--spill-dir`
        // entry without re-encoding its source.
        let _ = writeln!(out, "spill cache: {} hits, {} misses", sc.hits, sc.misses);
    }
    let sk = &result.stats.sketch;
    if sk.active() {
        let _ = writeln!(
            out,
            "sketch prefilter: {} candidates, {} pruned, {} exactly verified",
            sk.candidates, sk.pruned, sk.verified
        );
        if sk.est_error_cols > 0 {
            let _ = writeln!(
                out,
                "sketch distinct counts: mean HLL error {:.2}% over {} columns",
                sk.mean_distinct_error() * 100.0,
                sk.est_error_cols
            );
        }
    }
    for (stage, t) in &result.stats.stage_timings {
        let _ = writeln!(out, "{stage:<14} {:>9.3} ms", t.as_secs_f64() * 1e3);
    }
    if !quiet {
        let _ = writeln!(out, "\n# Decision log\n");
        let _ = writeln!(out, "{}", render_log(&result.log));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_reverse_full() {
        let cmd = parse_args(&s(&[
            "reverse",
            "--schema",
            "ddl.sql",
            "--data",
            "rows.sql",
            "--csv",
            "Person=p.csv",
            "--programs",
            "progs/",
            "--oracle",
            "deny",
            "--backend",
            "reference",
            "--spill-dir",
            "cache/",
            "--infer-keys",
            "--sketch",
            "off",
            "--dot",
            "out.dot",
            "--quiet",
        ]));
        let Command::Reverse(a) = cmd else {
            panic!("{cmd:?}")
        };
        assert_eq!(a.sketch, Some(SketchMode::Off));
        assert_eq!(a.schema, PathBuf::from("ddl.sql"));
        assert_eq!(a.data, Some(PathBuf::from("rows.sql")));
        assert_eq!(a.csv, vec![("Person".into(), PathBuf::from("p.csv"))]);
        assert_eq!(a.oracle, "deny");
        assert_eq!(a.backend, "reference");
        assert_eq!(a.spill_dir, Some(PathBuf::from("cache/")));
        assert!(a.infer_keys);
        assert!(a.quiet);
    }

    #[test]
    fn parse_errors_are_help() {
        assert!(matches!(
            parse_args(&s(&["reverse"])),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse_args(&s(&["reverse", "--schema"])),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse_args(&s(&["reverse", "--schema", "x", "--oracle", "wat"])),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse_args(&s(&["reverse", "--schema", "x", "--csv", "nopath"])),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse_args(&s(&["reverse", "--schema", "x", "--backend", "postgres"])),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse_args(&s(&["reverse", "--schema", "x", "--page-cache", "0"])),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse_args(&s(&["reverse", "--schema", "x", "--page-cache", "lots"])),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse_args(&s(&["reverse", "--schema", "x", "--spill-dir"])),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse_args(&s(&["reverse", "--schema", "x", "--sketch", "maybe"])),
            Command::Help(Some(_))
        ));
        assert!(matches!(
            parse_args(&s(&["frobnicate"])),
            Command::Help(Some(_))
        ));
        assert!(matches!(parse_args(&s(&[])), Command::Help(None)));
        assert!(matches!(parse_args(&s(&["example"])), Command::Example));
    }

    #[test]
    fn example_command_runs() {
        let out = run(&Command::Example).unwrap();
        assert!(out.contains("Manager[proj] << Project[proj]"));
        assert!(out.contains("Assignment [relationship]"));
        assert!(out.contains("# Pipeline statistics"));
        assert!(out.contains("counting engine: backend `"));
        assert!(out.contains("ind-discovery"));
    }

    #[test]
    fn reverse_honors_backend_flag() {
        let dir = std::env::temp_dir().join(format!("dbre_cli_backend_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("schema.sql"),
            "CREATE TABLE Customer (cid INT UNIQUE, cname VARCHAR(30));
             CREATE TABLE Orders (oid INT UNIQUE, cust INT, cname VARCHAR(30));
             INSERT INTO Customer VALUES (1, 'ann'), (2, 'bob');
             INSERT INTO Orders VALUES (10, 1, 'ann'), (11, 2, 'bob');",
        )
        .unwrap();
        let mut outputs = Vec::new();
        for backend in ["reference", "encoded", "sql", "paged"] {
            let mut argv = s(&[
                "reverse",
                "--schema",
                dir.join("schema.sql").to_str().unwrap(),
                "--backend",
                backend,
                "--quiet",
            ]);
            if backend == "paged" {
                // Exercise the pool-capacity flag on the run that has
                // a pool to size.
                argv.extend(s(&["--page-cache", "1"]));
            }
            let cmd = parse_args(&argv);
            let out = run(&cmd).unwrap();
            assert!(
                out.contains(&format!("counting engine: backend `{backend}`")),
                "{out}"
            );
            if backend == "paged" {
                assert!(out.contains("page cache: "), "paged stats line: {out}");
            }
            // The backend must not change what is discovered: strip
            // the statistics block before comparing.
            let findings = out
                .split("# Pipeline statistics")
                .next()
                .unwrap()
                .to_string();
            outputs.push(findings);
        }
        assert!(outputs.windows(2).all(|w| w[0] == w[1]));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn end_to_end_on_temp_files() {
        let dir = std::env::temp_dir().join(format!("dbre_cli_test_{}", std::process::id()));
        std::fs::create_dir_all(dir.join("programs")).unwrap();
        std::fs::write(
            dir.join("schema.sql"),
            "CREATE TABLE Customer (cid INT UNIQUE, cname VARCHAR(30));
             CREATE TABLE Orders (oid INT UNIQUE, cust INT, cname VARCHAR(30));",
        )
        .unwrap();
        std::fs::write(dir.join("customer.csv"), "cid,cname\n1,ann\n2,bob\n3,cid\n").unwrap();
        std::fs::write(
            dir.join("orders.csv"),
            "oid,cust,cname\n10,1,ann\n11,1,ann\n12,2,bob\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("programs").join("report.sql"),
            "SELECT cname FROM Orders o, Customer c WHERE o.cust = c.cid;",
        )
        .unwrap();
        let dot = dir.join("out.dot");
        let cmd = parse_args(&s(&[
            "reverse",
            "--schema",
            dir.join("schema.sql").to_str().unwrap(),
            "--csv",
            &format!("Customer={}", dir.join("customer.csv").display()),
            "--csv",
            &format!("Orders={}", dir.join("orders.csv").display()),
            "--programs",
            dir.join("programs").to_str().unwrap(),
            "--dot",
            dot.to_str().unwrap(),
        ]));
        let out = run(&cmd).unwrap();
        assert!(out.contains("Orders[cust] << Customer[cid]"), "{out}");
        assert!(out.contains("Orders: cust -> cname"));
        let dot_text = std::fs::read_to_string(&dot).unwrap();
        assert!(dot_text.starts_with("digraph eer {"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sketch_flag_is_observable_and_inert() {
        let dir = std::env::temp_dir().join(format!("dbre_cli_sketch_{}", std::process::id()));
        std::fs::create_dir_all(dir.join("programs")).unwrap();
        std::fs::write(
            dir.join("schema.sql"),
            "CREATE TABLE Customer (cid INT UNIQUE, cname VARCHAR(30));
             CREATE TABLE Orders (oid INT UNIQUE, cust INT, cname VARCHAR(30));
             INSERT INTO Customer VALUES (1, 'ann'), (2, 'bob');
             INSERT INTO Orders VALUES (10, 1, 'ann'), (11, 2, 'bob');",
        )
        .unwrap();
        std::fs::write(
            dir.join("programs").join("report.sql"),
            "SELECT cname FROM Orders o, Customer c WHERE o.cust = c.cid;",
        )
        .unwrap();
        let mut findings = Vec::new();
        for mode in ["on", "off"] {
            let cmd = parse_args(&s(&[
                "reverse",
                "--schema",
                dir.join("schema.sql").to_str().unwrap(),
                "--programs",
                dir.join("programs").to_str().unwrap(),
                "--backend",
                "encoded",
                "--sketch",
                mode,
                "--quiet",
            ]));
            let out = run(&cmd).unwrap();
            assert_eq!(
                out.contains("sketch prefilter: "),
                mode == "on",
                "mode {mode}: {out}"
            );
            findings.push(
                out.split("# Pipeline statistics")
                    .next()
                    .unwrap()
                    .to_string(),
            );
        }
        // Pruned and exact-only runs report identical findings.
        assert_eq!(findings[0], findings[1]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sessions_flag_parses_and_rejects_junk() {
        let cmd = parse_args(&s(&["reverse", "--schema", "a.sql", "--sessions", "4"]));
        match cmd {
            Command::Reverse(args) => assert_eq!(args.sessions, Some(4)),
            other => panic!("{other:?}"),
        }
        for bad in ["0", "-1", "many"] {
            let cmd = parse_args(&s(&["reverse", "--schema", "a.sql", "--sessions", bad]));
            assert!(
                matches!(&cmd, Command::Help(Some(msg)) if msg.contains("--sessions")),
                "{cmd:?}"
            );
        }
    }

    #[test]
    fn sessions_flag_runs_service_bench() {
        let dir = std::env::temp_dir().join(format!("dbre_cli_svc_{}", std::process::id()));
        std::fs::create_dir_all(dir.join("programs")).unwrap();
        std::fs::write(
            dir.join("schema.sql"),
            "CREATE TABLE Customer (cid INT UNIQUE, cname VARCHAR(30));
             CREATE TABLE Orders (oid INT UNIQUE, cust INT, cname VARCHAR(30));
             INSERT INTO Customer VALUES (1, 'ann'), (2, 'bob'), (3, 'cid');
             INSERT INTO Orders VALUES (10, 1, 'ann'), (11, 1, 'ann'), (12, 2, 'bob');",
        )
        .unwrap();
        std::fs::write(
            dir.join("programs").join("report.sql"),
            "SELECT cname FROM Orders o, Customer c WHERE o.cust = c.cid;",
        )
        .unwrap();
        let cmd = parse_args(&s(&[
            "reverse",
            "--schema",
            dir.join("schema.sql").to_str().unwrap(),
            "--programs",
            dir.join("programs").to_str().unwrap(),
            "--sessions",
            "2",
        ]));
        let out = run(&cmd).unwrap();
        // Findings render once (the serial reference)…
        assert!(out.contains("Orders[cust] << Customer[cid]"), "{out}");
        assert!(out.contains("Orders: cust -> cname"), "{out}");
        // …and the bench section gates on determinism.
        assert!(out.contains("# Service bench"), "{out}");
        assert!(out.contains("sessions                 2"), "{out}");
        assert!(out.contains("sessions/sec"), "{out}");
        assert!(out.contains("byte-identical to the serial run"), "{out}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sessions_flag_refuses_spilled_extensions() {
        let dir = std::env::temp_dir().join(format!("dbre_cli_svc_spill_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("schema.sql"),
            "CREATE TABLE T (a INT UNIQUE, b INT);",
        )
        .unwrap();
        std::fs::write(dir.join("t.csv"), "a,b\n1,2\n3,4\n").unwrap();
        let cmd = parse_args(&s(&[
            "reverse",
            "--schema",
            dir.join("schema.sql").to_str().unwrap(),
            "--csv",
            &format!("T={}", dir.join("t.csv").display()),
            "--spill-dir",
            dir.join("spill").to_str().unwrap(),
            "--sessions",
            "2",
        ]));
        let err = run(&cmd).unwrap_err();
        assert!(err.contains("materialized"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn spill_dir_streams_reruns_warm_and_matches_materialized() {
        let dir = std::env::temp_dir().join(format!("dbre_cli_spill_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("schema.sql"),
            "CREATE TABLE Customer (cid INT UNIQUE, cname VARCHAR(30));
             CREATE TABLE Orders (oid INT UNIQUE, cust INT, cname VARCHAR(30));",
        )
        .unwrap();
        std::fs::write(dir.join("customer.csv"), "cid,cname\n1,ann\n2,bob\n").unwrap();
        std::fs::write(
            dir.join("orders.csv"),
            "oid,cust,cname\n10,1,ann\n11,1,ann\n12,2,bob\n",
        )
        .unwrap();
        std::fs::write(
            dir.join("report.sql"),
            "SELECT cname FROM Orders o, Customer c WHERE o.cust = c.cid;",
        )
        .unwrap();
        let argv = |spill: bool| {
            let mut v = s(&[
                "reverse",
                "--schema",
                dir.join("schema.sql").to_str().unwrap(),
                "--csv",
                &format!("Customer={}", dir.join("customer.csv").display()),
                "--csv",
                &format!("Orders={}", dir.join("orders.csv").display()),
                "--programs",
                dir.join("report.sql").to_str().unwrap(),
                "--quiet",
            ]);
            if spill {
                v.extend(s(&["--spill-dir", dir.join("cache").to_str().unwrap()]));
            }
            v
        };
        let findings = |out: &str| {
            out.split("# Pipeline statistics")
                .next()
                .unwrap()
                .to_string()
        };

        let materialized = run(&parse_args(&argv(false))).unwrap();
        let cold = run(&parse_args(&argv(true))).unwrap();
        assert!(cold.contains("counting engine: backend `paged`"), "{cold}");
        assert!(cold.contains("spill cache: 0 hits, 2 misses"), "{cold}");
        // Warm rerun: both tables load from the committed entries.
        let warm = run(&parse_args(&argv(true))).unwrap();
        assert!(warm.contains("spill cache: 2 hits, 0 misses"), "{warm}");
        // Same discoveries regardless of the ingest path.
        assert_eq!(findings(&cold), findings(&warm));
        assert_eq!(findings(&cold), findings(&materialized));
        assert!(cold.contains("Orders: cust -> cname"), "{cold}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_files_produce_errors_not_panics() {
        let cmd = parse_args(&s(&["reverse", "--schema", "/nonexistent/x.sql"]));
        assert!(run(&cmd).is_err());
        let cmd = parse_args(&s(&["extract", "--schema", "/nonexistent/x.sql"]));
        assert!(run(&cmd).is_err());
    }

    #[test]
    fn degraded_run_renders_stage_errors() {
        let mut cat = dbre_sql::Catalog::new();
        cat.load_script(
            "CREATE TABLE Customer (cid INT UNIQUE, cname VARCHAR(30));
             CREATE TABLE Orders (oid INT UNIQUE, cust INT, cname VARCHAR(30));
             INSERT INTO Customer VALUES (1, 'ann'), (2, 'bob');
             INSERT INTO Orders VALUES (10, 1, 'ann'), (11, 2, 'bob');",
        )
        .unwrap();
        let programs = vec![dbre_extract::ProgramSource::sql(
            "report",
            "SELECT cname FROM Orders o, Customer c WHERE o.cust = c.cid;",
        )];
        let mut oracle = dbre_core::ChaosOracle::with_abort(1, 1.0);
        let result = run_with_programs(
            cat.into_database(),
            &programs,
            &mut oracle,
            &Default::default(),
        );
        assert!(!result.stage_errors.is_empty());
        let out = render_result(&result, true);
        assert!(out.contains("# Degraded stages"), "{out}");
        assert!(out.contains("oracle aborted the session"), "{out}");
        assert!(out.contains("partial"), "{out}");
        // No backtrace-looking content in user-facing output.
        assert!(!out.contains("RUST_BACKTRACE"), "{out}");
    }
}
