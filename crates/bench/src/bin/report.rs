//! Regenerates every experiment of `EXPERIMENTS.md`.
//!
//! ```text
//! report                # all experiments
//! report e3 x1 x3       # a subset
//! ```
//!
//! E1–E6 reproduce the paper's §5–§7 walk-through, F1 its Figure 1;
//! X1–X5 are the quantitative evaluation the paper omitted (see
//! DESIGN.md for the experiment index).

use dbre_bench::{run_deny, run_truth, scenario, scenario_with, Scenario};
use dbre_core::example::{
    paper_database, paper_oracle, paper_programs, paper_q, run_paper_example, PAPER_DDL,
};
use dbre_core::oracle::NeiDecision;
use dbre_core::pipeline::{run_with_programs, PipelineOptions};
use dbre_core::render::{render_fds, render_inds, render_log, render_quals, render_schema};
use dbre_core::rhs_discovery::RhsOptions;
use dbre_core::{AutoOracle, DenyOracle};
use dbre_mine::spider::{spider, SpiderConfig};
use dbre_mine::tane::tane;
use dbre_relational::counting::join_stats;
use dbre_synth::{corrupt, evaluate, CorruptionConfig, DenormConfig, TruthOracle};
use std::time::Instant;

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).map(|a| a.to_lowercase()).collect();
    // `--check` (consumed before experiment filtering) makes XB gate
    // the sql backend's pipeline median against the encoded backend's —
    // the CI bench-smoke leg fails when the batch executor regresses.
    let check = args.iter().any(|a| a == "--check");
    args.retain(|a| a != "--check");
    let want = |id: &str| args.is_empty() || args.iter().any(|a| a == id);

    if want("e1") {
        e1();
    }
    if want("e2") {
        e2();
    }
    if want("e3") {
        e3();
    }
    if want("e4") {
        e4();
    }
    if want("e5") {
        e5();
    }
    if want("e6") {
        e6();
    }
    if want("f1") {
        f1();
    }
    if want("x1") {
        x1();
    }
    if want("x2") {
        x2();
    }
    if want("x3") {
        x3();
    }
    if want("x4") {
        x4();
    }
    if want("x5") {
        x5();
    }
    if want("x6") {
        x6();
    }
    if want("x7") {
        x7();
    }
    if want("x8") {
        x8();
    }
    if want("xb") {
        xb(check);
    } else if check {
        eprintln!("--check has no effect without the xb experiment");
        std::process::exit(2);
    }
}

fn header(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

fn e1() {
    header("E1", "dictionary sets K and N (paper §5)");
    let mut cat = dbre_sql::Catalog::new();
    cat.load_script(PAPER_DDL).expect("paper DDL parses");
    let (k, n) = cat.render_k_n();
    println!("K = {{ {} }}", k.join(", "));
    println!("N = {{ {} }}", n.join(", "));
}

fn e2() {
    header(
        "E2",
        "equi-join set Q extracted from application programs (paper §4/§5)",
    );
    let db = paper_database();
    let extraction = dbre_extract::extract_programs(
        &db.schema,
        &paper_programs(),
        &dbre_extract::ExtractConfig::default(),
    );
    for j in &extraction.joins {
        let provenance: Vec<String> = j.provenance.iter().map(|p| p.program.clone()).collect();
        println!(
            "{:<55} [{}]",
            j.join.render(&db.schema),
            provenance.join(", ")
        );
    }
}

fn e3() {
    header("E3", "IND-Discovery (paper §6.1)");
    let mut db = paper_database();
    let q = paper_q(&db);
    println!("cardinalities per equi-join (N_k, N_l, N_kl):");
    for join in &q {
        let s = join_stats(&db, join);
        println!(
            "  {:<50} {:>5} {:>5} {:>5}",
            join.render(&db.schema),
            s.n_left,
            s.n_right,
            s.n_join
        );
    }
    let mut oracle = paper_oracle();
    let ind = dbre_core::ind_discovery(&mut db, &q, &mut oracle).unwrap();
    println!("elicited IND set:");
    println!("{}", indent(&render_inds(&db, &ind.inds)));
    println!(
        "new relations S: {}",
        ind.new_relations
            .iter()
            .map(|r| db.schema.relation(*r).name.clone())
            .collect::<Vec<_>>()
            .join(", ")
    );
}

fn e4() {
    header("E4", "LHS-Discovery (paper §6.2.1)");
    let mut db = paper_database();
    let q = paper_q(&db);
    let mut oracle = paper_oracle();
    let ind = dbre_core::ind_discovery(&mut db, &q, &mut oracle).unwrap();
    let lhs = dbre_core::lhs_discovery(&db, &ind.inds, &ind.new_relations);
    println!("LHS =");
    println!("{}", indent(&render_quals(&db, &lhs.lhs)));
    println!("H =");
    println!("{}", indent(&render_quals(&db, &lhs.hidden)));
}

fn e5() {
    header("E5", "RHS-Discovery (paper §6.2.2)");
    let result = run_paper_example();
    println!("F =");
    println!(
        "{}",
        indent(&render_fds(&result.db_before, &result.rhs.fds))
    );
    println!("H =");
    println!(
        "{}",
        indent(&render_quals(&result.db_before, &result.rhs.hidden))
    );
    println!("given up by the expert:");
    println!(
        "{}",
        indent(&render_quals(&result.db_before, &result.rhs.given_up))
    );
    println!("extension FD checks performed: {}", result.rhs.fd_checks);
}

fn e6() {
    header("E6", "Restruct: 3NF schema + RIC (paper §7)");
    let result = run_paper_example();
    println!("restructured schema (keys _underlined_, not-null !marked):");
    println!("{}", indent(&render_schema(&result.db)));
    println!("RIC =");
    println!(
        "{}",
        indent(&render_inds(&result.db, &result.restructured.ric))
    );
    println!("\ndecision log:");
    println!("{}", indent(&render_log(&result.log)));
}

fn f1() {
    header("F1", "Translate: the EER schema of Figure 1");
    let result = run_paper_example();
    println!("{}", result.eer.render_text());
    println!("--- DOT ---");
    println!("{}", result.eer.render_dot());
}

/// X1: query-guided IND-Discovery vs exhaustive SPIDER mining.
fn x1() {
    header(
        "X1",
        "IND elicitation: query-guided (paper) vs exhaustive SPIDER baseline",
    );
    println!(
        "{:<10} {:>7} {:>9} {:>12} {:>11} {:>12} {:>12}",
        "entities", "rows", "joins|Q|", "paper_ms", "paper_tests", "spider_ms", "spider_cand"
    );
    for &(entities, rows) in &[
        (4usize, 1000usize),
        (8, 1000),
        (16, 1000),
        (8, 10_000),
        (8, 50_000),
    ] {
        let s = scenario(entities, rows, 42);
        let extraction = dbre_extract::extract_programs(
            &s.db.schema,
            &s.programs,
            &dbre_extract::ExtractConfig::default(),
        );
        let q = extraction.q();

        let mut db = s.db.clone();
        let mut oracle = TruthOracle::new(s.truth.clone());
        let t0 = Instant::now();
        let ind = dbre_core::ind_discovery(&mut db, &q, &mut oracle).unwrap();
        let paper_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let sp = spider(&s.db, &SpiderConfig::default());
        let spider_ms = t0.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:<10} {:>7} {:>9} {:>12.2} {:>11} {:>12.2} {:>12}",
            entities,
            rows,
            q.len(),
            paper_ms,
            ind.join_stats.len(),
            spider_ms,
            sp.stats.initial_candidates
        );
    }
    println!("(tests: extension probes issued — the paper's thesis is column 5 << column 7)");
}

/// X2: targeted RHS-Discovery vs full TANE mining.
fn x2() {
    header(
        "X2",
        "FD elicitation: targeted RHS-Discovery (paper) vs full TANE baseline",
    );
    println!(
        "{:<10} {:>7} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "entities", "rows", "paper_ms", "paper_chk", "paper_fds", "tane_ms", "tane_fds"
    );
    for &(entities, rows) in &[(4usize, 1000usize), (8, 1000), (8, 10_000), (8, 50_000)] {
        let s = scenario(entities, rows, 42);

        let mut db = s.db.clone();
        let q = dbre_extract::extract_programs(
            &db.schema,
            &s.programs,
            &dbre_extract::ExtractConfig::default(),
        )
        .q();
        let mut oracle = TruthOracle::new(s.truth.clone());
        let ind = dbre_core::ind_discovery(&mut db, &q, &mut oracle).unwrap();
        let lhs = dbre_core::lhs_discovery(&db, &ind.inds, &ind.new_relations);
        let t0 = Instant::now();
        let rhs = dbre_core::rhs_discovery(&db, &lhs, &mut oracle, &RhsOptions::default());
        let paper_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t0 = Instant::now();
        let mut tane_fds = 0usize;
        for (rel, _) in s.db.schema.iter() {
            let r = tane(rel, s.db.table(rel), Some(2));
            tane_fds += r.fds.len();
        }
        let tane_ms = t0.elapsed().as_secs_f64() * 1e3;

        println!(
            "{:<10} {:>7} {:>10.2} {:>10} {:>10} {:>10.2} {:>10}",
            entities,
            rows,
            paper_ms,
            rhs.fd_checks,
            rhs.fds.len(),
            tane_ms,
            tane_fds
        );
    }
    println!("(tane_fds counts every minimal FD holding in the data — accidental ones included;");
    println!(" paper_fds are only the navigated, conceptually meaningful dependencies)");
}

/// X3: recovery quality vs program coverage and corruption.
fn x3() {
    header("X3", "recovery quality vs coverage / corruption / oracle");
    println!(
        "{:<9} {:>7} {:<7} {:>8} {:>8} {:>8} {:>8} {:>9}",
        "coverage", "corrupt", "oracle", "ind_R", "fd_R", "fd_P", "hidden", "schemaF1"
    );
    for &coverage in &[0.2, 0.5, 0.8, 1.0] {
        for &noise in &[0.0, 0.02, 0.10] {
            for oracle_kind in ["truth", "auto", "deny"] {
                // Seed 2 drops an entity referenced from three sites,
                // so the hidden-object column actually measures
                // something (a pairwise NEI exists for programs to
                // navigate).
                let denorm = DenormConfig {
                    p_embed: 0.7,
                    p_drop: 0.4,
                    seed: 2,
                };
                let mut s: Scenario = scenario_with(8, 500, 2, coverage, &denorm);
                if noise > 0.0 {
                    corrupt(
                        &mut s.db,
                        &s.truth,
                        &CorruptionConfig {
                            fd_noise: noise,
                            ind_noise: noise,
                            seed: 9,
                        },
                    );
                }
                let result = match oracle_kind {
                    "truth" => run_truth(&s),
                    "deny" => run_deny(&s),
                    _ => {
                        let mut o = AutoOracle::default();
                        run_with_programs(
                            s.db.clone(),
                            &s.programs,
                            &mut o,
                            &PipelineOptions::default(),
                        )
                    }
                };
                let q = evaluate(&result, &s.truth, Some(&s.covered));
                println!(
                    "{:<9.2} {:>7.2} {:<7} {:>8.3} {:>8.3} {:>8.3} {:>8.3} {:>9.3}",
                    coverage,
                    noise,
                    oracle_kind,
                    q.ind.recall,
                    q.fd.recall,
                    q.fd.precision,
                    q.hidden_recovery,
                    q.schema.f1
                );
            }
        }
    }
}

/// X4: ablation of the RHS candidate pruning (paper §6.2.2 step 1).
fn x4() {
    header("X4", "ablation: RHS-Discovery candidate pruning");
    println!("{:<28} {:>10} {:>10}", "variant", "fd_checks", "fds_found");
    for (name, opts) in [
        ("full pruning (paper)", RhsOptions::default()),
        (
            "no key pruning",
            RhsOptions {
                prune_keys: false,
                prune_not_null: true,
            },
        ),
        (
            "no not-null pruning",
            RhsOptions {
                prune_keys: true,
                prune_not_null: false,
            },
        ),
        (
            "no pruning",
            RhsOptions {
                prune_keys: false,
                prune_not_null: false,
            },
        ),
    ] {
        let mut db = paper_database();
        let q = paper_q(&db);
        let mut oracle = paper_oracle();
        let ind = dbre_core::ind_discovery(&mut db, &q, &mut oracle).unwrap();
        let lhs = dbre_core::lhs_discovery(&db, &ind.inds, &ind.new_relations);
        let rhs = dbre_core::rhs_discovery(&db, &lhs, &mut oracle, &opts);
        println!("{:<28} {:>10} {:>10}", name, rhs.fd_checks, rhs.fds.len());
    }
}

/// X5: ablation of NEI handling policies.
fn x5() {
    header("X5", "ablation: NEI resolution policy on the paper example");
    for (name, decision) in [
        ("conceptualize (paper)", NeiDecision::Conceptualize),
        ("force left << right", NeiDecision::ForceLeftInRight),
        ("force right << left", NeiDecision::ForceRightInLeft),
        ("ignore", NeiDecision::Ignore),
    ] {
        let db = paper_database();
        let q = paper_q(&db);
        let mut oracle = dbre_core::ScriptedOracle::new()
            .nei("Assignment[dep] |><| Department[dep]", decision.clone())
            .name("nei:Assignment[dep] |><| Department[dep]", "Ass-Dept")
            .hidden("HEmployee.{no}", true)
            .hidden("Assignment.{emp}", false)
            .hidden("Department.{proj}", false)
            .hidden("Assignment.{dep}", false)
            .hidden("Department.{dep}", false)
            .name("hidden:HEmployee.{no}", "Employee")
            .name("hidden:Assignment.{dep}", "Other-Dept")
            .name("fd:Department: emp -> skill, proj", "Manager")
            .name("fd:Assignment: proj -> project-name", "Project");
        let result = dbre_core::run_with_q(db, &q, &mut oracle, &Default::default());
        println!(
            "{:<24} inds={:>2} ric={:>2} relations={:>2} entities={:>2} relationships={:>2} isa={:>2}",
            name,
            result.ind.inds.len(),
            result.restructured.ric.len(),
            result.db.schema.len(),
            result.eer.entities.len(),
            result.eer.relationships.len(),
            result.eer.isa.len()
        );
    }
    println!("(conceptualize recovers Ass-Dept and both its is-a links; ignore loses the");
    println!(" department-sharing semantics entirely — the paper's warning in §6.1)");

    // Also show DenyOracle end-to-end: the fully automatic floor.
    let db = paper_database();
    let q = paper_q(&db);
    let mut deny = DenyOracle;
    let result = dbre_core::run_with_q(db, &q, &mut deny, &Default::default());
    println!(
        "{:<24} inds={:>2} ric={:>2} relations={:>2} (no expert at all)",
        "deny everything",
        result.ind.inds.len(),
        result.restructured.ric.len(),
        result.db.schema.len()
    );
}

/// X6: composite (n-ary) inclusion dependencies — program extraction
/// vs exhaustive MIND mining.
fn x6() {
    header(
        "X6",
        "composite INDs: one extracted join vs levelwise MIND mining",
    );
    // A composite-key scenario: Enrollment references (Course.dept,
    // Course.num) as a pair; one legacy report joins on both columns.
    let mut cat = dbre_sql::Catalog::new();
    cat.load_script(
        "CREATE TABLE Course (dept CHAR(4), num INT, title VARCHAR(40), UNIQUE(dept, num));
         CREATE TABLE Enrollment (student INT, dept CHAR(4), num INT,
                                  UNIQUE(student, dept, num));",
    )
    .unwrap();
    let mut script = String::new();
    for d in 0..6 {
        for n in 0..40 {
            script.push_str(&format!(
                "INSERT INTO Course VALUES ('D{d}', {n}, 'course {d}-{n}');"
            ));
        }
    }
    for s in 0..300 {
        let d = s % 5; // department D5 never referenced: strict subset
        let n = (s * 7) % 40;
        script.push_str(&format!(
            "INSERT INTO Enrollment VALUES ({s}, 'D{d}', {n});"
        ));
    }
    cat.load_script(&script).unwrap();
    let db = cat.into_database();

    let programs = [dbre_extract::ProgramSource::sql(
        "roster.sql",
        "SELECT c.title FROM Enrollment e, Course c \
         WHERE e.dept = c.dept AND e.num = c.num;",
    )];
    let t0 = Instant::now();
    let extraction = dbre_extract::extract_programs(
        &db.schema,
        &programs,
        &dbre_extract::ExtractConfig::default(),
    );
    let q = extraction.q();
    let mut db2 = db.clone();
    let mut oracle = DenyOracle;
    let ind = dbre_core::ind_discovery(&mut db2, &q, &mut oracle).unwrap();
    let extract_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = Instant::now();
    let mined = dbre_mine::mind(&db, &dbre_mine::SpiderConfig::default(), 2);
    let mind_ms = t0.elapsed().as_secs_f64() * 1e3;

    println!(
        "extraction: {} composite join(s), {} probe(s), {:.2} ms -> {}",
        q.len(),
        ind.join_stats.len(),
        extract_ms,
        ind.inds
            .iter()
            .map(|i| i.render(&db2.schema))
            .collect::<Vec<_>>()
            .join("; ")
    );
    println!(
        "MIND:       {} unary INDs, {} binary candidates, {:.2} ms, maximal: {}",
        mined.stats.unary,
        mined.stats.candidates,
        mind_ms,
        dbre_mine::maximal(&mined)
            .iter()
            .map(|i| i.render(&db.schema))
            .collect::<Vec<_>>()
            .join("; ")
    );
    println!("(the program's WHERE conjunction hands the composite over directly;");
    println!(" blind mining must survive the unary-pair candidate space first)");
}

/// X7: key inference for dictionaries without UNIQUE declarations.
fn x7() {
    header(
        "X7",
        "pre-UNIQUE dictionaries: pipeline with and without key inference",
    );
    // The paper example as an ancient DBMS would hold it: no UNIQUE,
    // no NOT NULL — the dictionary is silent.
    let stripped_ddl = "
        CREATE TABLE Person (id INTEGER, name VARCHAR(40), street VARCHAR(40),
                             number INTEGER, zip-code CHAR(8), state VARCHAR(20));
        CREATE TABLE HEmployee (no INTEGER, date DATE, salary REAL);
        CREATE TABLE Department (dep CHAR(8), emp INTEGER, skill VARCHAR(20),
                                 location VARCHAR(20), proj CHAR(6));
        CREATE TABLE Assignment (emp INTEGER, dep CHAR(8), proj CHAR(6),
                                 date DATE, project-name VARCHAR(30));
    ";

    for infer in [false, true] {
        let mut cat = dbre_sql::Catalog::new();
        cat.load_script(stripped_ddl).expect("stripped DDL parses");
        let mut db = cat.into_database();
        // Extension copied from the canonical example database.
        let full = paper_database();
        for (rel, relation) in full.schema.iter() {
            let target = db.rel(&relation.name).unwrap();
            db.replace_table(target, full.table(rel).clone()).unwrap();
        }
        let q = paper_q(&db);
        let mut oracle = paper_oracle();
        let opts = PipelineOptions {
            infer_missing_keys: infer,
            ..Default::default()
        };
        let result = dbre_core::run_with_q(db, &q, &mut oracle, &opts);
        let inferred = result
            .log
            .iter()
            .filter(|r| r.step == "Key inference")
            .count();
        println!(
            "infer_keys={:<5} inferred={} inds={} fds={} ric={} relations={} isa={}",
            infer,
            inferred,
            result.ind.inds.len(),
            result.rhs.fds.len(),
            result.restructured.ric.len(),
            result.db.schema.len(),
            result.eer.isa.len()
        );
    }
    println!("(a silent dictionary makes every navigated identifier look splittable —");
    println!(" Person is torn apart along id and the schema over-decomposes; key");
    println!(" inference restores the paper's exact §7 outcome: 10 RIC, 9 relations)");
}

/// X8: memoized `‖·‖` counting — repeated-Q statistics through the
/// StatsEngine vs naive rescans, plus the instrumented pipeline run.
fn x8() {
    header(
        "X8",
        "StatsEngine: repeated-Q counting cached vs naive, pipeline instrumentation",
    );
    println!(
        "{:<10} {:>7} {:>5} {:>5} {:>10} {:>10} {:>8} {:>7} {:>7}",
        "entities", "rows", "|Q|", "reps", "naive_ms", "cached_ms", "speedup", "hits", "misses"
    );
    for &(entities, rows) in &[(8usize, 1000usize), (8, 10_000), (8, 50_000)] {
        let s = scenario(entities, rows, 42);
        let q = dbre_extract::extract_programs(
            &s.db.schema,
            &s.programs,
            &dbre_extract::ExtractConfig::default(),
        )
        .q();
        let reps = 25;

        let t0 = Instant::now();
        for _ in 0..reps {
            for join in &q {
                std::hint::black_box(join_stats(&s.db, join));
            }
        }
        let naive_ms = t0.elapsed().as_secs_f64() * 1e3;

        let engine = dbre_relational::StatsEngine::new();
        let t0 = Instant::now();
        for _ in 0..reps {
            for join in &q {
                std::hint::black_box(engine.join_stats(&s.db, join));
            }
        }
        let cached_ms = t0.elapsed().as_secs_f64() * 1e3;
        let c = engine.counters();

        println!(
            "{:<10} {:>7} {:>5} {:>5} {:>10.2} {:>10.2} {:>7.1}x {:>7} {:>7}",
            entities,
            rows,
            q.len(),
            reps,
            naive_ms,
            cached_ms,
            naive_ms / cached_ms.max(1e-9),
            c.cache_hits,
            c.cache_misses
        );
    }

    println!("\ninstrumented pipeline run (8 entities, 10k rows):");
    let s = scenario(8, 10_000, 42);
    let result = run_truth(&s);
    let c = &result.stats.counters;
    println!(
        "  counting engine: {} cache hits, {} misses, {} rows scanned",
        c.cache_hits, c.cache_misses, c.rows_scanned
    );
    for (stage, t) in &result.stats.stage_timings {
        println!("  {stage:<14} {:>9.3} ms", t.as_secs_f64() * 1e3);
    }
    println!("(a repeated navigation costs one hash lookup instead of a table rescan;");
    println!(" the pipeline shares one engine across IND/RHS discovery and key inference)");
}

/// XB: machine-readable cold-kernel benchmark — Value-based reference
/// vs dictionary-encoded kernels — written to `BENCH_report.json` at
/// the repository root (per-bench median ns + engine cache counters).
///
/// With `check`, exits nonzero if the sql backend's end-to-end pipeline
/// median exceeds 2x the encoded backend's (8 entities, 1k rows): the
/// CI guard that the batch executor keeps carrying the SQL path.
fn xb(check: bool) {
    use dbre_mine::{check_hash, StrippedPartition};
    use dbre_relational::encode::{partition1_col, ColumnDict};
    use dbre_relational::{AttrId, AttrSet, Fd, StatsEngine};

    header(
        "XB",
        "cold kernels, reference vs encoded -> BENCH_report.json",
    );

    /// Median of `samples` timed runs, in nanoseconds.
    fn median_ns(samples: usize, mut f: impl FnMut()) -> f64 {
        let mut times: Vec<f64> = (0..samples)
            .map(|_| {
                let t0 = Instant::now();
                f();
                t0.elapsed().as_nanos() as f64
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        times[times.len() / 2]
    }

    let samples = 7;
    let mut benches: Vec<(String, f64)> = Vec::new();

    for &(entities, rows) in &[(8usize, 1000usize), (8, 10_000), (8, 50_000)] {
        let s = scenario(entities, rows, 42);
        let q = dbre_extract::extract_programs(
            &s.db.schema,
            &s.programs,
            &dbre_extract::ExtractConfig::default(),
        )
        .q();
        let tag = format!("e{entities}_r{rows}");

        // Cold ‖·‖ counting over the whole Q.
        benches.push((
            format!("ind_discovery/join_stats_cold_reference/{tag}"),
            median_ns(samples, || {
                for join in &q {
                    std::hint::black_box(join_stats(&s.db, join));
                }
            }),
        ));
        benches.push((
            format!("ind_discovery/join_stats_cold_encoded/{tag}"),
            median_ns(samples, || {
                let engine = StatsEngine::new();
                for join in &q {
                    std::hint::black_box(engine.join_stats(&s.db, join));
                }
            }),
        ));

        // Cold level-1 partition seeding (TANE / key discovery).
        benches.push((
            format!("fd_discovery/unary_partitions_cold_reference/{tag}"),
            median_ns(samples, || {
                for (rel, relation) in s.db.schema.iter() {
                    let table = s.db.table(rel);
                    for i in 0..relation.arity() {
                        std::hint::black_box(StrippedPartition::for_attribute(
                            table,
                            AttrId(i as u16),
                        ));
                    }
                }
            }),
        ));
        benches.push((
            format!("fd_discovery/unary_partitions_cold_encoded/{tag}"),
            median_ns(samples, || {
                for (rel, relation) in s.db.schema.iter() {
                    let table = s.db.table(rel);
                    for i in 0..relation.arity() {
                        let col = ColumnDict::build(table.column(AttrId(i as u16)));
                        std::hint::black_box(partition1_col(&col));
                    }
                }
            }),
        ));

        // Cold RHS-Discovery probes: `a0 → b` for every other column —
        // the batch shape of §6.2.2, where probes share one LHS. The
        // reference rescans and regroups the table per probe; the cold
        // engine builds the LHS dictionary and grouping once per
        // relation and serves the rest of the batch from cache.
        benches.push((
            format!("fd_discovery/fd_check_cold_reference/{tag}"),
            median_ns(samples, || {
                for (rel, relation) in s.db.schema.iter() {
                    let table = s.db.table(rel);
                    for i in 1..relation.arity() {
                        std::hint::black_box(check_hash(table, &[AttrId(0)], &[AttrId(i as u16)]));
                    }
                }
            }),
        ));
        benches.push((
            format!("fd_discovery/fd_check_cold_encoded/{tag}"),
            median_ns(samples, || {
                let engine = StatsEngine::new();
                for (rel, relation) in s.db.schema.iter() {
                    for i in 1..relation.arity() {
                        let fd = Fd::new(
                            rel,
                            AttrSet::from_indices([0u16]),
                            AttrSet::from_indices([i as u16]),
                        );
                        std::hint::black_box(engine.fd_holds(&s.db, &fd));
                    }
                }
            }),
        ));
    }

    // Per-backend end-to-end pipeline rows: the same run_with_q served
    // by each CountBackend through the one counting seam (small
    // extension — the SQL backend executes every ‖·‖ probe as a real
    // statement, lowered by the batch executor onto the encoded
    // kernels, with the tuple interpreter as its fallback; the paged
    // backend streams spilled code pages through its buffer pool).
    let mut backend_rows: Vec<(&'static str, f64)> = Vec::new();
    let mut paged_cache = dbre_relational::PageCacheStats::default();
    let sp = scenario(8, 1000, 42);
    let qp = dbre_extract::extract_programs(
        &sp.db.schema,
        &sp.programs,
        &dbre_extract::ExtractConfig::default(),
    )
    .q();
    for choice in [
        dbre_core::BackendChoice::Reference,
        dbre_core::BackendChoice::Encoded,
        dbre_core::BackendChoice::Sql,
        dbre_core::BackendChoice::Paged,
    ] {
        let opts = PipelineOptions {
            backend: choice,
            ..Default::default()
        };
        let ns = median_ns(samples, || {
            let mut oracle = AutoOracle::default();
            let r = dbre_core::run_with_q(sp.db.clone(), &qp, &mut oracle, &opts);
            if matches!(choice, dbre_core::BackendChoice::Paged) {
                paged_cache = r.stats.page_cache;
            }
            std::hint::black_box(r);
        });
        benches.push((
            format!("pipeline/run_with_q_{}/e8_r1000", choice.name()),
            ns,
        ));
        backend_rows.push((choice.name(), ns));
    }

    // Sketch prefilter: IND candidate filtering at 8 entities / 50k
    // rows over the full cross-relation unary candidate space (every
    // domain-compatible column pair — the search space where most
    // candidates are hopeless). Each candidate asks "is the left
    // column contained in the right?". The exact path runs the ‖·‖
    // kernel for every candidate and checks n_join == n_left; the
    // sketch path first tries to refute containment from the one-pass
    // column sketches (a left hash missing from the right hash set is
    // certain proof — the walk bails at the first miss) and runs the
    // kernel only on the survivors. The verdicts must match
    // pair-for-pair — the prefilter may only skip work, never change
    // an answer.
    let s50 = scenario(8, 50_000, 42);
    let mut sketch_cands: Vec<dbre_relational::counting::EquiJoin> = Vec::new();
    for (lrel, lr) in s50.db.schema.iter() {
        for (rrel, rr) in s50.db.schema.iter() {
            if lrel == rrel {
                continue;
            }
            for i in 0..lr.arity() {
                for j in 0..rr.arity() {
                    let (li, rj) = (AttrId(i as u16), AttrId(j as u16));
                    if lr.attribute(li).domain != rr.attribute(rj).domain {
                        continue;
                    }
                    if let Ok(join) = dbre_relational::counting::EquiJoin::try_new(
                        dbre_relational::deps::IndSide::single(lrel, li),
                        dbre_relational::deps::IndSide::single(rrel, rj),
                    ) {
                        sketch_cands.push(join);
                    }
                }
            }
        }
    }
    let sketch_space = sketch_cands.len();
    let filter_exact = |engine: &dbre_relational::StatsEngine| {
        for join in &sketch_cands {
            let js = engine.join_stats(&s50.db, join);
            std::hint::black_box(js.n_join == js.n_left);
        }
    };
    let filter_sketched = |engine: &dbre_relational::StatsEngine| {
        use dbre_relational::backend::CountBackend;
        for join in &sketch_cands {
            let refuted = match (
                engine.column_sketch(&s50.db, join.left.rel, join.left.attrs[0]),
                engine.column_sketch(&s50.db, join.right.rel, join.right.attrs[0]),
            ) {
                (Some(l), Some(r)) => l.refutes_containment(&r),
                _ => false,
            };
            if refuted {
                std::hint::black_box(false);
            } else {
                let js = engine.join_stats(&s50.db, join);
                std::hint::black_box(js.n_join == js.n_left);
            }
        }
    };
    // Agreement sweep (untimed): every refuted candidate must fail the
    // exact containment check too, and the counters come from here.
    let mut sketch_prune = dbre_relational::sketch::SketchPruneStats::default();
    let sketch_agree = {
        use dbre_relational::backend::CountBackend;
        let engine = StatsEngine::new();
        let mut agree = true;
        for join in &sketch_cands {
            let exact = engine.join_stats(&s50.db, join);
            let pair = (
                engine.column_sketch(&s50.db, join.left.rel, join.left.attrs[0]),
                engine.column_sketch(&s50.db, join.right.rel, join.right.attrs[0]),
            );
            let (Some(l), Some(r)) = pair else {
                continue;
            };
            sketch_prune.candidates += 1;
            sketch_prune.observe_column(&l);
            sketch_prune.observe_column(&r);
            if l.refutes_containment(&r) {
                sketch_prune.pruned += 1;
                agree &= exact.n_join < exact.n_left;
            } else {
                sketch_prune.verified += 1;
            }
        }
        agree
    };
    // Timed region: the filtering pass itself, per-sample fresh join
    // and projection caches. Dictionaries and sketches are prewarmed
    // outside the clock — they are ingest artifacts (the dictionary
    // IS the encoded storage format and the spill cache persists
    // sketches beside it) paid identically by both paths, and timing
    // them would only bury the quantity under test.
    let prewarm_store = |engine: &dbre_relational::StatsEngine| {
        use dbre_relational::backend::CountBackend;
        for join in &sketch_cands {
            std::hint::black_box(engine.column_sketch(&s50.db, join.left.rel, join.left.attrs[0]));
            std::hint::black_box(engine.column_sketch(
                &s50.db,
                join.right.rel,
                join.right.attrs[0],
            ));
        }
    };
    let measure_filters = || {
        let median = |f: &dyn Fn(&dbre_relational::StatsEngine)| {
            let mut times: Vec<f64> = (0..3)
                .map(|_| {
                    let engine = StatsEngine::new();
                    prewarm_store(&engine);
                    let t0 = Instant::now();
                    f(&engine);
                    t0.elapsed().as_nanos() as f64
                })
                .collect();
            times.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
            times[times.len() / 2]
        };
        (median(&filter_exact), median(&filter_sketched))
    };
    let (sketch_exact_ns, sketch_pruned_ns) = measure_filters();
    benches.push((
        "ind_discovery/candidate_filter_cold_exact/e8_r50000".to_string(),
        sketch_exact_ns,
    ));
    benches.push((
        "ind_discovery/candidate_filter_cold_sketch/e8_r50000".to_string(),
        sketch_pruned_ns,
    ));

    // Out-of-core scaling point: the full pipeline at 8 entities / 1M
    // rows, encoded (in RAM) vs paged (64 MiB default pool), single
    // sample — this is a scaling observation, not a microbenchmark.
    // Skipped under --check to keep the CI smoke leg inside its budget.
    let mut paged_scale: Option<(f64, f64, bool, dbre_relational::PageCacheStats)> = None;
    // Sketch prepass on the same 1M-row paged run: end-to-end wall
    // time with and without the prefilter, identical-design check,
    // and the on-run's prune counters.
    let mut sketch_paged_1m: Option<(f64, f64, bool, dbre_relational::SketchPruneStats)> = None;
    if !check {
        let s = scenario(8, 1_000_000, 42);
        let q = dbre_extract::extract_programs(
            &s.db.schema,
            &s.programs,
            &dbre_extract::ExtractConfig::default(),
        )
        .q();
        let run = |choice: dbre_core::BackendChoice, sketch: dbre_core::SketchMode| {
            let opts = PipelineOptions {
                backend: choice,
                sketch,
                ..Default::default()
            };
            let mut oracle = AutoOracle::default();
            let t0 = Instant::now();
            let r = dbre_core::run_with_q(s.db.clone(), &q, &mut oracle, &opts);
            (t0.elapsed().as_secs_f64() * 1e3, r)
        };
        let (encoded_ms, enc) = run(dbre_core::BackendChoice::Encoded, dbre_core::SketchMode::On);
        let (paged_ms, paged) = run(dbre_core::BackendChoice::Paged, dbre_core::SketchMode::On);
        // The two backends must reach the same reverse-engineered
        // design; streaming over spilled pages may only cost time.
        let agree = render_inds(&enc.db, &enc.ind.inds) == render_inds(&paged.db, &paged.ind.inds)
            && render_fds(&enc.db_before, &enc.rhs.fds)
                == render_fds(&paged.db_before, &paged.rhs.fds)
            && enc.restructured.ric.len() == paged.restructured.ric.len();
        let (paged_off_ms, paged_off) =
            run(dbre_core::BackendChoice::Paged, dbre_core::SketchMode::Off);
        let sketch_agree_1m = paged.log == paged_off.log
            && render_inds(&paged.db, &paged.ind.inds)
                == render_inds(&paged_off.db, &paged_off.ind.inds)
            && render_fds(&paged.db_before, &paged.rhs.fds)
                == render_fds(&paged_off.db_before, &paged_off.rhs.fds);
        sketch_paged_1m = Some((paged_ms, paged_off_ms, sketch_agree_1m, paged.stats.sketch));
        paged_scale = Some((encoded_ms, paged_ms, agree, paged.stats.page_cache));
    }

    // Ingest throughput: the same synthetic CSV through both ingest
    // paths, down to spill pages (median of 3, rows/sec). The
    // streaming path never materializes a Table; the materialized
    // path imports rows then encodes and spills each column.
    let ingest_rows: usize = if check { 20_000 } else { 200_000 };
    let csv_path = std::env::temp_dir().join(format!("dbre-xb-ingest-{}.csv", std::process::id()));
    write_synth_csv(&csv_path, ingest_rows).expect("write ingest CSV");
    let streaming_ns = median_ns(3, || {
        let (mut db, rel) = ingest_db();
        std::hint::black_box(
            dbre_relational::csv::import_csv_spilled(&mut db, rel, &csv_path, None)
                .expect("streaming ingest"),
        );
    });
    let materialized_ns = median_ns(3, || {
        let (mut db, rel) = ingest_db();
        let text = std::fs::read_to_string(&csv_path).expect("read ingest CSV");
        dbre_relational::csv::import_csv(&mut db, rel, &text).expect("materialized import");
        for i in 0..3u16 {
            let dict = ColumnDict::build(db.table(rel).column(AttrId(i)));
            std::hint::black_box(
                dbre_relational::pages::PageFile::spill(dict.codes()).expect("spill"),
            );
        }
    });
    std::fs::remove_file(&csv_path).ok();
    let rows_per_s = |ns: f64| ingest_rows as f64 / (ns / 1e9);
    let ingest = (
        ingest_rows,
        rows_per_s(streaming_ns),
        rows_per_s(materialized_ns),
    );

    // Out-of-core scaling: a 10M-row CSV streamed straight to spill
    // pages (the table never exists in memory), then paged kernels
    // probed over the adopted columns through the default 64 MiB
    // pool. One sample; skipped under --check.
    let mut out_of_core_10m: Option<(usize, f64, f64, dbre_relational::PageCacheStats)> = None;
    if !check {
        use dbre_relational::backend::CountBackend;
        let rows = 10_000_000usize;
        let path = std::env::temp_dir().join(format!("dbre-xb-10m-{}.csv", std::process::id()));
        write_synth_csv(&path, rows).expect("write 10M CSV");
        let (mut db, rel) = ingest_db();
        let t0 = Instant::now();
        let table = dbre_relational::csv::import_csv_spilled(&mut db, rel, &path, None)
            .expect("10M streaming ingest");
        let ingest_s = t0.elapsed().as_secs_f64();
        std::fs::remove_file(&path).ok();
        let backend = dbre_relational::PagedBackend::new();
        backend.adopt_spilled(&db, rel, &table);
        let fd = Fd::new(
            rel,
            AttrSet::from_indices([1u16]),
            AttrSet::from_indices([2u16]),
        );
        let t0 = Instant::now();
        std::hint::black_box(backend.count_distinct(&db, rel, &[AttrId(0), AttrId(1)]));
        std::hint::black_box(backend.fd_holds(&db, &fd));
        let probe_ms = t0.elapsed().as_secs_f64() * 1e3;
        out_of_core_10m = Some((rows, ingest_s, probe_ms, backend.page_stats()));
    }

    // Serial vs chunk-parallel paged scan over one page-resident
    // spilled extension — only measurable when the kernels are built
    // with the `parallel` feature. Skipped under --check.
    #[allow(unused_mut)]
    let mut paged_parallel: Option<(usize, usize, f64, f64)> = None;
    #[cfg(feature = "parallel")]
    if !check {
        use dbre_relational::backend::CountBackend;
        let rows = 2_000_000usize;
        let path = std::env::temp_dir().join(format!("dbre-xb-par-{}.csv", std::process::id()));
        write_synth_csv(&path, rows).expect("write parallel-scan CSV");
        let (mut db, rel) = ingest_db();
        let table = dbre_relational::csv::import_csv_spilled(&mut db, rel, &path, None)
            .expect("parallel-scan ingest");
        std::fs::remove_file(&path).ok();
        let backend = dbre_relational::PagedBackend::new();
        backend.adopt_spilled(&db, rel, &table);
        let fd = Fd::new(
            rel,
            AttrSet::from_indices([1u16]),
            AttrSet::from_indices([2u16]),
        );
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .max(2);
        // Warm the pool so both variants scan resident pages.
        std::env::set_var("DBRE_PAGED_THREADS", "1");
        std::hint::black_box(backend.fd_holds(&db, &fd));
        let serial_ns = median_ns(3, || {
            std::hint::black_box(backend.fd_holds(&db, &fd));
        });
        std::env::set_var("DBRE_PAGED_THREADS", threads.to_string());
        let parallel_ns = median_ns(3, || {
            std::hint::black_box(backend.fd_holds(&db, &fd));
        });
        std::env::remove_var("DBRE_PAGED_THREADS");
        paged_parallel = Some((rows, threads, serial_ns / 1e6, parallel_ns / 1e6));
    }

    // Cache counters from one warm engine pass (8 entities, 10k rows).
    let s = scenario(8, 10_000, 42);
    let q = dbre_extract::extract_programs(
        &s.db.schema,
        &s.programs,
        &dbre_extract::ExtractConfig::default(),
    )
    .q();
    let engine = dbre_relational::StatsEngine::new();
    for _ in 0..2 {
        for join in &q {
            std::hint::black_box(engine.join_stats(&s.db, join));
        }
    }
    let counters = engine.counters();

    // Concurrent service: N sessions over one snapshot and one shared
    // engine (8 entities, 1000 rows) vs a serial reference run.
    // Determinism is part of the measurement — every session's
    // decision log must be byte-identical to the serial run's.
    let service_rows: Vec<(usize, f64, f64, f64, bool)> = {
        use dbre_core::service::{run_service, shared_engine};
        let opts = PipelineOptions::default();
        let mut oracle = AutoOracle::default();
        let serial_log = dbre_core::run_with_q(sp.db.clone(), &qp, &mut oracle, &opts).log;
        let snapshot = dbre_relational::DbSnapshot::new(sp.db.clone());
        [1usize, 8]
            .iter()
            .map(|&n| {
                let engine = shared_engine(&opts);
                let report =
                    run_service(&snapshot, &engine, &qp, &opts, n, |_| AutoOracle::default());
                let (p50, p99) = report.presumption_percentiles().unwrap_or_default();
                let agree = report.logs_identical()
                    && report
                        .outcomes
                        .first()
                        .is_none_or(|o| o.result.log == serial_log);
                (
                    n,
                    report.sessions_per_sec(),
                    p50.as_secs_f64() * 1e9,
                    p99.as_secs_f64() * 1e9,
                    agree,
                )
            })
            .collect()
    };

    // Render (hand-rolled JSON: the workspace carries no serde).
    let mut json = String::from("{\n  \"experiment\": \"xb\",\n  \"unit\": \"ns\",\n");
    json.push_str("  \"benches\": [\n");
    for (i, (id, ns)) in benches.iter().enumerate() {
        let sep = if i + 1 == benches.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"id\": \"{id}\", \"median_ns\": {ns:.0} }}{sep}\n"
        ));
    }
    json.push_str("  ],\n  \"speedups\": [\n");
    let pairs: Vec<(String, f64)> = benches
        .iter()
        .filter(|(id, _)| id.contains("_reference/"))
        .filter_map(|(id, ref_ns)| {
            let enc_id = id.replace("_reference/", "_encoded/");
            benches
                .iter()
                .find(|(other, _)| *other == enc_id)
                .map(|(_, enc_ns)| (enc_id, ref_ns / enc_ns.max(1.0)))
        })
        .collect();
    for (i, (id, ratio)) in pairs.iter().enumerate() {
        let sep = if i + 1 == pairs.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"id\": \"{id}\", \"reference_over_encoded\": {ratio:.2} }}{sep}\n"
        ));
    }
    json.push_str("  ],\n  \"backends\": [\n");
    for (i, (name, ns)) in backend_rows.iter().enumerate() {
        let sep = if i + 1 == backend_rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"backend\": \"{name}\", \"pipeline_median_ns\": {ns:.0} }}{sep}\n"
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"page_cache\": {{ \"hits\": {}, \"misses\": {}, \"evictions\": {} }},\n",
        paged_cache.hits, paged_cache.misses, paged_cache.evictions
    ));
    if let Some((encoded_ms, paged_ms, agree, pc)) = &paged_scale {
        json.push_str(&format!(
            "  \"paged_scale\": {{ \"entities\": 8, \"rows\": 1000000, \
             \"encoded_ms\": {encoded_ms:.0}, \"paged_ms\": {paged_ms:.0}, \
             \"agree\": {agree}, \"page_hits\": {}, \"page_misses\": {}, \
             \"page_evictions\": {} }},\n",
            pc.hits, pc.misses, pc.evictions
        ));
    }
    json.push_str(&format!(
        "  \"ingest\": {{ \"rows\": {}, \"streaming_rows_per_s\": {:.0}, \
         \"materialized_rows_per_s\": {:.0} }},\n",
        ingest.0, ingest.1, ingest.2
    ));
    if let Some((rows, ingest_s, probe_ms, pc)) = &out_of_core_10m {
        json.push_str(&format!(
            "  \"out_of_core_10m\": {{ \"rows\": {rows}, \"ingest_s\": {ingest_s:.1}, \
             \"probe_ms\": {probe_ms:.0}, \"page_hits\": {}, \"page_misses\": {}, \
             \"page_evictions\": {} }},\n",
            pc.hits, pc.misses, pc.evictions
        ));
    }
    if let Some((rows, threads, serial_ms, parallel_ms)) = &paged_parallel {
        json.push_str(&format!(
            "  \"paged_parallel\": {{ \"rows\": {rows}, \"threads\": {threads}, \
             \"serial_ms\": {serial_ms:.2}, \"parallel_ms\": {parallel_ms:.2} }},\n"
        ));
    }
    json.push_str(&format!(
        "  \"sketch\": {{ \"scale\": \"e8_r50000\", \"candidate_space\": {sketch_space}, \
         \"candidates\": {}, \"pruned\": {}, \"verified\": {}, \
         \"mean_distinct_error\": {:.4}, \"exact_ms\": {:.2}, \"pruned_ms\": {:.2}, \
         \"speedup\": {:.2}, \"agree\": {sketch_agree} }},\n",
        sketch_prune.candidates,
        sketch_prune.pruned,
        sketch_prune.verified,
        sketch_prune.mean_distinct_error(),
        sketch_exact_ns / 1e6,
        sketch_pruned_ns / 1e6,
        sketch_exact_ns / sketch_pruned_ns.max(1.0),
    ));
    if let Some((on_ms, off_ms, agree, sk)) = &sketch_paged_1m {
        json.push_str(&format!(
            "  \"sketch_paged_1m\": {{ \"rows\": 1000000, \"sketch_on_ms\": {on_ms:.0}, \
             \"sketch_off_ms\": {off_ms:.0}, \"agree\": {agree}, \"candidates\": {}, \
             \"pruned\": {}, \"verified\": {} }},\n",
            sk.candidates, sk.pruned, sk.verified
        ));
    }
    json.push_str("  \"service\": [\n");
    for (i, (n, sps, p50, p99, agree)) in service_rows.iter().enumerate() {
        let sep = if i + 1 == service_rows.len() { "" } else { "," };
        json.push_str(&format!(
            "    {{ \"sessions\": {n}, \"sessions_per_sec\": {sps:.1}, \
             \"p50_ns\": {p50:.0}, \"p99_ns\": {p99:.0}, \"agree\": {agree} }}{sep}\n"
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"cache_counters\": {{ \"hits\": {}, \"misses\": {}, \"rows_scanned\": {} }}\n}}\n",
        counters.cache_hits, counters.cache_misses, counters.rows_scanned
    ));

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_report.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => println!("could not write {path}: {e}"),
    }
    for (id, ratio) in &pairs {
        println!("  {id:<60} encoded is {ratio:.2}x faster than reference");
    }
    println!("\n  full pipeline (8 entities, 1000 rows), one seam, four backends:");
    for (name, ns) in &backend_rows {
        println!("  --backend {name:<10} {:>9.2} ms", ns / 1e6);
    }
    println!(
        "  paged page cache: {} hits, {} misses, {} evictions",
        paged_cache.hits, paged_cache.misses, paged_cache.evictions
    );
    if let Some((encoded_ms, paged_ms, agree, pc)) = &paged_scale {
        println!("\n  out-of-core scaling (8 entities, 1M rows, 64 MiB pool, 1 sample):");
        println!("  --backend encoded    {encoded_ms:>9.0} ms");
        println!(
            "  --backend paged      {paged_ms:>9.0} ms   ({} hits, {} misses, {} evictions)",
            pc.hits, pc.misses, pc.evictions
        );
        println!(
            "  designs agree: {}",
            if *agree { "yes" } else { "NO — INVESTIGATE" }
        );
    }
    println!(
        "\n  ingest to spill pages ({} rows, median of 3):",
        ingest.0
    );
    println!("  streaming     {:>12.0} rows/s", ingest.1);
    println!("  materialized  {:>12.0} rows/s", ingest.2);
    if let Some((rows, ingest_s, probe_ms, pc)) = &out_of_core_10m {
        println!("\n  out-of-core ingest ({rows} rows, streamed straight to spill, 1 sample):");
        println!("  ingest        {ingest_s:>9.1} s");
        println!(
            "  paged probes  {probe_ms:>9.0} ms   ({} hits, {} misses, {} evictions)",
            pc.hits, pc.misses, pc.evictions
        );
    }
    if let Some((rows, threads, serial_ms, parallel_ms)) = &paged_parallel {
        println!("\n  page-parallel fd_holds scan ({rows} rows, warm pool):");
        println!("  1 thread      {serial_ms:>9.2} ms");
        println!(
            "  {threads} threads     {parallel_ms:>9.2} ms   ({:.2}x)",
            serial_ms / parallel_ms.max(1e-9)
        );
    }
    println!(
        "\n  sketch prefilter: IND candidate filtering, warm store \
         (8 entities, 50k rows, {sketch_space} candidate pairs):"
    );
    println!("  exact-only    {:>9.2} ms", sketch_exact_ns / 1e6);
    println!(
        "  sketch-pruned {:>9.2} ms   ({:.2}x; {} refuted, {} exactly verified)",
        sketch_pruned_ns / 1e6,
        sketch_exact_ns / sketch_pruned_ns.max(1.0),
        sketch_prune.pruned,
        sketch_prune.verified
    );
    println!(
        "  verdicts agree: {}",
        if sketch_agree {
            "yes"
        } else {
            "NO — INVESTIGATE"
        }
    );
    if let Some((on_ms, off_ms, agree, sk)) = &sketch_paged_1m {
        println!("\n  sketch prepass, full pipeline (8 entities, 1M rows, paged, 1 sample):");
        println!(
            "  --sketch on   {on_ms:>9.0} ms   ({} candidates, {} pruned, {} verified)",
            sk.candidates, sk.pruned, sk.verified
        );
        println!("  --sketch off  {off_ms:>9.0} ms");
        println!(
            "  designs agree: {}",
            if *agree { "yes" } else { "NO — INVESTIGATE" }
        );
    }
    println!("\n  concurrent service (8 entities, 1000 rows, one shared engine):");
    for (n, sps, p50, p99, agree) in &service_rows {
        println!(
            "  {n} session{} {sps:>10.1} sessions/s   p50 {:>8.1} us, p99 {:>8.1} us   logs {}",
            if *n == 1 { " " } else { "s" },
            p50 / 1e3,
            p99 / 1e3,
            if *agree {
                "agree with serial"
            } else {
                "DIVERGED"
            }
        );
    }

    if check {
        let of = |name: &str| {
            backend_rows
                .iter()
                .find(|(n, _)| *n == name)
                .map(|&(_, ns)| ns)
                .unwrap_or(f64::NAN)
        };
        // A single median pair flakes on loaded CI machines: a noisy
        // neighbour during the sql samples inflates the ratio with no
        // regression anywhere. Take the best of three attempts (the
        // first reuses the report's numbers) and fail only when every
        // attempt blows the budget; print both medians each time so a
        // real failure shows its evidence.
        let remeasure = |choice: dbre_core::BackendChoice| -> f64 {
            let opts = PipelineOptions {
                backend: choice,
                ..Default::default()
            };
            median_ns(samples, || {
                let mut oracle = AutoOracle::default();
                std::hint::black_box(dbre_core::run_with_q(
                    sp.db.clone(),
                    &qp,
                    &mut oracle,
                    &opts,
                ));
            })
        };
        let gate = |name: &str, choice: dbre_core::BackendChoice, budget: f64| {
            let mut best = f64::NAN;
            for attempt in 1..=3 {
                let (numer, encoded) = if attempt == 1 {
                    (of(name), of("encoded"))
                } else {
                    (
                        remeasure(choice),
                        remeasure(dbre_core::BackendChoice::Encoded),
                    )
                };
                let ratio = numer / encoded;
                println!(
                    "\n  check attempt {attempt}: {name}/encoded pipeline ratio = {ratio:.2}x \
                     (budget {budget:.2}x; {name} {:.2} ms, encoded {:.2} ms)",
                    numer / 1e6,
                    encoded / 1e6
                );
                // NaN (missing backend row) never becomes the best ratio.
                if !ratio.is_nan() && (best.is_nan() || ratio < best) {
                    best = ratio;
                }
                if ratio <= budget {
                    break;
                }
            }
            if best.is_nan() || best > budget {
                eprintln!(
                    "FAIL: {name} backend pipeline median exceeds {budget}x encoded \
                     in all attempts"
                );
                std::process::exit(1);
            }
        };
        gate("sql", dbre_core::BackendChoice::Sql, 2.0);
        gate("paged", dbre_core::BackendChoice::Paged, 1.1);

        // Sketch gate. Verdict agreement is absolute — a pruned pair
        // whose synthesized stats differ from the exact kernel's is a
        // correctness bug, no retries. The timing half follows the
        // best-of-3 pattern: the pruned filter pass must never be
        // slower than the exact-only pass (the prefilter may only
        // skip work, so losing time means the sketches stopped
        // paying for themselves).
        if !sketch_agree {
            eprintln!("FAIL: sketch-pruned candidate verdicts diverged from the exact kernels");
            std::process::exit(1);
        }
        let mut ok = false;
        for attempt in 1..=3 {
            let (exact, pruned) = if attempt == 1 {
                (sketch_exact_ns, sketch_pruned_ns)
            } else {
                measure_filters()
            };
            println!(
                "\n  check attempt {attempt}: sketch-pruned filter {:.2} ms vs exact-only \
                 {:.2} ms ({:.2}x)",
                pruned / 1e6,
                exact / 1e6,
                exact / pruned.max(1.0)
            );
            if pruned <= exact {
                ok = true;
                break;
            }
        }
        if !ok {
            eprintln!(
                "FAIL: sketch-pruned candidate filtering slower than exact-only in all attempts"
            );
            std::process::exit(1);
        }

        // Service gate. Determinism is absolute — logs diverging from
        // the serial run fail immediately, no retries (scheduling must
        // never change answers, so this cannot flake). The timing half
        // follows the best-of-3 pattern above: 8 concurrent sessions
        // over the shared engine must hold at least 0.8x solo
        // throughput (cache sharing covers that even on a single
        // core, where no parallel speedup exists at all), and p99
        // presumption latency may not blow past 100x solo — a
        // generous ceiling that still catches an accidental global
        // serialization point.
        {
            use dbre_core::service::{run_service, shared_engine};
            let opts = PipelineOptions::default();
            let mut oracle = AutoOracle::default();
            let serial_log = dbre_core::run_with_q(sp.db.clone(), &qp, &mut oracle, &opts).log;
            let snapshot = dbre_relational::DbSnapshot::new(sp.db.clone());
            let measure = |n: usize| {
                let engine = shared_engine(&opts);
                let report =
                    run_service(&snapshot, &engine, &qp, &opts, n, |_| AutoOracle::default());
                let agree = report.logs_identical()
                    && report
                        .outcomes
                        .first()
                        .is_none_or(|o| o.result.log == serial_log);
                if !agree {
                    eprintln!(
                        "FAIL: concurrent session logs diverged from the serial run \
                         ({n} sessions)"
                    );
                    std::process::exit(1);
                }
                let p99 = report
                    .presumption_percentiles()
                    .map(|(_, p99)| p99.as_secs_f64() * 1e9)
                    .unwrap_or(0.0);
                (report.sessions_per_sec(), p99)
            };
            let mut ok = false;
            for attempt in 1..=3 {
                let (sps1, p99_1) = measure(1);
                let (sps8, p99_8) = measure(8);
                let p99_budget = p99_1.max(10_000.0) * 100.0;
                println!(
                    "\n  check attempt {attempt}: service 1 -> 8 sessions, throughput \
                     {sps1:.1} -> {sps8:.1} sessions/s, p99 {:.1} -> {:.1} us \
                     (budget {:.1} us)",
                    p99_1 / 1e3,
                    p99_8 / 1e3,
                    p99_budget / 1e3
                );
                if sps8 >= 0.8 * sps1 && p99_8 <= p99_budget {
                    ok = true;
                    break;
                }
            }
            if !ok {
                eprintln!(
                    "FAIL: 8-session service lost throughput vs solo or blew the p99 \
                     presumption-latency budget in all attempts"
                );
                std::process::exit(1);
            }
        }

        // The persistent spill cache must make a warm rerun skip the
        // encode entirely: the cold ingest commits an entry (a miss),
        // the rerun on unchanged input is served from it (a hit).
        let dir = std::env::temp_dir().join(format!("dbre-xb-spillcheck-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create spill-check dir");
        let csv = dir.join("rows.csv");
        write_synth_csv(&csv, 5_000).expect("write spill-check CSV");
        let cache = dir.join("cache");
        let cold = {
            let (mut db, rel) = ingest_db();
            dbre_relational::csv::import_csv_spilled(&mut db, rel, &csv, Some(&cache))
                .expect("cold spill-check ingest")
        };
        let warm = {
            let (mut db, rel) = ingest_db();
            dbre_relational::csv::import_csv_spilled(&mut db, rel, &csv, Some(&cache))
                .expect("warm spill-check ingest")
        };
        println!(
            "\n  spill cache check: cold from_cache={}, warm from_cache={}",
            cold.from_cache(),
            warm.from_cache()
        );
        std::fs::remove_dir_all(&dir).ok();
        if cold.from_cache() || !warm.from_cache() {
            eprintln!("FAIL: warm --spill-dir rerun must skip the encode (cold miss, warm hit)");
            std::process::exit(1);
        }
    }
}

/// Writes the synthetic three-column CSV used by the ingest and
/// out-of-core measurements: `id` unique, `grp` a 1000-way group,
/// `val` a 50k-value payload functionally determined by `grp`.
fn write_synth_csv(path: &std::path::Path, rows: usize) -> std::io::Result<()> {
    use std::io::Write;
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "id,grp,val")?;
    for i in 0..rows {
        writeln!(w, "{},{},{}", i, i % 1000, (i % 1000) * 7)?;
    }
    w.flush()
}

/// A one-relation scratch database matching `write_synth_csv`.
fn ingest_db() -> (dbre_relational::Database, dbre_relational::RelId) {
    use dbre_relational::{Database, Domain, Relation};
    let mut db = Database::new();
    let rel = db
        .add_relation(Relation::of(
            "Ingest",
            &[
                ("id", Domain::Int),
                ("grp", Domain::Int),
                ("val", Domain::Int),
            ],
        ))
        .expect("add Ingest relation");
    (db, rel)
}

fn indent(text: &str) -> String {
    text.lines()
        .map(|l| format!("  {l}"))
        .collect::<Vec<_>>()
        .join("\n")
}
