//! # dbre-bench
//!
//! Shared workload builders for the Criterion benches and the
//! `report` binary that regenerates every experiment of
//! `EXPERIMENTS.md` (E1–E6 reproduce the paper's walk-through, F1 its
//! Figure 1, X1–X5 the quantitative evaluation the paper omitted).

#![forbid(unsafe_code)]

use dbre_core::pipeline::PipelineOptions;
use dbre_core::DenyOracle;
use dbre_relational::Database;
use dbre_synth::{
    build_workload, generate_programs, generate_spec, DenormConfig, GroundTruth, ProgramConfig,
    SynthConfig, TruthOracle,
};

/// A ready-to-run synthetic scenario.
pub struct Scenario {
    /// The legacy database the pipeline gets.
    pub db: Database,
    /// The answer key.
    pub truth: GroundTruth,
    /// Generated application programs.
    pub programs: Vec<dbre_extract::ProgramSource>,
    /// Which navigations the programs cover.
    pub covered: Vec<bool>,
}

/// Builds a scenario scaled by `(entities, rows per entity)`.
pub fn scenario(entities: usize, rows: usize, seed: u64) -> Scenario {
    scenario_with(
        entities,
        rows,
        seed,
        1.0,
        &DenormConfig {
            p_embed: 0.7,
            p_drop: 0.4,
            seed,
        },
    )
}

/// Builds a scenario with explicit coverage and denormalization plan.
pub fn scenario_with(
    entities: usize,
    rows: usize,
    seed: u64,
    coverage: f64,
    denorm: &DenormConfig,
) -> Scenario {
    let spec = generate_spec(&SynthConfig {
        n_entities: entities,
        n_relationships: (entities / 2).max(1),
        n_entity_fks: entities,
        n_isa: (entities / 6).min(2),
        rows_per_entity: rows,
        rows_per_relationship: rows * 2,
        seed,
        ..Default::default()
    });
    let (db, truth) = build_workload(&spec, denorm, seed);
    let programs = generate_programs(
        &truth,
        &ProgramConfig {
            coverage,
            noise_programs: 2,
            seed,
        },
    );
    Scenario {
        db,
        truth,
        programs: programs.programs,
        covered: programs.covered,
    }
}

/// Runs the pipeline on a scenario with the ground-truth expert.
pub fn run_truth(s: &Scenario) -> dbre_core::pipeline::PipelineResult {
    let mut oracle = TruthOracle::new(s.truth.clone());
    dbre_core::pipeline::run_with_programs(
        s.db.clone(),
        &s.programs,
        &mut oracle,
        &PipelineOptions::default(),
    )
}

/// Runs the pipeline with the conservative automatic expert.
pub fn run_deny(s: &Scenario) -> dbre_core::pipeline::PipelineResult {
    let mut oracle = DenyOracle;
    dbre_core::pipeline::run_with_programs(
        s.db.clone(),
        &s.programs,
        &mut oracle,
        &PipelineOptions::default(),
    )
}
