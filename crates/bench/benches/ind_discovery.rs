//! X1 bench: query-guided IND-Discovery (the paper's §6.1) against
//! exhaustive SPIDER unary-IND mining, over growing databases.
//!
//! The shape to observe: IND-Discovery cost grows with `|Q|` and the
//! projected column sizes only, while SPIDER grows with the *total*
//! number of attribute pairs in the database — the paper's "programs
//! as oracles" thesis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbre_bench::scenario;
use dbre_mine::spider::{spider, SpiderConfig};
use dbre_relational::counting::join_stats;
use dbre_relational::StatsEngine;
use dbre_synth::TruthOracle;
use std::hint::black_box;

fn bench_ind(c: &mut Criterion) {
    let mut group = c.benchmark_group("ind_discovery");
    group.sample_size(10);
    for &(entities, rows) in &[(4usize, 2000usize), (8, 2000), (16, 2000)] {
        let s = scenario(entities, rows, 42);
        let q = dbre_extract::extract_programs(
            &s.db.schema,
            &s.programs,
            &dbre_extract::ExtractConfig::default(),
        )
        .q();

        // Cold ‖·‖ counting for the whole Q, Value-based reference vs
        // the dictionary-encoded engine path (a fresh engine per
        // iteration: every probe is a cache miss, dictionary builds
        // included).
        group.bench_with_input(
            BenchmarkId::new("join_stats_cold_reference", format!("e{entities}_r{rows}")),
            &(&s, &q),
            |b, (s, q)| {
                b.iter(|| {
                    for join in q.iter() {
                        black_box(join_stats(&s.db, join));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("join_stats_cold_encoded", format!("e{entities}_r{rows}")),
            &(&s, &q),
            |b, (s, q)| {
                b.iter(|| {
                    let engine = StatsEngine::new();
                    for join in q.iter() {
                        black_box(engine.join_stats(&s.db, join));
                    }
                })
            },
        );

        group.bench_with_input(
            BenchmarkId::new("paper_query_guided", format!("e{entities}_r{rows}")),
            &(&s, &q),
            |b, (s, q)| {
                b.iter(|| {
                    let mut db = s.db.clone();
                    let mut oracle = TruthOracle::new(s.truth.clone());
                    black_box(dbre_core::ind_discovery(&mut db, q, &mut oracle).unwrap())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("spider_exhaustive", format!("e{entities}_r{rows}")),
            &s,
            |b, s| b.iter(|| black_box(spider(&s.db, &SpiderConfig::default()))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ind);
criterion_main!(benches);
