//! X4 bench: the RHS-Discovery candidate-pruning ablation — how much
//! extension probing the dictionary-based pruning of §6.2.2 saves.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbre_bench::scenario;
use dbre_core::rhs_discovery::RhsOptions;
use dbre_synth::TruthOracle;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("rhs_pruning_ablation");
    group.sample_size(10);

    let s = scenario(8, 5000, 42);
    let q = dbre_extract::extract_programs(
        &s.db.schema,
        &s.programs,
        &dbre_extract::ExtractConfig::default(),
    )
    .q();
    let mut db = s.db.clone();
    let mut oracle = TruthOracle::new(s.truth.clone());
    let ind = dbre_core::ind_discovery(&mut db, &q, &mut oracle).unwrap();
    let lhs = dbre_core::lhs_discovery(&db, &ind.inds, &ind.new_relations);

    for (name, opts) in [
        ("full_pruning", RhsOptions::default()),
        (
            "no_pruning",
            RhsOptions {
                prune_keys: false,
                prune_not_null: false,
            },
        ),
    ] {
        group.bench_with_input(
            BenchmarkId::new(name, "e8_r5000"),
            &(&db, &lhs),
            |b, (db, lhs)| {
                b.iter(|| {
                    let mut oracle = TruthOracle::new(s.truth.clone());
                    black_box(dbre_core::rhs_discovery(db, lhs, &mut oracle, &opts))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
