//! StatsEngine bench: repeated-`Q` cardinality collection, memoized vs
//! naive rescans.
//!
//! The access pattern is the pipeline's own: the same joins are
//! consulted again and again (IND-Discovery pre-collection, reporting,
//! oracle context, RHS probes sharing an LHS). The acceptance target is
//! cached ≥ 2× faster than uncached on repeated `Q`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbre_bench::scenario;
use dbre_relational::{join_stats, StatsEngine};
use std::hint::black_box;

const REPS: usize = 10;

fn bench_stats(c: &mut Criterion) {
    let mut group = c.benchmark_group("stats_engine");
    group.sample_size(10);
    for &(entities, rows) in &[(8usize, 2000usize), (8, 20_000)] {
        let s = scenario(entities, rows, 42);
        let q = dbre_extract::extract_programs(
            &s.db.schema,
            &s.programs,
            &dbre_extract::ExtractConfig::default(),
        )
        .q();

        group.bench_with_input(
            BenchmarkId::new("naive_repeated_q", format!("e{entities}_r{rows}")),
            &(&s, &q),
            |b, (s, q)| {
                b.iter(|| {
                    for _ in 0..REPS {
                        for join in q.iter() {
                            black_box(join_stats(&s.db, join));
                        }
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("cached_repeated_q", format!("e{entities}_r{rows}")),
            &(&s, &q),
            |b, (s, q)| {
                b.iter(|| {
                    // Fresh engine per iteration: the measured time
                    // includes the cold misses, as a pipeline run would.
                    let engine = StatsEngine::new();
                    for _ in 0..REPS {
                        for join in q.iter() {
                            black_box(engine.join_stats(&s.db, join));
                        }
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_stats);
criterion_main!(benches);
