//! X3 bench: the full pipeline — program extraction through EER
//! translation — at growing scale, plus the paper's worked example as
//! a fixed reference point.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbre_bench::{run_truth, scenario};
use dbre_core::example::run_paper_example;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);

    group.bench_function("paper_worked_example", |b| {
        b.iter(|| black_box(run_paper_example()))
    });

    for &(entities, rows) in &[(4usize, 1000usize), (8, 1000), (8, 10_000)] {
        let s = scenario(entities, rows, 42);
        group.bench_with_input(
            BenchmarkId::new("synthetic_end_to_end", format!("e{entities}_r{rows}")),
            &s,
            |b, s| b.iter(|| black_box(run_truth(s))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
