//! X2 bench: targeted RHS-Discovery (paper §6.2.2) against full TANE
//! FD mining, plus the two single-FD check backends (hash vs stripped
//! partitions) that RHS-Discovery can sit on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbre_bench::scenario;
use dbre_core::rhs_discovery::RhsOptions;
use dbre_mine::tane::tane;
use dbre_mine::{check_hash, check_partition};
use dbre_relational::AttrId;
use dbre_synth::TruthOracle;
use std::hint::black_box;

fn bench_fd(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_discovery");
    group.sample_size(10);
    for &rows in &[1000usize, 10_000] {
        let s = scenario(8, rows, 42);
        let q = dbre_extract::extract_programs(
            &s.db.schema,
            &s.programs,
            &dbre_extract::ExtractConfig::default(),
        )
        .q();
        // Pre-run IND/LHS so the bench isolates RHS-Discovery.
        let mut db = s.db.clone();
        let mut oracle = TruthOracle::new(s.truth.clone());
        let ind = dbre_core::ind_discovery(&mut db, &q, &mut oracle).unwrap();
        let lhs = dbre_core::lhs_discovery(&db, &ind.inds, &ind.new_relations);

        group.bench_with_input(
            BenchmarkId::new("paper_rhs_discovery", format!("r{rows}")),
            &(&db, &lhs, &s),
            |b, (db, lhs, s)| {
                b.iter(|| {
                    let mut oracle = TruthOracle::new(s.truth.clone());
                    black_box(dbre_core::rhs_discovery(
                        db,
                        lhs,
                        &mut oracle,
                        &RhsOptions::default(),
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("tane_full_mining", format!("r{rows}")),
            &s,
            |b, s| {
                b.iter(|| {
                    for (rel, _) in s.db.schema.iter() {
                        black_box(tane(rel, s.db.table(rel), Some(2)));
                    }
                })
            },
        );
    }

    // Single-check backends on one wide table.
    let s = scenario(4, 20_000, 7);
    let (rel, _) = s.db.schema.iter().next().expect("non-empty scenario");
    let table = s.db.table(rel);
    let arity = table.arity().min(2) as u16;
    if arity == 2 {
        group.bench_function("fd_check_hash_20k", |b| {
            b.iter(|| black_box(check_hash(table, &[AttrId(0)], &[AttrId(1)])))
        });
        group.bench_function("fd_check_partition_20k", |b| {
            b.iter(|| black_box(check_partition(table, &[AttrId(0)], &[AttrId(1)])))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fd);
criterion_main!(benches);
