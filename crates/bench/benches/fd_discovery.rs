//! X2 bench: targeted RHS-Discovery (paper §6.2.2) against full TANE
//! FD mining, plus the two single-FD check backends (hash vs stripped
//! partitions) that RHS-Discovery can sit on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dbre_bench::scenario;
use dbre_core::rhs_discovery::RhsOptions;
use dbre_mine::tane::tane;
use dbre_mine::{check_hash, check_partition, StrippedPartition};
use dbre_relational::encode::{partition1_col, ColumnDict};
use dbre_relational::{AttrId, AttrSet, Fd, StatsEngine};
use dbre_synth::TruthOracle;
use std::hint::black_box;

fn bench_fd(c: &mut Criterion) {
    let mut group = c.benchmark_group("fd_discovery");
    group.sample_size(10);
    for &rows in &[1000usize, 10_000] {
        let s = scenario(8, rows, 42);
        let q = dbre_extract::extract_programs(
            &s.db.schema,
            &s.programs,
            &dbre_extract::ExtractConfig::default(),
        )
        .q();
        // Pre-run IND/LHS so the bench isolates RHS-Discovery.
        let mut db = s.db.clone();
        let mut oracle = TruthOracle::new(s.truth.clone());
        let ind = dbre_core::ind_discovery(&mut db, &q, &mut oracle).unwrap();
        let lhs = dbre_core::lhs_discovery(&db, &ind.inds, &ind.new_relations);

        group.bench_with_input(
            BenchmarkId::new("paper_rhs_discovery", format!("r{rows}")),
            &(&db, &lhs, &s),
            |b, (db, lhs, s)| {
                b.iter(|| {
                    let mut oracle = TruthOracle::new(s.truth.clone());
                    black_box(dbre_core::rhs_discovery(
                        db,
                        lhs,
                        &mut oracle,
                        &RhsOptions::default(),
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("tane_full_mining", format!("r{rows}")),
            &s,
            |b, s| {
                b.iter(|| {
                    for (rel, _) in s.db.schema.iter() {
                        black_box(tane(rel, s.db.table(rel), Some(2)));
                    }
                })
            },
        );
    }

    // Single-check backends on one wide table.
    let s = scenario(4, 20_000, 7);
    let (rel, _) = s.db.schema.iter().next().expect("non-empty scenario");
    let table = s.db.table(rel);
    if table.arity() >= 2 {
        group.bench_function("fd_check_hash_20k", |b| {
            b.iter(|| black_box(check_hash(table, &[AttrId(0)], &[AttrId(1)])))
        });
        group.bench_function("fd_check_partition_20k", |b| {
            b.iter(|| black_box(check_partition(table, &[AttrId(0)], &[AttrId(1)])))
        });
        // Cold RHS-Discovery batch (`a0 → b` for every other column):
        // the reference rescans per probe; the cold engine builds the
        // LHS dictionary and grouping once and serves the batch.
        group.bench_function("fd_check_batch_cold_reference_20k", |b| {
            b.iter(|| {
                for i in 1..table.arity() {
                    black_box(check_hash(table, &[AttrId(0)], &[AttrId(i as u16)]));
                }
            })
        });
        group.bench_function("fd_check_batch_cold_encoded_20k", |b| {
            b.iter(|| {
                let engine = StatsEngine::new();
                for i in 1..table.arity() {
                    let fd = Fd::new(
                        rel,
                        AttrSet::from_indices([0u16]),
                        AttrSet::from_indices([i as u16]),
                    );
                    black_box(engine.fd_holds(&s.db, &fd));
                }
            })
        });
    }

    // Cold level-1 partition seeding (what TANE and key discovery do
    // first): Value-based reference vs one dictionary pass + code
    // bucketing.
    let s = scenario(8, 10_000, 42);
    group.bench_function("unary_partitions_cold_reference_r10000", |b| {
        b.iter(|| {
            for (rel, relation) in s.db.schema.iter() {
                let table = s.db.table(rel);
                for i in 0..relation.arity() {
                    black_box(StrippedPartition::for_attribute(table, AttrId(i as u16)));
                }
            }
        })
    });
    group.bench_function("unary_partitions_cold_encoded_r10000", |b| {
        b.iter(|| {
            for (rel, relation) in s.db.schema.iter() {
                let table = s.db.table(rel);
                for i in 0..relation.arity() {
                    let col = ColumnDict::build(table.column(AttrId(i as u16)));
                    black_box(partition1_col(&col));
                }
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fd);
criterion_main!(benches);
