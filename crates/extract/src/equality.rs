//! Equality graph over column instances.
//!
//! Within one statement, every column occurrence is a node
//! `(binding instance, attribute)`. Column-to-column equalities —
//! whether they come from `WHERE` conjunctions, `ON` clauses, `IN`
//! subqueries or `INTERSECT` projections — are edges. The *transitive
//! closure* of those edges (union-find) yields the equivalence classes
//! from which equi-joins are read: if a program writes
//! `a.x = b.y AND b.y = c.z`, then `a.x ⋈ c.z` is part of the logical
//! navigation even though no textual predicate relates them.

use dbre_relational::attr::AttrId;

/// A column-instance node: `(binding instance id, attribute)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Node {
    /// Statement-wide binding instance (two uses of the same table get
    /// distinct instances).
    pub instance: u32,
    /// Attribute within the instance's relation.
    pub attr: AttrId,
}

/// Union-find with path compression over dynamically registered nodes.
#[derive(Debug, Default)]
pub struct EqualityGraph {
    nodes: Vec<Node>,
    parent: Vec<usize>,
    index: std::collections::HashMap<Node, usize>,
}

impl EqualityGraph {
    /// Empty graph.
    pub fn new() -> Self {
        EqualityGraph::default()
    }

    fn intern(&mut self, n: Node) -> usize {
        if let Some(&i) = self.index.get(&n) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(n);
        self.parent.push(i);
        self.index.insert(n, i);
        i
    }

    fn find(&mut self, mut i: usize) -> usize {
        while self.parent[i] != i {
            self.parent[i] = self.parent[self.parent[i]];
            i = self.parent[i];
        }
        i
    }

    /// Adds an equality edge between two column instances.
    pub fn equate(&mut self, a: Node, b: Node) {
        let (ia, ib) = (self.intern(a), self.intern(b));
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra != rb {
            self.parent[ra] = rb;
        }
    }

    /// Returns the equivalence classes with ≥ 2 members, each sorted,
    /// in deterministic order.
    pub fn classes(&mut self) -> Vec<Vec<Node>> {
        let mut groups: std::collections::HashMap<usize, Vec<Node>> =
            std::collections::HashMap::new();
        for i in 0..self.nodes.len() {
            let r = self.find(i);
            groups.entry(r).or_default().push(self.nodes[i]);
        }
        let mut out: Vec<Vec<Node>> = groups.into_values().filter(|g| g.len() >= 2).collect();
        for g in &mut out {
            g.sort();
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(instance: u32, attr: u16) -> Node {
        Node {
            instance,
            attr: AttrId(attr),
        }
    }

    #[test]
    fn transitive_closure() {
        let mut g = EqualityGraph::new();
        g.equate(n(0, 0), n(1, 0));
        g.equate(n(1, 0), n(2, 3));
        let classes = g.classes();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0], vec![n(0, 0), n(1, 0), n(2, 3)]);
    }

    #[test]
    fn separate_classes_stay_separate() {
        let mut g = EqualityGraph::new();
        g.equate(n(0, 0), n(1, 0));
        g.equate(n(2, 0), n(3, 0));
        assert_eq!(g.classes().len(), 2);
    }

    #[test]
    fn self_edges_do_not_form_classes() {
        let mut g = EqualityGraph::new();
        g.equate(n(0, 0), n(0, 0));
        assert!(g.classes().is_empty());
    }

    #[test]
    fn classes_are_deterministic() {
        let mut g1 = EqualityGraph::new();
        g1.equate(n(5, 1), n(2, 0));
        g1.equate(n(0, 0), n(1, 1));
        let mut g2 = EqualityGraph::new();
        g2.equate(n(0, 0), n(1, 1));
        g2.equate(n(2, 0), n(5, 1));
        assert_eq!(g1.classes(), g2.classes());
    }
}
