//! Application-program sources and embedded-SQL scanning.
//!
//! The paper's `P` is "the application part of the relational database
//! in operation" — forms, reports, batch programs. Legacy systems embed
//! their SQL either as plain script files or inside a host language:
//!
//! * C-style: `EXEC SQL <statement> ;`
//! * COBOL-style: `EXEC SQL <statement> END-EXEC.`
//!
//! Host variables (`:empno`) occur inside predicates. They never take
//! part in a *column-to-column* equality, so the scanner replaces each
//! `:ident` with `NULL` before parsing — the statement stays
//! syntactically valid and the equi-join structure is untouched.

/// How a program file carries its SQL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourceKind {
    /// Plain `.sql` script: the whole text is SQL.
    Sql,
    /// Host-language file with `EXEC SQL … ;` / `EXEC SQL … END-EXEC`
    /// sections.
    Embedded,
    /// Detect per file: treated as [`SourceKind::Embedded`] when the
    /// text contains `EXEC SQL`, otherwise as [`SourceKind::Sql`].
    #[default]
    Auto,
}

/// One application program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramSource {
    /// Program name (file name, form id, …) — used in provenance.
    pub name: String,
    /// Raw text.
    pub text: String,
    /// SQL carrier kind.
    pub kind: SourceKind,
}

impl ProgramSource {
    /// A plain SQL program.
    pub fn sql(name: impl Into<String>, text: impl Into<String>) -> Self {
        ProgramSource {
            name: name.into(),
            text: text.into(),
            kind: SourceKind::Sql,
        }
    }

    /// An embedded-SQL program.
    pub fn embedded(name: impl Into<String>, text: impl Into<String>) -> Self {
        ProgramSource {
            name: name.into(),
            text: text.into(),
            kind: SourceKind::Embedded,
        }
    }

    /// Extracts the SQL statement texts carried by this program, with
    /// host variables already neutralized.
    pub fn statements(&self) -> Vec<String> {
        let kind = match self.kind {
            SourceKind::Auto => {
                if find_ci(&self.text, "EXEC SQL", 0).is_some() {
                    SourceKind::Embedded
                } else {
                    SourceKind::Sql
                }
            }
            k => k,
        };
        match kind {
            SourceKind::Sql => vec![strip_host_variables(&self.text)],
            SourceKind::Embedded => scan_embedded(&self.text)
                .into_iter()
                .map(|s| strip_host_variables(&s))
                .collect(),
            SourceKind::Auto => unreachable!("resolved above"),
        }
    }
}

/// Case-insensitive substring search starting at `from`.
fn find_ci(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    if n.is_empty() || h.len() < n.len() {
        return None;
    }
    (from..=h.len() - n.len()).find(|&i| {
        h[i..i + n.len()]
            .iter()
            .zip(n)
            .all(|(a, b)| a.eq_ignore_ascii_case(b))
    })
}

/// Scans `EXEC SQL … (END-EXEC | ;)` sections out of host text.
///
/// The terminator search is quote-aware: a `;` inside a string literal
/// does not end the section.
fn scan_embedded(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while let Some(start) = find_ci(text, "EXEC SQL", i) {
        let body_start = start + "EXEC SQL".len();
        let bytes = text.as_bytes();
        let mut j = body_start;
        let mut in_string = false;
        let mut end = None;
        while j < bytes.len() {
            let c = bytes[j];
            if in_string {
                if c == b'\'' {
                    // `''` escape
                    if bytes.get(j + 1) == Some(&b'\'') {
                        j += 1;
                    } else {
                        in_string = false;
                    }
                }
            } else if c == b'\'' {
                in_string = true;
            } else if c == b';' {
                end = Some((j, j + 1));
                break;
            } else if c.eq_ignore_ascii_case(&b'e') && find_ci(text, "END-EXEC", j) == Some(j) {
                end = Some((j, j + "END-EXEC".len()));
                break;
            }
            j += 1;
        }
        match end {
            Some((stmt_end, next)) => {
                out.push(text[body_start..stmt_end].trim().to_string());
                i = next;
            }
            None => {
                // Unterminated section: take to end of text.
                out.push(text[body_start..].trim().to_string());
                break;
            }
        }
    }
    out.retain(|s| !s.is_empty());
    out
}

/// Replaces `:ident` host variables with `NULL`.
fn strip_host_variables(sql: &str) -> String {
    let bytes = sql.as_bytes();
    let mut out = String::with_capacity(sql.len());
    let mut i = 0;
    let mut in_string = false;
    while i < bytes.len() {
        let c = bytes[i];
        if in_string {
            out.push(char::from(c));
            if c == b'\'' {
                in_string = false;
            }
            i += 1;
            continue;
        }
        match c {
            b'\'' => {
                in_string = true;
                out.push('\'');
                i += 1;
            }
            b':' if i + 1 < bytes.len()
                && (bytes[i + 1].is_ascii_alphabetic() || bytes[i + 1] == b'_') =>
            {
                i += 1;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'-')
                {
                    i += 1;
                }
                out.push_str("NULL");
            }
            _ => {
                out.push(char::from(c));
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_sql_passes_through() {
        let p = ProgramSource::sql("report1", "SELECT * FROM Person;");
        assert_eq!(p.statements(), vec!["SELECT * FROM Person;".to_string()]);
    }

    #[test]
    fn embedded_c_style() {
        let p = ProgramSource::embedded(
            "payroll.c",
            r#"
            int main() {
                EXEC SQL SELECT salary FROM HEmployee WHERE no = :empno;
                printf("done");
                EXEC SQL SELECT name FROM Person p, HEmployee e
                         WHERE e.no = p.id;
            }
            "#,
        );
        let stmts = p.statements();
        assert_eq!(stmts.len(), 2);
        assert!(stmts[0].contains("no = NULL"));
        assert!(stmts[1].contains("e.no = p.id"));
    }

    #[test]
    fn embedded_cobol_style() {
        let p = ProgramSource::embedded(
            "payroll.cob",
            "PROCEDURE DIVISION.\n EXEC SQL SELECT dep FROM Department END-EXEC.\n STOP RUN.",
        );
        assert_eq!(
            p.statements(),
            vec!["SELECT dep FROM Department".to_string()]
        );
    }

    #[test]
    fn auto_detects_embedded() {
        let p = ProgramSource {
            name: "x".into(),
            text: "junk exec sql SELECT a FROM b; more junk".into(),
            kind: SourceKind::Auto,
        };
        assert_eq!(p.statements(), vec!["SELECT a FROM b".to_string()]);
        let p = ProgramSource {
            name: "y".into(),
            text: "SELECT a FROM b".into(),
            kind: SourceKind::Auto,
        };
        assert_eq!(p.statements(), vec!["SELECT a FROM b".to_string()]);
    }

    #[test]
    fn semicolon_inside_string_does_not_terminate() {
        let p = ProgramSource::embedded("x.c", "EXEC SQL SELECT a FROM b WHERE c = 'x;y';");
        assert_eq!(
            p.statements(),
            vec!["SELECT a FROM b WHERE c = 'x;y'".to_string()]
        );
    }

    #[test]
    fn host_variables_replaced_with_null() {
        assert_eq!(
            strip_host_variables("WHERE a = :v1 AND b = :other-var"),
            "WHERE a = NULL AND b = NULL"
        );
        // `:` inside strings untouched.
        assert_eq!(
            strip_host_variables("WHERE a = ':notvar'"),
            "WHERE a = ':notvar'"
        );
    }

    #[test]
    fn unterminated_embedded_section_taken_to_eof() {
        let p = ProgramSource::embedded("x.c", "EXEC SQL SELECT a FROM b");
        assert_eq!(p.statements(), vec!["SELECT a FROM b".to_string()]);
    }

    #[test]
    fn find_ci_cases() {
        assert_eq!(find_ci("abcEXEC sql", "exec SQL", 0), Some(3));
        assert_eq!(find_ci("short", "longer needle", 0), None);
        assert_eq!(find_ci("xx", "", 0), None);
    }
}
