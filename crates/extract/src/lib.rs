//! # dbre-extract
//!
//! Equi-join extraction from application programs — the computation of
//! the paper's set `Q` (§4), which the paper assumes available: "we
//! assume that such a set is available, i.e., it has been computed".
//!
//! [`source`] scans SQL out of program files (plain scripts or
//! `EXEC SQL` embedded sections, host variables neutralized);
//! [`extractor`] mines the parsed statements for equi-joins in all the
//! forms the paper enumerates — `WHERE` conjunctions, `ON` clauses,
//! nested `IN` subqueries, correlated `EXISTS`, `INTERSECT` — closing
//! equalities transitively and grouping multi-attribute conjunctions
//! into composite joins.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod equality;
pub mod extractor;
pub mod source;

pub use extractor::{
    extract_programs, extract_query_joins, ExtractConfig, ExtractedJoin, Extraction, Provenance,
};
pub use source::{ProgramSource, SourceKind};
