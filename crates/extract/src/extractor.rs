//! Equi-join extraction: from application programs to the set `Q`.
//!
//! §4 of the paper lists the forms an equi-join can take in legacy
//! code — "with nested or unnested queries, with a where clause or with
//! an intersect operator" — and then *assumes* the set `Q` has been
//! computed. This module is that computation:
//!
//! * `WHERE`/`ON` equality conjunctions (including multi-attribute
//!   conjunctions, which become one *composite* equi-join with
//!   positional attribute correspondence);
//! * transitive closure of equalities (`a.x = b.y AND b.y = c.z`
//!   implies the navigation `a.x ⋈ c.z`);
//! * `IN (SELECT …)` nesting — `R_k.a IN (SELECT b FROM R_l)` is the
//!   nested form of `R_k[a] ⋈ R_l[b]`;
//! * correlated `EXISTS` predicates;
//! * `INTERSECT` between projections.
//!
//! Every extracted join carries provenance (program, statement index)
//! so the expert user can trace a presumption back to code.

use crate::equality::{EqualityGraph, Node};
use crate::source::ProgramSource;
use dbre_relational::attr::AttrId;
use dbre_relational::counting::EquiJoin;
use dbre_relational::deps::IndSide;
use dbre_relational::schema::{RelId, Schema};
use dbre_sql::ast::{ColumnRef, Expr, Query, SelectItem, SetOp, Statement};
use dbre_sql::parser::parse_script;
use std::collections::BTreeMap;

/// Extraction options.
#[derive(Debug, Clone)]
pub struct ExtractConfig {
    /// Also harvest column equalities occurring under `OR` / `NOT`
    /// (more recall, weaker navigation evidence). The paper considers
    /// conjunctive conditions; default `false`.
    pub include_disjunctive: bool,
    /// Treat `INTERSECT` projections as equi-joins. Default `true`.
    pub include_intersect: bool,
    /// Treat `IN (SELECT …)` as equi-joins. Default `true`.
    pub include_in_subqueries: bool,
    /// Besides each composite equi-join, also emit its unary
    /// per-attribute projections. Default `false` (the composite *is*
    /// the navigation).
    pub emit_unary_projections: bool,
}

impl Default for ExtractConfig {
    fn default() -> Self {
        ExtractConfig {
            include_disjunctive: false,
            include_intersect: true,
            include_in_subqueries: true,
            emit_unary_projections: false,
        }
    }
}

/// Where an equi-join was observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// Program name.
    pub program: String,
    /// 0-based statement index within the program.
    pub statement: usize,
}

/// An equi-join with the program locations that exhibit it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtractedJoin {
    /// The (canonicalized) equi-join.
    pub join: EquiJoin,
    /// All observation sites.
    pub provenance: Vec<Provenance>,
}

/// The result of extraction: the set `Q` plus diagnostics.
#[derive(Debug, Clone, Default)]
pub struct Extraction {
    /// Deduplicated equi-joins in deterministic order.
    pub joins: Vec<ExtractedJoin>,
    /// Non-fatal diagnostics (unknown tables, unresolvable columns,
    /// unparseable statements).
    pub warnings: Vec<String>,
}

impl Extraction {
    /// Just the joins, without provenance.
    pub fn q(&self) -> Vec<EquiJoin> {
        self.joins.iter().map(|j| j.join.clone()).collect()
    }
}

/// Extracts the set `Q` from a collection of application programs.
pub fn extract_programs(
    schema: &Schema,
    programs: &[ProgramSource],
    cfg: &ExtractConfig,
) -> Extraction {
    let mut acc = Accumulator::default();
    for program in programs {
        for (idx, stmt_text) in program.statements().iter().enumerate() {
            let provenance = Provenance {
                program: program.name.clone(),
                statement: idx,
            };
            let stmts = match parse_script(stmt_text) {
                Ok(s) => s,
                Err(e) => {
                    acc.warnings
                        .push(format!("{} (statement {}): {e}", program.name, idx));
                    continue;
                }
            };
            for stmt in &stmts {
                if let Statement::Select(q) = stmt {
                    extract_query(schema, q, cfg, &provenance, &mut acc);
                }
            }
        }
    }
    acc.finish()
}

/// Extracts equi-joins from a single already-parsed query.
pub fn extract_query_joins(schema: &Schema, q: &Query, cfg: &ExtractConfig) -> Extraction {
    let mut acc = Accumulator::default();
    let provenance = Provenance {
        program: "<query>".to_string(),
        statement: 0,
    };
    extract_query(schema, q, cfg, &provenance, &mut acc);
    acc.finish()
}

#[derive(Default)]
struct Accumulator {
    joins: BTreeMap<EquiJoin, Vec<Provenance>>,
    warnings: Vec<String>,
}

impl Accumulator {
    fn add(&mut self, join: EquiJoin, provenance: &Provenance) {
        let entry = self.joins.entry(join.canonical()).or_default();
        if !entry.contains(provenance) {
            entry.push(provenance.clone());
        }
    }

    fn finish(self) -> Extraction {
        Extraction {
            joins: self
                .joins
                .into_iter()
                .map(|(join, provenance)| ExtractedJoin { join, provenance })
                .collect(),
            warnings: self.warnings,
        }
    }
}

/// Statement-wide extraction state.
struct StatementCtx<'a> {
    schema: &'a Schema,
    cfg: &'a ExtractConfig,
    /// Every binding instance in the statement (across all scopes).
    instances: Vec<RelId>,
    graph: EqualityGraph,
    warnings: Vec<String>,
}

/// One lexical scope: binding name → instance id.
type Scope = Vec<(String, u32)>;

fn extract_query(
    schema: &Schema,
    q: &Query,
    cfg: &ExtractConfig,
    provenance: &Provenance,
    acc: &mut Accumulator,
) {
    let mut ctx = StatementCtx {
        schema,
        cfg,
        instances: Vec::new(),
        graph: EqualityGraph::new(),
        warnings: Vec::new(),
    };
    walk_query(&mut ctx, q, &[]);
    acc.warnings.extend(ctx.warnings.drain(..).map(|w| {
        format!(
            "{} (statement {}): {w}",
            provenance.program, provenance.statement
        )
    }));

    // Read equi-joins off the equality classes.
    let classes = ctx.graph.classes();
    // (instance_l, instance_r) -> sorted attr pairs
    let mut pairs: BTreeMap<(u32, u32), Vec<(AttrId, AttrId)>> = BTreeMap::new();
    for class in &classes {
        for (a_idx, a) in class.iter().enumerate() {
            for b in &class[a_idx + 1..] {
                let (l, r) = if a.instance <= b.instance {
                    (a, b)
                } else {
                    (b, a)
                };
                if l.instance == r.instance {
                    continue; // same binding instance: not a join
                }
                let entry = pairs.entry((l.instance, r.instance)).or_default();
                if !entry.contains(&(l.attr, r.attr)) {
                    entry.push((l.attr, r.attr));
                }
            }
        }
    }
    for ((li, ri), mut attr_pairs) in pairs {
        attr_pairs.sort();
        let l_rel = ctx.instances[li as usize];
        let r_rel = ctx.instances[ri as usize];
        let l_attrs: Vec<AttrId> = attr_pairs.iter().map(|p| p.0).collect();
        let r_attrs: Vec<AttrId> = attr_pairs.iter().map(|p| p.1).collect();
        if l_rel == r_rel && l_attrs == r_attrs {
            continue; // R[X] ⋈ R[X]: trivially satisfied, no navigation
        }
        // The sides are zipped from `attr_pairs`, so their arities are
        // equal by construction; `try_new` keeps the ingestion path
        // panic-free regardless (a malformed pair is dropped, not fatal).
        if let Ok(join) = EquiJoin::try_new(
            IndSide::new(l_rel, l_attrs.clone()),
            IndSide::new(r_rel, r_attrs.clone()),
        ) {
            acc.add(join, provenance);
        }
        if cfg.emit_unary_projections && attr_pairs.len() > 1 {
            for (la, ra) in &attr_pairs {
                if l_rel == r_rel && la == ra {
                    continue;
                }
                if let Ok(join) =
                    EquiJoin::try_new(IndSide::single(l_rel, *la), IndSide::single(r_rel, *ra))
                {
                    acc.add(join, provenance);
                }
            }
        }
    }
}

/// Walks a query; `outer` is the stack of enclosing scopes (innermost
/// last) for correlated column resolution. Returns the scope of the
/// query's first body so callers (`IN` subqueries, `INTERSECT`
/// pairing) can resolve its projection columns.
fn walk_query(ctx: &mut StatementCtx<'_>, q: &Query, outer: &[Scope]) -> Scope {
    let scope = walk_select(ctx, &q.body, outer);

    if let Some((op, rest)) = &q.compound {
        let rest_scope = walk_query(ctx, rest, outer);
        if *op == SetOp::Intersect && ctx.cfg.include_intersect {
            // Pair up the two projections positionally: a tuple can be
            // in the intersection only if the paired columns are equal.
            let left_cols = projection_columns(&q.body.items);
            let right_cols = projection_columns(&rest.body.items);
            for (l, r) in left_cols.iter().zip(right_cols.iter()) {
                if let (Some(lc), Some(rc)) = (l, r) {
                    let ln = resolve(ctx, lc, &with_scope(outer, &scope));
                    let rn = resolve(ctx, rc, &with_scope(outer, &rest_scope));
                    if let (Some(ln), Some(rn)) = (ln, rn) {
                        ctx.graph.equate(ln, rn);
                    }
                }
            }
        }
    }
    scope
}

/// Walks one select block, registering its FROM bindings and harvesting
/// equalities; returns the created scope.
fn walk_select(ctx: &mut StatementCtx<'_>, s: &dbre_sql::ast::Select, outer: &[Scope]) -> Scope {
    let mut scope: Scope = Vec::new();
    for tr in &s.from {
        match ctx.schema.rel_id(&tr.table) {
            Some(rel) => {
                let inst = ctx.instances.len() as u32;
                ctx.instances.push(rel);
                scope.push((tr.binding().to_string(), inst));
            }
            None => ctx
                .warnings
                .push(format!("unknown table `{}` in FROM", tr.table)),
        }
    }
    let scopes = with_scope(outer, &scope);
    for cond in s.join_conds.iter().chain(s.where_clause.iter()) {
        harvest(ctx, cond, &scopes, false);
    }
    scope
}

fn with_scope(outer: &[Scope], inner: &Scope) -> Vec<Scope> {
    let mut v: Vec<Scope> = outer.to_vec();
    v.push(inner.clone());
    v
}

fn projection_columns(items: &[SelectItem]) -> Vec<Option<ColumnRef>> {
    items
        .iter()
        .map(|it| match it {
            SelectItem::Expr {
                expr: Expr::Column(c),
                ..
            } => Some(c.clone()),
            _ => None,
        })
        .collect()
}

/// Harvests equalities from a predicate tree. `inside_disjunction`
/// tracks whether we are under an `OR`/`NOT` (weaker evidence — kept
/// as an explicit marker even though no current policy downgrades it).
#[allow(clippy::only_used_in_recursion)]
fn harvest(ctx: &mut StatementCtx<'_>, e: &Expr, scopes: &[Scope], inside_disjunction: bool) {
    match e {
        Expr::And(l, r) => {
            harvest(ctx, l, scopes, inside_disjunction);
            harvest(ctx, r, scopes, inside_disjunction);
        }
        Expr::Or(l, r) => {
            if ctx.cfg.include_disjunctive {
                harvest(ctx, l, scopes, true);
                harvest(ctx, r, scopes, true);
            }
        }
        Expr::Not(x) => {
            if ctx.cfg.include_disjunctive {
                harvest(ctx, x, scopes, true);
            }
        }
        Expr::Cmp { .. } => {
            if let Some((a, b)) = e.as_column_equality() {
                let na = resolve(ctx, a, scopes);
                let nb = resolve(ctx, b, scopes);
                if let (Some(na), Some(nb)) = (na, nb) {
                    ctx.graph.equate(na, nb);
                }
            }
        }
        Expr::InSubquery {
            expr,
            query,
            negated,
        } => {
            // Walk the subquery with current scopes visible (correlated
            // predicates inside are harvested there).
            let sub_scope = walk_query(ctx, query, scopes);
            if ctx.cfg.include_in_subqueries && !*negated {
                if let Expr::Column(outer_col) = expr.as_ref() {
                    let cols = projection_columns(&query.body.items);
                    if cols.len() == 1 {
                        if let Some(inner_col) = &cols[0] {
                            let on = resolve(ctx, outer_col, scopes);
                            let inn = resolve(ctx, inner_col, &with_scope(scopes, &sub_scope));
                            if let (Some(on), Some(inn)) = (on, inn) {
                                ctx.graph.equate(on, inn);
                            }
                        }
                    }
                }
            }
        }
        Expr::Exists { query, .. } => {
            walk_query(ctx, query, scopes);
        }
        Expr::IsNull { .. }
        | Expr::InList { .. }
        | Expr::Column(_)
        | Expr::Literal(_)
        | Expr::CountStar
        | Expr::CountDistinct(_)
        | Expr::Agg { .. } => {}
    }
}

/// Resolves a column reference against a scope stack (innermost last).
fn resolve(ctx: &mut StatementCtx<'_>, c: &ColumnRef, scopes: &[Scope]) -> Option<Node> {
    for scope in scopes.iter().rev() {
        let mut found: Option<Node> = None;
        let mut ambiguous = false;
        for (binding, inst) in scope {
            if let Some(q) = &c.qualifier {
                if q != binding {
                    continue;
                }
            }
            let rel = ctx.schema.relation(ctx.instances[*inst as usize]);
            if let Some(attr) = rel.attr_id(&c.name) {
                if found.is_some() {
                    ambiguous = true;
                    break;
                }
                found = Some(Node {
                    instance: *inst,
                    attr,
                });
            }
        }
        if ambiguous {
            ctx.warnings
                .push(format!("ambiguous column `{c}` — equality skipped"));
            return None;
        }
        if found.is_some() {
            return found;
        }
    }
    ctx.warnings
        .push(format!("unresolved column `{c}` — equality skipped"));
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbre_relational::schema::Relation;
    use dbre_relational::value::Domain;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation(Relation::of(
            "Person",
            &[("id", Domain::Int), ("name", Domain::Text)],
        ))
        .unwrap();
        s.add_relation(Relation::of(
            "HEmployee",
            &[
                ("no", Domain::Int),
                ("date", Domain::Date),
                ("salary", Domain::Float),
            ],
        ))
        .unwrap();
        s.add_relation(Relation::of(
            "Assignment",
            &[
                ("emp", Domain::Int),
                ("dep", Domain::Text),
                ("proj", Domain::Text),
            ],
        ))
        .unwrap();
        s.add_relation(Relation::of(
            "Department",
            &[
                ("dep", Domain::Text),
                ("emp", Domain::Int),
                ("proj", Domain::Text),
            ],
        ))
        .unwrap();
        s
    }

    fn extract_sql(sql: &str) -> Extraction {
        extract_sql_cfg(sql, &ExtractConfig::default())
    }

    fn extract_sql_cfg(sql: &str, cfg: &ExtractConfig) -> Extraction {
        let schema = schema();
        let programs = [ProgramSource::sql("test", sql)];
        extract_programs(&schema, &programs, cfg)
    }

    fn rendered(e: &Extraction) -> Vec<String> {
        let s = schema();
        e.joins.iter().map(|j| j.join.render(&s)).collect()
    }

    #[test]
    fn where_clause_equijoin() {
        let e = extract_sql(
            "SELECT name FROM Person p, HEmployee e WHERE e.no = p.id AND e.salary > 0",
        );
        assert_eq!(rendered(&e), vec!["Person[id] |><| HEmployee[no]"]);
        assert!(e.warnings.is_empty());
    }

    #[test]
    fn composite_equijoin_groups_attribute_pairs() {
        let e = extract_sql(
            "SELECT * FROM Assignment a, Department d WHERE a.dep = d.dep AND a.emp = d.emp",
        );
        assert_eq!(
            rendered(&e),
            vec!["Assignment[emp, dep] |><| Department[emp, dep]"]
        );
    }

    #[test]
    fn unary_projection_option() {
        let cfg = ExtractConfig {
            emit_unary_projections: true,
            ..Default::default()
        };
        let e = extract_sql_cfg(
            "SELECT * FROM Assignment a, Department d WHERE a.dep = d.dep AND a.emp = d.emp",
            &cfg,
        );
        let r = rendered(&e);
        assert_eq!(r.len(), 3);
        assert!(r.contains(&"Assignment[dep] |><| Department[dep]".to_string()));
        assert!(r.contains(&"Assignment[emp] |><| Department[emp]".to_string()));
    }

    #[test]
    fn transitive_equality_closure() {
        let e = extract_sql(
            "SELECT * FROM Person p, HEmployee e, Assignment a \
             WHERE p.id = e.no AND e.no = a.emp",
        );
        let r = rendered(&e);
        // Closure adds Person ⋈ Assignment.
        assert_eq!(r.len(), 3);
        assert!(r.contains(&"Person[id] |><| HEmployee[no]".to_string()));
        assert!(r.contains(&"HEmployee[no] |><| Assignment[emp]".to_string()));
        assert!(r.contains(&"Person[id] |><| Assignment[emp]".to_string()));
    }

    #[test]
    fn in_subquery_is_a_join() {
        let e = extract_sql(
            "SELECT name FROM Person WHERE id IN (SELECT no FROM HEmployee WHERE salary > 0)",
        );
        assert_eq!(rendered(&e), vec!["Person[id] |><| HEmployee[no]"]);
    }

    #[test]
    fn not_in_subquery_is_not_a_join() {
        let e = extract_sql("SELECT name FROM Person WHERE id NOT IN (SELECT no FROM HEmployee)");
        assert!(e.joins.is_empty());
    }

    #[test]
    fn correlated_exists_join() {
        let e = extract_sql(
            "SELECT name FROM Person p WHERE EXISTS \
             (SELECT * FROM HEmployee e WHERE e.no = p.id)",
        );
        assert_eq!(rendered(&e), vec!["Person[id] |><| HEmployee[no]"]);
    }

    #[test]
    fn intersect_projections_join() {
        let e = extract_sql("SELECT dep FROM Department INTERSECT SELECT dep FROM Assignment");
        assert_eq!(rendered(&e), vec!["Assignment[dep] |><| Department[dep]"]);
    }

    #[test]
    fn join_on_clause() {
        let e = extract_sql("SELECT * FROM Department d JOIN Assignment a ON d.proj = a.proj");
        assert_eq!(rendered(&e), vec!["Assignment[proj] |><| Department[proj]"]);
    }

    #[test]
    fn disjunctive_equalities_skipped_by_default() {
        let sql = "SELECT * FROM Person p, HEmployee e WHERE e.no = p.id OR e.salary = 0";
        let e = extract_sql(sql);
        assert!(e.joins.is_empty());
        let cfg = ExtractConfig {
            include_disjunctive: true,
            ..Default::default()
        };
        let e = extract_sql_cfg(sql, &cfg);
        assert_eq!(rendered(&e), vec!["Person[id] |><| HEmployee[no]"]);
    }

    #[test]
    fn self_join_same_attrs_dropped_distinct_attrs_kept() {
        let e = extract_sql("SELECT * FROM Department a, Department b WHERE a.dep = b.dep");
        assert!(e.joins.is_empty(), "R[x] ⋈ R[x] carries no navigation");
        let e = extract_sql("SELECT * FROM Department a, Department b WHERE a.emp = b.dep");
        assert_eq!(e.joins.len(), 1);
    }

    #[test]
    fn literal_comparisons_ignored() {
        let e = extract_sql("SELECT * FROM Person WHERE id = 3 AND name = 'x'");
        assert!(e.joins.is_empty());
        assert!(e.warnings.is_empty());
    }

    #[test]
    fn unknown_table_warns_and_continues() {
        let e = extract_sql("SELECT * FROM Ghost g, Person p WHERE g.x = p.id");
        assert!(e.joins.is_empty());
        assert!(!e.warnings.is_empty());
    }

    #[test]
    fn unparseable_statement_warns() {
        let e = extract_sql("SELECT FROM WHERE");
        assert!(e.joins.is_empty());
        assert!(!e.warnings.is_empty());
    }

    #[test]
    fn duplicate_joins_merge_provenance() {
        let schema = schema();
        let programs = [
            ProgramSource::sql(
                "p1",
                "SELECT * FROM Person p, HEmployee e WHERE e.no = p.id",
            ),
            ProgramSource::sql(
                "p2",
                "SELECT * FROM HEmployee e, Person p WHERE p.id = e.no",
            ),
        ];
        let e = extract_programs(&schema, &programs, &ExtractConfig::default());
        assert_eq!(e.joins.len(), 1);
        assert_eq!(e.joins[0].provenance.len(), 2);
    }

    #[test]
    fn embedded_program_extraction() {
        let schema = schema();
        let programs = [ProgramSource::embedded(
            "report.c",
            "EXEC SQL SELECT name FROM Person p, HEmployee e \
             WHERE e.no = p.id AND e.salary > :minsal;",
        )];
        let e = extract_programs(&schema, &programs, &ExtractConfig::default());
        assert_eq!(e.joins.len(), 1);
    }

    #[test]
    fn unqualified_columns_resolve_when_unique() {
        let e = extract_sql("SELECT * FROM Person, HEmployee WHERE no = id");
        assert_eq!(rendered(&e), vec!["Person[id] |><| HEmployee[no]"]);
    }

    #[test]
    fn ambiguous_unqualified_column_warns() {
        // `dep` exists in both Assignment and Department.
        let e = extract_sql("SELECT * FROM Assignment, Department WHERE dep = proj");
        assert!(e.joins.is_empty());
        assert!(!e.warnings.is_empty());
    }
}
