//! Property tests for the equi-join extractor: programs generated in
//! every syntactic form must yield the navigation they encode, and the
//! extractor must be total on arbitrary text.

use dbre_extract::{extract_programs, ExtractConfig, ProgramSource};
use dbre_relational::schema::{Relation, Schema};
use dbre_relational::value::Domain;
use proptest::prelude::*;

/// A small fixed schema the generated programs navigate.
fn schema() -> Schema {
    let mut s = Schema::new();
    for (name, cols) in [
        ("T0", vec!["a0", "b0", "c0"]),
        ("T1", vec!["a1", "b1", "c1"]),
        ("T2", vec!["a2", "b2", "c2"]),
    ] {
        let attrs: Vec<(&str, Domain)> = cols.iter().map(|c| (*c, Domain::Int)).collect();
        s.add_relation(Relation::of(name, &attrs)).unwrap();
    }
    s
}

/// Renders one navigation `(lt.lc = rt.rc)` in form `form`.
fn render_form(form: u8, lt: &str, lc: &str, rt: &str, rc: &str) -> String {
    match form % 5 {
        0 => format!("SELECT x.{lc} FROM {lt} x, {rt} y WHERE x.{lc} = y.{rc};"),
        1 => format!("SELECT * FROM {lt} x JOIN {rt} y ON x.{lc} = y.{rc};"),
        2 => format!("SELECT x.{lc} FROM {lt} x WHERE x.{lc} IN (SELECT y.{rc} FROM {rt} y);"),
        3 => format!(
            "SELECT x.{lc} FROM {lt} x WHERE EXISTS (SELECT * FROM {rt} y WHERE y.{rc} = x.{lc});"
        ),
        _ => format!("SELECT {lc} FROM {lt} INTERSECT SELECT {rc} FROM {rt};"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_syntactic_form_yields_its_navigation(
        form in 0u8..5,
        lt in 0usize..3,
        rt in 0usize..3,
        lc in 0usize..3,
        rc in 0usize..3,
    ) {
        prop_assume!(lt != rt || lc != rc);
        let s = schema();
        let tables = ["T0", "T1", "T2"];
        let (ltn, rtn) = (tables[lt], tables[rt]);
        let lcn = format!("{}{}", ["a", "b", "c"][lc], lt);
        let rcn = format!("{}{}", ["a", "b", "c"][rc], rt);
        let sql = render_form(form, ltn, &lcn, rtn, &rcn);
        let programs = [ProgramSource::sql("p", sql.clone())];
        let extraction = extract_programs(&s, &programs, &ExtractConfig::default());
        prop_assert!(extraction.warnings.is_empty(), "{sql}: {:?}", extraction.warnings);
        prop_assert_eq!(extraction.joins.len(), 1, "{}", sql);
        let rendered = extraction.joins[0].join.render(&s);
        let a = format!("{ltn}[{lcn}] |><| {rtn}[{rcn}]");
        let b = format!("{rtn}[{rcn}] |><| {ltn}[{lcn}]");
        prop_assert!(rendered == a || rendered == b, "{sql} gave {rendered}");
    }

    #[test]
    fn extractor_is_total_on_arbitrary_programs(text in "\\PC{0,300}") {
        let s = schema();
        let programs = [
            ProgramSource::sql("p1", text.clone()),
            ProgramSource::embedded("p2", text),
        ];
        // Must never panic; warnings are fine.
        let _ = extract_programs(&s, &programs, &ExtractConfig::default());
    }

    #[test]
    fn composite_conjunctions_group_into_one_join(
        n_conds in 1usize..3,
    ) {
        let s = schema();
        let conds: Vec<String> = (0..n_conds)
            .map(|i| {
                let c = ["a", "b", "c"][i];
                format!("x.{c}0 = y.{c}1")
            })
            .collect();
        let sql = format!(
            "SELECT * FROM T0 x, T1 y WHERE {};",
            conds.join(" AND ")
        );
        let programs = [ProgramSource::sql("p", sql)];
        let extraction = extract_programs(&s, &programs, &ExtractConfig::default());
        prop_assert_eq!(extraction.joins.len(), 1);
        prop_assert_eq!(extraction.joins[0].join.left.attrs.len(), n_conds);
    }
}
