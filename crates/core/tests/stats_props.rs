//! Property tests for the memoized counting engine: on random small
//! databases the StatsEngine-backed statistics must agree with both the
//! naive columnar primitives and the generated-SQL backend, and cache
//! invalidation must never serve stale counts across mutations.

// Test-support helpers outside #[test] fns; panicking on fixture
// failure is test behaviour.
#![allow(clippy::unwrap_used)]

use dbre_core::sql_counts::join_stats_via_sql;
use dbre_relational::attr::{AttrId, AttrSet};
use dbre_relational::counting::{join_stats, EquiJoin};
use dbre_relational::database::Database;
use dbre_relational::deps::{Fd, Ind, IndSide};
use dbre_relational::schema::{RelId, Relation};
use dbre_relational::stats::StatsEngine;
use dbre_relational::value::{Domain, Value};
use proptest::prelude::*;

/// Encodes `0..=CAP` as ints with the top value mapped to NULL, so the
/// generated extensions exercise NULL semantics too.
fn val(code: i64) -> Value {
    if code == 5 {
        Value::Null
    } else {
        Value::Int(code)
    }
}

/// Two binary relations filled from the generated row codes.
fn two_relations(left_rows: &[(i64, i64)], right_rows: &[(i64, i64)]) -> (Database, RelId, RelId) {
    let mut db = Database::new();
    let l = db
        .add_relation(Relation::of("L", &[("a", Domain::Int), ("b", Domain::Int)]))
        .unwrap();
    let r = db
        .add_relation(Relation::of("R", &[("c", Domain::Int), ("d", Domain::Int)]))
        .unwrap();
    for &(x, y) in left_rows {
        db.insert(l, vec![val(x), val(y)]).unwrap();
    }
    for &(x, y) in right_rows {
        db.insert(r, vec![val(x), val(y)]).unwrap();
    }
    (db, l, r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Engine ≡ naive ≡ executed SQL, for unary and composite joins.
    #[test]
    fn three_way_join_stats_agreement(
        left_rows in prop::collection::vec((0i64..=5, 0i64..=5), 0..24),
        right_rows in prop::collection::vec((0i64..=5, 0i64..=5), 0..24),
    ) {
        let (db, l, r) = two_relations(&left_rows, &right_rows);
        let engine = StatsEngine::new();
        let joins = [
            EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0))).unwrap(),
            EquiJoin::try_new(
                IndSide::new(l, vec![AttrId(0), AttrId(1)]),
                IndSide::new(r, vec![AttrId(0), AttrId(1)]),
            ).unwrap(),
        ];
        for join in &joins {
            let naive = join_stats(&db, join);
            prop_assert_eq!(engine.join_stats(&db, join), naive);
            // Second read is served from cache — must not drift.
            prop_assert_eq!(engine.join_stats(&db, join), naive);
            let via_sql = join_stats_via_sql(&db, join).unwrap();
            prop_assert_eq!(via_sql, naive);
        }
    }

    /// FD and IND verdicts through the engine match the Database's.
    #[test]
    fn engine_fd_ind_agree_with_database(
        left_rows in prop::collection::vec((0i64..=5, 0i64..=5), 0..24),
        right_rows in prop::collection::vec((0i64..=5, 0i64..=5), 0..24),
    ) {
        let (db, l, r) = two_relations(&left_rows, &right_rows);
        let engine = StatsEngine::new();
        for rel in [l, r] {
            for (lhs, rhs) in [(0u16, 1u16), (1, 0)] {
                let fd = Fd::new(
                    rel,
                    AttrSet::from_indices([lhs]),
                    AttrSet::from_indices([rhs]),
                );
                prop_assert_eq!(engine.fd_holds(&db, &fd), db.fd_holds(&fd));
                // Cached second answer.
                prop_assert_eq!(engine.fd_holds(&db, &fd), db.fd_holds(&fd));
            }
        }
        for (from, to) in [(l, r), (r, l)] {
            let ind = Ind::unary(from, AttrId(0), to, AttrId(0));
            prop_assert_eq!(engine.ind_holds(&db, &ind), db.ind_holds(&ind));
        }
    }

    /// Mutations (inserts, new relations) must invalidate exactly the
    /// affected entries: every post-mutation read agrees with a naive
    /// recomputation.
    #[test]
    fn invalidation_never_serves_stale_counts(
        left_rows in prop::collection::vec((0i64..=5, 0i64..=5), 1..16),
        right_rows in prop::collection::vec((0i64..=5, 0i64..=5), 1..16),
        extra in prop::collection::vec((0i64..=5, 0i64..=5), 1..8),
    ) {
        let (mut db, l, r) = two_relations(&left_rows, &right_rows);
        let engine = StatsEngine::new();
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0))).unwrap();
        let fd = Fd::new(r, AttrSet::from_indices([0u16]), AttrSet::from_indices([1u16]));

        // Warm every cache family.
        engine.join_stats(&db, &join);
        engine.fd_holds(&db, &fd);
        engine.partition_for_attrs(&db, r, &[AttrId(0), AttrId(1)]);

        for (i, &(x, y)) in extra.iter().enumerate() {
            db.insert(r, vec![val(x), val(y)]).unwrap();
            if i == extra.len() / 2 {
                // Conceptualization-style mutation: a new relation must
                // not disturb (or be disturbed by) existing entries.
                db.add_relation(Relation::of(
                    &format!("N{i}"),
                    &[("x", Domain::Int)],
                ))
                .unwrap();
            }
            prop_assert_eq!(engine.join_stats(&db, &join), join_stats(&db, &join));
            prop_assert_eq!(engine.fd_holds(&db, &fd), db.fd_holds(&fd));
            prop_assert_eq!(
                engine.count_distinct(&db, r, &[AttrId(0)]),
                db.table(r).count_distinct(&[AttrId(0)])
            );
            let direct = dbre_relational::partitions::StrippedPartition::for_attrs(
                db.table(r),
                &[AttrId(0), AttrId(1)],
            );
            prop_assert_eq!(
                (*engine.partition_for_attrs(&db, r, &[AttrId(0), AttrId(1)])).clone(),
                direct
            );
        }
    }
}
