//! Differential property tests for sketch-accelerated discovery: with
//! a deterministic oracle, a sketch-pruned pipeline run must produce
//! the exact same accepted presumptions (INDs, FDs, join stats) and
//! the byte-identical decision log as the exact-only run — on all four
//! counting backends, over NULL-heavy and NaN-bearing extensions.
//!
//! This is the tentpole no-false-negative obligation: sketches may
//! only suppress exact work whose outcome they can prove.

// Test-support helpers outside #[test] fns; panicking on fixture
// failure is test behaviour.
#![allow(clippy::unwrap_used)]

use dbre_core::oracle::AutoOracle;
use dbre_core::pipeline::{run_with_q, PipelineOptions};
use dbre_core::session::BackendChoice;
use dbre_relational::attr::AttrId;
use dbre_relational::counting::EquiJoin;
use dbre_relational::database::Database;
use dbre_relational::deps::IndSide;
use dbre_relational::schema::{RelId, Relation};
use dbre_relational::sketch::SketchMode;
use dbre_relational::value::{Domain, OrdF64, Value};
use proptest::prelude::*;

/// Codes 0..=5 as an int column value: 5 is NULL (NULL-heavy when the
/// generator clusters high).
fn int_val(code: i64) -> Value {
    if code == 5 {
        Value::Null
    } else {
        Value::Int(code)
    }
}

/// Codes 0..=5 as a float column value: 4 is NaN (same-payload NaNs
/// are equal `Value`s and must sketch/count consistently), 5 is NULL.
fn float_val(code: i64) -> Value {
    match code {
        5 => Value::Null,
        4 => Value::Float(OrdF64(f64::NAN)),
        c => Value::Float(OrdF64(c as f64)),
    }
}

/// Two relations with an int and a float column each; `shift` moves
/// the right relation's int values into a disjoint range so the
/// Bloom-disjointness proof actually fires on some inputs.
fn build_db(
    left: &[(i64, i64)],
    right: &[(i64, i64)],
    shift: i64,
) -> (Database, RelId, RelId, Vec<EquiJoin>) {
    let mut db = Database::new();
    let l = db
        .add_relation(Relation::of(
            "L",
            &[("a", Domain::Int), ("f", Domain::Float)],
        ))
        .unwrap();
    let r = db
        .add_relation(Relation::of(
            "R",
            &[("c", Domain::Int), ("g", Domain::Float)],
        ))
        .unwrap();
    for &(x, y) in left {
        db.insert(l, vec![int_val(x), float_val(y)]).unwrap();
    }
    for &(x, y) in right {
        let shifted = if x == 5 { x } else { x + shift };
        db.insert(r, vec![int_val(shifted), float_val(y)]).unwrap();
    }
    let q = vec![
        EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0))).unwrap(),
        EquiJoin::try_new(IndSide::single(l, AttrId(1)), IndSide::single(r, AttrId(1))).unwrap(),
        EquiJoin::try_new(IndSide::single(r, AttrId(0)), IndSide::single(l, AttrId(0))).unwrap(),
    ];
    (db, l, r, q)
}

/// One pipeline run with the given backend and sketch mode.
fn run(
    db: &Database,
    q: &[EquiJoin],
    backend: BackendChoice,
    sketch: SketchMode,
) -> dbre_core::pipeline::PipelineResult {
    let options = PipelineOptions {
        backend,
        sketch,
        infer_missing_keys: true,
        ..Default::default()
    };
    let mut oracle = AutoOracle::default();
    run_with_q(db.clone(), q, &mut oracle, &options)
}

const BACKENDS: [BackendChoice; 4] = [
    BackendChoice::Reference,
    BackendChoice::Encoded,
    BackendChoice::Sql,
    BackendChoice::Paged,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sketch-on ≡ sketch-off, per backend: accepted presumptions,
    /// per-join cardinalities, and the full decision log.
    #[test]
    fn sketch_on_equals_sketch_off_on_all_backends(
        left in prop::collection::vec((0i64..=5, 0i64..=5), 0..20),
        right in prop::collection::vec((0i64..=5, 0i64..=5), 0..20),
        disjoint in any::<bool>(),
    ) {
        let shift = if disjoint { 100 } else { 0 };
        let (db, _, _, q) = build_db(&left, &right, shift);
        for backend in BACKENDS {
            let exact = run(&db, &q, backend, SketchMode::Off);
            let pruned = run(&db, &q, backend, SketchMode::On);
            prop_assert_eq!(
                &pruned.log, &exact.log,
                "decision log diverged on {}", backend.name()
            );
            prop_assert_eq!(
                &pruned.ind.inds, &exact.ind.inds,
                "IND set diverged on {}", backend.name()
            );
            prop_assert_eq!(
                &pruned.ind.join_stats, &exact.ind.join_stats,
                "join cardinalities diverged on {}", backend.name()
            );
            prop_assert_eq!(
                &pruned.ind.empty_intersections, &exact.ind.empty_intersections,
                "case-(i) flags diverged on {}", backend.name()
            );
            prop_assert_eq!(
                &pruned.rhs.fds, &exact.rhs.fds,
                "FD set diverged on {}", backend.name()
            );
            prop_assert_eq!(
                pruned.rhs.fd_checks, exact.rhs.fd_checks,
                "fd_checks metric diverged on {}", backend.name()
            );
            // Exact-only runs must never report sketch work.
            prop_assert_eq!(exact.stats.sketch.pruned, 0);
            prop_assert_eq!(exact.stats.sketch.candidates, 0);
        }
    }
}

/// Deterministic witness that the prefilter actually fires: disjoint
/// int columns on the encoded backend must be pruned (no exact kernel)
/// and still produce byte-identical output.
#[test]
fn disjoint_join_is_pruned_with_identical_output() {
    let left: Vec<(i64, i64)> = (0..4).map(|i| (i, i)).collect();
    let right: Vec<(i64, i64)> = (0..4).map(|i| (i, i)).collect();
    let (db, _, _, q) = build_db(&left, &right, 100);
    let exact = run(&db, &q, BackendChoice::Encoded, SketchMode::Off);
    let pruned = run(&db, &q, BackendChoice::Encoded, SketchMode::On);
    assert_eq!(pruned.log, exact.log);
    assert_eq!(pruned.ind.join_stats, exact.ind.join_stats);
    assert!(
        pruned.stats.sketch.pruned >= 2,
        "both int-join directions are provably disjoint: {:?}",
        pruned.stats.sketch
    );
    assert!(pruned.stats.sketch.candidates >= pruned.stats.sketch.pruned);
    // The disjoint joins are flagged as case (i) either way.
    assert_eq!(pruned.ind.empty_intersections.len(), 2);
}

/// NULL-only and empty columns: sketches must not invent work or
/// verdicts where the exact path reports empty intersections.
#[test]
fn null_only_columns_stay_identical() {
    let left = vec![(5, 5), (5, 5)];
    let right = vec![(5, 5)];
    let (db, _, _, q) = build_db(&left, &right, 0);
    for backend in BACKENDS {
        let exact = run(&db, &q, backend, SketchMode::Off);
        let pruned = run(&db, &q, backend, SketchMode::On);
        assert_eq!(pruned.log, exact.log, "backend {}", backend.name());
        assert_eq!(
            pruned.ind.join_stats,
            exact.ind.join_stats,
            "backend {}",
            backend.name()
        );
    }
}
