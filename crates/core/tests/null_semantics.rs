//! Differential test: the three counting backends — the naive columnar
//! primitives (`dbre_relational::counting`), the memoized
//! [`StatsEngine`], and the generated-SQL backend
//! (`dbre_core::sql_counts`) — must agree on a NULL-bearing database.
//!
//! SQL semantics pin the expected numbers: `COUNT(DISTINCT X)` drops
//! rows where any counted column is NULL, and an equi-join predicate
//! `x = y` is UNKNOWN (not TRUE) when either side is NULL, so NULLs
//! never match anything, including other NULLs.

// Test-support helpers outside #[test] fns; panicking on fixture
// failure is test behaviour.
#![allow(clippy::expect_used)]

use dbre_core::sql_counts::join_stats_via_sql;
use dbre_relational::attr::AttrId;
use dbre_relational::counting::{join_stats, EquiJoin};
use dbre_relational::database::Database;
use dbre_relational::deps::IndSide;
use dbre_relational::schema::{RelId, Relation};
use dbre_relational::stats::StatsEngine;
use dbre_relational::value::{Domain, Value};

fn v(code: i64) -> Value {
    if code < 0 {
        Value::Null
    } else {
        Value::Int(code)
    }
}

/// Two binary relations; `-1` row codes become NULL.
fn null_db(left: &[(i64, i64)], right: &[(i64, i64)]) -> (Database, RelId, RelId) {
    let mut db = Database::new();
    let l = db
        .add_relation(Relation::of("L", &[("a", Domain::Int), ("b", Domain::Int)]))
        .expect("fresh schema");
    let r = db
        .add_relation(Relation::of("R", &[("c", Domain::Int), ("d", Domain::Int)]))
        .expect("fresh schema");
    for &(x, y) in left {
        db.insert(l, vec![v(x), v(y)]).expect("arity 2");
    }
    for &(x, y) in right {
        db.insert(r, vec![v(x), v(y)]).expect("arity 2");
    }
    (db, l, r)
}

#[test]
fn three_backends_agree_on_null_bearing_database() {
    // L: (1,1) (2,NULL) (NULL,3) (NULL,NULL) (2,NULL) [dup] (4,5)
    // R: (1,9) (NULL,9) (2,2) (7,NULL)
    let (db, l, r) = null_db(
        &[(1, 1), (2, -1), (-1, 3), (-1, -1), (2, -1), (4, 5)],
        &[(1, 9), (-1, 9), (2, 2), (7, -1)],
    );

    // Single-attribute join on (L.a, R.c).
    let join1 = EquiJoin::try_new(
        IndSide::new(l, vec![AttrId(0)]),
        IndSide::new(r, vec![AttrId(0)]),
    )
    .unwrap();
    // Two-attribute join on (L.a,L.b) vs (R.c,R.d).
    let join2 = EquiJoin::try_new(
        IndSide::new(l, vec![AttrId(0), AttrId(1)]),
        IndSide::new(r, vec![AttrId(0), AttrId(1)]),
    )
    .unwrap();

    let engine = StatsEngine::new();
    for join in [&join1, &join2] {
        let naive = join_stats(&db, join);
        let memoized = engine.join_stats(&db, join);
        let sql = join_stats_via_sql(&db, join).expect("generated SQL executes");
        assert_eq!(naive, memoized, "naive vs StatsEngine on {join:?}");
        assert_eq!(naive, sql, "naive vs SQL backend on {join:?}");
    }

    // Pin the absolute numbers so all three backends agreeing on the
    // *wrong* convention cannot pass. distinct a ∈ {1,2,4} (NULLs
    // dropped), distinct c ∈ {1,2,7}, intersection {1,2}.
    let s1 = join_stats(&db, &join1);
    assert_eq!((s1.n_left, s1.n_right, s1.n_join), (3, 3, 2));
    // Pairs: L has (1,1),(4,5) non-NULL; R has (1,9),(2,2); no overlap.
    let s2 = join_stats(&db, &join2);
    assert_eq!((s2.n_left, s2.n_right, s2.n_join), (2, 2, 0));

    // Distinct count of a NULL-bearing single column, both ways.
    assert_eq!(db.table(l).distinct_projection(&[AttrId(0)]).len(), 3);
    assert_eq!(engine.count_distinct(&db, l, &[AttrId(0)]), 3);

    // All-NULL column: COUNT(DISTINCT) is 0 under SQL semantics.
    let (db2, l2, r2) = null_db(&[(-1, 1), (-1, 2)], &[(-1, 1)]);
    let join_null = EquiJoin::try_new(
        IndSide::new(l2, vec![AttrId(0)]),
        IndSide::new(r2, vec![AttrId(0)]),
    )
    .unwrap();
    let engine2 = StatsEngine::new();
    let naive = join_stats(&db2, &join_null);
    assert_eq!((naive.n_left, naive.n_right, naive.n_join), (0, 0, 0));
    assert_eq!(naive, engine2.join_stats(&db2, &join_null));
    assert_eq!(
        naive,
        join_stats_via_sql(&db2, &join_null).expect("generated SQL executes")
    );
}
