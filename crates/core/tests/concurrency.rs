//! Concurrency suite: readers over snapshots while a writer commits
//! deltas through the shared engine, and full concurrent sessions
//! with per-session decision-log determinism.
//!
//! Everything here is differential — concurrent answers are compared
//! against single-threaded recomputation on the same snapshot — so a
//! torn cache entry, a stale generation tag, or cross-session log
//! interleaving fails loudly rather than flaking.

// Test-support helpers outside #[test] fns; panicking on fixture
// failure is test behaviour.
#![allow(clippy::unwrap_used)]

use dbre_core::oracle::{AutoOracle, ChaosOracle};
use dbre_core::pipeline::{run_with_q, PipelineOptions};
use dbre_core::service::{run_service, shared_engine};
use dbre_core::session::BackendChoice;
use dbre_extract::{extract_programs, ExtractConfig, ProgramSource};
use dbre_relational::attr::AttrId;
use dbre_relational::backend::{CountBackend, ReferenceBackend};
use dbre_relational::partitions::StrippedPartition;
use dbre_relational::schema::Relation;
use dbre_relational::value::{Domain, Value};
use dbre_relational::{Database, DbSnapshot, Delta, Fd, SharedDb, StatsEngine};

/// Deterministic pseudo-random cell for the writer's appends.
fn cell(seed: u64) -> Value {
    match seed % 5 {
        4 => Value::Null,
        v => Value::Int(v as i64),
    }
}

/// Readers probe snapshots through the shared engine while a writer
/// commits appends and deletes through [`SharedDb::apply`] with
/// incremental maintenance on the same engine. Every concurrent
/// answer must equal a single-threaded recompute on the *same
/// snapshot* — maintained entries, fresh entries and direct scans may
/// never disagree, no matter how writes interleave.
#[test]
fn concurrent_probes_with_delta_writes_match_reference() {
    let mut db = Database::new();
    let rel = db
        .add_relation(Relation::of(
            "T",
            &[("a", Domain::Int), ("b", Domain::Int), ("c", Domain::Int)],
        ))
        .unwrap();
    for i in 0..40u64 {
        db.insert(
            rel,
            vec![
                cell(i),
                cell(i.wrapping_mul(7) + 1),
                cell(i.wrapping_mul(13) + 2),
            ],
        )
        .unwrap();
    }
    let shared = SharedDb::new(db);
    let engine = StatsEngine::new();

    std::thread::scope(|scope| {
        // Writer: 24 committed deltas, alternating appends and
        // deletes, each maintaining the shared engine's caches.
        let writer = scope.spawn(|| {
            for step in 0..24u64 {
                let before = shared.snapshot();
                let delta = if step % 3 == 2 && before.table(rel).len() >= 4 {
                    let len = before.table(rel).len();
                    let mut rows = vec![(step as usize * 5) % len, (step as usize * 11 + 2) % len];
                    rows.sort_unstable();
                    rows.dedup();
                    Delta::Delete { rel, rows }
                } else {
                    Delta::Append {
                        rel,
                        rows: (0..3)
                            .map(|j| {
                                let s = step * 31 + j;
                                vec![cell(s), cell(s + 1), cell(s + 2)]
                            })
                            .collect(),
                    }
                };
                shared.apply(&delta, &[&engine]).unwrap();
            }
        });

        // Readers: each pins a fresh snapshot per iteration and
        // differentially checks every cache family on it.
        let attr_sets: &[&[AttrId]] = &[
            &[AttrId(0)],
            &[AttrId(1), AttrId(2)],
            &[AttrId(0), AttrId(1), AttrId(2)],
        ];
        for reader in 0..4usize {
            let engine = &engine;
            let shared = &shared;
            scope.spawn(move || {
                let reference = ReferenceBackend;
                for _ in 0..30 {
                    let snap = shared.snapshot();
                    let table = snap.table(rel);
                    for attrs in attr_sets {
                        assert_eq!(
                            engine.count_distinct(&snap, rel, attrs),
                            table.count_distinct(attrs),
                        );
                        assert_eq!(
                            *engine.partition_for_attrs(&snap, rel, attrs),
                            StrippedPartition::for_attrs(table, attrs),
                        );
                        assert_eq!(
                            *engine.lhs_groups(&snap, rel, attrs),
                            *reference.lhs_groups(&snap, rel, attrs),
                        );
                    }
                    let fd = Fd::new(
                        rel,
                        dbre_relational::attr::AttrSet::from_indices([reader as u16 % 3]),
                        dbre_relational::attr::AttrSet::from_indices([(reader as u16 + 1) % 3]),
                    );
                    assert_eq!(engine.fd_holds(&snap, &fd), snap.fd_holds(&fd));
                }
            });
        }
        writer.join().unwrap();
    });
}

fn legacy() -> (Database, Vec<dbre_relational::EquiJoin>) {
    use dbre_sql::Catalog;
    let mut cat = Catalog::new();
    cat.load_script(
        "CREATE TABLE Customer (cid INT UNIQUE, cname VARCHAR(30));
         CREATE TABLE Orders (oid INT UNIQUE, cust INT, cname VARCHAR(30), amount INT);
         INSERT INTO Customer VALUES (1, 'ann'), (2, 'bob'), (3, 'cid');
         INSERT INTO Orders VALUES (10, 1, 'ann', 5), (11, 1, 'ann', 7), (12, 2, 'bob', 3);",
    )
    .unwrap();
    let db = cat.into_database();
    let programs = vec![ProgramSource::sql(
        "report",
        "SELECT cname FROM Orders o, Customer c WHERE o.cust = c.cid;",
    )];
    let q = extract_programs(&db.schema, &programs, &ExtractConfig::default()).q();
    (db, q)
}

/// Eight concurrent sessions with *distinct* deterministic oracles:
/// each session's merged decision log must be byte-identical to a
/// serial solo run with the same oracle seed — concurrency may change
/// scheduling, never a session's answers or their order.
#[test]
fn concurrent_session_logs_match_their_serial_twins() {
    let (db, q) = legacy();
    let options = PipelineOptions {
        backend: BackendChoice::from_env(),
        ..Default::default()
    };

    // Serial twins, one per seed.
    let serial: Vec<_> = (0..8u64)
        .map(|seed| {
            let mut oracle = ChaosOracle::new(seed);
            run_with_q(db.clone(), &q, &mut oracle, &options).log
        })
        .collect();

    let snapshot = DbSnapshot::new(db);
    let engine = shared_engine(&options);
    let report = run_service(&snapshot, &engine, &q, &options, 8, |i| {
        ChaosOracle::new(i as u64)
    });
    assert_eq!(report.outcomes.len(), 8);
    for (i, outcome) in report.outcomes.iter().enumerate() {
        assert_eq!(
            outcome.result.log, serial[i],
            "session {i} diverged from its serial twin"
        );
    }
}

/// Identical oracles across sessions: all logs byte-identical to each
/// other and to the serial run (the acceptance gate the throughput
/// benchmark also enforces).
#[test]
fn homogeneous_sessions_are_byte_identical() {
    let (db, q) = legacy();
    let options = PipelineOptions::default();
    let mut oracle = AutoOracle::default();
    let serial = run_with_q(db.clone(), &q, &mut oracle, &options);

    let snapshot = DbSnapshot::new(db);
    let engine = shared_engine(&options);
    let report = run_service(&snapshot, &engine, &q, &options, 8, |_| {
        AutoOracle::default()
    });
    assert!(report.logs_identical());
    assert_eq!(report.outcomes[0].result.log, serial.log);
}
