//! # dbre-core
//!
//! The primary contribution of *"Towards the Reverse Engineering of
//! Denormalized Relational Databases"* (Petit, Toumani, Boulicaut,
//! Kouloumdjian — ICDE 1996), implemented end to end:
//!
//! * [`mod@ind_discovery`] — §6.1: inclusion dependencies from equi-joins
//!   checked against the extension, with expert-arbitrated non-empty
//!   intersections;
//! * [`mod@lhs_discovery`] — §6.2.1: candidate FD left-hand sides and
//!   hidden objects from the IND set;
//! * [`mod@rhs_discovery`] — §6.2.2: right-hand sides by targeted
//!   extension tests with dictionary-based candidate pruning;
//! * [`mod@restruct`] — §7: 1NF → 3NF restructuring with key and
//!   referential-integrity constraints (including the extension, so
//!   the output is a runnable database);
//! * [`mod@translate`] — §7: the restructured schema as an EER diagram
//!   ([`eer`]).
//!
//! The interactive expert user is the [`oracle::Oracle`] trait;
//! [`pipeline`] chains all stages with a merged audit log; and
//! [`example`] packages the paper's §5 worked example — extension
//! engineered to reproduce every cardinality of the walk-through — as
//! a fixture used by the golden tests and the experiment reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eer;
pub mod example;
pub mod forward;
pub mod ind_discovery;
pub mod lhs_discovery;
pub mod oracle;
pub mod pipeline;
pub mod render;
pub mod restruct;
pub mod rhs_discovery;
pub mod service;
pub mod session;
pub mod sql_counts;
pub mod translate;

pub use dbre_relational::sketch::{SketchMode, SketchPruneStats};
pub use eer::EerSchema;
pub use forward::{forward_map, ForwardMapped};
pub use ind_discovery::{ind_discovery, ind_discovery_sketched, IndDiscovery};
pub use lhs_discovery::{lhs_discovery, LhsDiscovery};
pub use oracle::{
    AutoOracle, ChaosOracle, DenyOracle, NeiDecision, Oracle, OracleAbort, ScriptedOracle,
};
pub use pipeline::{run_with_programs, run_with_q, PipelineOptions, PipelineResult, StageError};
pub use restruct::{restruct, Restructured};
pub use rhs_discovery::{rhs_discovery, rhs_discovery_sketched, RhsDiscovery, RhsOptions};
pub use service::{run_service, shared_engine, ServiceReport, SessionOutcome, TimingOracle};
pub use session::{stages, BackendChoice, DbreSession, Stage};
pub use translate::translate;
