//! Forward mapping: EER schema → relational schema.
//!
//! §3 of the paper recalls that real-life relational schemas are
//! produced *from* conceptual models ("the dependencies that are
//! directly derivable from the EER schemas are key constraints and
//! referential integrity constraints", Markowitz–Shoshani), and its
//! whole method assumes the legacy schema was designed that way. This
//! module implements that design direction:
//!
//! * entity-type → relation keyed on its key attributes;
//! * weak entity-type → relation keyed on (owner key + own key), with
//!   a RIC to each owner;
//! * relationship-type → relation keyed on the participant references,
//!   with a RIC per participation;
//! * is-a link → RIC from the specialized type's key to the general
//!   type's key.
//!
//! Together with [`mod@crate::translate`] this closes the loop: the paper's
//! Figure 1 mapped forward reproduces the restructured schema of §7
//! (a golden test pins that round trip).

use crate::eer::EerSchema;
use dbre_relational::attr::AttrSet;
use dbre_relational::database::Database;
use dbre_relational::deps::{Ind, IndSide};
use dbre_relational::schema::Relation;
use dbre_relational::value::Domain;
use dbre_relational::Attribute;

/// Result of the forward mapping.
#[derive(Debug)]
pub struct ForwardMapped {
    /// Schema + key constraints (extension empty — this is design, not
    /// data).
    pub db: Database,
    /// The referential integrity constraints the design implies.
    pub ric: Vec<Ind>,
    /// Diagnostics (unknown participants, missing keys, …).
    pub warnings: Vec<String>,
}

/// Maps an EER schema to a relational schema with keys and RICs.
///
/// Attribute domains are not part of the EER model here; every column
/// is mapped as [`Domain::Text`] unless a caller refines it afterwards
/// (domains are irrelevant to the structural round trip).
pub fn forward_map(eer: &EerSchema) -> ForwardMapped {
    let mut db = Database::new();
    let mut ric = Vec::new();
    let mut warnings = Vec::new();

    // Entities first (relationships reference them).
    for e in &eer.entities {
        let attrs: Vec<Attribute> = e
            .attrs
            .iter()
            .map(|a| Attribute::new(a.clone(), Domain::Text))
            .collect();
        match Relation::new(e.name.clone(), attrs) {
            Ok(rel) => {
                let id = match db.add_relation(rel) {
                    Ok(id) => id,
                    Err(err) => {
                        warnings.push(format!("skipping entity {}: {err}", e.name));
                        continue;
                    }
                };
                let key_names: Vec<&str> = e.key.iter().map(String::as_str).collect();
                match db.schema.relation(id).attr_set(&key_names) {
                    Ok(key) if !key.is_empty() => db.constraints.add_key(id, key),
                    _ => warnings.push(format!(
                        "entity {} has no resolvable key; keyed on all attributes",
                        e.name
                    )),
                }
                if db.constraints.primary_key(id).is_none() {
                    let all = db.schema.relation(id).all_attrs();
                    db.constraints.add_key(id, all);
                }
            }
            Err(err) => warnings.push(format!("skipping entity {}: {err}", e.name)),
        }
    }

    // Weak-entity ownership and is-a links become RICs between already
    // mapped relations.
    for e in &eer.entities {
        let Some(sub) = db.schema.rel_id(&e.name) else {
            continue;
        };
        for owner in &e.owners {
            match link_by_key_prefix(&db, &e.name, owner) {
                Ok(ind) => ric.push(ind),
                Err(w) => warnings.push(w),
            }
        }
        let _ = sub;
    }
    for l in &eer.isa {
        match link_keys(&db, &l.sub, &l.sup) {
            Ok(ind) => ric.push(ind),
            Err(w) => warnings.push(w),
        }
    }
    // Equivalence groups: mutual key-based inclusions.
    for group in &eer.equivalences {
        for pair in group.windows(2) {
            if let Ok(ind) = link_keys(&db, &pair[0], &pair[1]) {
                ric.push(ind);
            }
            if let Ok(ind) = link_keys(&db, &pair[1], &pair[0]) {
                ric.push(ind);
            }
        }
    }

    // Relationship-types. A *binary* relationship derived from a plain
    // foreign key maps back onto that FK: its first participant already
    // holds the `via` columns, so only the RIC is emitted. Many-to-many
    // relationship-types materialize as relations of their own.
    for r in &eer.relationships {
        if r.kind == crate::eer::RelationshipKind::Binary && r.participants.len() == 2 {
            match binary_fk_ric(&db, r) {
                Ok(ind) => ric.push(ind),
                Err(w) => warnings.push(w),
            }
            continue;
        }
        let mut attrs: Vec<Attribute> = Vec::new();
        let mut key_len = 0usize;
        let mut participant_cols: Vec<(String, Vec<String>)> = Vec::new();
        for p in &r.participants {
            let cols: Vec<String> = p
                .via
                .iter()
                .map(|v| {
                    let mut name = v.clone();
                    let mut k = 2;
                    while attrs.iter().any(|a| a.name == name) {
                        name = format!("{v}_{k}");
                        k += 1;
                    }
                    name
                })
                .collect();
            for c in &cols {
                attrs.push(Attribute::new(c.clone(), Domain::Text));
                key_len += 1;
            }
            participant_cols.push((p.object.clone(), cols));
        }
        for a in &r.attrs {
            attrs.push(Attribute::new(a.clone(), Domain::Text));
        }
        let rel = match Relation::new(r.name.clone(), attrs) {
            Ok(rel) => match db.add_relation(rel) {
                Ok(id) => id,
                Err(err) => {
                    warnings.push(format!("skipping relationship {}: {err}", r.name));
                    continue;
                }
            },
            Err(err) => {
                warnings.push(format!("skipping relationship {}: {err}", r.name));
                continue;
            }
        };
        db.constraints
            .add_key(rel, AttrSet::from_indices(0..key_len as u16));

        // One RIC per participation.
        for (object, cols) in participant_cols {
            let Some(target) = db.schema.rel_id(&object) else {
                warnings.push(format!(
                    "relationship {} references unknown object-type {object}",
                    r.name
                ));
                continue;
            };
            let Some(target_key) = db.constraints.primary_key(target) else {
                warnings.push(format!("participant {object} has no key"));
                continue;
            };
            let target_attrs: Vec<_> = target_key.attrs.iter().collect();
            let col_refs: Vec<&str> = cols.iter().map(String::as_str).collect();
            let Ok(source_ids) = db.schema.relation(rel).attr_ids(&col_refs) else {
                continue;
            };
            if source_ids.len() != target_attrs.len() {
                warnings.push(format!(
                    "participation {} -> {object}: arity mismatch ({} vs {})",
                    r.name,
                    source_ids.len(),
                    target_attrs.len()
                ));
                continue;
            }
            match Ind::new(
                IndSide::new(rel, source_ids),
                IndSide::new(target, target_attrs),
            ) {
                Ok(ind) => ric.push(ind),
                Err(e) => warnings.push(format!("participation {} -> {object}: {e}", r.name)),
            }
        }
    }

    db.constraints.normalize();
    ForwardMapped { db, ric, warnings }
}

/// A binary FK relationship: `participants[0].via ⊆ participants[1]`'s
/// referenced columns (its `via`, which for a Translate-produced
/// schema is the target's key).
fn binary_fk_ric(db: &Database, r: &crate::eer::RelationshipType) -> Result<Ind, String> {
    let source = &r.participants[0];
    let target = &r.participants[1];
    let s = db
        .schema
        .rel_id(&source.object)
        .ok_or_else(|| format!("unknown object-type {}", source.object))?;
    let t = db
        .schema
        .rel_id(&target.object)
        .ok_or_else(|| format!("unknown object-type {}", target.object))?;
    let s_cols: Vec<&str> = source.via.iter().map(String::as_str).collect();
    let t_cols: Vec<&str> = target.via.iter().map(String::as_str).collect();
    let s_ids = db
        .schema
        .relation(s)
        .attr_ids(&s_cols)
        .map_err(|e| format!("binary relationship {}: {e}", r.name))?;
    let t_ids = db
        .schema
        .relation(t)
        .attr_ids(&t_cols)
        .map_err(|e| format!("binary relationship {}: {e}", r.name))?;
    if s_ids.len() != t_ids.len() {
        return Err(format!("binary relationship {}: arity mismatch", r.name));
    }
    Ind::new(IndSide::new(s, s_ids), IndSide::new(t, t_ids))
        .map_err(|e| format!("binary relationship {}: {e}", r.name))
}

/// `sub`'s key ⊆ `sup`'s key (is-a / equivalence realization).
fn link_keys(db: &Database, sub: &str, sup: &str) -> Result<Ind, String> {
    let s = db
        .schema
        .rel_id(sub)
        .ok_or_else(|| format!("unknown object-type {sub}"))?;
    let p = db
        .schema
        .rel_id(sup)
        .ok_or_else(|| format!("unknown object-type {sup}"))?;
    let sk = db
        .constraints
        .primary_key(s)
        .ok_or_else(|| format!("{sub} has no key"))?
        .attrs
        .iter()
        .collect::<Vec<_>>();
    let pk = db
        .constraints
        .primary_key(p)
        .ok_or_else(|| format!("{sup} has no key"))?
        .attrs
        .iter()
        .collect::<Vec<_>>();
    if sk.len() != pk.len() {
        return Err(format!(
            "is-a {sub} -> {sup}: key arities differ ({} vs {})",
            sk.len(),
            pk.len()
        ));
    }
    Ind::new(IndSide::new(s, sk), IndSide::new(p, pk))
        .map_err(|e| format!("is-a {sub} -> {sup}: {e}"))
}

/// Weak entity `sub` references its owner through the prefix of its
/// key that matches the owner's key arity.
fn link_by_key_prefix(db: &Database, sub: &str, owner: &str) -> Result<Ind, String> {
    let s = db
        .schema
        .rel_id(sub)
        .ok_or_else(|| format!("unknown weak entity {sub}"))?;
    let o = db
        .schema
        .rel_id(owner)
        .ok_or_else(|| format!("unknown owner {owner}"))?;
    let sk: Vec<_> = db
        .constraints
        .primary_key(s)
        .ok_or_else(|| format!("{sub} has no key"))?
        .attrs
        .iter()
        .collect();
    let ok: Vec<_> = db
        .constraints
        .primary_key(o)
        .ok_or_else(|| format!("{owner} has no key"))?
        .attrs
        .iter()
        .collect();
    if ok.len() > sk.len() {
        return Err(format!(
            "weak entity {sub}: owner key wider than its own key"
        ));
    }
    Ind::new(
        IndSide::new(s, sk[..ok.len()].to_vec()),
        IndSide::new(o, ok),
    )
    .map_err(|e| format!("weak entity {sub}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::run_paper_example;
    use crate::render::{render_inds, render_schema};
    use crate::translate::translate;

    #[test]
    fn figure_1_forward_maps_back_to_the_restructured_schema() {
        let result = run_paper_example();
        let mapped = forward_map(&result.eer);
        assert!(mapped.warnings.is_empty(), "{:?}", mapped.warnings);
        // Same relations with the same attribute sets and keys, modulo
        // domains and relation order. Compare rendered schemas as sets
        // of lines (the renderer marks keys/not-null; the forward map
        // has no not-null info, so strip `!`).
        let original: std::collections::BTreeSet<String> = render_schema(&result.db)
            .lines()
            .map(|l| l.replace('!', ""))
            .collect();
        let roundtrip: std::collections::BTreeSet<String> = render_schema(&mapped.db)
            .lines()
            .map(|l| l.replace('!', ""))
            .collect();
        assert_eq!(original, roundtrip);
        // Same RIC set.
        assert_eq!(
            render_inds(&result.db, &result.restructured.ric),
            render_inds(&mapped.db, &mapped.ric)
        );
    }

    #[test]
    fn forward_then_translate_is_stable() {
        // translate(forward(eer)) must reproduce eer (structure-wise).
        let result = run_paper_example();
        let mapped = forward_map(&result.eer);
        let again = translate(&mapped.db, &mapped.ric).unwrap();
        assert_eq!(result.eer.render_text(), again.render_text());
    }

    #[test]
    fn unknown_participant_warns() {
        use crate::eer::{Participant, RelationshipKind, RelationshipType};
        let eer = EerSchema {
            relationships: vec![RelationshipType {
                name: "R".into(),
                participants: vec![Participant {
                    object: "Ghost".into(),
                    via: vec!["gid".into()],
                }],
                attrs: vec![],
                kind: RelationshipKind::ManyToMany,
            }],
            ..Default::default()
        };
        let mapped = forward_map(&eer);
        assert!(!mapped.warnings.is_empty());
        assert!(mapped.ric.is_empty());
    }

    #[test]
    fn weak_entity_gets_owner_ric() {
        use crate::eer::EntityType;
        let eer = EerSchema {
            entities: vec![
                EntityType {
                    name: "Owner".into(),
                    attrs: vec!["id".into(), "v".into()],
                    key: vec!["id".into()],
                    weak: false,
                    owners: vec![],
                },
                EntityType {
                    name: "Weak".into(),
                    attrs: vec!["id".into(), "at".into(), "w".into()],
                    key: vec!["id".into(), "at".into()],
                    weak: true,
                    owners: vec!["Owner".into()],
                },
            ],
            ..Default::default()
        };
        let mapped = forward_map(&eer);
        assert!(mapped.warnings.is_empty(), "{:?}", mapped.warnings);
        assert_eq!(mapped.ric.len(), 1);
        assert_eq!(
            mapped.ric[0].render(&mapped.db.schema),
            "Weak[id] << Owner[id]"
        );
    }
}
