//! Concurrent DBRE service: many pipeline sessions over one shared
//! database snapshot and one shared counting engine.
//!
//! The paper's method is interactive — one expert, one dialogue — but
//! a reverse-engineering *service* answers many analysts at once:
//! each gets a private session (own oracle, own copy-on-write database
//! clone, own audit log) while every `‖·‖` probe lands in one shared
//! [`StatsEngine`]. Sharing is safe because cache entries are keyed by
//! process-globally-unique generation tags (see
//! [`StatsEngine`]'s docs): sessions probing the same table version
//! share warm entries; a session that mutates its private clone
//! (conceptualization, restructuring) gets fresh tags and fresh
//! entries, invisible to its neighbors.
//!
//! Determinism is preserved per session: a session's decision log
//! depends only on its snapshot and its oracle, never on scheduling —
//! caching can change *timing*, not *answers* — so N concurrent
//! sessions over the same snapshot and equivalent oracles produce N
//! byte-identical logs, equal to a serial run's. The throughput
//! benchmark gates on exactly that.

use crate::oracle::{FdContext, HiddenContext, NamingContext, NeiContext, NeiDecision, Oracle};
use crate::pipeline::{PipelineOptions, PipelineResult};
use crate::session::{stages, DbreSession};
use dbre_relational::counting::EquiJoin;
use dbre_relational::snapshot::DbSnapshot;
use dbre_relational::stats::StatsEngine;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Decorator measuring the *presumption latency* of a run: the time
/// the pipeline computes between successive oracle questions (the
/// expert's waiting time, which is what a service must keep low).
/// Each inner answer is forwarded unchanged, so timing never alters
/// decisions.
#[derive(Debug)]
pub struct TimingOracle<O> {
    inner: O,
    last: Instant,
    /// Computation interval preceding each question, in ask order.
    pub latencies: Vec<Duration>,
}

impl<O: Oracle> TimingOracle<O> {
    /// Starts the clock now, wrapping `inner`.
    pub fn new(inner: O) -> Self {
        TimingOracle {
            inner,
            last: Instant::now(),
            latencies: Vec::new(),
        }
    }

    fn lap(&mut self) {
        let now = Instant::now();
        self.latencies.push(now.duration_since(self.last));
        self.last = now;
    }
}

impl<O: Oracle> Oracle for TimingOracle<O> {
    fn resolve_nei(&mut self, ctx: &NeiContext<'_>) -> NeiDecision {
        self.lap();
        self.inner.resolve_nei(ctx)
    }

    fn enforce_fd(&mut self, ctx: &FdContext<'_>) -> bool {
        self.lap();
        self.inner.enforce_fd(ctx)
    }

    fn validate_fd(&mut self, ctx: &FdContext<'_>) -> bool {
        self.lap();
        self.inner.validate_fd(ctx)
    }

    fn conceptualize_hidden(&mut self, ctx: &HiddenContext<'_>) -> bool {
        self.lap();
        self.inner.conceptualize_hidden(ctx)
    }

    fn name_new_relation(&mut self, ctx: &NamingContext<'_>) -> String {
        self.lap();
        self.inner.name_new_relation(ctx)
    }
}

/// One session's contribution to a [`ServiceReport`].
#[derive(Debug)]
pub struct SessionOutcome {
    /// The full pipeline result (log, stats, restructured schema, …).
    pub result: PipelineResult,
    /// Per-presumption computation intervals (see [`TimingOracle`]).
    pub latencies: Vec<Duration>,
    /// Wall time of this session, construction to disassembly.
    pub wall: Duration,
}

/// Everything a service run produced, outcomes in session-index order
/// (index `i` is the session built from `make_oracle(i)` — scheduling
/// never reorders them).
#[derive(Debug)]
pub struct ServiceReport {
    /// Per-session outcomes, in session-index order.
    pub outcomes: Vec<SessionOutcome>,
    /// Wall time of the whole run (spawn to last join).
    pub wall: Duration,
}

impl ServiceReport {
    /// Completed sessions per second of total wall time.
    pub fn sessions_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.outcomes.len() as f64 / secs
        } else {
            0.0
        }
    }

    /// `(p50, p99)` presumption latency across every session's
    /// questions; `None` when no oracle was ever consulted.
    pub fn presumption_percentiles(&self) -> Option<(Duration, Duration)> {
        let mut all: Vec<Duration> = self
            .outcomes
            .iter()
            .flat_map(|o| o.latencies.iter().copied())
            .collect();
        if all.is_empty() {
            return None;
        }
        all.sort_unstable();
        let at = |p: usize| all[(all.len() - 1) * p / 100];
        Some((at(50), at(99)))
    }

    /// Do all sessions carry byte-identical decision logs? (They must,
    /// when built over one snapshot with equivalent oracles —
    /// concurrency may only change timing, never answers.)
    pub fn logs_identical(&self) -> bool {
        match self.outcomes.split_first() {
            Some((first, rest)) => rest.iter().all(|o| o.result.log == first.result.log),
            None => true,
        }
    }
}

/// The shared engine a service run probes through: one memoizing
/// engine over the backend `options` selects. (Streamed/spilled
/// extensions are a solo-session feature — service mode expects
/// materialized tables.)
pub fn shared_engine(options: &PipelineOptions) -> Arc<StatsEngine> {
    Arc::new(options.backend.engine_sized(options.page_cache))
}

/// Runs `sessions` concurrent pipeline sessions over one snapshot and
/// one shared engine, each with its own oracle from `make_oracle(i)`.
///
/// Every session is the exact solo pipeline
/// ([`crate::pipeline::run_with_q`] semantics): same stages, same
/// degradation behavior, same audit-log order — stage panics are
/// contained *inside* the session by its single catch-unwind site, so
/// one analyst's failing stage never takes down a neighbor. Outcomes
/// come back in session-index order regardless of scheduling.
pub fn run_service<O, F>(
    snapshot: &DbSnapshot,
    engine: &Arc<StatsEngine>,
    q: &[EquiJoin],
    options: &PipelineOptions,
    sessions: usize,
    make_oracle: F,
) -> ServiceReport
where
    O: Oracle,
    F: Fn(usize) -> O + Sync,
{
    let start = Instant::now();
    let outcomes: Vec<SessionOutcome> = std::thread::scope(|scope| {
        let make_oracle = &make_oracle;
        let handles: Vec<_> = (0..sessions)
            .map(|i| {
                let engine = Arc::clone(engine);
                scope.spawn(move || {
                    let t = Instant::now();
                    let mut oracle = TimingOracle::new(make_oracle(i));
                    let mut session = DbreSession::with_engine(
                        snapshot.to_database(),
                        &mut oracle,
                        options.clone(),
                        engine,
                    );
                    session.admit_q(q);
                    for stage in stages(&session.options) {
                        session.run_stage(stage.as_ref());
                    }
                    let result = session.into_result();
                    SessionOutcome {
                        result,
                        latencies: oracle.latencies,
                        wall: t.elapsed(),
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(outcome) => outcome,
                // Only a panic *outside* run_stage's containment can
                // land here (a bug, not an expected path) — re-raise
                // rather than invent a fake outcome.
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });
    ServiceReport {
        outcomes,
        wall: start.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::AutoOracle;
    use crate::pipeline::run_with_q;
    use dbre_extract::{extract_programs, ExtractConfig, ProgramSource};
    use dbre_relational::database::Database;
    use dbre_sql::Catalog;

    fn legacy() -> (Database, Vec<EquiJoin>) {
        let mut cat = Catalog::new();
        cat.load_script(
            "CREATE TABLE Customer (cid INT UNIQUE, cname VARCHAR(30));
             CREATE TABLE Orders (oid INT UNIQUE, cust INT, cname VARCHAR(30), amount INT);
             INSERT INTO Customer VALUES (1, 'ann'), (2, 'bob'), (3, 'cid');
             INSERT INTO Orders VALUES (10, 1, 'ann', 5), (11, 1, 'ann', 7), (12, 2, 'bob', 3);",
        )
        .unwrap();
        let db = cat.into_database();
        let programs = vec![ProgramSource::sql(
            "report",
            "SELECT cname FROM Orders o, Customer c WHERE o.cust = c.cid;",
        )];
        let q = extract_programs(&db.schema, &programs, &ExtractConfig::default()).q();
        (db, q)
    }

    #[test]
    fn concurrent_sessions_match_serial_run_byte_for_byte() {
        let (db, q) = legacy();
        let options = PipelineOptions::default();

        // Serial reference.
        let mut oracle = AutoOracle::default();
        let serial = run_with_q(db.clone(), &q, &mut oracle, &options);
        assert!(serial.is_complete(), "{:?}", serial.stage_errors);

        let snapshot = DbSnapshot::new(db);
        let engine = shared_engine(&options);
        let report = run_service(&snapshot, &engine, &q, &options, 8, |_| {
            AutoOracle::default()
        });
        assert_eq!(report.outcomes.len(), 8);
        assert!(report.logs_identical());
        for outcome in &report.outcomes {
            assert!(
                outcome.result.is_complete(),
                "{:?}",
                outcome.result.stage_errors
            );
            assert_eq!(outcome.result.log, serial.log);
            assert_eq!(outcome.result.rhs.fds, serial.rhs.fds);
            assert_eq!(outcome.result.eer, serial.eer);
        }
        assert!(report.sessions_per_sec() > 0.0);
        // The pipeline consulted the oracle, so latencies exist and
        // percentiles are orderly.
        let (p50, p99) = report.presumption_percentiles().unwrap();
        assert!(p50 <= p99);
    }

    #[test]
    fn shared_engine_serves_later_sessions_from_cache() {
        let (db, q) = legacy();
        let options = PipelineOptions::default();
        let snapshot = DbSnapshot::new(db);
        let engine = shared_engine(&options);

        let first = run_service(&snapshot, &engine, &q, &options, 1, |_| {
            AutoOracle::default()
        });
        let cold_misses = first.outcomes[0].result.stats.counters.cache_misses;
        assert!(cold_misses > 0, "first session populates the cache");

        let second = run_service(&snapshot, &engine, &q, &options, 1, |_| {
            AutoOracle::default()
        });
        let warm = &second.outcomes[0].result.stats.counters;
        assert!(
            warm.cache_misses < cold_misses,
            "second session over the same snapshot reuses entries: \
             {warm:?} vs {cold_misses} cold misses"
        );
        // warm.cache_misses < cold_misses also proves the per-session
        // baseline diff: engine-absolute misses only ever grow, so a
        // session re-reporting engine totals could never shrink.
        assert!(warm.cache_hits > 0, "warm probes hit shared entries");
    }

    #[test]
    fn empty_service_is_well_formed() {
        let (db, q) = legacy();
        let options = PipelineOptions::default();
        let snapshot = DbSnapshot::new(db);
        let engine = shared_engine(&options);
        let report = run_service(&snapshot, &engine, &q, &options, 0, |_| {
            AutoOracle::default()
        });
        assert!(report.outcomes.is_empty());
        assert!(report.logs_identical());
        assert!(report.presumption_percentiles().is_none());
    }
}
