//! The RHS-Discovery algorithm (paper §6.2.2).
//!
//! For each candidate identifier `R_i.A ∈ LHS ∪ H`, find the right-hand
//! side of its functional dependency:
//!
//! 1. *Prune the candidates*: `T = X_i − A − K_i`, and when `A ∉ N`
//!    also remove the not-null attributes (`T −= N ∩ X_i`) — an
//!    attribute that may be null cannot determine one that must not be
//!    in the object the paper is after.
//! 2. *Test each candidate*: `A → b` against the extension; on failure
//!    the expert user may still enforce it (dirty data, step (ii)).
//! 3. If `B ≠ ∅` the FD `R_i : A → B` joins `F` (after expert
//!    validation) and `R_i.A` leaves `H` if it was there; if `B = ∅`
//!    and `R_i.A ∉ H`, the expert decides whether `R_i.A` is a hidden
//!    object (steps (iv)/(v)).
//!
//! The pruning of step 1 is what keeps the number of extension queries
//! small — ablation X4 measures exactly that.

use crate::lhs_discovery::LhsDiscovery;
use crate::oracle::{DecisionRecord, FdContext, HiddenContext, Oracle};
use dbre_relational::attr::{AttrId, AttrSet};
use dbre_relational::backend::CountBackend;
use dbre_relational::database::Database;
use dbre_relational::deps::Fd;
use dbre_relational::par::par_map;
use dbre_relational::schema::QualAttrs;
use dbre_relational::sketch::{SketchMode, SketchPruneStats};
use dbre_relational::stats::StatsEngine;

/// Options controlling RHS-Discovery (the ablation knobs).
#[derive(Debug, Clone)]
pub struct RhsOptions {
    /// Apply the key-removal prune (`T −= K_i`). Default `true`.
    pub prune_keys: bool,
    /// Apply the not-null prune when `A ∉ N`. Default `true`.
    pub prune_not_null: bool,
}

impl Default for RhsOptions {
    fn default() -> Self {
        RhsOptions {
            prune_keys: true,
            prune_not_null: true,
        }
    }
}

/// Result of RHS-Discovery.
#[derive(Debug, Clone, Default)]
pub struct RhsDiscovery {
    /// The elicited functional dependencies `F`.
    pub fds: Vec<Fd>,
    /// The final hidden-object set `H`.
    pub hidden: Vec<QualAttrs>,
    /// Candidates the expert user gave up (step (v)).
    pub given_up: Vec<QualAttrs>,
    /// Number of `A → b` extension tests performed (ablation metric).
    /// Counts sketch-settled tests too — the metric is "questions
    /// asked of the extension", not "kernel invocations".
    pub fd_checks: usize,
    /// Audit trail.
    pub log: Vec<DecisionRecord>,
    /// Sketch-prefilter observability (all zero when sketches were off
    /// or the backend offers none).
    pub sketch: SketchPruneStats,
}

/// Runs RHS-Discovery over `LHS ∪ H`.
///
/// Equivalent to [`rhs_discovery_with_stats`] with a throwaway
/// [`StatsEngine`].
pub fn rhs_discovery(
    db: &Database,
    input: &LhsDiscovery,
    oracle: &mut dyn Oracle,
    options: &RhsOptions,
) -> RhsDiscovery {
    rhs_discovery_with_stats(db, input, oracle, options, &StatsEngine::new())
}

/// `g3` error of a failing FD, safe for streamed extensions.
///
/// Materialized tables go through the raw-column scan in
/// [`dbre_mine::fd_error_db`]. A streamed extension has empty raw
/// columns, so its error is computed over the backend-served
/// dictionary codes instead — same number, no hydration. A streamed
/// table whose backend cannot serve a dictionary is a wiring bug
/// (adoption installs the pages before discovery runs), so that case
/// fails loudly rather than inventing an error value.
fn fd_error_for(db: &Database, fd: &Fd, engine: &dyn CountBackend) -> f64 {
    if db.table(fd.rel).is_materialized() {
        return dbre_mine::fd_error_db(db, fd);
    }
    let dict_of = |a: AttrId| {
        engine.column_dict(db, fd.rel, a).unwrap_or_else(|| {
            panic!("streamed extension must have backend-served column dictionaries")
        })
    };
    let lhs: Vec<_> = fd.lhs.iter().map(dict_of).collect();
    let rhs: Vec<_> = fd.rhs.iter().map(dict_of).collect();
    let lhs_codes: Vec<&[u32]> = lhs.iter().map(|d| d.codes()).collect();
    let rhs_codes: Vec<&[u32]> = rhs.iter().map(|d| d.codes()).collect();
    dbre_mine::fd_error_coded(&lhs_codes, &rhs_codes, db.table(fd.rel).len())
}

/// Runs RHS-Discovery with `A → b` extension tests memoized in
/// `engine`, honoring the ambient [`SketchMode`] (`DBRE_SKETCH`).
pub fn rhs_discovery_with_stats(
    db: &Database,
    input: &LhsDiscovery,
    oracle: &mut dyn Oracle,
    options: &RhsOptions,
    engine: &dyn CountBackend,
) -> RhsDiscovery {
    rhs_discovery_sketched(db, input, oracle, options, engine, SketchMode::from_env())
}

/// Runs RHS-Discovery with `A → b` extension tests memoized in
/// `engine`.
///
/// All candidates `b` of one step share the LHS `A`, so the engine
/// groups the rows agreeing on `A` once and every test only rescans the
/// grouped rows. The per-candidate tests run through [`par_map`]
/// (concurrent with `--features parallel`); oracle interaction for
/// failing/elicited FDs stays sequential and in candidate order.
///
/// When `mode` is on and a single-attribute LHS has a
/// [`ColumnSketch`][dbre_relational::sketch::ColumnSketch] proving it a
/// key of its extension (NULL-free, every row distinct — exact counts,
/// not estimates), the per-candidate probes are skipped wholesale:
/// every group is a single row, so every `A → b` trivially holds. The
/// outcome (`B`, the log, `fd_checks`) is byte-identical to running
/// the probes.
pub fn rhs_discovery_sketched(
    db: &Database,
    input: &LhsDiscovery,
    oracle: &mut dyn Oracle,
    options: &RhsOptions,
    engine: &dyn CountBackend,
    mode: SketchMode,
) -> RhsDiscovery {
    let mut out = RhsDiscovery {
        hidden: input.hidden.clone(),
        ..Default::default()
    };

    let candidates: Vec<(QualAttrs, bool)> = input
        .lhs
        .iter()
        .map(|q| (q.clone(), false))
        .chain(input.hidden.iter().map(|q| (q.clone(), true)))
        .collect();

    for (cand, from_hidden) in candidates {
        let rel = cand.rel;
        let relation = db.schema.relation(rel);
        let a = &cand.attrs;

        // Step 1 — decrease the number of candidate RHS attributes.
        let mut t = relation.all_attrs().difference(a);
        if options.prune_keys {
            if let Some(key) = db.constraints.primary_key(rel) {
                t = t.difference(&key.attrs.clone());
            }
        }
        let a_not_null = db.constraints.all_not_null(rel, a);
        if options.prune_not_null && !a_not_null {
            t = t.difference(&db.constraints.not_null_set(rel));
        }

        // Step 2 — test each candidate attribute. The extension probes
        // all share the LHS `A`, so they run through the engine (and
        // concurrently under `parallel`); the oracle dialogue below
        // stays sequential in candidate order.
        let cand_attrs: Vec<AttrId> = t.iter().collect();
        let cand_fds: Vec<Fd> = cand_attrs
            .iter()
            .map(|ca| Fd::new(rel, a.clone(), AttrSet::single(*ca)))
            .collect();
        // Sketch prefilter: a single-attribute LHS whose sketch proves
        // it a key settles every probe of this step at once.
        let key_sketch = match (mode.is_on() && a.len() == 1, a.iter().next()) {
            (true, Some(attr)) => engine.column_sketch(db, rel, attr),
            _ => None,
        };
        let holds_vec: Vec<bool> = match &key_sketch {
            Some(s) if s.is_exact_key() => {
                out.sketch.pruned += cand_fds.len() as u64;
                vec![true; cand_fds.len()]
            }
            _ => {
                if key_sketch.is_some() {
                    out.sketch.verified += cand_fds.len() as u64;
                }
                par_map(&cand_fds, |fd| engine.fd_holds(db, fd))
            }
        };
        if let Some(s) = &key_sketch {
            out.sketch.candidates += cand_fds.len() as u64;
            out.sketch.observe_column(s);
        }
        let mut b = AttrSet::empty();
        for ((cand_attr, fd), holds) in cand_attrs.iter().zip(&cand_fds).zip(holds_vec) {
            let cand_attr = *cand_attr;
            out.fd_checks += 1;
            if holds {
                b.insert(cand_attr);
            } else {
                let error = fd_error_for(db, fd, engine);
                let enforced = oracle.enforce_fd(&FdContext { db, fd, error });
                out.log.push(DecisionRecord::new(
                    "RHS-Discovery/enforce",
                    fd.render(&db.schema),
                    format!(
                        "{} (g3 error {:.4})",
                        if enforced { "enforced" } else { "rejected" },
                        error
                    ),
                ));
                if enforced {
                    b.insert(cand_attr);
                }
            }
        }

        // Step 3 — classify.
        if !b.is_empty() {
            let fd = Fd::new(rel, a.clone(), b);
            let validated = oracle.validate_fd(&FdContext {
                db,
                fd: &fd,
                error: 0.0,
            });
            out.log.push(DecisionRecord::new(
                "RHS-Discovery/validate",
                fd.render(&db.schema),
                if validated {
                    "accepted into F"
                } else {
                    "rejected"
                }
                .to_string(),
            ));
            if validated {
                if from_hidden {
                    out.hidden.retain(|q| q != &cand);
                }
                if !out.fds.contains(&fd) {
                    out.fds.push(fd);
                }
            } else if !from_hidden {
                out.given_up.push(cand);
            }
        } else if !from_hidden {
            let conceptualize = oracle.conceptualize_hidden(&HiddenContext {
                db,
                candidate: &cand,
            });
            out.log.push(DecisionRecord::new(
                "RHS-Discovery/hidden",
                cand.render(&db.schema),
                if conceptualize {
                    "conceptualized as hidden object"
                } else {
                    "given up"
                }
                .to_string(),
            ));
            if conceptualize {
                if !out.hidden.contains(&cand) {
                    out.hidden.push(cand);
                }
            } else {
                out.given_up.push(cand);
            }
        }
        // `B = ∅` with `from_hidden = true`: the element simply stays
        // in `H` (it was already conceptualized).
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{DenyOracle, ScriptedOracle};
    use dbre_relational::attr::{AttrId, AttrSet};
    use dbre_relational::schema::{RelId, Relation};
    use dbre_relational::value::{Domain, Value};

    /// Department(dep key, emp, skill, location not-null, proj) with
    /// emp -> skill, proj holding in the extension.
    fn dept_db() -> (Database, RelId) {
        let mut db = Database::new();
        let dept = db
            .add_relation(Relation::of(
                "Department",
                &[
                    ("dep", Domain::Text),
                    ("emp", Domain::Int),
                    ("skill", Domain::Text),
                    ("location", Domain::Text),
                    ("proj", Domain::Text),
                ],
            ))
            .unwrap();
        db.constraints.add_key(dept, AttrSet::from_indices([0u16]));
        db.constraints.add_not_null(dept, AttrId(3));
        db.constraints.normalize();
        let rows: &[(&str, Option<i64>, &str, &str, &str)] = &[
            ("d1", Some(1), "db", "lyon", "p1"),
            ("d2", Some(1), "db", "paris", "p1"),
            ("d3", Some(2), "ai", "lyon", "p2"),
            ("d4", None, "??", "nice", "p9"),
        ];
        for (dep, emp, skill, loc, proj) in rows {
            db.insert(
                dept,
                vec![
                    Value::str(*dep),
                    emp.map_or(Value::Null, Value::Int),
                    Value::str(*skill),
                    Value::str(*loc),
                    Value::str(*proj),
                ],
            )
            .unwrap();
        }
        (db, dept)
    }

    fn input(_db: &Database, rel: RelId, attrs: &[u16], hidden: bool) -> LhsDiscovery {
        let q = QualAttrs::new(rel, AttrSet::from_indices(attrs.iter().copied()));
        if hidden {
            LhsDiscovery {
                lhs: vec![],
                hidden: vec![q],
            }
        } else {
            LhsDiscovery {
                lhs: vec![q],
                hidden: vec![],
            }
        }
    }

    #[test]
    fn elicits_fd_with_pruned_candidates() {
        let (db, dept) = dept_db();
        let out = rhs_discovery(
            &db,
            &input(&db, dept, &[1], false),
            &mut DenyOracle,
            &RhsOptions::default(),
        );
        // T = {skill, location, proj} minus key {dep} minus (A=emp ∉ N)
        // the not-null set {location, dep} → {skill, proj}: 2 checks.
        assert_eq!(out.fd_checks, 2);
        assert_eq!(out.fds.len(), 1);
        assert_eq!(
            out.fds[0].render(&db.schema),
            "Department: emp -> skill, proj"
        );
        assert!(out.hidden.is_empty());
    }

    #[test]
    fn pruning_ablation_increases_checks() {
        let (db, dept) = dept_db();
        let no_prune = RhsOptions {
            prune_keys: false,
            prune_not_null: false,
        };
        let out = rhs_discovery(
            &db,
            &input(&db, dept, &[1], false),
            &mut DenyOracle,
            &no_prune,
        );
        // T = {dep, skill, location, proj}: 4 checks.
        assert_eq!(out.fd_checks, 4);
        // emp -> location fails (emp=1 has lyon & paris) and dep is the
        // key (emp -> dep fails: emp=1 in d1, d2), so same FD found.
        assert_eq!(out.fds.len(), 1);
        assert_eq!(
            out.fds[0].render(&db.schema),
            "Department: emp -> skill, proj"
        );
    }

    #[test]
    fn empty_rhs_asks_hidden_object() {
        let (db, dept) = dept_db();
        // location determines nothing (lyon → d1 & d3 differ everywhere).
        let mut oracle = ScriptedOracle::new().hidden("Department.{location}", true);
        let out = rhs_discovery(
            &db,
            &input(&db, dept, &[3], false),
            &mut oracle,
            &RhsOptions::default(),
        );
        assert!(out.fds.is_empty());
        assert_eq!(out.hidden.len(), 1);
        assert_eq!(out.hidden[0].render(&db.schema), "Department.{location}");
    }

    #[test]
    fn empty_rhs_given_up_when_declined() {
        let (db, dept) = dept_db();
        let out = rhs_discovery(
            &db,
            &input(&db, dept, &[3], false),
            &mut DenyOracle,
            &RhsOptions::default(),
        );
        assert!(out.hidden.is_empty());
        assert_eq!(out.given_up.len(), 1);
    }

    #[test]
    fn hidden_candidate_with_fd_moves_to_f() {
        let (db, dept) = dept_db();
        let out = rhs_discovery(
            &db,
            &input(&db, dept, &[1], true),
            &mut DenyOracle,
            &RhsOptions::default(),
        );
        assert_eq!(out.fds.len(), 1);
        assert!(out.hidden.is_empty(), "conceptualized in F, removed from H");
    }

    #[test]
    fn hidden_candidate_without_fd_stays_hidden() {
        let (db, dept) = dept_db();
        let out = rhs_discovery(
            &db,
            &input(&db, dept, &[3], true),
            &mut DenyOracle,
            &RhsOptions::default(),
        );
        assert!(out.fds.is_empty());
        assert_eq!(out.hidden.len(), 1);
    }

    #[test]
    fn oracle_can_enforce_failing_fd() {
        let (db, dept) = dept_db();
        // emp -> location fails on the extension; enforce it.
        let mut oracle = ScriptedOracle::new().fd("Department: emp -> location", true);
        let no_null_prune = RhsOptions {
            prune_keys: true,
            prune_not_null: false,
        };
        let out = rhs_discovery(
            &db,
            &input(&db, dept, &[1], false),
            &mut oracle,
            &no_null_prune,
        );
        assert_eq!(
            out.fds[0].render(&db.schema),
            "Department: emp -> skill, location, proj"
        );
    }

    #[test]
    fn validation_can_reject_elicited_fd() {
        let (db, dept) = dept_db();
        let mut oracle = ScriptedOracle::new().fd("Department: emp -> skill, proj", false);
        let out = rhs_discovery(
            &db,
            &input(&db, dept, &[1], false),
            &mut oracle,
            &RhsOptions::default(),
        );
        assert!(out.fds.is_empty());
        assert_eq!(out.given_up.len(), 1);
    }

    #[test]
    fn not_null_lhs_keeps_not_null_candidates() {
        let (db, dept) = dept_db();
        // A = {dep} is the key (not-null): N-prune must NOT fire, and
        // with key-prune T = {emp, skill, location, proj}.
        let out = rhs_discovery(
            &db,
            &input(&db, dept, &[0], false),
            &mut DenyOracle,
            &RhsOptions::default(),
        );
        assert_eq!(out.fd_checks, 4);
        // dep is a key, so it determines everything.
        assert_eq!(
            out.fds[0].render(&db.schema),
            "Department: dep -> emp, skill, location, proj"
        );
    }
}
