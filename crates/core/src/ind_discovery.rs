//! The IND-Discovery algorithm (paper §6.1).
//!
//! For each equi-join `q = R_k[A_k] ⋈ R_l[A_l]` of `Q`, the extension
//! is queried for `N_k = ‖r_k[A_k]‖`, `N_l = ‖r_l[A_l]‖` and
//! `N_kl = ‖r_k[A_k] ⋈ r_l[A_l]‖`, then:
//!
//! * `N_kl = 0` — (i) nothing elicited (possible data-integrity issue);
//! * `N_kl = N_k` or `N_kl = N_l` — (ii)/(iii) the included side(s)
//!   yield inclusion dependencies;
//! * otherwise a *non-empty intersection* (NEI): the expert user either
//!   (iv) conceptualizes it as a new relation `R_p(A_p)` with
//!   `R_p ≪ R_k` and `R_p ≪ R_l`, (v)/(vi) forces one direction, or
//!   (vii) ignores it.
//!
//! Conceptualized relations are materialized with the intersection as
//! extension, keyed on all their attributes (they are identifier sets),
//! and recorded in `S`.

use crate::oracle::{
    DecisionRecord, NamingContext, NeiContext, NeiDecision, NewRelationReason, Oracle,
};
use dbre_relational::attr::{AttrId, AttrSet};
use dbre_relational::backend::CountBackend;
use dbre_relational::counting::{EquiJoin, JoinStats};
use dbre_relational::database::Database;
use dbre_relational::deps::{Ind, IndSide};
use dbre_relational::par::par_map;
use dbre_relational::schema::{RelId, Relation};
use dbre_relational::sketch::{ColumnSketch, SketchMode, SketchPruneStats};
use dbre_relational::stats::StatsEngine;
use dbre_relational::table::Table;
use dbre_relational::value::Value;
use dbre_relational::{Attribute, DbreError};
use std::sync::Arc;

/// Result of IND-Discovery.
#[derive(Debug, Clone, Default)]
pub struct IndDiscovery {
    /// The elicited inclusion dependencies `IND`.
    pub inds: Vec<Ind>,
    /// New relations `S` conceptualized from NEIs.
    pub new_relations: Vec<RelId>,
    /// Per-join cardinalities, for reporting.
    pub join_stats: Vec<(EquiJoin, JoinStats)>,
    /// Audit trail of expert decisions.
    pub log: Vec<DecisionRecord>,
    /// Joins where the intersection was empty (case (i)) — flagged as
    /// potential data-integrity problems.
    pub empty_intersections: Vec<EquiJoin>,
    /// Sketch-prefilter observability (all zero when sketches were off
    /// or the backend offers none).
    pub sketch: SketchPruneStats,
}

impl IndDiscovery {
    fn add_ind(&mut self, ind: Ind) {
        if !self.inds.contains(&ind) {
            self.inds.push(ind);
        }
    }
}

/// Runs IND-Discovery over the set `Q`. Conceptualized NEI relations
/// are added to `db` (schema, extension, key constraint).
///
/// Equivalent to [`ind_discovery_with_stats`] with a throwaway
/// [`StatsEngine`].
pub fn ind_discovery(
    db: &mut Database,
    q: &[EquiJoin],
    oracle: &mut dyn Oracle,
) -> Result<IndDiscovery, DbreError> {
    ind_discovery_with_stats(db, q, oracle, &StatsEngine::new())
}

/// Runs IND-Discovery with counting memoized in `engine`, honoring the
/// ambient [`SketchMode`] (`DBRE_SKETCH`).
pub fn ind_discovery_with_stats(
    db: &mut Database,
    q: &[EquiJoin],
    oracle: &mut dyn Oracle,
    engine: &dyn CountBackend,
) -> Result<IndDiscovery, DbreError> {
    ind_discovery_sketched(db, q, oracle, engine, SketchMode::from_env())
}

/// Runs IND-Discovery with counting memoized in `engine`.
///
/// When `mode` is on and the backend serves [`ColumnSketch`]es, the
/// per-join cardinalities go through a *sketch prefilter* first: a
/// single-attribute join whose two sketches prove a disjoint value set
/// gets its [`JoinStats`] synthesized — `n_left`/`n_right` are the
/// sketches' exact distinct counts (the same NULL-free projections the
/// kernel counts) and a proven-empty intersection is `n_join = 0` —
/// so the exact join kernel never runs for it. The proof is exact
/// (sorted-hash membership behind a Bloom fast path), so the output is
/// byte-identical to the exact-only run; sketches never *decide* a
/// case they cannot prove.
///
/// The remaining cardinalities are collected up front in one
/// [`par_map`] pass (concurrent with `--features parallel`), which is
/// sound because the only mutation the loop performs —
/// conceptualization — *adds* relations and never touches existing
/// tables.
///
/// The oracle dialogue stays strictly sequential and per-question
/// deterministic, but when `mode` is on the NEI questions are *asked*
/// in descending estimated-overlap order (HLL inclusion–exclusion,
/// ties broken by `Q` position) so a live expert sees the most
/// promising presumptions first. Decisions are *applied* — and the
/// log written — in `Q` order regardless, so for an oracle that
/// answers each question on its own merits (all the bundled policies)
/// results and log are identical whichever order the questions
/// arrive in. A sequence-dependent oracle (e.g. the chaos fuzzer's
/// RNG stream) may answer differently across modes; that is a
/// property of the oracle, not of the counting.
///
/// Every join is validated against the schema *before* any counting
/// touches a table; a malformed join (out-of-range ids, mismatched
/// side arity, empty attribute list) yields a typed
/// [`DbreError::Relational`] instead of an index panic. The pipeline
/// pre-filters `Q` with per-join warnings, so a direct caller is the
/// only one who ever sees this error.
pub fn ind_discovery_sketched(
    db: &mut Database,
    q: &[EquiJoin],
    oracle: &mut dyn Oracle,
    engine: &dyn CountBackend,
    mode: SketchMode,
) -> Result<IndDiscovery, DbreError> {
    for join in q {
        join.validate(db)?;
    }
    let mut out = IndDiscovery::default();

    // Sketch prefilter. Only unary joins have per-column sketches; a
    // missing sketch (backend without the seam, ghosted dict) simply
    // falls through to the exact kernel.
    let pairs: Vec<Option<(Arc<ColumnSketch>, Arc<ColumnSketch>)>> = q
        .iter()
        .map(|join| {
            if !mode.is_on() || join.left.attrs.len() != 1 || join.right.attrs.len() != 1 {
                return None;
            }
            let l = engine.column_sketch(db, join.left.rel, join.left.attrs[0])?;
            let r = engine.column_sketch(db, join.right.rel, join.right.attrs[0])?;
            Some((l, r))
        })
        .collect();
    let prejudged: Vec<Option<JoinStats>> = pairs
        .iter()
        .map(|pair| {
            let (l, r) = pair.as_ref()?;
            out.sketch.candidates += 1;
            out.sketch.observe_column(l);
            out.sketch.observe_column(r);
            if l.proves_disjoint(r) {
                out.sketch.pruned += 1;
                Some(JoinStats {
                    n_left: l.distinct_exact(),
                    n_right: r.distinct_exact(),
                    n_join: 0,
                })
            } else {
                out.sketch.verified += 1;
                None
            }
        })
        .collect();

    // Exact cardinalities for everything the prefilter couldn't prove.
    let need_exact: Vec<&EquiJoin> = q
        .iter()
        .zip(&prejudged)
        .filter_map(|(join, pre)| pre.is_none().then_some(join))
        .collect();
    par_map(&need_exact, |join| engine.join_stats(db, join));
    let all_stats: Vec<JoinStats> = q
        .iter()
        .zip(prejudged)
        .map(|(join, pre)| pre.unwrap_or_else(|| engine.join_stats(db, join)))
        .collect();

    // Rank the NEI questions (sketch mode only): most-promising first,
    // by HLL overlap estimate where sketches exist, exact overlap
    // ratio otherwise, `Q` position as the deterministic tie-break.
    let is_nei =
        |s: &JoinStats| !s.empty_intersection() && s.n_join != s.n_left && s.n_join != s.n_right;
    let mut nei_order: Vec<usize> = (0..q.len()).filter(|&i| is_nei(&all_stats[i])).collect();
    if mode.is_on() {
        let mut ranked: Vec<(f64, usize)> = nei_order
            .iter()
            .map(|&i| {
                let score = match &pairs[i] {
                    Some((l, r)) => l.estimated_overlap(r),
                    None => all_stats[i].overlap_ratio(),
                };
                (score, i)
            })
            .collect();
        ranked.sort_by(|a, b| {
            b.0.partial_cmp(&a.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        nei_order = ranked.into_iter().map(|(_, i)| i).collect();
    }

    // Consult the expert in ranked order; apply (and log) in Q order.
    let mut decisions: Vec<Option<NeiDecision>> = vec![None; q.len()];
    for &i in &nei_order {
        let stats = all_stats[i];
        decisions[i] = Some(oracle.resolve_nei(&NeiContext {
            db,
            join: &q[i],
            stats,
        }));
    }

    for (i, join) in q.iter().enumerate() {
        let stats = all_stats[i];
        out.join_stats.push((join.clone(), stats));
        let rendered = join.render(&db.schema);

        if stats.empty_intersection() {
            // (i) — IND left unchanged.
            out.empty_intersections.push(join.clone());
            out.log.push(DecisionRecord::new(
                "IND-Discovery",
                rendered,
                "empty intersection: nothing elicited (data integrity?)",
            ));
            continue;
        }

        if stats.n_join == stats.n_left || stats.n_join == stats.n_right {
            // (ii)/(iii) — exactly the paper's two independent tests.
            if stats.n_left <= stats.n_right {
                out.add_ind(Ind::new(join.left.clone(), join.right.clone())?);
                out.log.push(DecisionRecord::new(
                    "IND-Discovery",
                    rendered.clone(),
                    "inclusion elicited: left << right",
                ));
            }
            if stats.n_right <= stats.n_left {
                out.add_ind(Ind::new(join.right.clone(), join.left.clone())?);
                out.log.push(DecisionRecord::new(
                    "IND-Discovery",
                    rendered,
                    "inclusion elicited: right << left",
                ));
            }
            continue;
        }

        // NEI — the expert user already decided, apply in Q order (a
        // missing slot cannot happen — the ranked pass consulted every
        // NEI index — but fall back to asking now rather than panic).
        let decision = match decisions[i].take() {
            Some(d) => d,
            None => oracle.resolve_nei(&NeiContext { db, join, stats }),
        };
        out.log.push(DecisionRecord::new(
            "IND-Discovery/NEI",
            rendered.clone(),
            format!(
                "{decision:?} (N_k={}, N_l={}, N_kl={})",
                stats.n_left, stats.n_right, stats.n_join
            ),
        ));
        match decision {
            NeiDecision::Conceptualize => {
                let rel_p = conceptualize_intersection(db, join, oracle, engine)?;
                out.new_relations.push(rel_p);
                let arity = join.left.attrs.len() as u16;
                let p_attrs: Vec<AttrId> = (0..arity).map(AttrId).collect();
                out.add_ind(Ind::new(
                    IndSide::new(rel_p, p_attrs.clone()),
                    join.left.clone(),
                )?);
                out.add_ind(Ind::new(IndSide::new(rel_p, p_attrs), join.right.clone())?);
            }
            NeiDecision::ForceLeftInRight => {
                out.add_ind(Ind::new(join.left.clone(), join.right.clone())?);
            }
            NeiDecision::ForceRightInLeft => {
                out.add_ind(Ind::new(join.right.clone(), join.left.clone())?);
            }
            NeiDecision::Ignore => {}
        }
    }
    Ok(out)
}

/// Materializes `R_p(A_p)` for a conceptualized NEI: attributes named
/// after the left side, extension = the value intersection, key = the
/// whole attribute set.
///
/// Fallible: a join side that lists the same attribute twice (legal in
/// `Q`, e.g. `a.x = b.u AND a.x = b.v`) would give the new relation
/// duplicate attribute names — surfaced as a typed error.
fn conceptualize_intersection(
    db: &mut Database,
    join: &EquiJoin,
    oracle: &mut dyn Oracle,
    engine: &dyn CountBackend,
) -> Result<RelId, DbreError> {
    let left_rel = db.schema.relation(join.left.rel);
    let right_rel = db.schema.relation(join.right.rel);
    let attr_names: Vec<String> = join
        .left
        .attrs
        .iter()
        .map(|a| left_rel.attr_name(*a).to_string())
        .collect();
    let domains: Vec<_> = join
        .left
        .attrs
        .iter()
        .map(|a| left_rel.attribute(*a).domain)
        .collect();
    let default_name = unique_name(
        db,
        &format!(
            "{}_{}_{}",
            left_rel.name,
            right_rel.name,
            attr_names.join("_")
        ),
    );
    let source = format!("nei:{}", join.render(&db.schema));
    let name = oracle.name_new_relation(&NamingContext {
        db,
        reason: NewRelationReason::Intersection,
        default_name,
        source,
    });
    let name = unique_name(db, &name);

    // Extension: the intersection of both distinct projections (served
    // from the engine cache), in deterministic (sorted) order.
    let left_vals = engine.projection(db, join.left.rel, &join.left.attrs);
    let right_vals = engine.projection(db, join.right.rel, &join.right.attrs);
    let mut rows: Vec<Vec<Value>> = left_vals
        .iter()
        .filter(|v| right_vals.contains(*v))
        .cloned()
        .collect();
    rows.sort();
    let mut table = Table::new(attr_names.len());
    for row in rows {
        table.push_row(row)?;
    }

    let attrs: Vec<Attribute> = attr_names
        .iter()
        .zip(domains)
        .map(|(n, d)| Attribute::new(n.clone(), d))
        .collect();
    let rel_p = db.add_relation_with_table(Relation::new(name, attrs)?, table)?;
    // Identifier sets are keys of their conceptualized relation.
    db.constraints
        .add_key(rel_p, AttrSet::from_indices(0..attr_names.len() as u16));
    db.constraints.normalize();
    Ok(rel_p)
}

/// Returns `base` or `base_2`, `base_3`, … whichever is free.
pub(crate) fn unique_name(db: &Database, base: &str) -> String {
    if db.schema.rel_id(base).is_none() {
        return base.to_string();
    }
    let mut i = 2;
    loop {
        let cand = format!("{base}_{i}");
        if db.schema.rel_id(&cand).is_none() {
            return cand;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{AutoOracle, DenyOracle, ScriptedOracle};
    use dbre_relational::value::Domain;

    /// Two relations: L.x ⊆ {1..4}, R.y = {3..8}; intersection {3,4}.
    fn nei_db() -> (Database, EquiJoin) {
        let mut db = Database::new();
        let l = db
            .add_relation(Relation::of("L", &[("x", Domain::Int)]))
            .unwrap();
        let r = db
            .add_relation(Relation::of("R", &[("y", Domain::Int)]))
            .unwrap();
        for v in 1..=4 {
            db.insert(l, vec![Value::Int(v)]).unwrap();
        }
        for v in 3..=8 {
            db.insert(r, vec![Value::Int(v)]).unwrap();
        }
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        (db, join)
    }

    #[test]
    fn inclusion_case_elicits_ind() {
        let mut db = Database::new();
        let l = db
            .add_relation(Relation::of("L", &[("x", Domain::Int)]))
            .unwrap();
        let r = db
            .add_relation(Relation::of("R", &[("y", Domain::Int)]))
            .unwrap();
        for v in 1..=3 {
            db.insert(l, vec![Value::Int(v)]).unwrap();
        }
        for v in 1..=5 {
            db.insert(r, vec![Value::Int(v)]).unwrap();
        }
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        let out = ind_discovery(&mut db, &[join], &mut DenyOracle).unwrap();
        assert_eq!(out.inds.len(), 1);
        assert_eq!(out.inds[0].render(&db.schema), "L[x] << R[y]");
        assert!(out.new_relations.is_empty());
    }

    #[test]
    fn equal_value_sets_elicit_both_directions() {
        let mut db = Database::new();
        let l = db
            .add_relation(Relation::of("L", &[("x", Domain::Int)]))
            .unwrap();
        let r = db
            .add_relation(Relation::of("R", &[("y", Domain::Int)]))
            .unwrap();
        for v in [1, 2] {
            db.insert(l, vec![Value::Int(v)]).unwrap();
            db.insert(r, vec![Value::Int(v)]).unwrap();
        }
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        let out = ind_discovery(&mut db, &[join], &mut DenyOracle).unwrap();
        assert_eq!(out.inds.len(), 2);
    }

    #[test]
    fn empty_intersection_flagged() {
        let mut db = Database::new();
        let l = db
            .add_relation(Relation::of("L", &[("x", Domain::Int)]))
            .unwrap();
        let r = db
            .add_relation(Relation::of("R", &[("y", Domain::Int)]))
            .unwrap();
        db.insert(l, vec![Value::Int(1)]).unwrap();
        db.insert(r, vec![Value::Int(2)]).unwrap();
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        let out = ind_discovery(&mut db, &[join], &mut DenyOracle).unwrap();
        assert!(out.inds.is_empty());
        assert_eq!(out.empty_intersections.len(), 1);
    }

    #[test]
    fn nei_ignored_by_deny_oracle() {
        let (mut db, join) = nei_db();
        let out = ind_discovery(&mut db, &[join], &mut DenyOracle).unwrap();
        assert!(out.inds.is_empty());
        assert!(out.new_relations.is_empty());
        assert_eq!(out.log.len(), 1);
    }

    #[test]
    fn nei_conceptualization_creates_relation_with_intersection() {
        let (mut db, join) = nei_db();
        let mut oracle = ScriptedOracle::new()
            .nei("L[x] |><| R[y]", NeiDecision::Conceptualize)
            .name("nei:L[x] |><| R[y]", "Shared");
        let out = ind_discovery(&mut db, &[join], &mut oracle).unwrap();
        assert_eq!(out.new_relations.len(), 1);
        let shared = db.rel("Shared").unwrap();
        let t = db.table(shared);
        assert_eq!(t.len(), 2); // {3, 4}
        assert_eq!(t.cell(0, AttrId(0)), &Value::Int(3));
        // Both INDs added and hold.
        assert_eq!(out.inds.len(), 2);
        for ind in &out.inds {
            assert!(db.ind_holds(ind), "conceptualized IND must hold: {ind}");
        }
        // Keyed on its whole attribute set.
        assert!(db
            .constraints
            .is_key(shared, &AttrSet::from_indices([0u16])));
    }

    #[test]
    fn nei_forced_directions() {
        let (mut db, join) = nei_db();
        let mut oracle = ScriptedOracle::new().nei("L[x] |><| R[y]", NeiDecision::ForceLeftInRight);
        let out = ind_discovery(&mut db, std::slice::from_ref(&join), &mut oracle).unwrap();
        assert_eq!(out.inds[0].render(&db.schema), "L[x] << R[y]");
        // Forced INDs need not hold in the (dirty) extension.
        assert!(!db.ind_holds(&out.inds[0]));

        let (mut db, join) = nei_db();
        let mut oracle = ScriptedOracle::new().nei("L[x] |><| R[y]", NeiDecision::ForceRightInLeft);
        let out = ind_discovery(&mut db, &[join], &mut oracle).unwrap();
        assert_eq!(out.inds[0].render(&db.schema), "R[y] << L[x]");
    }

    #[test]
    fn auto_oracle_conceptualizes_mid_overlap() {
        // |L∩R| = 2 of min 4 → ratio 0.5 → conceptualize at default τ.
        let (mut db, join) = nei_db();
        let out = ind_discovery(&mut db, &[join], &mut AutoOracle::default()).unwrap();
        assert_eq!(out.new_relations.len(), 1);
    }

    #[test]
    fn elicited_inds_hold_in_extension() {
        let (mut db, join) = nei_db();
        let mut oracle = ScriptedOracle::new().nei("L[x] |><| R[y]", NeiDecision::Conceptualize);
        let out = ind_discovery(&mut db, &[join], &mut oracle).unwrap();
        for ind in &out.inds {
            assert!(db.ind_holds(ind));
        }
    }

    #[test]
    fn name_collisions_resolved() {
        let (mut db, join) = nei_db();
        // Script the new relation to clash with an existing name.
        let mut oracle = ScriptedOracle::new()
            .nei("L[x] |><| R[y]", NeiDecision::Conceptualize)
            .name("nei:L[x] |><| R[y]", "L");
        let out = ind_discovery(&mut db, &[join], &mut oracle).unwrap();
        let created = out.new_relations[0];
        assert_eq!(db.schema.relation(created).name, "L_2");
    }

    #[test]
    fn duplicate_joins_do_not_duplicate_inds() {
        let mut db = Database::new();
        let l = db
            .add_relation(Relation::of("L", &[("x", Domain::Int)]))
            .unwrap();
        let r = db
            .add_relation(Relation::of("R", &[("y", Domain::Int)]))
            .unwrap();
        db.insert(l, vec![Value::Int(1)]).unwrap();
        db.insert(r, vec![Value::Int(1)]).unwrap();
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        let out = ind_discovery(&mut db, &[join.clone(), join], &mut DenyOracle).unwrap();
        assert_eq!(out.inds.len(), 2); // both directions, once each
    }
}
