//! The expert user as an interface.
//!
//! The paper's method is interactive: "an expert user has to validate
//! the presumptions on the elicited dependencies". Every point where
//! the algorithms defer to that user is a method of the [`Oracle`]
//! trait:
//!
//! * [`Oracle::resolve_nei`] — IND-Discovery steps (iv)–(vii): a
//!   non-empty intersection (NEI) was found; conceptualize it as a new
//!   relation, force one inclusion direction, or ignore it;
//! * [`Oracle::enforce_fd`] — RHS-Discovery step (ii): a candidate FD
//!   fails in the extension; enforce it anyway (dirty data)?
//! * [`Oracle::validate_fd`] — RHS-Discovery step (iii): accept an
//!   elicited FD into `F`?
//! * [`Oracle::conceptualize_hidden`] — RHS-Discovery step (iv): an
//!   empty right-hand side; is `R_i.A` a hidden object worth a
//!   relation?
//! * [`Oracle::name_new_relation`] — Restruct/IND-Discovery: pick a
//!   name "significant with respect to the application domain" for a
//!   new relation.
//!
//! Implementations: [`DenyOracle`] (never intervenes — the fully
//! automatic lower bound), [`AutoOracle`] (threshold policies on
//! overlap ratios and `g3` errors), [`ScriptedOracle`] (replays
//! recorded decisions — used to reproduce the paper's worked example
//! verbatim).

use dbre_relational::counting::{EquiJoin, JoinStats};
use dbre_relational::database::Database;
use dbre_relational::deps::Fd;
use dbre_relational::schema::QualAttrs;
use std::collections::HashMap;

/// Why a new relation is being created (affects default naming).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NewRelationReason {
    /// IND-Discovery conceptualized a non-empty intersection.
    Intersection,
    /// Restruct materialized a hidden object from `H`.
    HiddenObject,
    /// Restruct split a relation along an FD of `F`.
    FdSplit,
}

/// The expert user's answer to a non-empty intersection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NeiDecision {
    /// (iv) — conceptualize the intersection as a new relation
    /// `R_p(A_p)` with `R_p ≪ R_k` and `R_p ≪ R_l`.
    Conceptualize,
    /// (vi) — force `R_k[A_k] ≪ R_l[A_l]` despite the extension.
    ForceLeftInRight,
    /// (v) — force `R_l[A_l] ≪ R_k[A_k]` despite the extension.
    ForceRightInLeft,
    /// (vii) — give the intersection up (the user is warned about the
    /// risk in the paper; the decision log records it).
    Ignore,
}

/// Context for an NEI decision.
#[derive(Debug)]
pub struct NeiContext<'a> {
    /// The database (schema + extension) under analysis.
    pub db: &'a Database,
    /// The equi-join that exposed the intersection.
    pub join: &'a EquiJoin,
    /// The three cardinalities `N_k`, `N_l`, `N_kl`.
    pub stats: JoinStats,
}

/// Context for an FD enforcement / validation decision.
#[derive(Debug)]
pub struct FdContext<'a> {
    /// The database under analysis.
    pub db: &'a Database,
    /// The candidate dependency.
    pub fd: &'a Fd,
    /// `g3` error of the candidate in the extension (0 when it holds).
    pub error: f64,
}

/// Context for a hidden-object decision.
#[derive(Debug)]
pub struct HiddenContext<'a> {
    /// The database under analysis.
    pub db: &'a Database,
    /// The candidate identifier `R_i.A`.
    pub candidate: &'a QualAttrs,
}

/// Context when naming a new relation.
#[derive(Debug)]
pub struct NamingContext<'a> {
    /// The database under analysis.
    pub db: &'a Database,
    /// Why the relation is created.
    pub reason: NewRelationReason,
    /// A default name derived from the source attributes; oracles may
    /// return it unchanged.
    pub default_name: String,
    /// Human-readable description of the source (for scripted lookup).
    pub source: String,
}

/// The expert user of the paper, §4: "the user involvement [is made]
/// as clear as possible".
///
/// `Send` is a supertrait so a whole session (which borrows its oracle
/// mutably) can move to a worker thread of the concurrent service.
/// Oracles are plain decision policies — thresholds, scripts, RNG
/// state — so the bound costs implementations nothing.
pub trait Oracle: Send {
    /// IND-Discovery steps (iv)–(vii).
    fn resolve_nei(&mut self, ctx: &NeiContext<'_>) -> NeiDecision;

    /// RHS-Discovery step (ii): enforce a failing FD?
    fn enforce_fd(&mut self, ctx: &FdContext<'_>) -> bool;

    /// RHS-Discovery step (iii): accept an elicited FD into `F`?
    /// Default: yes.
    fn validate_fd(&mut self, _ctx: &FdContext<'_>) -> bool {
        true
    }

    /// RHS-Discovery step (iv): conceptualize a hidden object?
    fn conceptualize_hidden(&mut self, ctx: &HiddenContext<'_>) -> bool;

    /// Name a new relation. Default: the derived default name.
    fn name_new_relation(&mut self, ctx: &NamingContext<'_>) -> String {
        ctx.default_name.clone()
    }
}

/// Never intervenes: NEIs ignored, failing FDs never enforced, hidden
/// objects never conceptualized. The fully automatic, conservative
/// lower bound of the method.
#[derive(Debug, Default, Clone)]
pub struct DenyOracle;

impl Oracle for DenyOracle {
    fn resolve_nei(&mut self, _ctx: &NeiContext<'_>) -> NeiDecision {
        NeiDecision::Ignore
    }
    fn enforce_fd(&mut self, _ctx: &FdContext<'_>) -> bool {
        false
    }
    fn conceptualize_hidden(&mut self, _ctx: &HiddenContext<'_>) -> bool {
        false
    }
}

/// Threshold-policy oracle: decides "regarding the amount of data
/// implied" exactly as the paper suggests the expert would.
#[derive(Debug, Clone)]
pub struct AutoOracle {
    /// Force an inclusion when the smaller side is covered at least
    /// this much (`N_kl / min(N_k, N_l)`); dominant direction wins.
    /// Default 0.95.
    pub force_threshold: f64,
    /// Conceptualize the intersection when coverage is at least this
    /// (and below `force_threshold`). Default 0.5.
    pub conceptualize_threshold: f64,
    /// Enforce a failing FD when its `g3` error is at most this.
    /// Default 0.01.
    pub enforce_epsilon: f64,
    /// Conceptualize hidden objects (empty-RHS identifiers)? Default
    /// `true` — identifiers referenced by navigation are objects.
    pub conceptualize_hidden: bool,
}

impl Default for AutoOracle {
    fn default() -> Self {
        AutoOracle {
            force_threshold: 0.95,
            conceptualize_threshold: 0.5,
            enforce_epsilon: 0.01,
            conceptualize_hidden: true,
        }
    }
}

impl Oracle for AutoOracle {
    fn resolve_nei(&mut self, ctx: &NeiContext<'_>) -> NeiDecision {
        let s = ctx.stats;
        let ratio = s.overlap_ratio();
        if ratio >= self.force_threshold {
            // Force the direction that is nearly satisfied: the side
            // with fewer distinct values is the nearly-included one.
            if s.n_left <= s.n_right {
                NeiDecision::ForceLeftInRight
            } else {
                NeiDecision::ForceRightInLeft
            }
        } else if ratio >= self.conceptualize_threshold {
            NeiDecision::Conceptualize
        } else {
            NeiDecision::Ignore
        }
    }

    fn enforce_fd(&mut self, ctx: &FdContext<'_>) -> bool {
        ctx.error <= self.enforce_epsilon
    }

    fn conceptualize_hidden(&mut self, _ctx: &HiddenContext<'_>) -> bool {
        self.conceptualize_hidden
    }
}

/// A decision the [`ScriptedOracle`] can replay.
#[derive(Debug, Clone, PartialEq)]
pub enum ScriptedDecision {
    /// Answer for [`Oracle::resolve_nei`], keyed by rendered join.
    Nei(NeiDecision),
    /// Answer for [`Oracle::enforce_fd`] / [`Oracle::validate_fd`],
    /// keyed by rendered FD.
    Fd(bool),
    /// Answer for [`Oracle::conceptualize_hidden`], keyed by rendered
    /// `R.{A}`.
    Hidden(bool),
    /// Answer for [`Oracle::name_new_relation`], keyed by source
    /// description.
    Name(String),
}

/// Replays pre-recorded decisions keyed by the *rendered* form of each
/// question (`"HEmployee[no] |><| Person[id]"`, `"Department: emp ->
/// skill"`, `"HEmployee.{no}"`, …). Unanswered questions fall back to
/// [`DenyOracle`] behavior and are recorded in
/// [`ScriptedOracle::unanswered`].
#[derive(Debug, Default)]
pub struct ScriptedOracle {
    decisions: HashMap<String, ScriptedDecision>,
    /// Questions asked that had no scripted answer (rendered keys).
    pub unanswered: Vec<String>,
}

impl ScriptedOracle {
    /// Empty script (behaves like [`DenyOracle`] and records misses).
    pub fn new() -> Self {
        ScriptedOracle::default()
    }

    /// Adds an NEI decision keyed by the rendered equi-join.
    pub fn nei(mut self, join: &str, d: NeiDecision) -> Self {
        self.decisions
            .insert(join.to_string(), ScriptedDecision::Nei(d));
        self
    }

    /// Adds an FD enforce/validate decision keyed by the rendered FD
    /// (`"Rel: a -> b"`).
    pub fn fd(mut self, fd: &str, accept: bool) -> Self {
        self.decisions
            .insert(fd.to_string(), ScriptedDecision::Fd(accept));
        self
    }

    /// Adds a hidden-object decision keyed by `"Rel.{attrs}"`.
    pub fn hidden(mut self, qual: &str, conceptualize: bool) -> Self {
        self.decisions
            .insert(qual.to_string(), ScriptedDecision::Hidden(conceptualize));
        self
    }

    /// Adds a relation name keyed by the naming source description.
    pub fn name(mut self, source: &str, name: &str) -> Self {
        self.decisions
            .insert(source.to_string(), ScriptedDecision::Name(name.to_string()));
        self
    }

    fn miss(&mut self, key: &str) {
        self.unanswered.push(key.to_string());
    }
}

impl Oracle for ScriptedOracle {
    fn resolve_nei(&mut self, ctx: &NeiContext<'_>) -> NeiDecision {
        let key = ctx.join.render(&ctx.db.schema);
        match self.decisions.get(&key) {
            Some(ScriptedDecision::Nei(d)) => d.clone(),
            _ => {
                self.miss(&key);
                NeiDecision::Ignore
            }
        }
    }

    fn enforce_fd(&mut self, ctx: &FdContext<'_>) -> bool {
        let key = ctx.fd.render(&ctx.db.schema);
        match self.decisions.get(&key) {
            Some(ScriptedDecision::Fd(b)) => *b,
            // Unscripted enforcement defaults to "no" without counting
            // as a miss: declining to override the extension is the
            // paper's normal course; enforcement is the exception.
            _ => false,
        }
    }

    fn validate_fd(&mut self, ctx: &FdContext<'_>) -> bool {
        let key = ctx.fd.render(&ctx.db.schema);
        match self.decisions.get(&key) {
            Some(ScriptedDecision::Fd(b)) => *b,
            // Unscripted validation defaults to accept (the paper's
            // user validates what the data already supports).
            _ => true,
        }
    }

    fn conceptualize_hidden(&mut self, ctx: &HiddenContext<'_>) -> bool {
        let key = ctx.candidate.render(&ctx.db.schema);
        match self.decisions.get(&key) {
            Some(ScriptedDecision::Hidden(b)) => *b,
            _ => {
                self.miss(&key);
                false
            }
        }
    }

    fn name_new_relation(&mut self, ctx: &NamingContext<'_>) -> String {
        match self.decisions.get(&ctx.source) {
            Some(ScriptedDecision::Name(n)) => n.clone(),
            _ => ctx.default_name.clone(),
        }
    }
}

/// One logged interaction, for the pipeline's audit trail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecisionRecord {
    /// Which algorithm step asked ("IND-Discovery/NEI", …).
    pub step: String,
    /// What was asked (rendered).
    pub question: String,
    /// What was decided (rendered).
    pub decision: String,
}

impl DecisionRecord {
    /// Creates a record.
    pub fn new(
        step: impl Into<String>,
        question: impl Into<String>,
        decision: impl Into<String>,
    ) -> Self {
        DecisionRecord {
            step: step.into(),
            question: question.into(),
            decision: decision.into(),
        }
    }
}

/// Panic payload thrown by an oracle that aborts the interactive
/// session mid-dialogue (the expert walks away, §6 — the questions are
/// asked one at a time, so an abort can land anywhere). The pipeline's
/// stage runner catches the unwind at the stage boundary and downcasts
/// this payload into `DbreError::OracleAbort`; any other payload
/// becomes `DbreError::Panic`.
#[derive(Debug, Clone)]
pub struct OracleAbort(pub String);

impl OracleAbort {
    /// Unwinds the current stage with this abort as payload.
    pub fn raise(message: impl Into<String>) -> ! {
        std::panic::panic_any(OracleAbort(message.into()))
    }
}

/// Fault-injection oracle: with probability [`abort_probability`] any
/// single question aborts the whole session (unwinding with an
/// [`OracleAbort`] payload); otherwise it answers uniformly at random
/// — including *inconsistently* across repeated identical questions —
/// and returns hostile relation names (empty, whitespace, colliding).
/// Deterministic for a given seed (a SplitMix64 stream), so any
/// failure it provokes replays exactly.
///
/// [`abort_probability`]: ChaosOracle::abort_probability
#[derive(Debug, Clone)]
pub struct ChaosOracle {
    state: u64,
    /// Probability in `[0, 1]` that any single question aborts.
    pub abort_probability: f64,
    /// Questions answered so far (for abort diagnostics).
    pub questions: u64,
}

impl ChaosOracle {
    /// A chaos oracle that never aborts but answers at random.
    pub fn new(seed: u64) -> Self {
        Self::with_abort(seed, 0.0)
    }

    /// A chaos oracle that aborts each question with `abort_probability`.
    pub fn with_abort(seed: u64, abort_probability: f64) -> Self {
        ChaosOracle {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
            abort_probability,
            questions: 0,
        }
    }

    /// SplitMix64 step.
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn maybe_abort(&mut self, what: &str) {
        self.questions += 1;
        if self.abort_probability > 0.0 && self.unit() < self.abort_probability {
            OracleAbort::raise(format!(
                "chaos oracle gave up at question {} ({what})",
                self.questions
            ));
        }
    }
}

impl Oracle for ChaosOracle {
    fn resolve_nei(&mut self, _ctx: &NeiContext<'_>) -> NeiDecision {
        self.maybe_abort("NEI resolution");
        match self.next() % 4 {
            0 => NeiDecision::Conceptualize,
            1 => NeiDecision::ForceLeftInRight,
            2 => NeiDecision::ForceRightInLeft,
            _ => NeiDecision::Ignore,
        }
    }

    fn enforce_fd(&mut self, _ctx: &FdContext<'_>) -> bool {
        self.maybe_abort("FD enforcement");
        self.next().is_multiple_of(2)
    }

    fn validate_fd(&mut self, _ctx: &FdContext<'_>) -> bool {
        self.maybe_abort("FD validation");
        self.next().is_multiple_of(2)
    }

    fn conceptualize_hidden(&mut self, _ctx: &HiddenContext<'_>) -> bool {
        self.maybe_abort("hidden-object decision");
        self.next().is_multiple_of(2)
    }

    fn name_new_relation(&mut self, ctx: &NamingContext<'_>) -> String {
        self.maybe_abort("naming decision");
        match self.next() % 4 {
            0 => ctx.default_name.clone(),
            1 => String::new(),
            2 => "  chaos name  ".to_string(),
            _ => "X".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbre_relational::attr::{AttrId, AttrSet};
    use dbre_relational::deps::IndSide;
    use dbre_relational::schema::Relation;
    use dbre_relational::value::Domain;

    fn db() -> Database {
        let mut db = Database::new();
        db.add_relation(Relation::of("A", &[("x", Domain::Int)]))
            .unwrap();
        db.add_relation(Relation::of("B", &[("y", Domain::Int)]))
            .unwrap();
        db
    }

    fn join(db: &Database) -> EquiJoin {
        EquiJoin::try_new(
            IndSide::single(db.rel("A").unwrap(), AttrId(0)),
            IndSide::single(db.rel("B").unwrap(), AttrId(0)),
        )
        .unwrap()
    }

    #[test]
    fn deny_oracle_is_conservative() {
        let db = db();
        let j = join(&db);
        let mut o = DenyOracle;
        let ctx = NeiContext {
            db: &db,
            join: &j,
            stats: JoinStats {
                n_left: 10,
                n_right: 10,
                n_join: 5,
            },
        };
        assert_eq!(o.resolve_nei(&ctx), NeiDecision::Ignore);
        let fd = Fd::new(
            db.rel("A").unwrap(),
            AttrSet::from_indices([0u16]),
            AttrSet::from_indices([0u16]),
        );
        let fctx = FdContext {
            db: &db,
            fd: &fd,
            error: 0.001,
        };
        assert!(!o.enforce_fd(&fctx));
        assert!(o.validate_fd(&fctx), "default validation accepts");
    }

    #[test]
    fn auto_oracle_thresholds() {
        let db = db();
        let j = join(&db);
        let mut o = AutoOracle::default();
        let mk = |n_left, n_right, n_join| NeiContext {
            db: &db,
            join: &j,
            stats: JoinStats {
                n_left,
                n_right,
                n_join,
            },
        };
        // 96% coverage of smaller (left) side → force left ⊆ right.
        assert_eq!(
            o.resolve_nei(&mk(100, 200, 96)),
            NeiDecision::ForceLeftInRight
        );
        // Same but right smaller.
        assert_eq!(
            o.resolve_nei(&mk(200, 100, 96)),
            NeiDecision::ForceRightInLeft
        );
        // 60% coverage → conceptualize.
        assert_eq!(o.resolve_nei(&mk(100, 200, 60)), NeiDecision::Conceptualize);
        // 10% coverage → ignore.
        assert_eq!(o.resolve_nei(&mk(100, 200, 10)), NeiDecision::Ignore);
    }

    #[test]
    fn auto_oracle_fd_epsilon() {
        let db = db();
        let fd = Fd::new(
            db.rel("A").unwrap(),
            AttrSet::from_indices([0u16]),
            AttrSet::from_indices([0u16]),
        );
        let mut o = AutoOracle::default();
        assert!(o.enforce_fd(&FdContext {
            db: &db,
            fd: &fd,
            error: 0.005
        }));
        assert!(!o.enforce_fd(&FdContext {
            db: &db,
            fd: &fd,
            error: 0.05
        }));
    }

    #[test]
    fn scripted_oracle_replays_and_records_misses() {
        let db = db();
        let j = join(&db);
        let mut o = ScriptedOracle::new()
            .nei("A[x] |><| B[y]", NeiDecision::Conceptualize)
            .hidden("A.{x}", true)
            .name("nei:A[x] |><| B[y]", "AB-Shared");
        let ctx = NeiContext {
            db: &db,
            join: &j,
            stats: JoinStats {
                n_left: 3,
                n_right: 3,
                n_join: 1,
            },
        };
        assert_eq!(o.resolve_nei(&ctx), NeiDecision::Conceptualize);
        let cand = QualAttrs::new(db.rel("A").unwrap(), AttrSet::from_indices([0u16]));
        assert!(o.conceptualize_hidden(&HiddenContext {
            db: &db,
            candidate: &cand
        }));
        let name = o.name_new_relation(&NamingContext {
            db: &db,
            reason: NewRelationReason::Intersection,
            default_name: "X".into(),
            source: "nei:A[x] |><| B[y]".into(),
        });
        assert_eq!(name, "AB-Shared");
        // Unscripted enforcement declines silently (not a miss)…
        let fd = Fd::new(
            db.rel("A").unwrap(),
            AttrSet::from_indices([0u16]),
            AttrSet::from_indices([0u16]),
        );
        assert!(!o.enforce_fd(&FdContext {
            db: &db,
            fd: &fd,
            error: 0.0
        }));
        assert!(o.unanswered.is_empty());
        // …while an unscripted hidden-object question is a recorded miss.
        let cand2 = QualAttrs::new(db.rel("B").unwrap(), AttrSet::from_indices([0u16]));
        assert!(!o.conceptualize_hidden(&HiddenContext {
            db: &db,
            candidate: &cand2
        }));
        assert_eq!(o.unanswered.len(), 1);
    }
}
