//! Re-exports of the generated-SQL counting primitives.
//!
//! The SQL generation and the [`SqlBackend`] moved to
//! `dbre_sql::counts` so the backend can live next to the executor it
//! wraps (and below `dbre-core` in the dependency order). This module
//! keeps the established `dbre_core::sql_counts` paths working and
//! hosts the tests that need the paper's worked example (which lives
//! in this crate).

pub use dbre_sql::counts::{count_join_sql, count_side_sql, join_stats_via_sql, SqlBackend};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::{paper_database, paper_q};
    use dbre_relational::backend::CountBackend;
    use dbre_relational::counting::join_stats;
    use dbre_relational::deps::IndSide;
    use dbre_sql::run_sql;

    #[test]
    fn sql_backend_agrees_with_direct_counting_on_the_paper_example() {
        let db = paper_database();
        let backend = SqlBackend::new();
        for join in paper_q(&db) {
            let direct = join_stats(&db, &join);
            let via_sql = join_stats_via_sql(&db, &join).expect("generated SQL runs");
            assert_eq!(direct, via_sql, "join {}", join.render(&db.schema));
            // The backend serves the same stats through the seam.
            assert_eq!(direct, backend.join_stats(&db, &join));
        }
        assert_eq!(backend.failures(), 0, "no statement fell back");
    }

    #[test]
    fn generated_sql_matches_the_papers_formulation() {
        let db = paper_database();
        let q = paper_q(&db);
        // ‖HEmployee[no]‖ ≡ select count distinct no from HEmployee.
        assert_eq!(
            count_side_sql(&db, &q[0].left),
            "SELECT COUNT(DISTINCT x.no) FROM HEmployee x"
        );
        let join_sql = count_join_sql(&db, &q[0]);
        assert!(join_sql.contains("FROM HEmployee x, Person y"));
        assert!(join_sql.contains("WHERE x.no = y.id"));
    }

    #[test]
    fn hyphenated_identifiers_survive_generation() {
        let db = paper_database();
        let (rel, ids) = db.resolve("Assignment", &["project-name"]).unwrap();
        let side = IndSide::new(rel, ids.clone());
        let sql = count_side_sql(&db, &side);
        // Quoted: bare `x.project-name` would lex as `x.project - name`.
        assert_eq!(
            sql,
            "SELECT COUNT(DISTINCT x.\"project-name\") FROM Assignment x"
        );
        // And it executes — directly and through the backend.
        let n = run_sql(&db, &sql).unwrap().count().unwrap();
        assert_eq!(n, 50); // one project name per project p01..p50
        let backend = SqlBackend::new();
        assert_eq!(backend.count_distinct(&db, rel, &ids), 50);
        assert_eq!(backend.failures(), 0);
    }

    #[test]
    fn composite_join_counts_agree() {
        use dbre_sql::Catalog;
        let mut cat = Catalog::new();
        cat.load_script(
            "CREATE TABLE A (x INT, y INT); CREATE TABLE B (u INT, v INT);
             INSERT INTO A VALUES (1,1), (1,2), (2,1), (1,1);
             INSERT INTO B VALUES (1,1), (2,1), (3,3);",
        )
        .unwrap();
        let db = cat.into_database();
        let (a, a_ids) = db.resolve("A", &["x", "y"]).unwrap();
        let (b, b_ids) = db.resolve("B", &["u", "v"]).unwrap();
        let join = dbre_relational::counting::EquiJoin::try_new(
            IndSide::new(a, a_ids),
            IndSide::new(b, b_ids),
        )
        .unwrap();
        let direct = join_stats(&db, &join);
        let via_sql = join_stats_via_sql(&db, &join).unwrap();
        assert_eq!(direct, via_sql);
        assert_eq!(via_sql.n_join, 2); // pairs (1,1) and (2,1)
    }
}
