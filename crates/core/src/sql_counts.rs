//! The `‖·‖` counting primitives expressed as real SQL.
//!
//! §2 of the paper defines `‖r[X]‖` as
//! `SELECT COUNT (DISTINCT X) FROM R` — "this function can be computed
//! in any SQL-like language". The pipeline uses the direct columnar
//! implementation ([`dbre_relational::counting`]) for speed; this
//! module generates and executes the *actual SQL* through `dbre-sql`,
//! so the interchangeability claim is a tested property rather than a
//! remark (see the agreement tests and the paper-example check).

use dbre_relational::counting::{EquiJoin, JoinStats};
use dbre_relational::database::Database;
use dbre_relational::deps::IndSide;
use dbre_sql::{run_sql, SqlResult};

/// Renders an identifier for the generated SQL. Hyphenated legacy
/// names (`project-name`) must be double-quoted: left bare in an
/// expression they read as subtraction (`project - name`), silently
/// changing the counted value wherever both operands happen to resolve.
/// Anything not lexable as a plain identifier is double-quoted too.
fn ident(name: &str) -> String {
    let plain = name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && name
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '_');
    if plain {
        name.to_string()
    } else {
        format!("\"{name}\"")
    }
}

fn side_cols(db: &Database, side: &IndSide, alias: &str) -> Vec<String> {
    let rel = db.schema.relation(side.rel);
    side.attrs
        .iter()
        .map(|a| format!("{alias}.{}", ident(rel.attr_name(*a))))
        .collect()
}

/// The SQL text for `‖r[X]‖` of one side.
pub fn count_side_sql(db: &Database, side: &IndSide) -> String {
    let rel = db.schema.relation(side.rel);
    format!(
        "SELECT COUNT(DISTINCT {}) FROM {} x",
        side_cols(db, side, "x").join(", "),
        ident(&rel.name)
    )
}

/// The SQL text for `‖r_k[A_k] ⋈ r_l[A_l]‖`.
pub fn count_join_sql(db: &Database, join: &EquiJoin) -> String {
    let lrel = db.schema.relation(join.left.rel);
    let rrel = db.schema.relation(join.right.rel);
    let lcols = side_cols(db, &join.left, "x");
    let rcols = side_cols(db, &join.right, "y");
    let conds: Vec<String> = lcols
        .iter()
        .zip(&rcols)
        .map(|(l, r)| format!("{l} = {r}"))
        .collect();
    format!(
        "SELECT COUNT(DISTINCT {}) FROM {} x, {} y WHERE {}",
        lcols.join(", "),
        ident(&lrel.name),
        ident(&rrel.name),
        conds.join(" AND ")
    )
}

/// Computes the three IND-Discovery cardinalities by *executing SQL*
/// against the database — the fidelity backend.
pub fn join_stats_via_sql(db: &Database, join: &EquiJoin) -> SqlResult<JoinStats> {
    let n_left = run_sql(db, &count_side_sql(db, &join.left))?.count()?;
    let n_right = run_sql(db, &count_side_sql(db, &join.right))?.count()?;
    let n_join = run_sql(db, &count_join_sql(db, join))?.count()?;
    Ok(JoinStats {
        n_left,
        n_right,
        n_join,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::{paper_database, paper_q};
    use dbre_relational::counting::join_stats;

    #[test]
    fn sql_backend_agrees_with_direct_counting_on_the_paper_example() {
        let db = paper_database();
        for join in paper_q(&db) {
            let direct = join_stats(&db, &join);
            let via_sql = join_stats_via_sql(&db, &join).expect("generated SQL runs");
            assert_eq!(direct, via_sql, "join {}", join.render(&db.schema));
        }
    }

    #[test]
    fn generated_sql_matches_the_papers_formulation() {
        let db = paper_database();
        let q = paper_q(&db);
        // ‖HEmployee[no]‖ ≡ select count distinct no from HEmployee.
        assert_eq!(
            count_side_sql(&db, &q[0].left),
            "SELECT COUNT(DISTINCT x.no) FROM HEmployee x"
        );
        let join_sql = count_join_sql(&db, &q[0]);
        assert!(join_sql.contains("FROM HEmployee x, Person y"));
        assert!(join_sql.contains("WHERE x.no = y.id"));
    }

    #[test]
    fn hyphenated_identifiers_survive_generation() {
        let db = paper_database();
        let (rel, ids) = db.resolve("Assignment", &["project-name"]).unwrap();
        let side = IndSide::new(rel, ids);
        let sql = count_side_sql(&db, &side);
        // Quoted: bare `x.project-name` would lex as `x.project - name`.
        assert_eq!(
            sql,
            "SELECT COUNT(DISTINCT x.\"project-name\") FROM Assignment x"
        );
        // And it executes.
        let n = run_sql(&db, &sql).unwrap().count().unwrap();
        assert_eq!(n, 50); // one project name per project p01..p50
    }

    #[test]
    fn odd_names_get_quoted() {
        assert_eq!(ident("weird name"), "\"weird name\"");
        assert_eq!(ident("3col"), "\"3col\"");
        assert_eq!(ident("plain_name-2"), "\"plain_name-2\"");
        assert_eq!(ident("plain_name2"), "plain_name2");
    }

    #[test]
    fn composite_join_counts_agree() {
        use dbre_sql::Catalog;
        let mut cat = Catalog::new();
        cat.load_script(
            "CREATE TABLE A (x INT, y INT); CREATE TABLE B (u INT, v INT);
             INSERT INTO A VALUES (1,1), (1,2), (2,1), (1,1);
             INSERT INTO B VALUES (1,1), (2,1), (3,3);",
        )
        .unwrap();
        let db = cat.into_database();
        let (a, a_ids) = db.resolve("A", &["x", "y"]).unwrap();
        let (b, b_ids) = db.resolve("B", &["u", "v"]).unwrap();
        let join = EquiJoin::try_new(IndSide::new(a, a_ids), IndSide::new(b, b_ids)).unwrap();
        let direct = join_stats(&db, &join);
        let via_sql = join_stats_via_sql(&db, &join).unwrap();
        assert_eq!(direct, via_sql);
        assert_eq!(via_sql.n_join, 2); // pairs (1,1) and (2,1)
    }
}
