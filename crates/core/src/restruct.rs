//! The Restruct algorithm (paper §7): from a 1NF schema plus the
//! elicited `F`, `H` and `IND` to a 3NF schema with key constraints and
//! referential integrity constraints.
//!
//! Three phases, exactly as in the paper:
//!
//! 1. **Hidden objects** — each `R_i.A_i ∈ H` becomes a new relation
//!    `R_p(A_i)` keyed on `A_i`; `R_i[A_i] ≪ R_p[A_i]` is added and
//!    every other occurrence of `R_i[A_i]` in `IND` is replaced by
//!    `R_p[A_i]`.
//! 2. **FD splitting** — each `f = R_i : A_i → B_i ∈ F` becomes a new
//!    relation `R_p(A_i B_i)` keyed on `A_i`; `B_i` is removed from
//!    `R_i`; `R_i[A_i] ≪ R_p[A_i]` is added and occurrences of
//!    `R_i[A_i]` / `R_i[B_i]` in `IND` are redirected to `R_p`.
//! 3. **RIC computation** — `RIC = {σ ≪ τ ∈ IND | τ is a key}`.
//!
//! Unlike the paper (which works on schema text), this implementation
//! also restructures the *extension*: new relations receive the
//! distinct projection of their source, and split-off attributes are
//! physically dropped — so the output is a runnable database whose
//! 3NF-ness the test suite verifies.

use crate::ind_discovery::unique_name;
use crate::oracle::{DecisionRecord, NamingContext, NewRelationReason, Oracle};
use dbre_relational::attr::{AttrId, AttrSet};
use dbre_relational::database::Database;
use dbre_relational::deps::{Fd, Ind, IndSide};
use dbre_relational::schema::{QualAttrs, RelId, Relation};
use dbre_relational::{Attribute, DbreError, RelationalError};

/// Result of Restruct.
#[derive(Debug, Clone, Default)]
pub struct Restructured {
    /// Relations created for hidden objects (phase 1).
    pub hidden_relations: Vec<RelId>,
    /// Relations created by FD splitting (phase 2).
    pub fd_relations: Vec<RelId>,
    /// The full rewritten IND set.
    pub inds: Vec<Ind>,
    /// The elicited FDs re-homed onto the relations that now carry
    /// them: `R_i : A → B` becomes `R_p : A' → B'` on the split-off
    /// relation. Against the restructured schema every one of these has
    /// a key LHS, which is what makes the output 3NF.
    pub fds: Vec<Fd>,
    /// The referential integrity constraints (key-based INDs).
    pub ric: Vec<Ind>,
    /// Diagnostics (dropped INDs that straddled a split, …).
    pub warnings: Vec<String>,
    /// Audit trail (naming decisions).
    pub log: Vec<DecisionRecord>,
}

/// Checks a `(relation, attribute set)` reference against the schema.
fn check_qual(db: &Database, rel: RelId, attrs: &AttrSet) -> Result<(), RelationalError> {
    if rel.index() >= db.schema.len() {
        return Err(RelationalError::UnknownRelation(format!(
            "#{}",
            rel.index()
        )));
    }
    let relation = db.schema.relation(rel);
    for a in attrs.iter() {
        if a.index() >= relation.arity() {
            return Err(RelationalError::UnknownAttribute {
                relation: relation.name.clone(),
                attribute: format!("#{}", a.index()),
            });
        }
    }
    Ok(())
}

/// Validates the elicited `F`, `H` and `IND` against the schema before
/// Restruct mutates anything: all relation and attribute ids in range,
/// FD left-hand sides and hidden attribute sets non-empty, IND sides
/// of equal arity. A caller feeding hand-built dependencies gets a
/// typed error instead of an index panic halfway through a rewrite.
fn validate_inputs(
    db: &Database,
    fds: &[Fd],
    hidden: &[QualAttrs],
    inds: &[Ind],
) -> Result<(), RelationalError> {
    for fd in fds {
        check_qual(db, fd.rel, &fd.lhs)?;
        check_qual(db, fd.rel, &fd.rhs)?;
        if fd.lhs.is_empty() {
            return Err(RelationalError::EmptyAttrList {
                relation: db.schema.relation(fd.rel).name.clone(),
            });
        }
    }
    for h in hidden {
        check_qual(db, h.rel, &h.attrs)?;
        if h.attrs.is_empty() {
            return Err(RelationalError::EmptyAttrList {
                relation: db.schema.relation(h.rel).name.clone(),
            });
        }
    }
    for ind in inds {
        for side in [&ind.lhs, &ind.rhs] {
            check_qual(db, side.rel, &side.attr_set())?;
        }
        if ind.lhs.attrs.len() != ind.rhs.attrs.len() {
            return Err(RelationalError::IndArityMismatch {
                lhs: ind.lhs.attrs.len(),
                rhs: ind.rhs.attrs.len(),
            });
        }
    }
    Ok(())
}

/// Runs Restruct. Mutates `db` in place: adds the new relations,
/// removes split-off attributes, extends `K`.
///
/// Fallible: malformed inputs (out-of-range ids, empty attribute sets,
/// mismatched IND arity) are rejected upfront with a typed error,
/// before any mutation. `db` is only modified on the `Ok` path and by
/// oracle panics unwinding mid-rewrite (the pipeline catches those at
/// the stage boundary).
pub fn restruct(
    db: &mut Database,
    fds: &[Fd],
    hidden: &[QualAttrs],
    inds: &[Ind],
    oracle: &mut dyn Oracle,
) -> Result<Restructured, DbreError> {
    validate_inputs(db, fds, hidden, inds)?;
    let mut out = Restructured {
        inds: inds.to_vec(),
        ..Default::default()
    };

    // ---- Phase 1: hidden objects ----
    for h in hidden {
        let src_rel = db.schema.relation(h.rel);
        let attr_ids: Vec<AttrId> = h.attrs.iter().collect();
        let attr_names: Vec<String> = attr_ids
            .iter()
            .map(|a| src_rel.attr_name(*a).to_string())
            .collect();
        let attrs: Vec<Attribute> = attr_ids
            .iter()
            .map(|a| src_rel.attribute(*a).clone())
            .collect();
        let default_name = unique_name(db, &format!("{}_{}", src_rel.name, attr_names.join("_")));
        let source = format!("hidden:{}", h.render(&db.schema));
        let name = oracle.name_new_relation(&NamingContext {
            db,
            reason: NewRelationReason::HiddenObject,
            default_name,
            source: source.clone(),
        });
        let name = unique_name(db, &name);
        out.log.push(DecisionRecord::new(
            "Restruct/hidden",
            source,
            format!("new relation {name}"),
        ));

        let table = db.table(h.rel).distinct_subtable(&attr_ids);
        let rel_p = db.add_relation_with_table(Relation::new(name, attrs)?, table)?;
        let p_attrs: Vec<AttrId> = (0..attr_ids.len() as u16).map(AttrId).collect();
        db.constraints
            .add_key(rel_p, AttrSet::from_iter_ids(p_attrs.iter().copied()));
        out.hidden_relations.push(rel_p);

        // Replace occurrences of R_i[A_i] in IND, then add the linking
        // IND (which must itself stay untouched).
        replace_side(&mut out.inds, h.rel, &attr_ids, rel_p, &p_attrs);
        out.inds.push(Ind::new(
            IndSide::new(h.rel, attr_ids.clone()),
            IndSide::new(rel_p, p_attrs),
        )?);
    }

    // ---- Phase 2: FD splitting ----
    // Physical attribute removal is deferred to phase 3 so that attr
    // ids stay stable while INDs are rewritten.
    let mut pending_removals: Vec<(RelId, AttrSet)> = Vec::new();
    for fd in fds {
        let src_rel = db.schema.relation(fd.rel);
        let a_ids: Vec<AttrId> = fd.lhs.iter().collect();
        let b_ids: Vec<AttrId> = fd.rhs.iter().collect();
        let all_ids: Vec<AttrId> = a_ids.iter().chain(b_ids.iter()).copied().collect();
        let attrs: Vec<Attribute> = all_ids
            .iter()
            .map(|a| src_rel.attribute(*a).clone())
            .collect();
        let a_names: Vec<String> = a_ids
            .iter()
            .map(|a| src_rel.attr_name(*a).to_string())
            .collect();
        let default_name = unique_name(db, &format!("{}_{}", src_rel.name, a_names.join("_")));
        let source = format!("fd:{}", fd.render(&db.schema));
        let name = oracle.name_new_relation(&NamingContext {
            db,
            reason: NewRelationReason::FdSplit,
            default_name,
            source: source.clone(),
        });
        let name = unique_name(db, &name);
        out.log.push(DecisionRecord::new(
            "Restruct/fd",
            source,
            format!("new relation {name}"),
        ));

        // Materialize the split-off relation. When the FD truly holds
        // this is the plain distinct projection; when the expert
        // *enforced* it over dirty data (§6.2.2 step (ii)) the
        // projection can contain conflicting tuples — the paper notes
        // the structure then "no longer matches the database
        // extension". We repair by keeping, per key value, the most
        // frequent right-hand side (g3-style minimal change).
        let table = fd_repaired_subtable(db.table(fd.rel), &a_ids, &b_ids)?;
        let rel_p = db.add_relation_with_table(Relation::new(name, attrs)?, table)?;
        // Key of the new relation: its A_i prefix.
        let p_a: Vec<AttrId> = (0..a_ids.len() as u16).map(AttrId).collect();
        let p_b: Vec<AttrId> = (a_ids.len() as u16..all_ids.len() as u16)
            .map(AttrId)
            .collect();
        db.constraints
            .add_key(rel_p, AttrSet::from_iter_ids(p_a.iter().copied()));
        out.fd_relations.push(rel_p);
        out.fds.push(Fd::new(
            rel_p,
            AttrSet::from_iter_ids(p_a.iter().copied()),
            AttrSet::from_iter_ids(p_b.iter().copied()),
        ));
        pending_removals.push((fd.rel, fd.rhs.clone()));

        // Rewrite IND references, then add the linking IND.
        replace_side(&mut out.inds, fd.rel, &a_ids, rel_p, &p_a);
        replace_side(&mut out.inds, fd.rel, &b_ids, rel_p, &p_b);
        out.inds.push(Ind::new(
            IndSide::new(fd.rel, a_ids.clone()),
            IndSide::new(rel_p, p_a),
        )?);
    }

    // ---- Phase 3: physical attribute removal + remapping ----
    apply_removals(db, &pending_removals, &mut out)?;

    db.constraints.normalize();

    // ---- RIC ----
    out.ric = out
        .inds
        .iter()
        .filter(|ind| db.constraints.is_key(ind.rhs.rel, &ind.rhs.attr_set()))
        .cloned()
        .collect();

    Ok(out)
}

/// Builds the extension of an FD-split relation `R_p(A B)`: one tuple
/// per distinct non-null `A` value, carrying the *plurality* `B` value
/// observed for it (ties broken by first occurrence). Identical to the
/// distinct projection whenever `A → B` actually holds.
fn fd_repaired_subtable(
    table: &dbre_relational::Table,
    a_ids: &[AttrId],
    b_ids: &[AttrId],
) -> Result<dbre_relational::Table, DbreError> {
    use std::collections::HashMap;
    type Row = Vec<dbre_relational::Value>;
    // key -> (first-seen order, rhs -> (count, first index))
    let mut order: Vec<Row> = Vec::new();
    let mut groups: HashMap<Row, HashMap<Row, (usize, usize)>> = HashMap::new();
    for i in 0..table.len() {
        if table.row_has_null(i, a_ids) {
            continue;
        }
        let key = table.project_row(i, a_ids);
        let val = table.project_row(i, b_ids);
        let entry = groups.entry(key.clone()).or_insert_with(|| {
            order.push(key);
            HashMap::new()
        });
        let slot = entry.entry(val).or_insert((0, i));
        slot.0 += 1;
    }
    let mut out = dbre_relational::Table::new(a_ids.len() + b_ids.len());
    for key in order {
        let rhss = &groups[&key];
        // Every group received at least one RHS when it was created.
        let Some(best) = rhss
            .iter()
            .min_by_key(|(_, (count, first))| (std::cmp::Reverse(*count), *first))
        else {
            continue;
        };
        let mut row = key.clone();
        row.extend(best.0.iter().cloned());
        out.push_row(row)?;
    }
    Ok(out)
}

/// Redirects IND sides from `(rel, attrs)` to `(new_rel, new_attrs)`.
///
/// A side is redirected when its attribute set is a *non-empty subset*
/// of the target set. Exact matching is what the paper's algorithm
/// text says ("replace `R_i[A_i]` by `R_p[A_i]`"), but its §7
/// walk-through requires the subset form: processing
/// `Department: emp → skill, proj` must turn `Department[proj] ≪ …`
/// (a strict subset of `B_i = {skill, proj}`) into `Manager[proj] ≪ …`
/// — and after the split those attributes no longer exist in `R_i`, so
/// redirecting every reference into their new home is the only reading
/// that keeps the IND set consistent.
fn replace_side(
    inds: &mut [Ind],
    rel: RelId,
    attrs: &[AttrId],
    new_rel: RelId,
    new_attrs: &[AttrId],
) {
    let target: AttrSet = AttrSet::from_iter_ids(attrs.iter().copied());
    for ind in inds.iter_mut() {
        for side in [&mut ind.lhs, &mut ind.rhs] {
            if side.rel == rel && !side.attrs.is_empty() && side.attr_set().is_subset(&target) {
                // Map each positional attribute through attrs→new_attrs.
                let mapped: Vec<AttrId> = side
                    .attrs
                    .iter()
                    .map(|a| {
                        // The subset check above guarantees every side
                        // attribute occurs in `attrs`.
                        #[allow(clippy::expect_used)]
                        let pos = attrs
                            .iter()
                            .position(|x| x == a)
                            .expect("attr is in the matched set");
                        new_attrs[pos]
                    })
                    .collect();
                side.rel = new_rel;
                side.attrs = mapped;
            }
        }
    }
}

/// Physically removes the collected attributes, remapping every
/// surviving artifact (keys, not-nulls, IND sides) through the new
/// attribute indices. IND sides that still reference a removed
/// attribute are dropped with a warning — they straddled a split the
/// elicited dependencies did not anticipate.
fn apply_removals(
    db: &mut Database,
    removals: &[(RelId, AttrSet)],
    out: &mut Restructured,
) -> Result<(), DbreError> {
    use std::collections::HashMap;
    // Merge removals per relation.
    let mut per_rel: HashMap<RelId, AttrSet> = HashMap::new();
    for (rel, set) in removals {
        let entry = per_rel.entry(*rel).or_default();
        *entry = entry.union(set);
    }

    for (rel, removed) in &per_rel {
        let relation = db.schema.relation(*rel).clone();
        // Build old→new id map.
        let mut map: HashMap<AttrId, AttrId> = HashMap::new();
        let mut kept: Vec<Attribute> = Vec::new();
        for (i, attr) in relation.attributes().iter().enumerate() {
            let old = AttrId(i as u16);
            if !removed.contains(old) {
                map.insert(old, AttrId(kept.len() as u16));
                kept.push(attr.clone());
            }
        }
        // Table first (drop_columns matches the relation header).
        let removed_ids: Vec<AttrId> = removed.iter().collect();
        let new_table = db.table(*rel).drop_columns(&removed_ids);
        let new_relation = Relation::new(relation.name.clone(), kept)?;
        db.schema.replace_relation(*rel, new_relation)?;
        db.replace_table(*rel, new_table)?;

        // Keys and not-nulls.
        db.constraints.keys.retain_mut(|k| {
            if k.rel != *rel {
                return true;
            }
            if !k.attrs.is_disjoint(removed) {
                // A key that lost attributes no longer exists on R_i.
                return false;
            }
            k.attrs = AttrSet::from_iter_ids(k.attrs.iter().map(|a| map[&a]));
            true
        });
        db.constraints.not_null.retain_mut(|(r, a)| {
            if r != rel {
                return true;
            }
            match map.get(a) {
                Some(new) => {
                    *a = *new;
                    true
                }
                None => false,
            }
        });

        // IND sides.
        let rel_name = db.schema.relation(*rel).name.clone();
        let mut inds = std::mem::take(&mut out.inds);
        inds.retain_mut(|ind| {
            for side in [&mut ind.lhs, &mut ind.rhs] {
                if side.rel != *rel {
                    continue;
                }
                if side.attrs.iter().any(|a| removed.contains(*a)) {
                    out.warnings.push(format!(
                        "dropped IND referencing removed attributes of {rel_name}"
                    ));
                    return false;
                }
                for a in side.attrs.iter_mut() {
                    *a = map[a];
                }
            }
            true
        });
        out.inds = inds;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::{DenyOracle, ScriptedOracle};
    use dbre_relational::value::{Domain, Value};

    /// Department(dep key, emp, skill, location, proj) + Project-ish
    /// Assignment(emp, dep, proj, date, pname) with keys as in §5.
    fn db() -> (Database, RelId, RelId) {
        let mut db = Database::new();
        let dept = db
            .add_relation(Relation::of(
                "Department",
                &[
                    ("dep", Domain::Text),
                    ("emp", Domain::Int),
                    ("skill", Domain::Text),
                    ("location", Domain::Text),
                    ("proj", Domain::Text),
                ],
            ))
            .unwrap();
        let assign = db
            .add_relation(Relation::of(
                "Assignment",
                &[
                    ("emp", Domain::Int),
                    ("dep", Domain::Text),
                    ("proj", Domain::Text),
                    ("date", Domain::Date),
                    ("project-name", Domain::Text),
                ],
            ))
            .unwrap();
        db.constraints.add_key(dept, AttrSet::from_indices([0u16]));
        db.constraints
            .add_key(assign, AttrSet::from_indices([0u16, 1, 2]));
        db.constraints.normalize();
        for (dep, emp, skill, loc, proj) in [
            ("d1", 1, "db", "lyon", "p1"),
            ("d2", 1, "db", "paris", "p1"),
            ("d3", 2, "ai", "lyon", "p2"),
        ] {
            db.insert(
                dept,
                vec![
                    Value::str(dep),
                    Value::Int(emp),
                    Value::str(skill),
                    Value::str(loc),
                    Value::str(proj),
                ],
            )
            .unwrap();
        }
        for (emp, dep, proj, d, pn) in [
            (1, "d1", "p1", 1, "alpha"),
            (2, "d1", "p2", 2, "beta"),
            (1, "d3", "p1", 3, "alpha"),
        ] {
            db.insert(
                assign,
                vec![
                    Value::Int(emp),
                    Value::str(dep),
                    Value::str(proj),
                    Value::Date(dbre_relational::Date(d)),
                    Value::str(pn),
                ],
            )
            .unwrap();
        }
        (db, dept, assign)
    }

    #[test]
    fn hidden_object_phase_creates_keyed_relation() {
        let (mut db, dept, _) = db();
        let h = QualAttrs::new(dept, AttrSet::from_indices([1u16]));
        let mut oracle = ScriptedOracle::new().name("hidden:Department.{emp}", "Employee");
        let out = restruct(&mut db, &[], &[h], &[], &mut oracle).unwrap();
        assert_eq!(out.hidden_relations.len(), 1);
        let employee = db.rel("Employee").unwrap();
        assert_eq!(db.table(employee).len(), 2); // distinct emps {1, 2}
        assert!(db
            .constraints
            .is_key(employee, &AttrSet::from_indices([0u16])));
        // Linking IND present and in RIC.
        assert_eq!(out.inds.len(), 1);
        assert_eq!(
            out.inds[0].render(&db.schema),
            "Department[emp] << Employee[emp]"
        );
        assert_eq!(out.ric.len(), 1);
        assert!(db.ind_holds(&out.inds[0]));
    }

    #[test]
    fn hidden_phase_redirects_existing_inds() {
        let (mut db, dept, assign) = db();
        let h = QualAttrs::new(assign, AttrSet::from_indices([0u16]));
        // Existing IND Department[emp] << Assignment[emp].
        let existing = Ind::unary(dept, AttrId(1), assign, AttrId(0));
        let mut oracle = ScriptedOracle::new().name("hidden:Assignment.{emp}", "Employee");
        let out = restruct(&mut db, &[], &[h], &[existing], &mut oracle).unwrap();
        let rendered: Vec<String> = out.inds.iter().map(|i| i.render(&db.schema)).collect();
        assert!(rendered.contains(&"Department[emp] << Employee[emp]".to_string()));
        assert!(rendered.contains(&"Assignment[emp] << Employee[emp]".to_string()));
        assert_eq!(out.inds.len(), 2);
    }

    #[test]
    fn fd_split_removes_attributes_and_remaps() {
        let (mut db, dept, _) = db();
        // Department: emp -> skill, proj.
        let fd = Fd::new(
            dept,
            AttrSet::from_indices([1u16]),
            AttrSet::from_indices([2u16, 4u16]),
        );
        let mut oracle = ScriptedOracle::new().name("fd:Department: emp -> skill, proj", "Manager");
        let out = restruct(&mut db, &[fd], &[], &[], &mut oracle).unwrap();
        assert_eq!(out.fd_relations.len(), 1);
        // Department lost skill and proj.
        let dept_rel = db.schema.relation(dept);
        assert_eq!(dept_rel.arity(), 3);
        assert_eq!(
            dept_rel
                .attributes()
                .iter()
                .map(|a| a.name.as_str())
                .collect::<Vec<_>>(),
            vec!["dep", "emp", "location"]
        );
        // Manager(emp, skill, proj) keyed on emp, 2 distinct rows.
        let manager = db.rel("Manager").unwrap();
        assert_eq!(db.schema.relation(manager).arity(), 3);
        assert_eq!(db.table(manager).len(), 2);
        assert!(db
            .constraints
            .is_key(manager, &AttrSet::from_indices([0u16])));
        // Linking IND remapped to the *new* Department layout.
        let rendered: Vec<String> = out.inds.iter().map(|i| i.render(&db.schema)).collect();
        assert_eq!(
            rendered,
            vec!["Department[emp] << Manager[emp]".to_string()]
        );
        for ind in &out.inds {
            assert!(db.ind_holds(ind));
        }
        // The old key of Department survived the remap.
        assert!(db.constraints.is_key(dept, &AttrSet::from_indices([0u16])));
    }

    #[test]
    fn fd_split_redirects_rhs_references() {
        let (mut db, dept, assign) = db();
        // Existing IND Department[proj] << Assignment[proj].
        let existing = Ind::unary(dept, AttrId(4), assign, AttrId(2));
        // Assignment: proj -> project-name  creates Project; Department:
        // emp -> skill,proj creates Manager; the existing IND must end
        // up Manager[proj] << Project[proj] — the paper's §7 walk-through.
        let fds = [
            Fd::new(
                assign,
                AttrSet::from_indices([2u16]),
                AttrSet::from_indices([4u16]),
            ),
            Fd::new(
                dept,
                AttrSet::from_indices([1u16]),
                AttrSet::from_indices([2u16, 4u16]),
            ),
        ];
        let mut oracle = ScriptedOracle::new()
            .name("fd:Assignment: proj -> project-name", "Project")
            .name("fd:Department: emp -> skill, proj", "Manager");
        let out = restruct(&mut db, &fds, &[], &[existing], &mut oracle).unwrap();
        let rendered: Vec<String> = out.inds.iter().map(|i| i.render(&db.schema)).collect();
        assert!(
            rendered.contains(&"Manager[proj] << Project[proj]".to_string()),
            "got {rendered:?}"
        );
        for ind in &out.inds {
            assert!(
                db.ind_holds(ind),
                "IND must hold after restructuring: {}",
                ind.render(&db.schema)
            );
        }
    }

    #[test]
    fn ric_excludes_non_key_targets() {
        let (mut db, dept, assign) = db();
        // Assignment[dep] << Department[dep] — Department.dep is a key.
        let keyed = Ind::unary(assign, AttrId(1), dept, AttrId(0));
        // Department[emp] << Assignment[emp] — Assignment.emp not a key.
        let unkeyed = Ind::unary(dept, AttrId(1), assign, AttrId(0));
        let out = restruct(&mut db, &[], &[], &[keyed, unkeyed], &mut DenyOracle).unwrap();
        assert_eq!(out.inds.len(), 2);
        assert_eq!(out.ric.len(), 1);
        assert_eq!(
            out.ric[0].render(&db.schema),
            "Assignment[dep] << Department[dep]"
        );
    }

    #[test]
    fn default_names_used_without_script() {
        let (mut db, dept, _) = db();
        let h = QualAttrs::new(dept, AttrSet::from_indices([1u16]));
        let out = restruct(&mut db, &[], &[h], &[], &mut DenyOracle).unwrap();
        let name = &db.schema.relation(out.hidden_relations[0]).name;
        assert_eq!(name, "Department_emp");
    }

    #[test]
    fn straddling_ind_dropped_with_warning() {
        let (mut db, dept, assign) = db();
        // IND whose side mixes kept (dep) and removed (skill) attrs.
        let straddle = Ind::new(
            IndSide::new(dept, vec![AttrId(0), AttrId(2)]),
            IndSide::new(assign, vec![AttrId(1), AttrId(4)]),
        )
        .unwrap();
        let fd = Fd::new(
            dept,
            AttrSet::from_indices([1u16]),
            AttrSet::from_indices([2u16, 4u16]),
        );
        let out = restruct(&mut db, &[fd], &[], &[straddle], &mut DenyOracle).unwrap();
        assert!(!out.warnings.is_empty());
        assert_eq!(out.inds.len(), 1); // only the linking IND survives
    }
}
