//! The Extended Entity-Relationship (EER) target model.
//!
//! The paper's Translate step maps the restructured relational schema
//! into "the ER model extended to the Specialization/Generalization of
//! object-types": entity-types (rectangles), relationship-types
//! (diamonds), weak entity-types (double boxes) and is-a links (double
//! pointed arrows) — exactly the constructs of Figure 1.

use std::fmt::Write as _;

/// An entity-type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityType {
    /// Name (from the relation).
    pub name: String,
    /// All attributes.
    pub attrs: Vec<String>,
    /// Key attributes.
    pub key: Vec<String>,
    /// Weak entity-type (identified by its owner)?
    pub weak: bool,
    /// Owners of a weak entity (the object-types its identification
    /// depends on).
    pub owners: Vec<String>,
}

/// How a relationship-type arose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelationshipKind {
    /// A relation whose key partitions into foreign keys — an n-ary
    /// many-to-many relationship-type (Translate rule b).
    ManyToMany,
    /// A foreign-key attribute outside the key — a binary
    /// relationship-type (Translate rule c).
    Binary,
}

/// One participation of an object-type in a relationship.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Participant {
    /// The participating object-type.
    pub object: String,
    /// The attributes of the relationship's source relation that
    /// realize the link.
    pub via: Vec<String>,
}

/// A relationship-type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelationshipType {
    /// Name (relation name for many-to-many; derived for binary).
    pub name: String,
    /// Participating object-types.
    pub participants: Vec<Participant>,
    /// Own attributes (e.g. `date` on Assignment).
    pub attrs: Vec<String>,
    /// Kind.
    pub kind: RelationshipKind,
}

/// An is-a (specialization) link `sub is-a sup`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsaLink {
    /// The specialized object-type.
    pub sub: String,
    /// The generalized object-type.
    pub sup: String,
}

/// A complete EER schema.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EerSchema {
    /// Entity-types (strong and weak).
    pub entities: Vec<EntityType>,
    /// Relationship-types.
    pub relationships: Vec<RelationshipType>,
    /// Specialization links.
    pub isa: Vec<IsaLink>,
    /// Groups of object-types whose key-based inclusion dependencies
    /// form a *cycle*: over finite extensions their instance sets are
    /// equal, so they denote the **same** application object split over
    /// several relations. The paper's Translate sketch explicitly
    /// leaves cyclic INDs untreated; we collapse each cycle into an
    /// equivalence group instead of emitting circular is-a links.
    pub equivalences: Vec<Vec<String>>,
}

impl EerSchema {
    /// Finds an entity by name.
    pub fn entity(&self, name: &str) -> Option<&EntityType> {
        self.entities.iter().find(|e| e.name == name)
    }

    /// Finds a relationship by name.
    pub fn relationship(&self, name: &str) -> Option<&RelationshipType> {
        self.relationships.iter().find(|r| r.name == name)
    }

    /// Is there an is-a link `sub → sup`?
    pub fn has_isa(&self, sub: &str, sup: &str) -> bool {
        self.isa.iter().any(|l| l.sub == sub && l.sup == sup)
    }

    /// Renders a deterministic text outline (used by golden tests and
    /// the report binary).
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let mut entities = self.entities.clone();
        entities.sort_by(|a, b| a.name.cmp(&b.name));
        for e in &entities {
            let kind = if e.weak { "weak entity" } else { "entity" };
            let _ = write!(s, "{} [{kind}] ({})", e.name, e.attrs.join(", "));
            let _ = write!(s, " key({})", e.key.join(", "));
            if !e.owners.is_empty() {
                let _ = write!(s, " owned-by({})", e.owners.join(", "));
            }
            s.push('\n');
        }
        let mut rels = self.relationships.clone();
        rels.sort_by(|a, b| a.name.cmp(&b.name));
        for r in &rels {
            let kind = match r.kind {
                RelationshipKind::ManyToMany => "relationship",
                RelationshipKind::Binary => "binary relationship",
            };
            let parts: Vec<String> = r
                .participants
                .iter()
                .map(|p| format!("{}[{}]", p.object, p.via.join(", ")))
                .collect();
            let _ = write!(s, "{} [{kind}] <{}>", r.name, parts.join(" -- "));
            if !r.attrs.is_empty() {
                let _ = write!(s, " attrs({})", r.attrs.join(", "));
            }
            s.push('\n');
        }
        let mut isa = self.isa.clone();
        isa.sort_by(|a, b| (&a.sub, &a.sup).cmp(&(&b.sub, &b.sup)));
        for l in &isa {
            let _ = writeln!(s, "{} is-a {}", l.sub, l.sup);
        }
        let mut eqs = self.equivalences.clone();
        for group in &mut eqs {
            group.sort();
        }
        eqs.sort();
        for group in &eqs {
            let _ = writeln!(s, "equivalent: {}", group.join(" = "));
        }
        s
    }

    /// Renders Graphviz DOT (rectangles for entities, double boxes for
    /// weak entities, diamonds for relationships, `onormal`-tipped
    /// edges for is-a).
    pub fn render_dot(&self) -> String {
        let mut s =
            String::from("digraph eer {\n  rankdir=LR;\n  node [fontname=\"Helvetica\"];\n");
        for e in &self.entities {
            let shape = if e.weak {
                "shape=box, peripheries=2"
            } else {
                "shape=box"
            };
            let _ = writeln!(
                s,
                "  \"{}\" [{shape}, label=\"{}\\n({})\"];",
                e.name,
                e.name,
                e.attrs.join(", ")
            );
        }
        for r in &self.relationships {
            let label = if r.attrs.is_empty() {
                r.name.clone()
            } else {
                format!("{}\\n({})", r.name, r.attrs.join(", "))
            };
            let _ = writeln!(s, "  \"{}\" [shape=diamond, label=\"{label}\"];", r.name);
            for p in &r.participants {
                let _ = writeln!(
                    s,
                    "  \"{}\" -> \"{}\" [dir=none, label=\"{}\"];",
                    r.name,
                    p.object,
                    p.via.join(", ")
                );
            }
        }
        for l in &self.isa {
            let _ = writeln!(
                s,
                "  \"{}\" -> \"{}\" [arrowhead=onormalonormal, label=\"is-a\"];",
                l.sub, l.sup
            );
        }
        for group in &self.equivalences {
            for pair in group.windows(2) {
                let _ = writeln!(
                    s,
                    "  \"{}\" -> \"{}\" [dir=both, style=dashed, label=\"=\"];",
                    pair[0], pair[1]
                );
            }
        }
        s.push_str("}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EerSchema {
        EerSchema {
            entities: vec![
                EntityType {
                    name: "Person".into(),
                    attrs: vec!["id".into(), "name".into()],
                    key: vec!["id".into()],
                    weak: false,
                    owners: vec![],
                },
                EntityType {
                    name: "HEmployee".into(),
                    attrs: vec!["no".into(), "date".into()],
                    key: vec!["no".into(), "date".into()],
                    weak: true,
                    owners: vec!["Employee".into()],
                },
            ],
            relationships: vec![RelationshipType {
                name: "Assignment".into(),
                participants: vec![
                    Participant {
                        object: "Employee".into(),
                        via: vec!["emp".into()],
                    },
                    Participant {
                        object: "Project".into(),
                        via: vec!["proj".into()],
                    },
                ],
                attrs: vec!["date".into()],
                kind: RelationshipKind::ManyToMany,
            }],
            isa: vec![IsaLink {
                sub: "Employee".into(),
                sup: "Person".into(),
            }],
            equivalences: vec![],
        }
    }

    #[test]
    fn lookups() {
        let s = sample();
        assert!(s.entity("Person").is_some());
        assert!(s.entity("Ghost").is_none());
        assert!(s.relationship("Assignment").is_some());
        assert!(s.has_isa("Employee", "Person"));
        assert!(!s.has_isa("Person", "Employee"));
    }

    #[test]
    fn text_rendering_is_deterministic_and_complete() {
        let s = sample();
        let text = s.render_text();
        assert!(text.contains("HEmployee [weak entity]"));
        assert!(text.contains("owned-by(Employee)"));
        assert!(text.contains("Assignment [relationship]"));
        assert!(text.contains("attrs(date)"));
        assert!(text.contains("Employee is-a Person"));
        // Deterministic: rendering twice is identical.
        assert_eq!(text, s.render_text());
    }

    #[test]
    fn dot_rendering_mentions_all_constructs() {
        let dot = sample().render_dot();
        assert!(dot.contains("peripheries=2"));
        assert!(dot.contains("shape=diamond"));
        assert!(dot.contains("arrowhead=onormalonormal"));
        assert!(dot.starts_with("digraph eer {"));
        assert!(dot.trim_end().ends_with('}'));
    }
}
