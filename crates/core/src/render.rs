//! Textual rendering of relational schemas, dependency sets and
//! decision logs — the format the paper uses in §5–§7 (keys
//! underlined, not-null emphasized), adapted to plain text:
//! key attributes are wrapped `_like this_`, not-null non-key
//! attributes prefixed `!`.

use crate::oracle::DecisionRecord;
use dbre_relational::attr::AttrSet;
use dbre_relational::database::Database;
use dbre_relational::deps::{Fd, Ind};
use dbre_relational::schema::{QualAttrs, RelId};

/// Renders one relation as `Name(_key_, !notnull, plain, …)`.
pub fn render_relation(db: &Database, rel: RelId) -> String {
    let relation = db.schema.relation(rel);
    let key: AttrSet = db
        .constraints
        .primary_key(rel)
        .map(|k| k.attrs.clone())
        .unwrap_or_default();
    let cols: Vec<String> = relation
        .attributes()
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let id = dbre_relational::AttrId(i as u16);
            if key.contains(id) {
                format!("_{}_", a.name)
            } else if db.constraints.is_not_null(rel, id) {
                format!("!{}", a.name)
            } else {
                a.name.clone()
            }
        })
        .collect();
    format!("{}({})", relation.name, cols.join(", "))
}

/// Renders the whole schema, one relation per line, in id order.
pub fn render_schema(db: &Database) -> String {
    db.schema
        .iter()
        .map(|(rel, _)| render_relation(db, rel))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Renders an IND list, one per line, sorted.
pub fn render_inds(db: &Database, inds: &[Ind]) -> String {
    let mut lines: Vec<String> = inds.iter().map(|i| i.render(&db.schema)).collect();
    lines.sort();
    lines.join("\n")
}

/// Renders an FD list, one per line, sorted.
pub fn render_fds(db: &Database, fds: &[Fd]) -> String {
    let mut lines: Vec<String> = fds.iter().map(|f| f.render(&db.schema)).collect();
    lines.sort();
    lines.join("\n")
}

/// Renders a set of qualified attribute sets (`LHS`, `H`), sorted.
pub fn render_quals(db: &Database, quals: &[QualAttrs]) -> String {
    let mut lines: Vec<String> = quals.iter().map(|q| q.render(&db.schema)).collect();
    lines.sort();
    lines.join("\n")
}

/// Renders the decision log as an indented transcript.
pub fn render_log(log: &[DecisionRecord]) -> String {
    log.iter()
        .map(|r| format!("[{}] {} => {}", r.step, r.question, r.decision))
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbre_relational::attr::AttrId;
    use dbre_relational::schema::Relation;
    use dbre_relational::value::Domain;

    fn db() -> Database {
        let mut db = Database::new();
        let dept = db
            .add_relation(Relation::of(
                "Department",
                &[
                    ("dep", Domain::Text),
                    ("emp", Domain::Int),
                    ("location", Domain::Text),
                ],
            ))
            .unwrap();
        db.constraints
            .add_key(dept, dbre_relational::AttrSet::from_indices([0u16]));
        db.constraints.add_not_null(dept, AttrId(2));
        db.constraints.normalize();
        db
    }

    #[test]
    fn relation_rendering_marks_keys_and_not_null() {
        let db = db();
        let rel = db.rel("Department").unwrap();
        assert_eq!(
            render_relation(&db, rel),
            "Department(_dep_, emp, !location)"
        );
    }

    #[test]
    fn schema_rendering_is_per_line() {
        let db = db();
        assert_eq!(render_schema(&db).lines().count(), 1);
    }

    #[test]
    fn lists_are_sorted() {
        let db = db();
        let rel = db.rel("Department").unwrap();
        let inds = vec![
            Ind::unary(rel, AttrId(1), rel, AttrId(0)),
            Ind::unary(rel, AttrId(0), rel, AttrId(1)),
        ];
        let text = render_inds(&db, &inds);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0] < lines[1]);
    }

    #[test]
    fn log_rendering() {
        let log = vec![DecisionRecord::new("Step", "Q", "A")];
        assert_eq!(render_log(&log), "[Step] Q => A");
    }
}
