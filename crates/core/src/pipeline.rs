//! End-to-end reverse-engineering pipeline.
//!
//! Chains the paper's method over a legacy database:
//!
//! 1. derive `K` and `N` from the data dictionary (already inside the
//!    [`Database`] when loaded through `dbre_sql::Catalog`);
//! 2. extract `Q` from application programs (`dbre_extract`) — or take
//!    a prepared `Q`;
//! 3. IND-Discovery (§6.1);
//! 4. LHS-Discovery (§6.2.1);
//! 5. RHS-Discovery (§6.2.2);
//! 6. Restruct (§7);
//! 7. Translate (§7) into an EER schema.
//!
//! Every expert interaction is recorded in one merged audit log.

use crate::eer::EerSchema;
use crate::ind_discovery::{ind_discovery_with_stats, IndDiscovery};
use crate::lhs_discovery::{lhs_discovery, LhsDiscovery};
use crate::oracle::{DecisionRecord, Oracle, OracleAbort};
use crate::restruct::{restruct, Restructured};
use crate::rhs_discovery::{rhs_discovery_with_stats, RhsDiscovery, RhsOptions};
use crate::translate::translate;
use dbre_extract::{extract_programs, ExtractConfig, ProgramSource};
use dbre_relational::counting::EquiJoin;
use dbre_relational::database::Database;
use dbre_relational::stats::{StatsCounters, StatsEngine};
use dbre_relational::DbreError;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineOptions {
    /// Equi-join extraction options.
    pub extract: ExtractConfig,
    /// RHS-Discovery pruning options.
    pub rhs: RhsOptions,
    /// Infer candidate keys from the extension for relations whose
    /// dictionary declares none (pre-`UNIQUE` DBMSs — an extension
    /// beyond the paper's §4 assumption that `K` is always available).
    /// The inferred key's width is bounded to 3 columns.
    pub infer_missing_keys: bool,
}

/// Instrumentation for one pipeline run: wall-clock per stage plus the
/// counting-engine counters.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// `(stage, wall time)` in execution order.
    pub stage_timings: Vec<(&'static str, Duration)>,
    /// Counting-engine observability: cache hits/misses and rows
    /// scanned across all `‖·‖` / FD / partition queries of the run.
    pub counters: StatsCounters,
}

impl PipelineStats {
    /// Total wall time across the recorded stages.
    pub fn total(&self) -> Duration {
        self.stage_timings.iter().map(|(_, d)| *d).sum()
    }
}

/// One failed (degraded) stage: which stage, and the typed error it
/// failed with. The stage's output was replaced by its empty default
/// and the run continued.
#[derive(Debug, Clone)]
pub struct StageError {
    /// Stage name, matching [`PipelineStats::stage_timings`].
    pub stage: &'static str,
    /// The typed failure.
    pub error: DbreError,
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage `{}` failed: {}", self.stage, self.error)
    }
}

/// Everything the pipeline produced, stage by stage.
#[derive(Debug)]
pub struct PipelineResult {
    /// The set `Q` that drove IND-Discovery.
    pub q: Vec<EquiJoin>,
    /// Stage 3 output.
    pub ind: IndDiscovery,
    /// Stage 4 output.
    pub lhs: LhsDiscovery,
    /// Stage 5 output.
    pub rhs: RhsDiscovery,
    /// Stage 6 output.
    pub restructured: Restructured,
    /// Stage 7 output.
    pub eer: EerSchema,
    /// The database after restructuring (3NF schema + extension).
    pub db: Database,
    /// Snapshot taken *before* Restruct (after IND-Discovery added the
    /// `S` relations): the schema the stage-3/4/5 outputs reference.
    /// Render `ind`, `lhs` and `rhs` against this one — Restruct
    /// rewrites attribute ids.
    pub db_before: Database,
    /// Merged audit log across stages.
    pub log: Vec<DecisionRecord>,
    /// Warnings: malformed `Q` elements that were skipped, plus
    /// extraction warnings (stage 2) when running from programs.
    pub warnings: Vec<String>,
    /// Instrumentation: per-stage wall time and counting-engine
    /// counters.
    pub stats: PipelineStats,
    /// Provenance of each element of `Q` (program name, statement
    /// index), parallel-keyed by canonical join; empty when `Q` was
    /// supplied directly. This is the paper's promise that the expert
    /// can trace every presumption back to the code exhibiting it.
    pub provenance: Vec<(EquiJoin, Vec<dbre_extract::Provenance>)>,
    /// Stages that failed and were degraded: each failed stage yields
    /// its empty default output, a warning, and an entry here. Empty
    /// on a clean run — see [`PipelineResult::is_complete`].
    pub stage_errors: Vec<StageError>,
}

impl PipelineResult {
    /// Did every stage complete without degradation?
    pub fn is_complete(&self) -> bool {
        self.stage_errors.is_empty()
    }

    /// The programs that exhibited `join` (empty when unknown).
    pub fn evidence_for(&self, join: &EquiJoin) -> Vec<&str> {
        let canonical = join.canonical();
        self.provenance
            .iter()
            .find(|(j, _)| *j == canonical)
            .map(|(_, ps)| ps.iter().map(|p| p.program.as_str()).collect())
            .unwrap_or_default()
    }
}

/// Runs the pipeline from application programs: extracts `Q`, then
/// calls [`run_with_q`].
///
/// `db` is consumed: the returned [`PipelineResult::db`] is the
/// restructured database.
pub fn run_with_programs(
    db: Database,
    programs: &[ProgramSource],
    oracle: &mut dyn Oracle,
    options: &PipelineOptions,
) -> PipelineResult {
    let extraction = extract_programs(&db.schema, programs, &options.extract);
    let mut result = run_with_q(db, &extraction.q(), oracle, options);
    // Extend — run_with_q may already have recorded Q-validation
    // warnings of its own.
    result.warnings.extend(extraction.warnings);
    result.provenance = extraction
        .joins
        .into_iter()
        .map(|j| (j.join, j.provenance))
        .collect();
    result
}

/// Validates one caller-supplied join against the schema; `Err` is the
/// warning to record.
fn validate_join(db: &Database, join: &EquiJoin) -> Result<(), String> {
    join.validate(db)
        .map_err(|e| format!("skipping malformed join: {e}"))
}

/// Renders a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("non-string panic payload")
    }
}

/// Runs one pipeline stage with graceful degradation: a typed error
/// *or a panic* inside `f` is demoted to a warning plus a
/// [`StageError`], and the stage's output is replaced by `fallback()`
/// so the remaining stages still run over whatever survived. An
/// [`OracleAbort`] unwind is recognized and surfaces as the typed
/// [`DbreError::OracleAbort`].
fn run_stage<T>(
    stage: &'static str,
    stats: &mut PipelineStats,
    warnings: &mut Vec<String>,
    stage_errors: &mut Vec<StageError>,
    fallback: impl FnOnce() -> T,
    f: impl FnOnce() -> Result<T, DbreError>,
) -> T {
    let t = Instant::now();
    let outcome = catch_unwind(AssertUnwindSafe(f));
    stats.stage_timings.push((stage, t.elapsed()));
    let error = match outcome {
        Ok(Ok(v)) => return v,
        Ok(Err(e)) => e,
        Err(payload) => match payload.downcast::<OracleAbort>() {
            Ok(abort) => DbreError::OracleAbort(abort.0),
            Err(payload) => DbreError::Panic {
                stage: stage.to_string(),
                message: panic_message(payload.as_ref()),
            },
        },
    };
    warnings.push(format!("stage `{stage}` degraded: {error}"));
    stage_errors.push(StageError { stage, error });
    fallback()
}

/// Runs the pipeline from a prepared set `Q`.
///
/// Malformed elements of `Q` — mismatched side arity, out-of-bounds
/// relation or attribute ids, empty attribute lists — are skipped with
/// a warning in [`PipelineResult::warnings`] instead of panicking
/// deep inside counting.
///
/// The run itself is infallible: a stage that returns a typed error
/// or panics (including an expert aborting the session, modeled as an
/// [`OracleAbort`] unwind) is *degraded* — its output is replaced by
/// the empty default, the failure is recorded in
/// [`PipelineResult::stage_errors`] and mirrored as a warning, and
/// the remaining stages run over whatever survived. The audit log and
/// the pre-restruct snapshot stay coherent with the stages that did
/// complete.
pub fn run_with_q(
    mut db: Database,
    q: &[EquiJoin],
    oracle: &mut dyn Oracle,
    options: &PipelineOptions,
) -> PipelineResult {
    let mut log = Vec::new();
    let mut warnings = Vec::new();
    let mut stage_errors = Vec::new();
    let mut stats = PipelineStats::default();
    let engine = StatsEngine::new();

    let q: Vec<EquiJoin> = q
        .iter()
        .filter(|join| match validate_join(&db, join) {
            Ok(()) => true,
            Err(w) => {
                warnings.push(w);
                false
            }
        })
        .cloned()
        .collect();

    if options.infer_missing_keys {
        let inferred = run_stage(
            "key-inference",
            &mut stats,
            &mut warnings,
            &mut stage_errors,
            Vec::new,
            || {
                Ok(dbre_mine::infer_missing_keys_with_stats(
                    &mut db,
                    Some(3),
                    &engine,
                ))
            },
        );
        for (rel, key) in inferred {
            let relation = db.schema.relation(rel);
            log.push(DecisionRecord::new(
                "Key inference",
                relation.name.clone(),
                format!("inferred key {{{}}}", relation.render_set(&key)),
            ));
        }
    }

    let ind = run_stage(
        "ind-discovery",
        &mut stats,
        &mut warnings,
        &mut stage_errors,
        IndDiscovery::default,
        || ind_discovery_with_stats(&mut db, &q, &mut *oracle, &engine),
    );

    let lhs = run_stage(
        "lhs-discovery",
        &mut stats,
        &mut warnings,
        &mut stage_errors,
        LhsDiscovery::default,
        || Ok(lhs_discovery(&db, &ind.inds, &ind.new_relations)),
    );

    let rhs = run_stage(
        "rhs-discovery",
        &mut stats,
        &mut warnings,
        &mut stage_errors,
        RhsDiscovery::default,
        || {
            Ok(rhs_discovery_with_stats(
                &db,
                &lhs,
                &mut *oracle,
                &options.rhs,
                &engine,
            ))
        },
    );

    let db_before = db.clone();
    let restructured = run_stage(
        "restruct",
        &mut stats,
        &mut warnings,
        &mut stage_errors,
        Restructured::default,
        || restruct(&mut db, &rhs.fds, &rhs.hidden, &ind.inds, &mut *oracle),
    );

    let eer = run_stage(
        "translate",
        &mut stats,
        &mut warnings,
        &mut stage_errors,
        EerSchema::default,
        || translate(&db, &restructured.ric),
    );

    stats.counters = engine.counters();

    log.extend(ind.log.iter().cloned());
    log.extend(rhs.log.iter().cloned());
    log.extend(restructured.log.iter().cloned());

    PipelineResult {
        q,
        ind,
        lhs,
        rhs,
        restructured,
        eer,
        db,
        db_before,
        log,
        warnings,
        provenance: Vec::new(),
        stats,
        stage_errors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::AutoOracle;
    use dbre_relational::normal_forms::{analyze, NormalForm};
    use dbre_sql::Catalog;

    /// A miniature legacy system: customers embedded in orders.
    fn legacy() -> (Database, Vec<ProgramSource>) {
        let mut cat = Catalog::new();
        cat.load_script(
            "CREATE TABLE Customer (cid INT UNIQUE, cname VARCHAR(30));
             CREATE TABLE Orders (oid INT UNIQUE, cust INT, cname VARCHAR(30), amount INT);
             INSERT INTO Customer VALUES (1, 'ann'), (2, 'bob'), (3, 'cid');
             INSERT INTO Orders VALUES (10, 1, 'ann', 5), (11, 1, 'ann', 7), (12, 2, 'bob', 3);",
        )
        .unwrap();
        let programs = vec![ProgramSource::sql(
            "report",
            "SELECT cname FROM Orders o, Customer c WHERE o.cust = c.cid;",
        )];
        (cat.into_database(), programs)
    }

    #[test]
    fn end_to_end_produces_3nf_and_eer() {
        let (db, programs) = legacy();
        let mut oracle = AutoOracle::default();
        let result = run_with_programs(db, &programs, &mut oracle, &PipelineOptions::default());
        // Q extracted.
        assert_eq!(result.q.len(), 1);
        // Orders[cust] << Customer[cid] elicited.
        assert_eq!(result.ind.inds.len(), 1);
        // Orders.cust is a candidate LHS; cust -> cname discovered.
        // (Stage outputs render against the pre-restruct snapshot.)
        assert_eq!(result.rhs.fds.len(), 1);
        assert_eq!(
            result.rhs.fds[0].render(&result.db_before.schema),
            "Orders: cust -> cname"
        );
        // Restructured: Orders lost cname.
        let orders = result.db.rel("Orders").unwrap();
        assert_eq!(result.db.schema.relation(orders).arity(), 3);
        // Every relation of the result is in 3NF w.r.t. the re-homed FDs.
        for (rel, relation) in result.db.schema.iter() {
            let fds: Vec<_> = result
                .restructured
                .fds
                .iter()
                .filter(|f| f.rel == rel)
                .cloned()
                .collect();
            let report = analyze(rel, &relation.all_attrs(), &fds);
            assert!(
                report.form >= NormalForm::Third,
                "{} not 3NF",
                relation.name
            );
        }
        // EER produced with a binary relationship Orders–<new rel>.
        assert!(!result.eer.entities.is_empty());
        assert!(!result.restructured.ric.is_empty());
        // All RIC inclusions hold in the restructured extension.
        for ind in &result.restructured.ric {
            assert!(result.db.ind_holds(ind));
        }
    }

    #[test]
    fn pipeline_with_explicit_q_matches_programs_path() {
        let (db, programs) = legacy();
        let extraction =
            dbre_extract::extract_programs(&db.schema, &programs, &ExtractConfig::default());
        let mut o1 = AutoOracle::default();
        let r1 = run_with_q(db, &extraction.q(), &mut o1, &PipelineOptions::default());

        let (db2, programs2) = legacy();
        let mut o2 = AutoOracle::default();
        let r2 = run_with_programs(db2, &programs2, &mut o2, &PipelineOptions::default());
        assert_eq!(r1.ind.inds, r2.ind.inds);
        assert_eq!(r1.rhs.fds, r2.rhs.fds);
        assert_eq!(r1.eer, r2.eer);
    }

    #[test]
    fn provenance_traces_joins_to_programs() {
        let (db, programs) = legacy();
        let mut oracle = AutoOracle::default();
        let result = run_with_programs(db, &programs, &mut oracle, &PipelineOptions::default());
        assert_eq!(result.provenance.len(), 1);
        let evidence = result.evidence_for(&result.q[0]);
        assert_eq!(evidence, vec!["report"]);
        // Unknown joins yield no evidence (and no panic).
        let flipped =
            EquiJoin::try_new(result.q[0].right.clone(), result.q[0].left.clone()).unwrap();
        assert_eq!(result.evidence_for(&flipped), vec!["report"]);
    }

    #[test]
    fn key_inference_enables_undeclared_dictionaries() {
        // Same legacy system, but the ancient DBMS never supported
        // UNIQUE: without K the RHS pruning degrades and RIC detection
        // (key-based right-hand sides) finds nothing. Inference
        // restores both.
        let mut cat = Catalog::new();
        cat.load_script(
            "CREATE TABLE Customer (cid INT, cname VARCHAR(30));
             CREATE TABLE Orders (oid INT, cust INT, cname VARCHAR(30));
             INSERT INTO Customer VALUES (1, 'ann'), (2, 'bob'), (3, 'cid');
             INSERT INTO Orders VALUES (10, 1, 'ann'), (11, 1, 'ann'), (12, 2, 'bob');",
        )
        .unwrap();
        let db = cat.into_database();
        assert!(db.constraints.keys.is_empty());
        let programs = vec![ProgramSource::sql(
            "report",
            "SELECT cname FROM Orders o, Customer c WHERE o.cust = c.cid;",
        )];

        let mut oracle = AutoOracle::default();
        let opts = PipelineOptions {
            infer_missing_keys: true,
            ..Default::default()
        };
        let result = run_with_programs(db, &programs, &mut oracle, &opts);
        // Keys inferred for both relations (cid, oid are unique).
        assert!(
            result
                .log
                .iter()
                .filter(|r| r.step == "Key inference")
                .count()
                >= 2
        );
        // The FK became a referential integrity constraint again.
        assert!(!result.restructured.ric.is_empty());
        assert_eq!(result.rhs.fds.len(), 1);
    }

    #[test]
    fn malformed_q_skipped_with_warnings() {
        use dbre_relational::attr::AttrId;
        use dbre_relational::deps::IndSide;
        use dbre_relational::schema::RelId;

        let (db, _) = legacy();
        let customer = db.rel("Customer").unwrap();
        let orders = db.rel("Orders").unwrap();
        // Struct literals bypass the EquiJoin::try_new guard — exactly
        // what an external caller assembling Q by hand can do.
        let bad_arity = EquiJoin {
            left: IndSide::new(orders, vec![AttrId(1), AttrId(2)]),
            right: IndSide::single(customer, AttrId(0)),
        };
        let bad_attr = EquiJoin {
            left: IndSide::single(orders, AttrId(9)),
            right: IndSide::single(customer, AttrId(0)),
        };
        let bad_rel = EquiJoin {
            left: IndSide::single(RelId(99), AttrId(0)),
            right: IndSide::single(customer, AttrId(0)),
        };
        let empty_attrs = EquiJoin {
            left: IndSide::new(orders, vec![]),
            right: IndSide::new(customer, vec![]),
        };
        let good = EquiJoin::try_new(
            IndSide::single(orders, AttrId(1)),
            IndSide::single(customer, AttrId(0)),
        )
        .unwrap();
        let mut oracle = AutoOracle::default();
        let result = run_with_q(
            db,
            &[bad_arity, bad_attr, bad_rel, empty_attrs, good],
            &mut oracle,
            &PipelineOptions::default(),
        );
        assert_eq!(result.q.len(), 1, "only the well-formed join survives");
        assert_eq!(result.warnings.len(), 4, "{:?}", result.warnings);
        assert!(result
            .warnings
            .iter()
            .all(|w| w.contains("skipping malformed join")));
        assert_eq!(result.ind.inds.len(), 1);
    }

    #[test]
    fn stats_record_stages_and_counters() {
        let (db, programs) = legacy();
        let mut oracle = AutoOracle::default();
        let result = run_with_programs(db, &programs, &mut oracle, &PipelineOptions::default());
        let names: Vec<&str> = result.stats.stage_timings.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "ind-discovery",
                "lhs-discovery",
                "rhs-discovery",
                "restruct",
                "translate"
            ]
        );
        assert!(result.stats.counters.cache_misses > 0, "engine was used");
        assert!(
            result.stats.counters.cache_hits > 0,
            "join stats are pre-collected then re-read: {:?}",
            result.stats.counters
        );
        assert!(result.stats.counters.rows_scanned > 0);
        assert!(result.stats.total() >= result.stats.stage_timings[0].1);
    }

    #[test]
    fn log_merges_all_stages() {
        let (db, programs) = legacy();
        let mut oracle = AutoOracle::default();
        let result = run_with_programs(db, &programs, &mut oracle, &PipelineOptions::default());
        // At least the IND elicitation and the FD split naming appear.
        assert!(result
            .log
            .iter()
            .any(|r| r.step.starts_with("IND-Discovery")));
        assert!(result.log.iter().any(|r| r.step.starts_with("Restruct")));
    }
}
