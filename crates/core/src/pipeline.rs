//! End-to-end reverse-engineering pipeline.
//!
//! Chains the paper's method over a legacy database:
//!
//! 1. derive `K` and `N` from the data dictionary (already inside the
//!    [`Database`] when loaded through `dbre_sql::Catalog`);
//! 2. extract `Q` from application programs (`dbre_extract`) — or take
//!    a prepared `Q`;
//! 3. IND-Discovery (§6.1);
//! 4. LHS-Discovery (§6.2.1);
//! 5. RHS-Discovery (§6.2.2);
//! 6. Restruct (§7);
//! 7. Translate (§7) into an EER schema.
//!
//! Every expert interaction is recorded in one merged audit log.

use crate::eer::EerSchema;
use crate::ind_discovery::IndDiscovery;
use crate::lhs_discovery::LhsDiscovery;
use crate::oracle::{DecisionRecord, Oracle};
use crate::restruct::Restructured;
use crate::rhs_discovery::{RhsDiscovery, RhsOptions};
use crate::session::{stages, BackendChoice, DbreSession};
use dbre_extract::{extract_programs, ExtractConfig, ProgramSource};
use dbre_relational::counting::EquiJoin;
use dbre_relational::database::Database;
use dbre_relational::sketch::{SketchMode, SketchPruneStats};
use dbre_relational::stats::StatsCounters;
use dbre_relational::BackendExecStats;
use dbre_relational::DbreError;
use dbre_relational::PageCacheStats;
use dbre_relational::RelId;
use dbre_relational::SpillCacheStats;
use dbre_relational::SpilledTable;
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Equi-join extraction options.
    pub extract: ExtractConfig,
    /// RHS-Discovery pruning options.
    pub rhs: RhsOptions,
    /// Infer candidate keys from the extension for relations whose
    /// dictionary declares none (pre-`UNIQUE` DBMSs — an extension
    /// beyond the paper's §4 assumption that `K` is always available).
    /// The inferred key's width is bounded to 3 columns.
    pub infer_missing_keys: bool,
    /// Which counting backend serves the `‖·‖` probes.
    pub backend: BackendChoice,
    /// Buffer-pool capacity in bytes for the paged backend
    /// (`--page-cache` on the CLI; `None` = the 64 MiB default).
    /// Ignored by the in-memory backends.
    pub page_cache: Option<usize>,
    /// Streamed-ingest tables (`import_csv_spilled`): spilled code
    /// pages adopted by the paged backend at session construction, for
    /// relations whose [`Database`] extension is a *streamed
    /// extension* (row count known, no in-memory values). Non-empty
    /// `spilled` forces the paged backend regardless of `backend` —
    /// no other backend can answer for pages-only extensions.
    pub spilled: Vec<(RelId, Arc<SpilledTable>)>,
    /// Sketch-accelerated discovery (`--sketch` on the CLI,
    /// `DBRE_SKETCH` in the environment): HLL/Bloom column sketches
    /// prune provably-decided candidates before the exact kernels run.
    /// Results are byte-identical either way — sketches only suppress
    /// work whose outcome they can prove.
    pub sketch: SketchMode,
}

impl Default for PipelineOptions {
    /// Defaults honor the `DBRE_BACKEND` environment variable (see
    /// [`BackendChoice::from_env`]) so an entire test suite can be
    /// re-run over a different backend without code changes.
    fn default() -> Self {
        PipelineOptions {
            extract: ExtractConfig::default(),
            rhs: RhsOptions::default(),
            infer_missing_keys: false,
            backend: BackendChoice::from_env(),
            page_cache: None,
            spilled: Vec::new(),
            sketch: SketchMode::from_env(),
        }
    }
}

/// Instrumentation for one pipeline run: wall-clock per stage plus the
/// counting-engine counters.
#[derive(Debug, Clone, Default)]
pub struct PipelineStats {
    /// `(stage, wall time)` in execution order.
    pub stage_timings: Vec<(&'static str, Duration)>,
    /// Counting-engine observability: cache hits/misses and rows
    /// scanned across all `‖·‖` / FD / partition queries of the run.
    pub counters: StatsCounters,
    /// Name of the counting backend that served the run
    /// ([`BackendChoice::name`]).
    pub backend: &'static str,
    /// Execution-strategy counters from the backend: batch-executor
    /// operator batches vs tuple-interpreter fallbacks, and — crucially
    /// — how many probes failed outright and were silently served by
    /// the reference fallback. Nonzero failures surface as a CLI
    /// warning; all-zero for single-strategy backends.
    pub backend_exec: BackendExecStats,
    /// Buffer-pool counters from the paged backend: page hits, misses
    /// and LRU evictions across the run. All-zero for the in-memory
    /// backends.
    pub page_cache: PageCacheStats,
    /// Persistent spill-cache counters from streamed ingest: tables
    /// adopted from a warm `--spill-dir` entry (encode skipped) vs
    /// tables encoded from source. All-zero when nothing streamed.
    pub spill_cache: SpillCacheStats,
    /// Sketch-prefilter counters summed over the discovery stages:
    /// candidates examined, proofs that pruned the exact kernel,
    /// survivors exactly verified, and the mean HLL-vs-exact distinct
    /// error over consulted columns. All-zero with sketches off.
    pub sketch: SketchPruneStats,
}

impl PipelineStats {
    /// Total wall time across the recorded stages.
    pub fn total(&self) -> Duration {
        self.stage_timings.iter().map(|(_, d)| *d).sum()
    }
}

/// One failed (degraded) stage: which stage, and the typed error it
/// failed with. The stage's output was replaced by its empty default
/// and the run continued.
#[derive(Debug, Clone)]
pub struct StageError {
    /// Stage name, matching [`PipelineStats::stage_timings`].
    pub stage: &'static str,
    /// The typed failure.
    pub error: DbreError,
}

impl fmt::Display for StageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage `{}` failed: {}", self.stage, self.error)
    }
}

/// Everything the pipeline produced, stage by stage.
#[derive(Debug)]
pub struct PipelineResult {
    /// The set `Q` that drove IND-Discovery.
    pub q: Vec<EquiJoin>,
    /// Stage 3 output.
    pub ind: IndDiscovery,
    /// Stage 4 output.
    pub lhs: LhsDiscovery,
    /// Stage 5 output.
    pub rhs: RhsDiscovery,
    /// Stage 6 output.
    pub restructured: Restructured,
    /// Stage 7 output.
    pub eer: EerSchema,
    /// The database after restructuring (3NF schema + extension).
    pub db: Database,
    /// Snapshot taken *before* Restruct (after IND-Discovery added the
    /// `S` relations): the schema the stage-3/4/5 outputs reference.
    /// Render `ind`, `lhs` and `rhs` against this one — Restruct
    /// rewrites attribute ids.
    pub db_before: Database,
    /// Merged audit log across stages.
    pub log: Vec<DecisionRecord>,
    /// Warnings: malformed `Q` elements that were skipped, plus
    /// extraction warnings (stage 2) when running from programs.
    pub warnings: Vec<String>,
    /// Instrumentation: per-stage wall time and counting-engine
    /// counters.
    pub stats: PipelineStats,
    /// Provenance of each element of `Q` (program name, statement
    /// index), parallel-keyed by canonical join; empty when `Q` was
    /// supplied directly. This is the paper's promise that the expert
    /// can trace every presumption back to the code exhibiting it.
    pub provenance: Vec<(EquiJoin, Vec<dbre_extract::Provenance>)>,
    /// Stages that failed and were degraded: each failed stage yields
    /// its empty default output, a warning, and an entry here. Empty
    /// on a clean run — see [`PipelineResult::is_complete`].
    pub stage_errors: Vec<StageError>,
}

impl PipelineResult {
    /// Did every stage complete without degradation?
    pub fn is_complete(&self) -> bool {
        self.stage_errors.is_empty()
    }

    /// The programs that exhibited `join` (empty when unknown).
    pub fn evidence_for(&self, join: &EquiJoin) -> Vec<&str> {
        let canonical = join.canonical();
        self.provenance
            .iter()
            .find(|(j, _)| *j == canonical)
            .map(|(_, ps)| ps.iter().map(|p| p.program.as_str()).collect())
            .unwrap_or_default()
    }
}

/// Runs the pipeline from application programs: extracts `Q`, then
/// calls [`run_with_q`].
///
/// `db` is consumed: the returned [`PipelineResult::db`] is the
/// restructured database.
pub fn run_with_programs(
    db: Database,
    programs: &[ProgramSource],
    oracle: &mut dyn Oracle,
    options: &PipelineOptions,
) -> PipelineResult {
    let extraction = extract_programs(&db.schema, programs, &options.extract);
    let mut result = run_with_q(db, &extraction.q(), oracle, options);
    // Extend — run_with_q may already have recorded Q-validation
    // warnings of its own.
    result.warnings.extend(extraction.warnings);
    result.provenance = extraction
        .joins
        .into_iter()
        .map(|j| (j.join, j.provenance))
        .collect();
    result
}

/// Runs the pipeline from a prepared set `Q`.
///
/// Malformed elements of `Q` — mismatched side arity, out-of-bounds
/// relation or attribute ids, empty attribute lists — are skipped with
/// a warning in [`PipelineResult::warnings`] instead of panicking
/// deep inside counting.
///
/// The run itself is infallible: a stage that returns a typed error
/// or panics (including an expert aborting the session, modeled as an
/// [`OracleAbort`](crate::oracle::OracleAbort) unwind) is *degraded* —
/// its output is left at the empty default, the failure is recorded in
/// [`PipelineResult::stage_errors`] and mirrored as a warning, and
/// the remaining stages run over whatever survived
/// ([`DbreSession::run_stage`] is the single containment site). The
/// audit log and the pre-restruct snapshot stay coherent with the
/// stages that did complete.
pub fn run_with_q(
    db: Database,
    q: &[EquiJoin],
    oracle: &mut dyn Oracle,
    options: &PipelineOptions,
) -> PipelineResult {
    let mut session = DbreSession::new(db, oracle, options.clone());
    session.admit_q(q);
    for stage in stages(&session.options) {
        session.run_stage(stage.as_ref());
    }
    session.into_result()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::AutoOracle;
    use dbre_relational::normal_forms::{analyze, NormalForm};
    use dbre_sql::Catalog;

    /// A miniature legacy system: customers embedded in orders.
    fn legacy() -> (Database, Vec<ProgramSource>) {
        let mut cat = Catalog::new();
        cat.load_script(
            "CREATE TABLE Customer (cid INT UNIQUE, cname VARCHAR(30));
             CREATE TABLE Orders (oid INT UNIQUE, cust INT, cname VARCHAR(30), amount INT);
             INSERT INTO Customer VALUES (1, 'ann'), (2, 'bob'), (3, 'cid');
             INSERT INTO Orders VALUES (10, 1, 'ann', 5), (11, 1, 'ann', 7), (12, 2, 'bob', 3);",
        )
        .unwrap();
        let programs = vec![ProgramSource::sql(
            "report",
            "SELECT cname FROM Orders o, Customer c WHERE o.cust = c.cid;",
        )];
        (cat.into_database(), programs)
    }

    #[test]
    fn end_to_end_produces_3nf_and_eer() {
        let (db, programs) = legacy();
        let mut oracle = AutoOracle::default();
        let result = run_with_programs(db, &programs, &mut oracle, &PipelineOptions::default());
        // Q extracted.
        assert_eq!(result.q.len(), 1);
        // Orders[cust] << Customer[cid] elicited.
        assert_eq!(result.ind.inds.len(), 1);
        // Orders.cust is a candidate LHS; cust -> cname discovered.
        // (Stage outputs render against the pre-restruct snapshot.)
        assert_eq!(result.rhs.fds.len(), 1);
        assert_eq!(
            result.rhs.fds[0].render(&result.db_before.schema),
            "Orders: cust -> cname"
        );
        // Restructured: Orders lost cname.
        let orders = result.db.rel("Orders").unwrap();
        assert_eq!(result.db.schema.relation(orders).arity(), 3);
        // Every relation of the result is in 3NF w.r.t. the re-homed FDs.
        for (rel, relation) in result.db.schema.iter() {
            let fds: Vec<_> = result
                .restructured
                .fds
                .iter()
                .filter(|f| f.rel == rel)
                .cloned()
                .collect();
            let report = analyze(rel, &relation.all_attrs(), &fds);
            assert!(
                report.form >= NormalForm::Third,
                "{} not 3NF",
                relation.name
            );
        }
        // EER produced with a binary relationship Orders–<new rel>.
        assert!(!result.eer.entities.is_empty());
        assert!(!result.restructured.ric.is_empty());
        // All RIC inclusions hold in the restructured extension.
        for ind in &result.restructured.ric {
            assert!(result.db.ind_holds(ind));
        }
    }

    #[test]
    fn pipeline_with_explicit_q_matches_programs_path() {
        let (db, programs) = legacy();
        let extraction =
            dbre_extract::extract_programs(&db.schema, &programs, &ExtractConfig::default());
        let mut o1 = AutoOracle::default();
        let r1 = run_with_q(db, &extraction.q(), &mut o1, &PipelineOptions::default());

        let (db2, programs2) = legacy();
        let mut o2 = AutoOracle::default();
        let r2 = run_with_programs(db2, &programs2, &mut o2, &PipelineOptions::default());
        assert_eq!(r1.ind.inds, r2.ind.inds);
        assert_eq!(r1.rhs.fds, r2.rhs.fds);
        assert_eq!(r1.eer, r2.eer);
    }

    #[test]
    fn provenance_traces_joins_to_programs() {
        let (db, programs) = legacy();
        let mut oracle = AutoOracle::default();
        let result = run_with_programs(db, &programs, &mut oracle, &PipelineOptions::default());
        assert_eq!(result.provenance.len(), 1);
        let evidence = result.evidence_for(&result.q[0]);
        assert_eq!(evidence, vec!["report"]);
        // Unknown joins yield no evidence (and no panic).
        let flipped =
            EquiJoin::try_new(result.q[0].right.clone(), result.q[0].left.clone()).unwrap();
        assert_eq!(result.evidence_for(&flipped), vec!["report"]);
    }

    #[test]
    fn key_inference_enables_undeclared_dictionaries() {
        // Same legacy system, but the ancient DBMS never supported
        // UNIQUE: without K the RHS pruning degrades and RIC detection
        // (key-based right-hand sides) finds nothing. Inference
        // restores both.
        let mut cat = Catalog::new();
        cat.load_script(
            "CREATE TABLE Customer (cid INT, cname VARCHAR(30));
             CREATE TABLE Orders (oid INT, cust INT, cname VARCHAR(30));
             INSERT INTO Customer VALUES (1, 'ann'), (2, 'bob'), (3, 'cid');
             INSERT INTO Orders VALUES (10, 1, 'ann'), (11, 1, 'ann'), (12, 2, 'bob');",
        )
        .unwrap();
        let db = cat.into_database();
        assert!(db.constraints.keys.is_empty());
        let programs = vec![ProgramSource::sql(
            "report",
            "SELECT cname FROM Orders o, Customer c WHERE o.cust = c.cid;",
        )];

        let mut oracle = AutoOracle::default();
        let opts = PipelineOptions {
            infer_missing_keys: true,
            ..Default::default()
        };
        let result = run_with_programs(db, &programs, &mut oracle, &opts);
        // Keys inferred for both relations (cid, oid are unique).
        assert!(
            result
                .log
                .iter()
                .filter(|r| r.step == "Key inference")
                .count()
                >= 2
        );
        // The FK became a referential integrity constraint again.
        assert!(!result.restructured.ric.is_empty());
        assert_eq!(result.rhs.fds.len(), 1);
    }

    #[test]
    fn malformed_q_skipped_with_warnings() {
        use dbre_relational::attr::AttrId;
        use dbre_relational::deps::IndSide;
        use dbre_relational::schema::RelId;

        let (db, _) = legacy();
        let customer = db.rel("Customer").unwrap();
        let orders = db.rel("Orders").unwrap();
        // Struct literals bypass the EquiJoin::try_new guard — exactly
        // what an external caller assembling Q by hand can do.
        let bad_arity = EquiJoin {
            left: IndSide::new(orders, vec![AttrId(1), AttrId(2)]),
            right: IndSide::single(customer, AttrId(0)),
        };
        let bad_attr = EquiJoin {
            left: IndSide::single(orders, AttrId(9)),
            right: IndSide::single(customer, AttrId(0)),
        };
        let bad_rel = EquiJoin {
            left: IndSide::single(RelId(99), AttrId(0)),
            right: IndSide::single(customer, AttrId(0)),
        };
        let empty_attrs = EquiJoin {
            left: IndSide::new(orders, vec![]),
            right: IndSide::new(customer, vec![]),
        };
        let good = EquiJoin::try_new(
            IndSide::single(orders, AttrId(1)),
            IndSide::single(customer, AttrId(0)),
        )
        .unwrap();
        let mut oracle = AutoOracle::default();
        let result = run_with_q(
            db,
            &[bad_arity, bad_attr, bad_rel, empty_attrs, good],
            &mut oracle,
            &PipelineOptions::default(),
        );
        assert_eq!(result.q.len(), 1, "only the well-formed join survives");
        assert_eq!(result.warnings.len(), 4, "{:?}", result.warnings);
        assert!(result
            .warnings
            .iter()
            .all(|w| w.contains("skipping malformed join")));
        assert_eq!(result.ind.inds.len(), 1);
    }

    #[test]
    fn stats_record_stages_and_counters() {
        let (db, programs) = legacy();
        let mut oracle = AutoOracle::default();
        let result = run_with_programs(db, &programs, &mut oracle, &PipelineOptions::default());
        let names: Vec<&str> = result.stats.stage_timings.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            vec![
                "ind-discovery",
                "lhs-discovery",
                "rhs-discovery",
                "restruct",
                "translate"
            ]
        );
        assert!(result.stats.counters.cache_misses > 0, "engine was used");
        assert!(
            result.stats.counters.cache_hits > 0,
            "join stats are pre-collected then re-read: {:?}",
            result.stats.counters
        );
        assert!(result.stats.counters.rows_scanned > 0);
        assert!(result.stats.total() >= result.stats.stage_timings[0].1);
        assert_eq!(
            result.stats.backend,
            PipelineOptions::default().backend.name(),
            "the run reports the backend that served it"
        );
    }

    #[test]
    fn log_order_matches_stage_execution_order() {
        // All DecisionRecords flow through DbreSession::record, so the
        // merged log must be grouped by stage, in execution order:
        // key inference, then IND-Discovery, then RHS-Discovery, then
        // Restruct (LHS-Discovery and Translate never record).
        let mut cat = Catalog::new();
        cat.load_script(
            "CREATE TABLE Customer (cid INT, cname VARCHAR(30));
             CREATE TABLE Orders (oid INT, cust INT, cname VARCHAR(30));
             INSERT INTO Customer VALUES (1, 'ann'), (2, 'bob'), (3, 'cid');
             INSERT INTO Orders VALUES (10, 1, 'ann'), (11, 1, 'ann'), (12, 2, 'bob');",
        )
        .unwrap();
        let db = cat.into_database();
        let programs = vec![ProgramSource::sql(
            "report",
            "SELECT cname FROM Orders o, Customer c WHERE o.cust = c.cid;",
        )];
        let mut oracle = AutoOracle::default();
        let opts = PipelineOptions {
            infer_missing_keys: true,
            ..Default::default()
        };
        let result = run_with_programs(db, &programs, &mut oracle, &opts);
        assert!(result.is_complete(), "{:?}", result.stage_errors);

        let rank = |step: &str| -> usize {
            if step == "Key inference" {
                0
            } else if step.starts_with("IND-Discovery") {
                1
            } else if step.starts_with("RHS-Discovery") {
                2
            } else if step.starts_with("Restruct") {
                3
            } else {
                panic!("unexpected audit step {step:?}")
            }
        };
        let ranks: Vec<usize> = result.log.iter().map(|r| rank(&r.step)).collect();
        assert!(
            ranks.windows(2).all(|w| w[0] <= w[1]),
            "log interleaves stages: {:?}",
            result
                .log
                .iter()
                .map(|r| r.step.as_str())
                .collect::<Vec<_>>()
        );
        let distinct: std::collections::BTreeSet<usize> = ranks.iter().copied().collect();
        assert!(
            distinct.len() >= 3,
            "expected records from at least three stages, got {distinct:?}"
        );
    }

    #[test]
    fn streamed_pipeline_matches_materialized() {
        use dbre_relational::bufpool::BufferPool;
        use dbre_relational::csv::{export_csv, import_csv_spilled};
        use dbre_relational::spill::validate_spilled;

        // Materialized baseline over the paged backend.
        let (db, programs) = legacy();
        let extraction =
            dbre_extract::extract_programs(&db.schema, &programs, &ExtractConfig::default());
        let q = extraction.q();
        let paged_opts = PipelineOptions {
            backend: BackendChoice::Paged,
            ..Default::default()
        };
        let mut o1 = AutoOracle::default();
        let baseline = run_with_q(db, &q, &mut o1, &paged_opts);
        assert!(baseline.is_complete(), "{:?}", baseline.stage_errors);

        // Same extension, streamed: export each table to CSV, rebuild
        // the schema empty, ingest via the spilled path.
        let (src, _) = legacy();
        let mut streamed_db = Database::new();
        for (_, relation) in src.schema.iter() {
            streamed_db.add_relation(relation.clone()).unwrap();
        }
        streamed_db.constraints = src.constraints.clone();
        let tmp = std::env::temp_dir();
        let mut spilled = Vec::new();
        let pool = BufferPool::default();
        for (rel, relation) in src.schema.iter() {
            let csv = export_csv(&src, rel);
            let path = tmp.join(format!(
                "dbre-streamed-e2e-{}-{}.csv",
                std::process::id(),
                relation.name
            ));
            std::fs::write(&path, csv).unwrap();
            let srel = streamed_db.rel(&relation.name).unwrap();
            let table = import_csv_spilled(&mut streamed_db, srel, &path, None).unwrap();
            assert!(!streamed_db.table(srel).is_materialized());
            validate_spilled(&streamed_db, srel, &table, &pool).unwrap();
            spilled.push((srel, Arc::new(table)));
            let _ = std::fs::remove_file(path);
        }
        let opts = PipelineOptions {
            backend: BackendChoice::Paged,
            spilled,
            ..Default::default()
        };
        let mut o2 = AutoOracle::default();
        let result = run_with_q(streamed_db, &q, &mut o2, &opts);
        assert!(result.is_complete(), "{:?}", result.stage_errors);

        // Identical discovery and restructuring output.
        assert_eq!(baseline.ind.inds, result.ind.inds);
        assert_eq!(baseline.rhs.fds, result.rhs.fds);
        assert_eq!(baseline.eer, result.eer);
        // Restruct hydrated the streamed tables before rewriting.
        for (rel, _) in result.db.schema.iter() {
            assert!(result.db.table(rel).is_materialized());
        }
        assert_eq!(
            result.db.table(result.db.rel("Orders").unwrap()),
            baseline.db.table(baseline.db.rel("Orders").unwrap()),
        );
        // No silent reference fallbacks on the streamed run.
        assert_eq!(result.stats.backend_exec.fallback_failures, 0);
    }

    #[test]
    fn spilled_with_wrong_backend_is_overridden_with_a_warning() {
        use dbre_relational::csv::import_csv_spilled;

        let (src, _) = legacy();
        let mut db = Database::new();
        for (_, relation) in src.schema.iter() {
            db.add_relation(relation.clone()).unwrap();
        }
        let rel = db.rel("Customer").unwrap();
        let path =
            std::env::temp_dir().join(format!("dbre-streamed-override-{}.csv", std::process::id()));
        std::fs::write(
            &path,
            dbre_relational::csv::export_csv(&src, src.rel("Customer").unwrap()),
        )
        .unwrap();
        let table = import_csv_spilled(&mut db, rel, &path, None).unwrap();
        let _ = std::fs::remove_file(path);

        let opts = PipelineOptions {
            backend: BackendChoice::Encoded,
            spilled: vec![(rel, Arc::new(table))],
            ..Default::default()
        };
        let mut oracle = AutoOracle::default();
        let result = run_with_q(db, &[], &mut oracle, &opts);
        assert_eq!(result.stats.backend, "paged", "paged backend forced");
        assert!(
            result
                .warnings
                .iter()
                .any(|w| w.contains("require the paged backend")),
            "{:?}",
            result.warnings
        );
        assert!(result.is_complete(), "{:?}", result.stage_errors);
    }

    #[test]
    fn log_merges_all_stages() {
        let (db, programs) = legacy();
        let mut oracle = AutoOracle::default();
        let result = run_with_programs(db, &programs, &mut oracle, &PipelineOptions::default());
        // At least the IND elicitation and the FD split naming appear.
        assert!(result
            .log
            .iter()
            .any(|r| r.step.starts_with("IND-Discovery")));
        assert!(result.log.iter().any(|r| r.step.starts_with("Restruct")));
    }
}
