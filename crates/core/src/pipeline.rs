//! End-to-end reverse-engineering pipeline.
//!
//! Chains the paper's method over a legacy database:
//!
//! 1. derive `K` and `N` from the data dictionary (already inside the
//!    [`Database`] when loaded through `dbre_sql::Catalog`);
//! 2. extract `Q` from application programs (`dbre_extract`) — or take
//!    a prepared `Q`;
//! 3. IND-Discovery (§6.1);
//! 4. LHS-Discovery (§6.2.1);
//! 5. RHS-Discovery (§6.2.2);
//! 6. Restruct (§7);
//! 7. Translate (§7) into an EER schema.
//!
//! Every expert interaction is recorded in one merged audit log.

use crate::eer::EerSchema;
use crate::ind_discovery::{ind_discovery, IndDiscovery};
use crate::lhs_discovery::{lhs_discovery, LhsDiscovery};
use crate::oracle::{DecisionRecord, Oracle};
use crate::restruct::{restruct, Restructured};
use crate::rhs_discovery::{rhs_discovery, RhsDiscovery, RhsOptions};
use crate::translate::translate;
use dbre_extract::{extract_programs, ExtractConfig, ProgramSource};
use dbre_relational::counting::EquiJoin;
use dbre_relational::database::Database;

/// Pipeline configuration.
#[derive(Debug, Clone, Default)]
pub struct PipelineOptions {
    /// Equi-join extraction options.
    pub extract: ExtractConfig,
    /// RHS-Discovery pruning options.
    pub rhs: RhsOptions,
    /// Infer candidate keys from the extension for relations whose
    /// dictionary declares none (pre-`UNIQUE` DBMSs — an extension
    /// beyond the paper's §4 assumption that `K` is always available).
    /// The inferred key's width is bounded to 3 columns.
    pub infer_missing_keys: bool,
}

/// Everything the pipeline produced, stage by stage.
#[derive(Debug)]
pub struct PipelineResult {
    /// The set `Q` that drove IND-Discovery.
    pub q: Vec<EquiJoin>,
    /// Stage 3 output.
    pub ind: IndDiscovery,
    /// Stage 4 output.
    pub lhs: LhsDiscovery,
    /// Stage 5 output.
    pub rhs: RhsDiscovery,
    /// Stage 6 output.
    pub restructured: Restructured,
    /// Stage 7 output.
    pub eer: EerSchema,
    /// The database after restructuring (3NF schema + extension).
    pub db: Database,
    /// Snapshot taken *before* Restruct (after IND-Discovery added the
    /// `S` relations): the schema the stage-3/4/5 outputs reference.
    /// Render `ind`, `lhs` and `rhs` against this one — Restruct
    /// rewrites attribute ids.
    pub db_before: Database,
    /// Merged audit log across stages.
    pub log: Vec<DecisionRecord>,
    /// Extraction warnings (stage 2), empty when `Q` was supplied.
    pub warnings: Vec<String>,
    /// Provenance of each element of `Q` (program name, statement
    /// index), parallel-keyed by canonical join; empty when `Q` was
    /// supplied directly. This is the paper's promise that the expert
    /// can trace every presumption back to the code exhibiting it.
    pub provenance: Vec<(EquiJoin, Vec<dbre_extract::Provenance>)>,
}

impl PipelineResult {
    /// The programs that exhibited `join` (empty when unknown).
    pub fn evidence_for(&self, join: &EquiJoin) -> Vec<&str> {
        let canonical = join.canonical();
        self.provenance
            .iter()
            .find(|(j, _)| *j == canonical)
            .map(|(_, ps)| ps.iter().map(|p| p.program.as_str()).collect())
            .unwrap_or_default()
    }
}

/// Runs the pipeline from application programs: extracts `Q`, then
/// calls [`run_with_q`].
///
/// `db` is consumed: the returned [`PipelineResult::db`] is the
/// restructured database.
pub fn run_with_programs(
    db: Database,
    programs: &[ProgramSource],
    oracle: &mut dyn Oracle,
    options: &PipelineOptions,
) -> PipelineResult {
    let extraction = extract_programs(&db.schema, programs, &options.extract);
    let mut result = run_with_q(db, &extraction.q(), oracle, options);
    result.warnings = extraction.warnings;
    result.provenance = extraction
        .joins
        .into_iter()
        .map(|j| (j.join, j.provenance))
        .collect();
    result
}

/// Runs the pipeline from a prepared set `Q`.
pub fn run_with_q(
    mut db: Database,
    q: &[EquiJoin],
    oracle: &mut dyn Oracle,
    options: &PipelineOptions,
) -> PipelineResult {
    let mut log = Vec::new();
    if options.infer_missing_keys {
        for (rel, key) in dbre_mine::infer_missing_keys(&mut db, Some(3)) {
            let relation = db.schema.relation(rel);
            log.push(DecisionRecord::new(
                "Key inference",
                relation.name.clone(),
                format!("inferred key {{{}}}", relation.render_set(&key)),
            ));
        }
    }
    let ind = ind_discovery(&mut db, q, oracle);
    let lhs = lhs_discovery(&db, &ind.inds, &ind.new_relations);
    let rhs = rhs_discovery(&db, &lhs, oracle, &options.rhs);
    let db_before = db.clone();
    let restructured = restruct(&mut db, &rhs.fds, &rhs.hidden, &ind.inds, oracle);
    let eer = translate(&db, &restructured.ric);

    log.extend(ind.log.iter().cloned());
    log.extend(rhs.log.iter().cloned());
    log.extend(restructured.log.iter().cloned());

    PipelineResult {
        q: q.to_vec(),
        ind,
        lhs,
        rhs,
        restructured,
        eer,
        db,
        db_before,
        log,
        warnings: Vec::new(),
        provenance: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::AutoOracle;
    use dbre_relational::normal_forms::{analyze, NormalForm};
    use dbre_sql::Catalog;

    /// A miniature legacy system: customers embedded in orders.
    fn legacy() -> (Database, Vec<ProgramSource>) {
        let mut cat = Catalog::new();
        cat.load_script(
            "CREATE TABLE Customer (cid INT UNIQUE, cname VARCHAR(30));
             CREATE TABLE Orders (oid INT UNIQUE, cust INT, cname VARCHAR(30), amount INT);
             INSERT INTO Customer VALUES (1, 'ann'), (2, 'bob'), (3, 'cid');
             INSERT INTO Orders VALUES (10, 1, 'ann', 5), (11, 1, 'ann', 7), (12, 2, 'bob', 3);",
        )
        .unwrap();
        let programs = vec![ProgramSource::sql(
            "report",
            "SELECT cname FROM Orders o, Customer c WHERE o.cust = c.cid;",
        )];
        (cat.into_database(), programs)
    }

    #[test]
    fn end_to_end_produces_3nf_and_eer() {
        let (db, programs) = legacy();
        let mut oracle = AutoOracle::default();
        let result = run_with_programs(
            db,
            &programs,
            &mut oracle,
            &PipelineOptions::default(),
        );
        // Q extracted.
        assert_eq!(result.q.len(), 1);
        // Orders[cust] << Customer[cid] elicited.
        assert_eq!(result.ind.inds.len(), 1);
        // Orders.cust is a candidate LHS; cust -> cname discovered.
        // (Stage outputs render against the pre-restruct snapshot.)
        assert_eq!(result.rhs.fds.len(), 1);
        assert_eq!(
            result.rhs.fds[0].render(&result.db_before.schema),
            "Orders: cust -> cname"
        );
        // Restructured: Orders lost cname.
        let orders = result.db.rel("Orders").unwrap();
        assert_eq!(result.db.schema.relation(orders).arity(), 3);
        // Every relation of the result is in 3NF w.r.t. the re-homed FDs.
        for (rel, relation) in result.db.schema.iter() {
            let fds: Vec<_> = result
                .restructured
                .fds
                .iter()
                .filter(|f| f.rel == rel)
                .cloned()
                .collect();
            let report = analyze(rel, &relation.all_attrs(), &fds);
            assert!(report.form >= NormalForm::Third, "{} not 3NF", relation.name);
        }
        // EER produced with a binary relationship Orders–<new rel>.
        assert!(!result.eer.entities.is_empty());
        assert!(!result.restructured.ric.is_empty());
        // All RIC inclusions hold in the restructured extension.
        for ind in &result.restructured.ric {
            assert!(result.db.ind_holds(ind));
        }
    }

    #[test]
    fn pipeline_with_explicit_q_matches_programs_path() {
        let (db, programs) = legacy();
        let extraction = dbre_extract::extract_programs(
            &db.schema,
            &programs,
            &ExtractConfig::default(),
        );
        let mut o1 = AutoOracle::default();
        let r1 = run_with_q(db, &extraction.q(), &mut o1, &PipelineOptions::default());

        let (db2, programs2) = legacy();
        let mut o2 = AutoOracle::default();
        let r2 = run_with_programs(db2, &programs2, &mut o2, &PipelineOptions::default());
        assert_eq!(r1.ind.inds, r2.ind.inds);
        assert_eq!(r1.rhs.fds, r2.rhs.fds);
        assert_eq!(r1.eer, r2.eer);
    }

    #[test]
    fn provenance_traces_joins_to_programs() {
        let (db, programs) = legacy();
        let mut oracle = AutoOracle::default();
        let result =
            run_with_programs(db, &programs, &mut oracle, &PipelineOptions::default());
        assert_eq!(result.provenance.len(), 1);
        let evidence = result.evidence_for(&result.q[0]);
        assert_eq!(evidence, vec!["report"]);
        // Unknown joins yield no evidence (and no panic).
        let flipped = EquiJoin::new(result.q[0].right.clone(), result.q[0].left.clone());
        assert_eq!(result.evidence_for(&flipped), vec!["report"]);
    }

    #[test]
    fn key_inference_enables_undeclared_dictionaries() {
        // Same legacy system, but the ancient DBMS never supported
        // UNIQUE: without K the RHS pruning degrades and RIC detection
        // (key-based right-hand sides) finds nothing. Inference
        // restores both.
        let mut cat = Catalog::new();
        cat.load_script(
            "CREATE TABLE Customer (cid INT, cname VARCHAR(30));
             CREATE TABLE Orders (oid INT, cust INT, cname VARCHAR(30));
             INSERT INTO Customer VALUES (1, 'ann'), (2, 'bob'), (3, 'cid');
             INSERT INTO Orders VALUES (10, 1, 'ann'), (11, 1, 'ann'), (12, 2, 'bob');",
        )
        .unwrap();
        let db = cat.into_database();
        assert!(db.constraints.keys.is_empty());
        let programs = vec![ProgramSource::sql(
            "report",
            "SELECT cname FROM Orders o, Customer c WHERE o.cust = c.cid;",
        )];

        let mut oracle = AutoOracle::default();
        let opts = PipelineOptions {
            infer_missing_keys: true,
            ..Default::default()
        };
        let result = run_with_programs(db, &programs, &mut oracle, &opts);
        // Keys inferred for both relations (cid, oid are unique).
        assert!(result
            .log
            .iter()
            .filter(|r| r.step == "Key inference")
            .count()
            >= 2);
        // The FK became a referential integrity constraint again.
        assert!(!result.restructured.ric.is_empty());
        assert_eq!(result.rhs.fds.len(), 1);
    }

    #[test]
    fn log_merges_all_stages() {
        let (db, programs) = legacy();
        let mut oracle = AutoOracle::default();
        let result =
            run_with_programs(db, &programs, &mut oracle, &PipelineOptions::default());
        // At least the IND elicitation and the FD split naming appear.
        assert!(result.log.iter().any(|r| r.step.starts_with("IND-Discovery")));
        assert!(result.log.iter().any(|r| r.step.starts_with("Restruct")));
    }
}
