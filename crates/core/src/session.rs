//! The pipeline session: one value owning everything a run threads
//! through its stages, plus the [`Stage`] trait the stages implement.
//!
//! Before this seam existed, `run_with_q` hand-threaded a
//! `(Database, StatsEngine, Oracle, audit log, stage_errors)` tuple
//! through five inlined stage calls, each wrapped in its own copy of
//! the catch-unwind/timing/degradation boilerplate. A [`DbreSession`]
//! owns that state once; [`DbreSession::run_stage`] is the *single*
//! place a stage is timed, panic-guarded, and degraded; and the stages
//! themselves shrink to small [`Stage`] implementations that read
//! their inputs from — and write their outputs back into — the
//! session.
//!
//! The counting seam is chosen by [`BackendChoice`]: every `‖·‖`
//! probe of the run goes through a [`StatsEngine`] memoizing the
//! selected [`CountBackend`](dbre_relational::backend::CountBackend)
//! (reference scans, dictionary-encoded kernels, or generated SQL).

use crate::eer::EerSchema;
use crate::ind_discovery::{ind_discovery_sketched, IndDiscovery};
use crate::lhs_discovery::{lhs_discovery, LhsDiscovery};
use crate::oracle::{DecisionRecord, Oracle, OracleAbort};
use crate::pipeline::{PipelineOptions, PipelineResult, PipelineStats, StageError};
use crate::restruct::{restruct, Restructured};
use crate::rhs_discovery::{rhs_discovery_sketched, RhsDiscovery};
use crate::translate::translate;
use dbre_relational::backend::{BackendExecStats, EncodedBackend, ReferenceBackend};
use dbre_relational::bufpool::PageCacheStats;
use dbre_relational::counting::EquiJoin;
use dbre_relational::database::Database;
use dbre_relational::pages::PagedBackend;
use dbre_relational::spill::SpillCacheStats;
use dbre_relational::stats::{StatsCounters, StatsEngine};
use dbre_relational::DbreError;
use dbre_sql::SqlBackend;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Which counting backend serves the `‖·‖` probes of a run.
///
/// All four are differentially tested against each other; they differ
/// only in speed, memory footprint and *how* they compute (the SQL
/// backend executes real `SELECT COUNT(DISTINCT …)` statements,
/// demonstrating the paper's §2 remark that the function "can be
/// computed in any SQL-like language"; the paged backend streams
/// dictionary codes from disk pages so the extension need not fit in
/// RAM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendChoice {
    /// Value-based reference scans: the executable specification.
    Reference,
    /// Dictionary-encoded integer-code kernels (fastest; default).
    #[default]
    Encoded,
    /// Generated SQL through the `dbre-sql` executor (fidelity path).
    Sql,
    /// Out-of-core paged columnar store: encoded kernels streaming
    /// over spilled code pages through an LRU buffer pool.
    Paged,
}

impl BackendChoice {
    /// Parses a CLI / environment spelling (`reference`, `encoded`,
    /// `sql`, `paged`).
    pub fn parse(s: &str) -> Option<BackendChoice> {
        match s {
            "reference" => Some(BackendChoice::Reference),
            "encoded" => Some(BackendChoice::Encoded),
            "sql" => Some(BackendChoice::Sql),
            "paged" => Some(BackendChoice::Paged),
            _ => None,
        }
    }

    /// Reads the `DBRE_BACKEND` environment variable (used by the CI
    /// matrix to run the whole suite over a non-default backend);
    /// unset or unrecognized values yield the default.
    pub fn from_env() -> BackendChoice {
        std::env::var("DBRE_BACKEND")
            .ok()
            .and_then(|v| BackendChoice::parse(&v))
            .unwrap_or_default()
    }

    /// The canonical spelling, matching [`BackendChoice::parse`].
    pub fn name(self) -> &'static str {
        match self {
            BackendChoice::Reference => "reference",
            BackendChoice::Encoded => "encoded",
            BackendChoice::Sql => "sql",
            BackendChoice::Paged => "paged",
        }
    }

    /// Builds a fresh memoizing engine over the chosen backend with
    /// default sizing.
    pub fn engine(self) -> StatsEngine {
        self.engine_sized(None)
    }

    /// Like [`BackendChoice::engine`], but with an explicit buffer-pool
    /// capacity in bytes for the paged backend (`None` = its 64 MiB
    /// default). The in-memory backends ignore the capacity.
    pub fn engine_sized(self, page_cache_bytes: Option<usize>) -> StatsEngine {
        match self {
            BackendChoice::Reference => StatsEngine::with_backend(Box::new(ReferenceBackend)),
            BackendChoice::Encoded => StatsEngine::with_backend(Box::new(EncodedBackend::new())),
            BackendChoice::Sql => StatsEngine::with_backend(Box::new(SqlBackend::new())),
            BackendChoice::Paged => {
                let backend = match page_cache_bytes {
                    Some(bytes) => PagedBackend::with_capacity_bytes(bytes),
                    None => PagedBackend::new(),
                };
                StatsEngine::with_backend(Box::new(backend))
            }
        }
    }
}

/// All state one pipeline run threads through its stages.
///
/// Stages read their inputs from the session and write their outputs
/// back into it; the earlier-stage outputs double as the inputs of the
/// later ones (`ind` feeds `lhs` feeds `rhs` …). Every field a stage
/// may touch is public to the crate's stage implementations, and the
/// struct disassembles into the external [`PipelineResult`] via
/// [`DbreSession::into_result`].
pub struct DbreSession<'o> {
    /// The database being reverse engineered; Restruct mutates it in
    /// place (after snapshotting [`DbreSession::db_before`]).
    pub db: Database,
    /// The memoizing counting engine every `‖·‖` probe goes through.
    /// Behind `Arc` so many concurrent sessions can share one engine
    /// (generation tags are globally unique, so entries never alias);
    /// a solo run simply holds the only reference.
    pub engine: Arc<StatsEngine>,
    /// Engine-counter baselines snapshotted at construction;
    /// [`DbreSession::into_result`] reports the *difference*, so
    /// sessions sharing one engine never re-report work that happened
    /// before they started. (Under concurrent interleaving a session's
    /// window still includes its neighbors' probes — per-session
    /// numbers are exact when sessions run the engine exclusively, an
    /// upper bound otherwise; cross-session aggregation should read
    /// the shared engine's counters once instead of summing sessions.)
    counters_base: StatsCounters,
    exec_base: BackendExecStats,
    page_base: PageCacheStats,
    spill_base: SpillCacheStats,
    /// The expert user (§5: "the comprehension process is monitored by
    /// the user").
    pub oracle: &'o mut dyn Oracle,
    /// Run configuration.
    pub options: PipelineOptions,
    /// The validated set `Q` driving IND-Discovery.
    pub q: Vec<EquiJoin>,
    /// Stage 3 output (empty default until `ind-discovery` runs).
    pub ind: IndDiscovery,
    /// Stage 4 output.
    pub lhs: LhsDiscovery,
    /// Stage 5 output.
    pub rhs: RhsDiscovery,
    /// Stage 6 output.
    pub restructured: Restructured,
    /// Stage 7 output.
    pub eer: EerSchema,
    /// Snapshot taken by the restruct stage just before it rewrites
    /// the schema; stage-3/4/5 outputs render against this one.
    pub db_before: Database,
    /// The merged audit log; stages append through
    /// [`DbreSession::record`] in execution order.
    pub log: Vec<DecisionRecord>,
    /// Warnings accumulated across validation and degraded stages.
    pub warnings: Vec<String>,
    /// Stages that failed and were degraded to their default output.
    pub stage_errors: Vec<StageError>,
    /// Per-stage wall time; counters are snapshotted at disassembly.
    pub stats: PipelineStats,
}

impl<'o> DbreSession<'o> {
    /// Builds a session around `db` with the engine selected by
    /// `options.backend`.
    pub fn new(db: Database, oracle: &'o mut dyn Oracle, options: PipelineOptions) -> Self {
        let mut warnings = Vec::new();
        let engine = if options.spilled.is_empty() {
            options.backend.engine_sized(options.page_cache)
        } else {
            // Streamed extensions exist only as spilled pages — no
            // in-memory backend can answer for them, so the paged
            // backend is forced and the adopted columns are installed
            // before any probe runs.
            if options.backend != BackendChoice::Paged {
                warnings.push(format!(
                    "streamed-ingest tables require the paged backend; overriding `{}`",
                    options.backend.name()
                ));
            }
            let backend = match options.page_cache {
                Some(bytes) => PagedBackend::with_capacity_bytes(bytes),
                None => PagedBackend::new(),
            };
            for (rel, table) in &options.spilled {
                backend.adopt_spilled(&db, *rel, table);
            }
            StatsEngine::with_backend(Box::new(backend))
        };
        let mut session = DbreSession::with_engine(db, oracle, options, Arc::new(engine));
        // Spill-cache counters predate the engine (streamed ingest
        // runs while inputs load, before any session exists), and a
        // solo session owns its engine outright — report them
        // cumulatively instead of diffing the ingest away.
        session.spill_base = SpillCacheStats::default();
        session.warnings = warnings;
        session
    }

    /// Builds a session over an *existing* (possibly shared) engine —
    /// the concurrent-service path, where many sessions answer their
    /// `‖·‖` probes from one memoizing engine. The engine must serve
    /// the chosen backend semantics for `db` (streamed extensions
    /// still require a paged backend underneath; [`DbreSession::new`]
    /// handles that wiring for the solo case).
    pub fn with_engine(
        db: Database,
        oracle: &'o mut dyn Oracle,
        options: PipelineOptions,
        engine: Arc<StatsEngine>,
    ) -> Self {
        let stats = PipelineStats {
            backend: engine.backend_name(),
            ..Default::default()
        };
        DbreSession {
            db,
            counters_base: engine.counters(),
            exec_base: engine.exec_stats(),
            page_base: engine.page_stats(),
            spill_base: engine.spill_stats(),
            engine,
            oracle,
            options,
            q: Vec::new(),
            ind: IndDiscovery::default(),
            lhs: LhsDiscovery::default(),
            rhs: RhsDiscovery::default(),
            restructured: Restructured::default(),
            eer: EerSchema::default(),
            db_before: Database::new(),
            log: Vec::new(),
            warnings: Vec::new(),
            stage_errors: Vec::new(),
            stats,
        }
    }

    /// Admits a caller-supplied `Q`, skipping malformed joins
    /// (mismatched side arity, out-of-range ids, empty attribute
    /// lists) with one warning each instead of panicking deep inside
    /// counting.
    pub fn admit_q(&mut self, q: &[EquiJoin]) {
        for join in q {
            match join.validate(&self.db) {
                Ok(()) => self.q.push(join.clone()),
                Err(e) => self.warnings.push(format!("skipping malformed join: {e}")),
            }
        }
    }

    /// Appends one decision to the merged audit log. *Every* record of
    /// a run flows through here, so the log order is exactly the stage
    /// execution order.
    pub fn record(&mut self, record: DecisionRecord) {
        self.log.push(record);
    }

    /// Appends a stage's decision batch, preserving its order.
    pub fn record_all(&mut self, records: &[DecisionRecord]) {
        self.log.extend(records.iter().cloned());
    }

    /// Runs one stage with graceful degradation — the *only* place in
    /// the pipeline where a stage is timed and panic-guarded.
    ///
    /// A typed error *or a panic* inside the stage is demoted to a
    /// warning plus a [`StageError`]; the stage's outputs stay at
    /// their empty defaults (stages assign session fields only on
    /// success) and the remaining stages still run over whatever
    /// survived. An [`OracleAbort`] unwind is recognized and surfaces
    /// as the typed [`DbreError::OracleAbort`].
    pub fn run_stage(&mut self, stage: &dyn Stage) {
        let name = stage.name();
        let t = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| stage.run(self)));
        self.stats.stage_timings.push((name, t.elapsed()));
        let error = match outcome {
            Ok(Ok(())) => return,
            Ok(Err(e)) => e,
            Err(payload) => match payload.downcast::<OracleAbort>() {
                Ok(abort) => DbreError::OracleAbort(abort.0),
                Err(payload) => DbreError::Panic {
                    stage: name.to_string(),
                    message: panic_message(payload.as_ref()),
                },
            },
        };
        self.warnings
            .push(format!("stage `{name}` degraded: {error}"));
        self.stage_errors.push(StageError { stage: name, error });
    }

    /// Disassembles the session into the external result. The reported
    /// counters are the *growth since construction* (saturating, so a
    /// mid-run [`StatsEngine::reset_counters`] elsewhere degrades to
    /// zero rather than wrapping), which keeps them meaningful when
    /// the engine is shared — see the field docs on `counters_base`.
    pub fn into_result(mut self) -> PipelineResult {
        let c = self.engine.counters();
        self.stats.counters = StatsCounters {
            cache_hits: c.cache_hits.saturating_sub(self.counters_base.cache_hits),
            cache_misses: c
                .cache_misses
                .saturating_sub(self.counters_base.cache_misses),
            rows_scanned: c
                .rows_scanned
                .saturating_sub(self.counters_base.rows_scanned),
        };
        let e = self.engine.exec_stats();
        self.stats.backend_exec = BackendExecStats {
            fallback_failures: e
                .fallback_failures
                .saturating_sub(self.exec_base.fallback_failures),
            batch_ops: e.batch_ops.saturating_sub(self.exec_base.batch_ops),
            tuple_fallback_ops: e
                .tuple_fallback_ops
                .saturating_sub(self.exec_base.tuple_fallback_ops),
        };
        let p = self.engine.page_stats();
        self.stats.page_cache = PageCacheStats {
            hits: p.hits.saturating_sub(self.page_base.hits),
            misses: p.misses.saturating_sub(self.page_base.misses),
            evictions: p.evictions.saturating_sub(self.page_base.evictions),
        };
        let s = self.engine.spill_stats();
        self.stats.spill_cache = SpillCacheStats {
            hits: s.hits.saturating_sub(self.spill_base.hits),
            misses: s.misses.saturating_sub(self.spill_base.misses),
        };
        PipelineResult {
            q: self.q,
            ind: self.ind,
            lhs: self.lhs,
            rhs: self.rhs,
            restructured: self.restructured,
            eer: self.eer,
            db: self.db,
            db_before: self.db_before,
            log: self.log,
            warnings: self.warnings,
            provenance: Vec::new(),
            stats: self.stats,
            stage_errors: self.stage_errors,
        }
    }
}

impl std::fmt::Debug for DbreSession<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbreSession")
            .field("backend", &self.engine.backend_name())
            .field("q", &self.q.len())
            .field("log", &self.log.len())
            .field("warnings", &self.warnings.len())
            .field("stage_errors", &self.stage_errors.len())
            .finish_non_exhaustive()
    }
}

/// One pipeline stage. Implementations read their inputs from the
/// session and write their outputs back; [`DbreSession::run_stage`]
/// supplies timing, panic containment, and degradation uniformly.
pub trait Stage {
    /// The stage name as recorded in
    /// [`PipelineStats::stage_timings`] and [`StageError::stage`].
    fn name(&self) -> &'static str;
    /// Runs the stage against the session. On `Err` (or panic) the
    /// session must be left with this stage's outputs untouched.
    fn run(&self, session: &mut DbreSession<'_>) -> Result<(), DbreError>;
}

/// The stage sequence `options` selects (key inference is opt-in; the
/// paper's five stages always run).
pub fn stages(options: &PipelineOptions) -> Vec<Box<dyn Stage>> {
    let mut v: Vec<Box<dyn Stage>> = Vec::new();
    if options.infer_missing_keys {
        v.push(Box::new(KeyInferenceStage));
    }
    v.push(Box::new(IndDiscoveryStage));
    v.push(Box::new(LhsDiscoveryStage));
    v.push(Box::new(RhsDiscoveryStage));
    v.push(Box::new(RestructStage));
    v.push(Box::new(TranslateStage));
    v
}

/// Pre-pipeline: infer candidate keys for relations whose dictionary
/// declares none (pre-`UNIQUE` DBMSs — an extension beyond the paper's
/// §4 assumption that `K` is always available).
struct KeyInferenceStage;

impl Stage for KeyInferenceStage {
    fn name(&self) -> &'static str {
        "key-inference"
    }

    fn run(&self, s: &mut DbreSession<'_>) -> Result<(), DbreError> {
        let (inferred, sketch) = dbre_mine::infer_missing_keys_sketched(
            &mut s.db,
            Some(3),
            &*s.engine,
            s.options.sketch,
        );
        s.stats.sketch.merge(&sketch);
        for (rel, key) in inferred {
            let relation = s.db.schema.relation(rel);
            let record = DecisionRecord::new(
                "Key inference",
                relation.name.clone(),
                format!("inferred key {{{}}}", relation.render_set(&key)),
            );
            s.record(record);
        }
        Ok(())
    }
}

/// §6.1 IND-Discovery over the admitted `Q`.
struct IndDiscoveryStage;

impl Stage for IndDiscoveryStage {
    fn name(&self) -> &'static str {
        "ind-discovery"
    }

    fn run(&self, s: &mut DbreSession<'_>) -> Result<(), DbreError> {
        let out = ind_discovery_sketched(
            &mut s.db,
            &s.q,
            &mut *s.oracle,
            &*s.engine,
            s.options.sketch,
        )?;
        s.record_all(&out.log);
        s.stats.sketch.merge(&out.sketch);
        s.ind = out;
        Ok(())
    }
}

/// §6.2.1 LHS-Discovery from the IND set.
struct LhsDiscoveryStage;

impl Stage for LhsDiscoveryStage {
    fn name(&self) -> &'static str {
        "lhs-discovery"
    }

    fn run(&self, s: &mut DbreSession<'_>) -> Result<(), DbreError> {
        s.lhs = lhs_discovery(&s.db, &s.ind.inds, &s.ind.new_relations);
        Ok(())
    }
}

/// §6.2.2 RHS-Discovery by targeted extension tests.
struct RhsDiscoveryStage;

impl Stage for RhsDiscoveryStage {
    fn name(&self) -> &'static str {
        "rhs-discovery"
    }

    fn run(&self, s: &mut DbreSession<'_>) -> Result<(), DbreError> {
        let out = rhs_discovery_sketched(
            &s.db,
            &s.lhs,
            &mut *s.oracle,
            &s.options.rhs,
            &*s.engine,
            s.options.sketch,
        );
        s.record_all(&out.log);
        s.stats.sketch.merge(&out.sketch);
        s.rhs = out;
        Ok(())
    }
}

/// §7 Restruct: 1NF → 3NF rewriting. Snapshots
/// [`DbreSession::db_before`] first, so stage-3/4/5 outputs keep a
/// schema to render against even if restructuring degrades.
struct RestructStage;

impl Stage for RestructStage {
    fn name(&self) -> &'static str {
        "restruct"
    }

    fn run(&self, s: &mut DbreSession<'_>) -> Result<(), DbreError> {
        hydrate_streamed(s)?;
        s.db_before = s.db.clone();
        let out = restruct(
            &mut s.db,
            &s.rhs.fds,
            &s.rhs.hidden,
            &s.ind.inds,
            &mut *s.oracle,
        )?;
        s.record_all(&out.log);
        s.restructured = out;
        Ok(())
    }
}

/// Restruct rewrites extensions through raw value columns
/// (`drop_columns`, `distinct_subtable`), so streamed extensions must
/// come back to memory first. The discovery stages before this point
/// ran entirely over the spilled pages; only the final rewrite pays
/// for materialization, and it decodes from the already-encoded pages
/// (dictionary codes → values) rather than re-parsing any source.
/// Hydration failure is a typed stage error — never a silent
/// empty-column rewrite.
fn hydrate_streamed(s: &mut DbreSession<'_>) -> Result<(), DbreError> {
    use dbre_relational::attr::AttrId;
    use dbre_relational::backend::CountBackend;
    use dbre_relational::pages::PageError;
    use dbre_relational::value::Value;

    let rels: Vec<_> = s.db.schema.iter().map(|(rel, _)| rel).collect();
    for rel in rels {
        if s.db.table(rel).is_materialized() {
            continue;
        }
        let arity = s.db.schema.relation(rel).arity();
        for i in 0..arity {
            let attr = AttrId(i as u16);
            let dict = s.engine.column_dict(&s.db, rel, attr).ok_or_else(|| {
                DbreError::Page(PageError::Io(format!(
                    "cannot hydrate streamed column `{}` of `{}` for restructuring",
                    s.db.schema.relation(rel).attr_name(attr),
                    s.db.schema.relation(rel).name,
                )))
            })?;
            let values: Vec<Value> = dict
                .codes()
                .iter()
                .map(|&c| dict.value_of(c).cloned().unwrap_or(Value::Null))
                .collect();
            s.db.hydrate_column(rel, attr, values);
        }
    }
    Ok(())
}

/// §7 Translate: the restructured schema as an EER diagram.
struct TranslateStage;

impl Stage for TranslateStage {
    fn name(&self) -> &'static str {
        "translate"
    }

    fn run(&self, s: &mut DbreSession<'_>) -> Result<(), DbreError> {
        s.eer = translate(&s.db, &s.restructured.ric)?;
        Ok(())
    }
}

// Compile-time proof that a whole session can move to a service
// worker thread: everything it owns (database, shared engine, oracle
// borrow, stage outputs) is `Send`. `Sync` is deliberately not
// asserted — a session is single-owner mutable state; only the engine
// underneath it is shared.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<DbreSession<'static>>();
};

/// Renders a caught panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("non-string panic payload")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::AutoOracle;

    #[test]
    fn backend_choice_parses_canonical_names() {
        for choice in [
            BackendChoice::Reference,
            BackendChoice::Encoded,
            BackendChoice::Sql,
            BackendChoice::Paged,
        ] {
            assert_eq!(BackendChoice::parse(choice.name()), Some(choice));
            assert_eq!(choice.engine().backend_name(), choice.name());
        }
        assert_eq!(BackendChoice::parse("postgres"), None);
        assert_eq!(BackendChoice::default(), BackendChoice::Encoded);
    }

    #[test]
    fn stage_list_matches_options() {
        let names: Vec<&str> = stages(&PipelineOptions::default())
            .iter()
            .map(|s| s.name())
            .collect();
        assert_eq!(
            names,
            vec![
                "ind-discovery",
                "lhs-discovery",
                "rhs-discovery",
                "restruct",
                "translate"
            ]
        );
        let with_keys = PipelineOptions {
            infer_missing_keys: true,
            ..Default::default()
        };
        assert_eq!(stages(&with_keys)[0].name(), "key-inference");
    }

    #[test]
    fn admit_q_filters_and_warns() {
        use dbre_relational::attr::AttrId;
        use dbre_relational::deps::IndSide;
        use dbre_relational::schema::{RelId, Relation};
        use dbre_relational::value::Domain;

        let mut db = Database::new();
        let r = db
            .add_relation(Relation::of("R", &[("a", Domain::Int)]))
            .unwrap();
        let mut oracle = AutoOracle::default();
        let mut session = DbreSession::new(db, &mut oracle, PipelineOptions::default());
        let good = EquiJoin::try_new(IndSide::single(r, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        let bad = EquiJoin {
            left: IndSide::single(RelId(9), AttrId(0)),
            right: IndSide::single(r, AttrId(0)),
        };
        session.admit_q(&[bad, good.clone()]);
        assert_eq!(session.q, vec![good]);
        assert_eq!(session.warnings.len(), 1);
    }

    #[test]
    fn run_stage_contains_panics_and_keeps_defaults() {
        struct Bomb;
        impl Stage for Bomb {
            fn name(&self) -> &'static str {
                "bomb"
            }
            fn run(&self, _: &mut DbreSession<'_>) -> Result<(), DbreError> {
                panic!("stage exploded")
            }
        }
        let mut oracle = AutoOracle::default();
        let mut session =
            DbreSession::new(Database::new(), &mut oracle, PipelineOptions::default());
        session.run_stage(&Bomb);
        assert_eq!(session.stage_errors.len(), 1);
        assert_eq!(session.stage_errors[0].stage, "bomb");
        assert!(matches!(
            session.stage_errors[0].error,
            DbreError::Panic { .. }
        ));
        assert_eq!(session.warnings.len(), 1);
        assert_eq!(session.stats.stage_timings.len(), 1, "failures are timed");
        assert!(session.ind.inds.is_empty(), "outputs stay at defaults");
    }
}
