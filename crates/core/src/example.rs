//! The paper's worked example (§5) as a reusable fixture.
//!
//! The schema, constraints and equi-join set are taken verbatim from
//! the paper. The extension is synthesized to reproduce *every*
//! cardinality and dependency the paper's walk-through relies on:
//!
//! * `‖Person[id]‖ = 2200`, `‖HEmployee[no]‖ = 1550`,
//!   `‖Person[id] ⋈ HEmployee[no]‖ = 1550` (§6.1, inclusion case);
//! * `‖Assignment[dep]‖ = 60`, `‖Department[dep]‖ = 45`,
//!   `‖⋈‖ = 40` (§6.1, NEI case → `Ass-Dept`);
//! * `Department: emp → skill, proj` and
//!   `Assignment: proj → project-name` hold; every other candidate FD
//!   the RHS-Discovery walk-through tests fails;
//! * `Person: zip-code → state` holds — the "integrity constraint" FD
//!   the paper's method deliberately never looks at;
//! * `Department.location` is not-null while `Department.emp` has
//!   nulls (the pruning example of §6.2.2).

// The fixture is built from compile-time constants taken verbatim
// from the paper; any failure here is a bug in the fixture itself, so
// panicking (like a test would) is the right behaviour.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use crate::oracle::{NeiDecision, ScriptedOracle};
use crate::pipeline::{run_with_q, PipelineOptions, PipelineResult};
use dbre_extract::ProgramSource;
use dbre_relational::counting::EquiJoin;
use dbre_relational::database::Database;
use dbre_relational::deps::IndSide;
use dbre_relational::value::{Date, Value};
use dbre_sql::Catalog;

/// The worked example's data dictionary, as DDL (§5: keys underlined,
/// not-null emphasized).
pub const PAPER_DDL: &str = "
CREATE TABLE Person (
    id INTEGER UNIQUE,
    name VARCHAR(40),
    street VARCHAR(40),
    number INTEGER,
    zip-code CHAR(8),
    state VARCHAR(20)
);
CREATE TABLE HEmployee (
    no INTEGER,
    date DATE,
    salary REAL,
    UNIQUE (no, date)
);
CREATE TABLE Department (
    dep CHAR(8) UNIQUE,
    emp INTEGER,
    skill VARCHAR(20),
    location VARCHAR(20) NOT NULL,
    proj CHAR(6)
);
CREATE TABLE Assignment (
    emp INTEGER,
    dep CHAR(8),
    proj CHAR(6),
    date DATE,
    project-name VARCHAR(30),
    UNIQUE (emp, dep, proj)
);
";

/// Number of persons (paper: `‖Person[id]‖ = 2200`).
pub const N_PERSONS: usize = 2200;
/// Number of distinct employees (paper: `‖HEmployee[no]‖ = 1550`).
pub const N_EMPLOYEES: usize = 1550;
/// Departments in `Department` (paper: `‖Department[dep]‖ = 45`).
pub const N_DEPARTMENTS: usize = 45;
/// Distinct departments referenced by `Assignment`
/// (paper: `‖Assignment[dep]‖ = 60`).
pub const N_ASSIGNMENT_DEPS: usize = 60;
/// Departments common to both (paper: `‖⋈‖ = 40`).
pub const N_SHARED_DEPS: usize = 40;

/// Builds the example database: dictionary via the SQL catalog, rows
/// generated to meet the constants above.
pub fn paper_database() -> Database {
    let mut cat = Catalog::new();
    cat.load_script(PAPER_DDL).expect("the paper DDL parses");
    let mut db = cat.into_database();

    let person = db.rel("Person").unwrap();
    let hemployee = db.rel("HEmployee").unwrap();
    let department = db.rel("Department").unwrap();
    let assignment = db.rel("Assignment").unwrap();

    // Person: ids 1..=2200; zip-code -> state holds by construction.
    for i in 1..=N_PERSONS as i64 {
        let zip = i % 50;
        db.insert(
            person,
            vec![
                Value::Int(i),
                Value::str(format!("name{i}")),
                Value::str(format!("street{}", i % 100)),
                Value::Int(i % 999),
                Value::str(format!("zip{zip:02}")),
                Value::str(format!("state{}", zip % 12)),
            ],
        )
        .unwrap();
    }

    // HEmployee: nos 1..=1550 ⊂ Person ids; two history rows per
    // employee with different dates and salaries, so that neither
    // no -> date nor no -> salary holds.
    for no in 1..=N_EMPLOYEES as i64 {
        db.insert(
            hemployee,
            vec![
                Value::Int(no),
                Value::Date(Date((no % 40) as i32)),
                Value::float(1000.0 + (no % 700) as f64),
            ],
        )
        .unwrap();
        db.insert(
            hemployee,
            vec![
                Value::Int(no),
                Value::Date(Date((100 + no % 35) as i32)),
                Value::float(2000.0 + (no % 700) as f64),
            ],
        )
        .unwrap();
    }

    // Department: 45 departments, 40 shared with Assignment. Managers
    // (emp) have nulls; emp -> skill, proj holds; proj -> emp and
    // proj -> skill fail (proj is shared by several managers).
    for i in 1..=N_DEPARTMENTS as i64 {
        let dep = if i <= N_SHARED_DEPS as i64 {
            format!("dep{i:02}")
        } else {
            format!("ddep{i:02}")
        };
        let (emp, skill, proj) = if i % 9 == 0 {
            // A department with no manager recorded: emp is NULL.
            (Value::Null, Value::str("mystery"), Value::str("p16"))
        } else {
            let e = 100 + (i % 30);
            (
                Value::Int(e),
                Value::str(format!("skill{}", (e - 100) % 10)),
                Value::str(format!("p{:02}", ((e - 100) % 15) + 1)),
            )
        };
        db.insert(
            department,
            vec![
                Value::str(dep),
                emp,
                skill,
                Value::str(format!("loc{}", i % 7)),
                proj,
            ],
        )
        .unwrap();
    }

    // Assignment: 600 rows; key (emp, dep, proj) unique because
    // lcm(199, 60, 50) far exceeds 600; proj -> project-name holds;
    // emp/dep determine neither date nor project-name.
    for i in 0..600i64 {
        let j = i % N_ASSIGNMENT_DEPS as i64;
        let dep = if j < N_SHARED_DEPS as i64 {
            format!("dep{:02}", j + 1)
        } else {
            format!("adep{:02}", j + 1)
        };
        let p = (i % 50) + 1;
        db.insert(
            assignment,
            vec![
                Value::Int(1 + (i % 199)),
                Value::str(dep),
                Value::str(format!("p{p:02}")),
                Value::Date(Date((i % 97) as i32)),
                Value::str(format!("pn-p{p:02}")),
            ],
        )
        .unwrap();
    }

    db.validate_dictionary()
        .expect("generated extension satisfies the dictionary");
    db
}

/// The set `Q` of §5, verbatim (sides ordered as the paper prints
/// them).
pub fn paper_q(db: &Database) -> Vec<EquiJoin> {
    let side = |rel: &str, attr: &str| {
        let (r, ids) = db.resolve(rel, &[attr]).expect("fixture names are valid");
        IndSide::new(r, ids)
    };
    let join = |l: IndSide, r: IndSide| EquiJoin::try_new(l, r).expect("paper Q sides are unary");
    vec![
        join(side("HEmployee", "no"), side("Person", "id")),
        join(side("Department", "emp"), side("HEmployee", "no")),
        join(side("Assignment", "emp"), side("HEmployee", "no")),
        join(side("Assignment", "dep"), side("Department", "dep")),
        join(side("Department", "proj"), side("Assignment", "proj")),
    ]
}

/// Application programs (forms, reports, batch files — §5) whose
/// extraction yields exactly the paper's `Q`: a WHERE-join report, an
/// embedded-SQL payroll program, a nested `IN` form, and an
/// `INTERSECT` batch check.
pub fn paper_programs() -> Vec<ProgramSource> {
    vec![
        ProgramSource::sql(
            "person_report.sql",
            "SELECT p.name, e.salary FROM HEmployee e, Person p WHERE e.no = p.id;",
        ),
        ProgramSource::embedded(
            "payroll.c",
            "int main() {\n\
             EXEC SQL SELECT d.location FROM Department d, HEmployee e \n\
                      WHERE d.emp = e.no AND e.salary > :minsal;\n\
             return 0;\n}\n",
        ),
        ProgramSource::sql(
            "assignments_form.sql",
            "SELECT a.proj FROM Assignment a \
             WHERE a.emp IN (SELECT e.no FROM HEmployee e WHERE e.date > DATE '1995-01-01');",
        ),
        ProgramSource::sql(
            "department_listing.sql",
            "SELECT a.emp, a.proj FROM Assignment a, Department d WHERE a.dep = d.dep;",
        ),
        ProgramSource::embedded(
            "project_check.cob",
            "PROCEDURE DIVISION.\n\
             EXEC SQL SELECT proj FROM Department \
              INTERSECT SELECT proj FROM Assignment END-EXEC.\n",
        ),
    ]
}

/// The expert user of the walk-through, scripted: conceptualizes the
/// `Ass-Dept` intersection and the `Employee` hidden object, gives up
/// `Assignment.emp` and `Department.proj`, and names the new relations
/// as the paper does.
pub fn paper_oracle() -> ScriptedOracle {
    ScriptedOracle::new()
        // NEI on the dep attributes — both orientations of the join,
        // so both the verbatim-Q and the extracted-Q paths are covered.
        .nei(
            "Assignment[dep] |><| Department[dep]",
            NeiDecision::Conceptualize,
        )
        .nei(
            "Department[dep] |><| Assignment[dep]",
            NeiDecision::Conceptualize,
        )
        .name("nei:Assignment[dep] |><| Department[dep]", "Ass-Dept")
        .name("nei:Department[dep] |><| Assignment[dep]", "Ass-Dept")
        // Hidden objects (§6.2.2): Employee conceptualized, the other
        // empty-RHS candidates given up.
        .hidden("HEmployee.{no}", true)
        .hidden("Assignment.{emp}", false)
        .hidden("Department.{proj}", false)
        // Restruct names (§7).
        .name("hidden:HEmployee.{no}", "Employee")
        .name("hidden:Assignment.{dep}", "Other-Dept")
        .name("fd:Department: emp -> skill, proj", "Manager")
        .name("fd:Assignment: proj -> project-name", "Project")
}

/// Runs the full pipeline on the worked example with the paper's `Q`
/// and scripted expert, returning every stage's output.
pub fn run_paper_example() -> PipelineResult {
    let db = paper_database();
    let q = paper_q(&db);
    let mut oracle = paper_oracle();
    run_with_q(db, &q, &mut oracle, &PipelineOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::render::{render_fds, render_inds, render_quals, render_schema};
    use dbre_relational::counting::join_stats;
    use dbre_relational::normal_forms::{analyze, NormalForm};

    #[test]
    fn e1_dictionary_sets_k_and_n() {
        let mut cat = Catalog::new();
        cat.load_script(PAPER_DDL).unwrap();
        let (k, n) = cat.render_k_n();
        assert_eq!(
            k,
            vec![
                "Person.{id}",
                "HEmployee.{no, date}",
                "Department.{dep}",
                "Assignment.{emp, dep, proj}",
            ]
        );
        // N: the paper's eight entries (order here is (relation, attr)).
        let expected = [
            "Person.id",
            "HEmployee.no",
            "HEmployee.date",
            "Department.dep",
            "Department.location",
            "Assignment.emp",
            "Assignment.dep",
            "Assignment.proj",
        ];
        assert_eq!(n.len(), expected.len());
        for e in expected {
            assert!(n.contains(&e.to_string()), "missing {e} in N");
        }
    }

    #[test]
    fn e2_q_extracted_from_programs_matches_paper() {
        let db = paper_database();
        let extraction = dbre_extract::extract_programs(
            &db.schema,
            &paper_programs(),
            &dbre_extract::ExtractConfig::default(),
        );
        assert!(extraction.warnings.is_empty(), "{:?}", extraction.warnings);
        let expected: std::collections::BTreeSet<EquiJoin> =
            paper_q(&db).iter().map(EquiJoin::canonical).collect();
        let got: std::collections::BTreeSet<EquiJoin> =
            extraction.q().iter().map(EquiJoin::canonical).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn e3_cardinalities_match_the_walkthrough() {
        let db = paper_database();
        let q = paper_q(&db);
        // HEmployee[no] ⋈ Person[id]: 1550 / 2200 / 1550.
        let s = join_stats(&db, &q[0]);
        assert_eq!((s.n_left, s.n_right, s.n_join), (1550, 2200, 1550));
        // Assignment[dep] ⋈ Department[dep]: 60 / 45 / 40.
        let s = join_stats(&db, &q[3]);
        assert_eq!((s.n_left, s.n_right, s.n_join), (60, 45, 40));
    }

    #[test]
    fn e3_ind_discovery_elicits_the_six_inds() {
        let mut db = paper_database();
        let q = paper_q(&db);
        let mut oracle = paper_oracle();
        let ind = crate::ind_discovery::ind_discovery(&mut db, &q, &mut oracle).unwrap();
        let lines = render_inds(&db, &ind.inds);
        let expected = "\
Ass-Dept[dep] << Assignment[dep]
Ass-Dept[dep] << Department[dep]
Assignment[emp] << HEmployee[no]
Department[emp] << HEmployee[no]
Department[proj] << Assignment[proj]
HEmployee[no] << Person[id]";
        assert_eq!(lines, expected);
        assert_eq!(ind.new_relations.len(), 1);
        assert_eq!(db.schema.relation(ind.new_relations[0]).name, "Ass-Dept");
        // Ass-Dept holds the 40 shared departments.
        assert_eq!(db.table(ind.new_relations[0]).len(), 40);
    }

    #[test]
    fn e4_lhs_discovery_matches_paper_sets() {
        let mut db = paper_database();
        let q = paper_q(&db);
        let mut oracle = paper_oracle();
        let ind = crate::ind_discovery::ind_discovery(&mut db, &q, &mut oracle).unwrap();
        let lhs = crate::lhs_discovery::lhs_discovery(&db, &ind.inds, &ind.new_relations);
        let got = render_quals(&db, &lhs.lhs);
        let expected = "\
Assignment.{emp}
Assignment.{proj}
Department.{emp}
Department.{proj}
HEmployee.{no}";
        assert_eq!(got, expected);
        assert_eq!(render_quals(&db, &lhs.hidden), "Assignment.{dep}");
    }

    #[test]
    fn e5_rhs_discovery_matches_paper_sets() {
        let result = run_paper_example();
        // Stage outputs reference the pre-restruct schema snapshot.
        let fds = render_fds(&result.db_before, &result.rhs.fds);
        assert_eq!(
            fds,
            "Assignment: proj -> project-name\nDepartment: emp -> skill, proj"
        );
        let hidden = render_quals(&result.db_before, &result.rhs.hidden);
        assert_eq!(hidden, "Assignment.{dep}\nHEmployee.{no}");
        // Given up: Assignment.emp and Department.proj.
        let given = render_quals(&result.db_before, &result.rhs.given_up);
        assert_eq!(given, "Assignment.{emp}\nDepartment.{proj}");
    }

    #[test]
    fn e6_restructured_schema_matches_paper() {
        let result = run_paper_example();
        let schema = render_schema(&result.db);
        let expected = "\
Person(_id_, name, street, number, zip-code, state)
HEmployee(_no_, _date_, salary)
Department(_dep_, emp, !location)
Assignment(_emp_, _dep_, _proj_, date)
Ass-Dept(_dep_)
Other-Dept(_dep_)
Employee(_no_)
Manager(_emp_, skill, proj)
Project(_proj_, project-name)";
        assert_eq!(schema, expected);

        let ric = render_inds(&result.db, &result.restructured.ric);
        let expected_ric = "\
Ass-Dept[dep] << Department[dep]
Ass-Dept[dep] << Other-Dept[dep]
Assignment[dep] << Other-Dept[dep]
Assignment[emp] << Employee[no]
Assignment[proj] << Project[proj]
Department[emp] << Manager[emp]
Employee[no] << Person[id]
HEmployee[no] << Employee[no]
Manager[emp] << Employee[no]
Manager[proj] << Project[proj]";
        assert_eq!(ric, expected_ric);
        assert_eq!(
            result.restructured.ric.len(),
            result.restructured.inds.len()
        );
    }

    #[test]
    fn e6_restructured_schema_is_3nf_and_consistent() {
        let result = run_paper_example();
        // Every RIC holds in the restructured extension.
        for ind in &result.restructured.ric {
            assert!(
                result.db.ind_holds(ind),
                "RIC must hold: {}",
                ind.render(&result.db.schema)
            );
        }
        // Dictionary (keys incl. new relations) still satisfied.
        result.db.validate_dictionary().unwrap();
        // 3NF w.r.t. the re-homed dependencies.
        for (rel, relation) in result.db.schema.iter() {
            let fds: Vec<_> = result
                .restructured
                .fds
                .iter()
                .filter(|f| f.rel == rel)
                .cloned()
                .collect();
            let report = analyze(rel, &relation.all_attrs(), &fds);
            assert!(
                report.form >= NormalForm::Third,
                "{} is {} with {:?}",
                relation.name,
                report.form,
                report.violations
            );
        }
    }

    #[test]
    fn f1_eer_schema_matches_figure_1() {
        let result = run_paper_example();
        let eer = &result.eer;
        // The ternary Assignment relationship with attribute date.
        let assign = eer.relationship("Assignment").expect("Assignment diamond");
        let mut objs: Vec<&str> = assign
            .participants
            .iter()
            .map(|p| p.object.as_str())
            .collect();
        objs.sort();
        assert_eq!(objs, vec!["Employee", "Other-Dept", "Project"]);
        assert_eq!(assign.attrs, vec!["date"]);
        // Weak entity HEmployee owned by Employee.
        let hemp = eer.entity("HEmployee").unwrap();
        assert!(hemp.weak);
        assert_eq!(hemp.owners, vec!["Employee"]);
        // The four is-a links of Figure 1.
        assert!(eer.has_isa("Employee", "Person"));
        assert!(eer.has_isa("Manager", "Employee"));
        assert!(eer.has_isa("Ass-Dept", "Other-Dept"));
        assert!(eer.has_isa("Ass-Dept", "Department"));
        assert_eq!(eer.isa.len(), 4);
        // Binary relationships Manager–Project and Department–Manager.
        assert!(eer.relationship("Manager-Project").is_some());
        assert!(eer.relationship("Department-Manager").is_some());
    }

    #[test]
    fn restruct_splits_are_provably_lossless() {
        // The chase proves each FD split reconstructs the original
        // relation: Department and Assignment decompose losslessly
        // under the dependencies that hold in the example.
        use dbre_relational::chase::is_lossless_binary;
        let db = paper_database();
        let resolve = |rel: &str, attrs: &[&str]| db.resolve_set(rel, attrs).unwrap().1;

        // Department(dep,emp,skill,location,proj) with dep→all, emp→skill,proj
        // splits into (dep,emp,location) + Manager(emp,skill,proj).
        let dept = db.rel("Department").unwrap();
        let universe = db.schema.relation(dept).all_attrs();
        let fds = vec![
            dbre_relational::Fd::new(
                dept,
                resolve("Department", &["dep"]),
                resolve("Department", &["emp", "skill", "location", "proj"]),
            ),
            dbre_relational::Fd::new(
                dept,
                resolve("Department", &["emp"]),
                resolve("Department", &["skill", "proj"]),
            ),
        ];
        assert!(is_lossless_binary(
            &universe,
            &resolve("Department", &["dep", "emp", "location"]),
            &resolve("Department", &["emp", "skill", "proj"]),
            &fds
        ));

        // Assignment splits along proj → project-name.
        let assign = db.rel("Assignment").unwrap();
        let universe = db.schema.relation(assign).all_attrs();
        let fds = vec![
            dbre_relational::Fd::new(
                assign,
                resolve("Assignment", &["emp", "dep", "proj"]),
                resolve("Assignment", &["date", "project-name"]),
            ),
            dbre_relational::Fd::new(
                assign,
                resolve("Assignment", &["proj"]),
                resolve("Assignment", &["project-name"]),
            ),
        ];
        assert!(is_lossless_binary(
            &universe,
            &resolve("Assignment", &["emp", "dep", "proj", "date"]),
            &resolve("Assignment", &["proj", "project-name"]),
            &fds
        ));
    }

    #[test]
    fn zip_state_fd_exists_but_is_never_elicited() {
        let db = paper_database();
        let person = db.rel("Person").unwrap();
        let (_, zip) = db.resolve_set("Person", &["zip-code"]).unwrap();
        let (_, state) = db.resolve_set("Person", &["state"]).unwrap();
        let fd = dbre_relational::Fd::new(person, zip, state);
        assert!(db.fd_holds(&fd), "zip-code -> state holds in the data");
        // …but the pipeline never proposes it: no elicited FD touches
        // Person (programmers never navigate Person[zip-code]).
        let result = run_paper_example();
        assert!(result.rhs.fds.iter().all(|f| f.rel != person));
    }

    #[test]
    fn scripted_oracle_had_answers_for_everything() {
        let db = paper_database();
        let q = paper_q(&db);
        let mut oracle = paper_oracle();
        let _ = run_with_q(db, &q, &mut oracle, &PipelineOptions::default());
        assert!(
            oracle.unanswered.is_empty(),
            "unscripted expert questions: {:?}",
            oracle.unanswered
        );
    }
}
