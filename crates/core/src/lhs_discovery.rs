//! The LHS-Discovery algorithm (paper §6.2.1).
//!
//! Scans the elicited inclusion dependencies for *non-key* attributes:
//! those are candidate identifiers of objects that the denormalized
//! schema never conceptualized as relations.
//!
//! * When a relation of `S` (a conceptualized intersection) is on the
//!   left-hand side and the right-hand side is not a key, the RHS
//!   attributes join the hidden-object set `H` — the expert user
//!   already committed to conceptualizing a subset of their values.
//! * Otherwise, every non-key side of the IND joins `LHS`, the set of
//!   candidate left-hand sides for FD elicitation.

use dbre_relational::database::Database;
use dbre_relational::deps::Ind;
use dbre_relational::schema::{QualAttrs, RelId};

/// Result of LHS-Discovery.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LhsDiscovery {
    /// Candidate left-hand sides `LHS` (deterministic order, no
    /// duplicates).
    pub lhs: Vec<QualAttrs>,
    /// Hidden objects `H`.
    pub hidden: Vec<QualAttrs>,
}

impl LhsDiscovery {
    fn add_lhs(&mut self, q: QualAttrs) {
        if !self.lhs.contains(&q) {
            self.lhs.push(q);
        }
    }

    fn add_hidden(&mut self, q: QualAttrs) {
        if !self.hidden.contains(&q) {
            self.hidden.push(q);
        }
    }
}

/// Runs LHS-Discovery over the IND set. `s_relations` identifies the
/// relations created by IND-Discovery (the set `S`).
pub fn lhs_discovery(db: &Database, inds: &[Ind], s_relations: &[RelId]) -> LhsDiscovery {
    let mut out = LhsDiscovery::default();
    for ind in inds {
        let lhs_q = ind.lhs.qualified();
        let rhs_q = ind.rhs.qualified();
        if s_relations.contains(&ind.lhs.rel) {
            // (i) — by construction the S relation is on the left; if
            // the right-hand side is not a key, it must be
            // conceptualized.
            if !db.constraints.is_key(ind.rhs.rel, &rhs_q.attrs) {
                out.add_hidden(rhs_q);
            }
        } else {
            // (ii)/(iii) — non-key sides become candidate identifiers.
            if !db.constraints.is_key(ind.lhs.rel, &lhs_q.attrs) {
                out.add_lhs(lhs_q);
            }
            if !db.constraints.is_key(ind.rhs.rel, &rhs_q.attrs) {
                out.add_lhs(rhs_q);
            }
        }
    }
    // An attribute set already destined to H need not be analysed as a
    // plain LHS candidate twice; keep both sets disjoint with H taking
    // precedence (matches the paper's RHS loop over `LHS ∪ H`).
    out.lhs.retain(|q| !out.hidden.contains(q));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbre_relational::attr::{AttrId, AttrSet};
    use dbre_relational::deps::IndSide;
    use dbre_relational::schema::Relation;
    use dbre_relational::value::Domain;

    /// Person(id key), Emp(no), S0(v) conceptualized.
    fn db() -> (Database, RelId, RelId, RelId) {
        let mut db = Database::new();
        let person = db
            .add_relation(Relation::of("Person", &[("id", Domain::Int)]))
            .unwrap();
        let emp = db
            .add_relation(Relation::of(
                "Emp",
                &[("no", Domain::Int), ("dep", Domain::Text)],
            ))
            .unwrap();
        let s0 = db
            .add_relation(Relation::of("S0", &[("v", Domain::Int)]))
            .unwrap();
        db.constraints
            .add_key(person, AttrSet::from_indices([0u16]));
        db.constraints.add_key(s0, AttrSet::from_indices([0u16]));
        db.constraints.normalize();
        (db, person, emp, s0)
    }

    #[test]
    fn non_key_sides_become_lhs() {
        let (db, person, emp, _) = db();
        let ind = Ind::unary(emp, AttrId(0), person, AttrId(0));
        let out = lhs_discovery(&db, &[ind], &[]);
        assert_eq!(out.lhs.len(), 1);
        assert_eq!(out.lhs[0].render(&db.schema), "Emp.{no}");
        assert!(out.hidden.is_empty());
    }

    #[test]
    fn key_rhs_not_added() {
        let (db, person, emp, _) = db();
        // Person.id is a key: only the left side is a candidate.
        let ind = Ind::unary(emp, AttrId(0), person, AttrId(0));
        let out = lhs_discovery(&db, &[ind], &[]);
        assert!(out.lhs.iter().all(|q| q.rel != person));
    }

    #[test]
    fn both_non_key_sides_added() {
        let (db, _, emp, _) = db();
        let mut db2 = db;
        let other = db2
            .add_relation(Relation::of("Other", &[("e", Domain::Int)]))
            .unwrap();
        let ind = Ind::unary(other, AttrId(0), emp, AttrId(0));
        let out = lhs_discovery(&db2, &[ind], &[]);
        assert_eq!(out.lhs.len(), 2);
    }

    #[test]
    fn s_relation_lhs_routes_rhs_to_hidden() {
        let (db, _, emp, s0) = db();
        let ind = Ind::unary(s0, AttrId(0), emp, AttrId(0));
        let out = lhs_discovery(&db, &[ind], &[s0]);
        assert!(out.lhs.is_empty());
        assert_eq!(out.hidden.len(), 1);
        assert_eq!(out.hidden[0].render(&db.schema), "Emp.{no}");
    }

    #[test]
    fn s_relation_with_key_rhs_adds_nothing() {
        let (db, person, _, s0) = db();
        let ind = Ind::unary(s0, AttrId(0), person, AttrId(0));
        let out = lhs_discovery(&db, &[ind], &[s0]);
        assert!(out.lhs.is_empty());
        assert!(out.hidden.is_empty());
    }

    #[test]
    fn hidden_takes_precedence_over_lhs() {
        let (db, person, emp, s0) = db();
        // Emp.no appears both via an S-IND (→ H) and a plain IND (→ LHS).
        let via_s = Ind::unary(s0, AttrId(0), emp, AttrId(0));
        let plain = Ind::unary(emp, AttrId(0), person, AttrId(0));
        let out = lhs_discovery(&db, &[plain, via_s], &[s0]);
        assert_eq!(out.hidden.len(), 1);
        assert!(out.lhs.is_empty(), "Emp.no must not appear in both sets");
    }

    #[test]
    fn composite_sides_compared_as_sets_against_keys() {
        let mut db = Database::new();
        let a = db
            .add_relation(Relation::of("A", &[("x", Domain::Int), ("y", Domain::Int)]))
            .unwrap();
        let b = db
            .add_relation(Relation::of("B", &[("u", Domain::Int), ("v", Domain::Int)]))
            .unwrap();
        db.constraints
            .add_key(b, AttrSet::from_indices([0u16, 1u16]));
        db.constraints.normalize();
        // A[y, x] << B[v, u]: rhs set {u, v} IS the key even though the
        // positional order differs.
        let ind = Ind::new(
            IndSide::new(a, vec![AttrId(1), AttrId(0)]),
            IndSide::new(b, vec![AttrId(1), AttrId(0)]),
        )
        .unwrap();
        let out = lhs_discovery(&db, &[ind], &[]);
        assert_eq!(out.lhs.len(), 1);
        assert_eq!(out.lhs[0].rel, a);
    }
}
