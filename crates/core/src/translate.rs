//! The Translate algorithm (paper §7, sketch): restructured relational
//! schema + `K` + `RIC` → EER schema.
//!
//! For each referential integrity constraint `R_l[A_l] ≪ R_k[A_k]`:
//!
//! * **(a)** `A_l ∈ K` (the whole key of `R_l`) — an *is-a* link from
//!   `R_l` to `R_k`;
//! * **(b)** `A_l ⊂ key` — if the key of `R_l` partitions into RIC
//!   left-hand sides, `R_l` is a *many-to-many relationship-type*
//!   connecting the referenced object-types; otherwise `R_l` is a
//!   *weak entity-type* owned by `R_k`;
//! * **(c)** `A_l ⊄ key` — a *binary relationship-type* between `R_l`
//!   and `R_k` (a plain foreign key).
//!
//! Cyclic inclusion dependencies are not treated specially (the paper
//! explicitly leaves them out of the sketch).

use crate::eer::{EerSchema, EntityType, IsaLink, Participant, RelationshipKind, RelationshipType};
use dbre_relational::attr::AttrSet;
use dbre_relational::database::Database;
use dbre_relational::deps::Ind;
use dbre_relational::schema::RelId;
use dbre_relational::{DbreError, RelationalError};

/// Runs Translate on a (restructured) database and its RIC set.
///
/// The RIC set is validated against the schema first: an inclusion
/// dependency referencing an out-of-range relation or attribute id
/// yields a typed error instead of an index panic during
/// classification.
pub fn translate(db: &Database, ric: &[Ind]) -> Result<EerSchema, DbreError> {
    for ind in ric {
        for side in [&ind.lhs, &ind.rhs] {
            if side.rel.index() >= db.schema.len() {
                return Err(
                    RelationalError::UnknownRelation(format!("#{}", side.rel.index())).into(),
                );
            }
            let relation = db.schema.relation(side.rel);
            for a in &side.attrs {
                if a.index() >= relation.arity() {
                    return Err(RelationalError::UnknownAttribute {
                        relation: relation.name.clone(),
                        attribute: format!("#{}", a.index()),
                    }
                    .into());
                }
            }
        }
    }
    let mut out = EerSchema::default();

    // Group RICs by source relation.
    let rics_from = |rel: RelId| ric.iter().filter(move |i| i.lhs.rel == rel);

    // Classify each relation.
    #[derive(PartialEq)]
    enum Class {
        Entity,
        WeakEntity(Vec<RelId>),
        Relationship(Vec<Ind>),
    }

    let mut classes: Vec<(RelId, Class)> = Vec::new();
    for (rel, relation) in db.schema.iter() {
        let key = db
            .constraints
            .primary_key(rel)
            .map(|k| k.attrs.clone())
            .unwrap_or_else(|| relation.all_attrs());

        // Strict sub-key RICs.
        let sub_key_rics: Vec<&Ind> = rics_from(rel)
            .filter(|i| {
                let set = i.lhs.attr_set();
                set.is_strict_subset(&key)
            })
            .collect();

        if !sub_key_rics.is_empty() {
            // Rule (b): does the key partition into RIC LHSs?
            // Greedy cover with pairwise-disjoint LHS sets.
            let mut covered = AttrSet::empty();
            let mut parts: Vec<Ind> = Vec::new();
            for i in &sub_key_rics {
                let set = i.lhs.attr_set();
                if set.is_disjoint(&covered) {
                    covered = covered.union(&set);
                    parts.push((*i).clone());
                }
            }
            if covered == key && parts.len() >= 2 {
                classes.push((rel, Class::Relationship(parts)));
                continue;
            }
            let owners: Vec<RelId> = sub_key_rics.iter().map(|i| i.rhs.rel).collect();
            classes.push((rel, Class::WeakEntity(owners)));
            continue;
        }
        classes.push((rel, Class::Entity));
    }

    // Materialize entities and many-to-many relationships.
    for (rel, class) in &classes {
        let relation = db.schema.relation(*rel);
        let key = db
            .constraints
            .primary_key(*rel)
            .map(|k| k.attrs.clone())
            .unwrap_or_else(|| relation.all_attrs());
        let attr_names: Vec<String> = relation
            .attributes()
            .iter()
            .map(|a| a.name.clone())
            .collect();
        let key_names: Vec<String> = key
            .iter()
            .map(|a| relation.attr_name(a).to_string())
            .collect();
        match class {
            Class::Entity => out.entities.push(EntityType {
                name: relation.name.clone(),
                attrs: attr_names,
                key: key_names,
                weak: false,
                owners: vec![],
            }),
            Class::WeakEntity(owners) => {
                let mut owner_names: Vec<String> = owners
                    .iter()
                    .map(|o| db.schema.relation(*o).name.clone())
                    .collect();
                owner_names.sort();
                owner_names.dedup();
                out.entities.push(EntityType {
                    name: relation.name.clone(),
                    attrs: attr_names,
                    key: key_names,
                    weak: true,
                    owners: owner_names,
                });
            }
            Class::Relationship(parts) => {
                let participants: Vec<Participant> = parts
                    .iter()
                    .map(|i| Participant {
                        object: db.schema.relation(i.rhs.rel).name.clone(),
                        via: i
                            .lhs
                            .attrs
                            .iter()
                            .map(|a| relation.attr_name(*a).to_string())
                            .collect(),
                    })
                    .collect();
                // Own attributes: everything outside the key.
                let own: Vec<String> = relation
                    .all_attrs()
                    .difference(&key)
                    .iter()
                    .map(|a| relation.attr_name(a).to_string())
                    .collect();
                out.relationships.push(RelationshipType {
                    name: relation.name.clone(),
                    participants,
                    attrs: own,
                    kind: RelationshipKind::ManyToMany,
                });
            }
        }
    }

    // Rules (a) and (c) per RIC.
    for ind in ric {
        let l_rel = db.schema.relation(ind.lhs.rel);
        let r_rel = db.schema.relation(ind.rhs.rel);
        let l_key = db
            .constraints
            .primary_key(ind.lhs.rel)
            .map(|k| k.attrs.clone())
            .unwrap_or_else(|| l_rel.all_attrs());
        let lhs_set = ind.lhs.attr_set();
        if db.constraints.is_key(ind.lhs.rel, &lhs_set) || lhs_set == l_key {
            // (a) is-a link.
            let link = IsaLink {
                sub: l_rel.name.clone(),
                sup: r_rel.name.clone(),
            };
            if !out.isa.contains(&link) {
                out.isa.push(link);
            }
        } else if !lhs_set.is_subset(&l_key) {
            // (c) binary relationship-type via a plain foreign key —
            // only when the source is an object-type of its own (a
            // many-to-many relation's links are its participations).
            let is_relationship_source = classes
                .iter()
                .any(|(r, c)| *r == ind.lhs.rel && matches!(c, Class::Relationship(_)));
            if is_relationship_source {
                continue;
            }
            let name = format!("{}-{}", l_rel.name, r_rel.name);
            let rt = RelationshipType {
                name,
                participants: vec![
                    Participant {
                        object: l_rel.name.clone(),
                        via: ind
                            .lhs
                            .attrs
                            .iter()
                            .map(|a| l_rel.attr_name(*a).to_string())
                            .collect(),
                    },
                    Participant {
                        object: r_rel.name.clone(),
                        via: ind
                            .rhs
                            .attrs
                            .iter()
                            .map(|a| r_rel.attr_name(*a).to_string())
                            .collect(),
                    },
                ],
                attrs: vec![],
                kind: RelationshipKind::Binary,
            };
            if out.relationship(&rt.name).is_none() {
                out.relationships.push(rt);
            }
        }
        // Sub-key RICs were consumed by the classification above
        // (weak-entity ownership / relationship participation).
    }

    collapse_isa_cycles(&mut out);
    Ok(out)
}

/// Cyclic-IND treatment (left open by the paper's sketch): is-a links
/// that form cycles mean the key-based inclusions run both ways — over
/// finite extensions the instance sets are equal, so the object-types
/// are the *same* object. Each strongly connected component of the
/// is-a graph with ≥ 2 members becomes an equivalence group; its
/// internal links are removed, and links from/to the group members to
/// outside types are kept as they are.
fn collapse_isa_cycles(eer: &mut EerSchema) {
    use std::collections::{BTreeMap, BTreeSet, VecDeque};
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for l in &eer.isa {
        adj.entry(l.sub.as_str()).or_default().push(l.sup.as_str());
    }
    let nodes: BTreeSet<&str> = eer
        .isa
        .iter()
        .flat_map(|l| [l.sub.as_str(), l.sup.as_str()])
        .collect();
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::from([from]);
        while let Some(at) = queue.pop_front() {
            if at == to {
                return true;
            }
            if !seen.insert(at) {
                continue;
            }
            for next in adj.get(at).into_iter().flatten() {
                queue.push_back(next);
            }
        }
        false
    };

    // Mutual-reachability grouping.
    let node_list: Vec<&str> = nodes.into_iter().collect();
    let mut assigned: BTreeSet<&str> = BTreeSet::new();
    let mut groups: Vec<Vec<String>> = Vec::new();
    for (i, &a) in node_list.iter().enumerate() {
        if assigned.contains(a) {
            continue;
        }
        let mut group = vec![a];
        for &b in &node_list[i + 1..] {
            if !assigned.contains(b) && reaches(a, b) && reaches(b, a) {
                group.push(b);
            }
        }
        if group.len() >= 2 {
            for m in &group {
                assigned.insert(m);
            }
            groups.push(group.into_iter().map(String::from).collect());
        }
    }
    if groups.is_empty() {
        return;
    }
    // Drop links internal to a group.
    eer.isa.retain(|l| {
        !groups
            .iter()
            .any(|g| g.contains(&l.sub) && g.contains(&l.sup))
    });
    eer.equivalences = groups;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbre_relational::attr::AttrId;
    use dbre_relational::schema::Relation;
    use dbre_relational::value::Domain;

    /// Builds the paper's *restructured* schema directly (§7) and
    /// checks Translate reproduces Figure 1's structure.
    fn restructured_db() -> (Database, Vec<Ind>) {
        let mut db = Database::new();
        let person = db
            .add_relation(Relation::of(
                "Person",
                &[
                    ("id", Domain::Int),
                    ("name", Domain::Text),
                    ("street", Domain::Text),
                    ("number", Domain::Int),
                    ("zip-code", Domain::Text),
                    ("city", Domain::Text),
                ],
            ))
            .unwrap();
        let hemployee = db
            .add_relation(Relation::of(
                "HEmployee",
                &[
                    ("no", Domain::Int),
                    ("date", Domain::Date),
                    ("salary", Domain::Float),
                ],
            ))
            .unwrap();
        let department = db
            .add_relation(Relation::of(
                "Department",
                &[
                    ("dep", Domain::Text),
                    ("emp", Domain::Int),
                    ("location", Domain::Text),
                ],
            ))
            .unwrap();
        let assignment = db
            .add_relation(Relation::of(
                "Assignment",
                &[
                    ("emp", Domain::Int),
                    ("dep", Domain::Text),
                    ("proj", Domain::Text),
                    ("date", Domain::Date),
                ],
            ))
            .unwrap();
        let employee = db
            .add_relation(Relation::of("Employee", &[("no", Domain::Int)]))
            .unwrap();
        let ass_dept = db
            .add_relation(Relation::of("Ass-Dept", &[("dep", Domain::Text)]))
            .unwrap();
        let other_dept = db
            .add_relation(Relation::of("Other-Dept", &[("dep", Domain::Text)]))
            .unwrap();
        let manager = db
            .add_relation(Relation::of(
                "Manager",
                &[
                    ("emp", Domain::Int),
                    ("skill", Domain::Text),
                    ("proj", Domain::Text),
                ],
            ))
            .unwrap();
        let project = db
            .add_relation(Relation::of(
                "Project",
                &[("proj", Domain::Text), ("project-name", Domain::Text)],
            ))
            .unwrap();

        for (rel, key) in [
            (person, vec![0u16]),
            (hemployee, vec![0, 1]),
            (department, vec![0]),
            (assignment, vec![0, 1, 2]),
            (employee, vec![0]),
            (ass_dept, vec![0]),
            (other_dept, vec![0]),
            (manager, vec![0]),
            (project, vec![0]),
        ] {
            db.constraints
                .add_key(rel, AttrSet::from_indices(key.iter().copied()));
        }
        db.constraints.normalize();

        let ric = vec![
            Ind::unary(employee, AttrId(0), person, AttrId(0)),
            Ind::unary(manager, AttrId(0), employee, AttrId(0)),
            Ind::unary(assignment, AttrId(0), employee, AttrId(0)),
            Ind::unary(ass_dept, AttrId(0), other_dept, AttrId(0)),
            Ind::unary(assignment, AttrId(1), other_dept, AttrId(0)),
            Ind::unary(ass_dept, AttrId(0), department, AttrId(0)),
            Ind::unary(manager, AttrId(2), project, AttrId(0)),
            Ind::unary(hemployee, AttrId(0), employee, AttrId(0)),
            Ind::unary(department, AttrId(1), manager, AttrId(0)),
            Ind::unary(assignment, AttrId(2), project, AttrId(0)),
        ];
        (db, ric)
    }

    #[test]
    fn paper_figure_1_structure() {
        let (db, ric) = restructured_db();
        let eer = translate(&db, &ric).unwrap();

        // Assignment: ternary many-to-many relationship with attr date.
        let assign = eer.relationship("Assignment").expect("Assignment diamond");
        assert_eq!(assign.kind, RelationshipKind::ManyToMany);
        let mut objs: Vec<&str> = assign
            .participants
            .iter()
            .map(|p| p.object.as_str())
            .collect();
        objs.sort();
        assert_eq!(objs, vec!["Employee", "Other-Dept", "Project"]);
        assert_eq!(assign.attrs, vec!["date"]);

        // HEmployee: weak entity owned by Employee.
        let hemp = eer.entity("HEmployee").expect("HEmployee box");
        assert!(hemp.weak);
        assert_eq!(hemp.owners, vec!["Employee"]);

        // is-a links.
        assert!(eer.has_isa("Employee", "Person"));
        assert!(eer.has_isa("Manager", "Employee"));
        assert!(eer.has_isa("Ass-Dept", "Other-Dept"));
        assert!(eer.has_isa("Ass-Dept", "Department"));
        assert_eq!(eer.isa.len(), 4);

        // Binary relationships: Manager–Project, Department–Manager.
        assert!(eer.relationship("Manager-Project").is_some());
        assert!(eer.relationship("Department-Manager").is_some());

        // Plain entities present.
        for e in [
            "Person",
            "Employee",
            "Department",
            "Manager",
            "Project",
            "Other-Dept",
        ] {
            assert!(eer.entity(e).is_some(), "missing entity {e}");
            assert!(!eer.entity(e).unwrap().weak);
        }
        // Assignment is not also an entity.
        assert!(eer.entity("Assignment").is_none());
    }

    #[test]
    fn relation_without_rics_is_plain_entity() {
        let mut db = Database::new();
        let rel = db
            .add_relation(Relation::of(
                "Lone",
                &[("k", Domain::Int), ("v", Domain::Text)],
            ))
            .unwrap();
        db.constraints.add_key(rel, AttrSet::from_indices([0u16]));
        db.constraints.normalize();
        let eer = translate(&db, &[]).unwrap();
        let e = eer.entity("Lone").unwrap();
        assert!(!e.weak);
        assert_eq!(e.key, vec!["k"]);
        assert!(eer.relationships.is_empty());
        assert!(eer.isa.is_empty());
    }

    #[test]
    fn sub_key_without_partition_is_weak_entity() {
        let mut db = Database::new();
        let hist = db
            .add_relation(Relation::of(
                "History",
                &[
                    ("id", Domain::Int),
                    ("at", Domain::Date),
                    ("v", Domain::Int),
                ],
            ))
            .unwrap();
        let base = db
            .add_relation(Relation::of("Base", &[("id", Domain::Int)]))
            .unwrap();
        db.constraints
            .add_key(hist, AttrSet::from_indices([0u16, 1]));
        db.constraints.add_key(base, AttrSet::from_indices([0u16]));
        db.constraints.normalize();
        let ric = vec![Ind::unary(hist, AttrId(0), base, AttrId(0))];
        let eer = translate(&db, &ric).unwrap();
        let h = eer.entity("History").unwrap();
        assert!(h.weak);
        assert_eq!(h.owners, vec!["Base"]);
    }

    #[test]
    fn binary_relationship_from_non_key_fk() {
        let mut db = Database::new();
        let dept = db
            .add_relation(Relation::of(
                "Department",
                &[("dep", Domain::Text), ("mgr", Domain::Int)],
            ))
            .unwrap();
        let mgr = db
            .add_relation(Relation::of("Manager", &[("emp", Domain::Int)]))
            .unwrap();
        db.constraints.add_key(dept, AttrSet::from_indices([0u16]));
        db.constraints.add_key(mgr, AttrSet::from_indices([0u16]));
        db.constraints.normalize();
        let ric = vec![Ind::unary(dept, AttrId(1), mgr, AttrId(0))];
        let eer = translate(&db, &ric).unwrap();
        let r = eer.relationship("Department-Manager").unwrap();
        assert_eq!(r.kind, RelationshipKind::Binary);
        assert_eq!(r.participants[0].via, vec!["mgr"]);
        assert!(eer.isa.is_empty());
    }

    #[test]
    fn full_key_ric_gives_isa_not_relationship() {
        let mut db = Database::new();
        let sub = db
            .add_relation(Relation::of(
                "Sub",
                &[("id", Domain::Int), ("x", Domain::Int)],
            ))
            .unwrap();
        let sup = db
            .add_relation(Relation::of("Sup", &[("id", Domain::Int)]))
            .unwrap();
        db.constraints.add_key(sub, AttrSet::from_indices([0u16]));
        db.constraints.add_key(sup, AttrSet::from_indices([0u16]));
        db.constraints.normalize();
        let ric = vec![Ind::unary(sub, AttrId(0), sup, AttrId(0))];
        let eer = translate(&db, &ric).unwrap();
        assert!(eer.has_isa("Sub", "Sup"));
        assert!(eer.relationships.is_empty());
        assert!(!eer.entity("Sub").unwrap().weak);
    }

    #[test]
    fn cyclic_key_inds_collapse_to_equivalence() {
        // Client[id] ≪ Cust[id] and Cust[id] ≪ Client[id]: two names
        // for the same object — the cyclic case the paper's sketch
        // leaves out.
        let mut db = Database::new();
        let client = db
            .add_relation(Relation::of(
                "Client",
                &[("id", Domain::Int), ("a", Domain::Text)],
            ))
            .unwrap();
        let cust = db
            .add_relation(Relation::of(
                "Cust",
                &[("id", Domain::Int), ("b", Domain::Text)],
            ))
            .unwrap();
        db.constraints
            .add_key(client, AttrSet::from_indices([0u16]));
        db.constraints.add_key(cust, AttrSet::from_indices([0u16]));
        db.constraints.normalize();
        let ric = vec![
            Ind::unary(client, AttrId(0), cust, AttrId(0)),
            Ind::unary(cust, AttrId(0), client, AttrId(0)),
        ];
        let eer = translate(&db, &ric).unwrap();
        assert!(eer.isa.is_empty(), "no circular is-a links");
        assert_eq!(eer.equivalences.len(), 1);
        let mut g = eer.equivalences[0].clone();
        g.sort();
        assert_eq!(g, vec!["Client", "Cust"]);
        let text = eer.render_text();
        assert!(text.contains("equivalent: Client = Cust"));
    }

    #[test]
    fn three_cycle_collapses_and_external_isa_survives() {
        let mut db = Database::new();
        let names = ["A", "B", "C", "D"];
        let rels: Vec<_> = names
            .iter()
            .map(|n| {
                let r = db
                    .add_relation(Relation::of(n, &[("id", Domain::Int)]))
                    .unwrap();
                db.constraints.add_key(r, AttrSet::from_indices([0u16]));
                r
            })
            .collect();
        db.constraints.normalize();
        let ric = vec![
            Ind::unary(rels[0], AttrId(0), rels[1], AttrId(0)),
            Ind::unary(rels[1], AttrId(0), rels[2], AttrId(0)),
            Ind::unary(rels[2], AttrId(0), rels[0], AttrId(0)),
            // External specialization into the cycle.
            Ind::unary(rels[3], AttrId(0), rels[0], AttrId(0)),
        ];
        let eer = translate(&db, &ric).unwrap();
        assert_eq!(eer.equivalences.len(), 1);
        assert_eq!(eer.equivalences[0].len(), 3);
        assert_eq!(eer.isa.len(), 1);
        assert!(eer.has_isa("D", "A"));
    }

    #[test]
    fn binary_relationship_ternary_dedup() {
        // Two RICs with the same relation pair dedup by name.
        let mut db = Database::new();
        let a = db
            .add_relation(Relation::of(
                "A",
                &[("k", Domain::Int), ("f1", Domain::Int), ("f2", Domain::Int)],
            ))
            .unwrap();
        let b = db
            .add_relation(Relation::of("B", &[("id", Domain::Int)]))
            .unwrap();
        db.constraints.add_key(a, AttrSet::from_indices([0u16]));
        db.constraints.add_key(b, AttrSet::from_indices([0u16]));
        db.constraints.normalize();
        let ric = vec![
            Ind::unary(a, AttrId(1), b, AttrId(0)),
            Ind::unary(a, AttrId(2), b, AttrId(0)),
        ];
        let eer = translate(&db, &ric).unwrap();
        assert_eq!(eer.relationships.len(), 1);
    }
}
