//! The memoized `‖·‖` counting engine — a generation-tagged decorator
//! over any [`CountBackend`].
//!
//! Every step of the paper's method is driven by a handful of
//! extension statistics: distinct projections (`‖r[X]‖`, §2) for the
//! three IND-Discovery cardinalities, grouped LHS classes for the
//! `A → b` extension tests of RHS-Discovery (§6.2.2), and stripped
//! partitions for the mining baselines. A pipeline asks for the same
//! projection dozens of times (each join of `Q` twice, every candidate
//! FD once per oracle round), so recomputation — whatever backend
//! computes it — is the dominant waste.
//!
//! [`StatsEngine`] memoizes *results* per `(relation, attribute-list)`
//! key, tagged with the owning table's generation counter
//! ([`Database::generation`]), so conceptualization in IND-Discovery
//! and attribute drops in Restruct — both of which mutate the
//! database — can never cause a stale count to be served: a mutated
//! table's generation moves past the tag and the entry is rebuilt on
//! next use. *How* a missing entry is built is delegated to the
//! wrapped [`CountBackend`] ([`ReferenceBackend`] scans, the default
//! [`EncodedBackend`] runs integer-code kernels over its own
//! generation-tagged dictionary cache, `dbre-sql`'s `SqlBackend`
//! executes generated SQL), which is what makes the engine one seam:
//! the pipeline, the miners, and the benches see identical semantics
//! and identical caching regardless of the backend underneath.
//!
//! Interior mutability (`RwLock` caches, atomic counters) keeps the
//! whole API on `&self`, so one engine can be shared by the parallel
//! workers of [`crate::par::par_map`] without cloning caches. Cache
//! entries racing between workers are resolved by re-checking under
//! the write lock and *adopting* a concurrent winner's entry as a hit,
//! so the hit/miss counters match the sequential schedule.
//!
//! NULL semantics are the backend contract (see [`CountBackend`]):
//! projections drop NULL-containing rows (SQL `COUNT(DISTINCT …)`),
//! [`StatsEngine::fd_holds`] skips NULL-LHS rows (SQL, matching
//! [`Database::fd_holds`]), while [`StatsEngine::partition_for_attrs`]
//! keeps the mining convention (NULL = NULL) of [`crate::partitions`].
//! The two families are cached separately and never conflated.
//!
//! The engine itself implements [`CountBackend`], so anything written
//! against the seam — the miners, the differential suites — can take
//! either a raw backend or a memoizing engine through the same
//! `&dyn CountBackend` parameter.

use crate::attr::AttrId;
use crate::backend::{
    read_recover, write_recover, BackendExecStats, CountBackend, EncodedBackend, Tagged,
};
use crate::counting::{EquiJoin, JoinStats};
use crate::database::Database;
use crate::delta::{
    lhs_groups_append, lhs_groups_delete, partition_append, partition_delete, projection_append,
    Delta,
};
use crate::deps::{Fd, Ind};
use crate::encode::ColumnDict;
use crate::partitions::StrippedPartition;
use crate::schema::RelId;
use crate::sketch::ColumnSketch;
use crate::table::ProjKey;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

#[cfg(doc)]
use crate::backend::ReferenceBackend;

/// Cached [`JoinStats`], valid while both side tables keep their
/// generations.
#[derive(Clone, Copy)]
struct TaggedJoin {
    left_gen: u64,
    right_gen: u64,
    stats: JoinStats,
}

/// Cheap observability counters, readable at any time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsCounters {
    /// Lookups answered from cache.
    pub cache_hits: u64,
    /// Lookups that had to (re)build an entry.
    pub cache_misses: u64,
    /// Table rows scanned while building entries and running checks.
    pub rows_scanned: u64,
}

/// A cache family: one generation-tagged entry per `(rel, attrs)` key.
type AttrCache<T> = RwLock<HashMap<(RelId, Vec<AttrId>), Tagged<T>>>;

/// Memoized distinct-projection / partition / FD-group statistics over
/// one [`Database`], decorating a [`CountBackend`] (see the module
/// docs).
///
/// Generation tags are drawn from a process-global allocator
/// ([`Database::generation`]), so a tag identifies one table version
/// across *every* database clone in the process. One engine can
/// therefore be shared safely by many concurrent sessions working on
/// diverging snapshots of the same database (the service layer in
/// `dbre-core` does exactly this): sessions touching the same table
/// version share warm entries, sessions that mutated their private
/// clone get fresh tags and fresh entries, and nothing can alias.
/// Committed writes keep the shared engine warm through
/// [`StatsEngine::apply_delta`] instead of wholesale invalidation.
pub struct StatsEngine {
    /// The counting implementation cache misses are delegated to.
    backend: Box<dyn CountBackend>,
    /// Memoized `‖rel[attrs]‖` counts.
    counts: AttrCache<usize>,
    projections: AttrCache<HashSet<ProjKey>>,
    partitions: AttrCache<StrippedPartition>,
    lhs_groups: AttrCache<Vec<Vec<usize>>>,
    joins: RwLock<HashMap<EquiJoin, TaggedJoin>>,
    hits: AtomicU64,
    misses: AtomicU64,
    rows_scanned: AtomicU64,
}

impl Default for StatsEngine {
    fn default() -> Self {
        StatsEngine::new()
    }
}

impl StatsEngine {
    /// An engine over the default [`EncodedBackend`], with empty
    /// caches and zeroed counters.
    pub fn new() -> Self {
        StatsEngine::with_backend(Box::new(EncodedBackend::new()))
    }

    /// An engine decorating `backend` with generation-tagged result
    /// caches.
    pub fn with_backend(backend: Box<dyn CountBackend>) -> Self {
        StatsEngine {
            backend,
            counts: RwLock::default(),
            projections: RwLock::default(),
            partitions: RwLock::default(),
            lhs_groups: RwLock::default(),
            joins: RwLock::default(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            rows_scanned: AtomicU64::new(0),
        }
    }

    /// The wrapped backend's name (`"reference"`, `"encoded"`,
    /// `"sql"`, …).
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// Serves `cache[key]` when its tag matches `gen`, otherwise runs
    /// `build` and inserts. `build` returns the value plus the rows
    /// scanned to produce it (charged to the counters on a miss only).
    ///
    /// Cache keys can be shared across concurrent probes (parallel FD
    /// checks share an LHS, parallel joins share a side), so after
    /// building the entry is re-checked under the write lock: if a
    /// concurrent prober beat us, its entry is adopted as a *hit* and
    /// ours dropped. Counters then match the sequential schedule
    /// exactly — one miss per cold key — keeping the `parallel`
    /// feature's byte-identical-output guarantee. Building before
    /// locking wastes the loser's pass but never serializes distinct
    /// keys.
    fn cached<K, T>(
        &self,
        cache: &RwLock<HashMap<K, Tagged<T>>>,
        key: K,
        gen: u64,
        build: impl FnOnce() -> (Arc<T>, u64),
    ) -> Arc<T>
    where
        K: std::hash::Hash + Eq,
    {
        if let Some(entry) = read_recover(cache).get(&key) {
            if entry.gen == gen {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.value);
            }
        }
        let (value, rows) = build();
        let mut guard = write_recover(cache);
        if let Some(entry) = guard.get(&key) {
            if entry.gen == gen {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.value);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.rows_scanned.fetch_add(rows, Ordering::Relaxed);
        guard.insert(
            key,
            Tagged {
                gen,
                value: Arc::clone(&value),
            },
        );
        value
    }

    /// `‖rel[attrs]‖` — the paper's cardinality query, memoized.
    pub fn count_distinct(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> usize {
        let gen = db.generation(rel);
        *self.cached(&self.counts, (rel, attrs.to_vec()), gen, || {
            (
                Arc::new(self.backend.count_distinct(db, rel, attrs)),
                db.table(rel).len() as u64,
            )
        })
    }

    /// The distinct projection `π_{attrs}(rel)` (NULL rows dropped) as
    /// `Value` tuples, shared out of the cache. Kept for consumers
    /// that need the actual values (e.g. materializing a
    /// conceptualized intersection); counting paths stay on
    /// [`StatsEngine::count_distinct`].
    pub fn projection(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<HashSet<ProjKey>> {
        let gen = db.generation(rel);
        self.cached(&self.projections, (rel, attrs.to_vec()), gen, || {
            (
                self.backend.projection(db, rel, attrs),
                db.table(rel).len() as u64,
            )
        })
    }

    /// The three IND-Discovery cardinalities for `join`, memoized per
    /// join and valid while both side tables keep their generations.
    pub fn join_stats(&self, db: &Database, join: &EquiJoin) -> JoinStats {
        let left_gen = db.generation(join.left.rel);
        let right_gen = db.generation(join.right.rel);
        if let Some(entry) = read_recover(&self.joins).get(join) {
            if entry.left_gen == left_gen && entry.right_gen == right_gen {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return entry.stats;
            }
        }
        let stats = self.backend.join_stats(db, join);
        let mut joins = write_recover(&self.joins);
        if let Some(entry) = joins.get(join) {
            if entry.left_gen == left_gen && entry.right_gen == right_gen {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return entry.stats;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.rows_scanned
            .fetch_add(stats.n_left.min(stats.n_right) as u64, Ordering::Relaxed);
        joins.insert(
            join.clone(),
            TaggedJoin {
                left_gen,
                right_gen,
                stats,
            },
        );
        stats
    }

    /// The stripped partition `π_{attr}` (mining convention:
    /// NULL = NULL), shared out of the cache.
    pub fn partition(&self, db: &Database, rel: RelId, attr: AttrId) -> Arc<StrippedPartition> {
        self.partition_for_attrs(db, rel, &[attr])
    }

    /// The stripped partition `π_{attrs}`, built by products of cached
    /// unary partitions (each from the backend) and itself cached.
    pub fn partition_for_attrs(
        &self,
        db: &Database,
        rel: RelId,
        attrs: &[AttrId],
    ) -> Arc<StrippedPartition> {
        let gen = db.generation(rel);
        self.cached(
            &self.partitions,
            (rel, attrs.to_vec()),
            gen,
            || match attrs {
                [] => (
                    Arc::new(StrippedPartition::single_class(db.table(rel).len())),
                    db.table(rel).len() as u64,
                ),
                [a] => (
                    self.backend.partition1(db, rel, *a),
                    db.table(rel).len() as u64,
                ),
                [first, rest @ ..] => {
                    // Chain products of cached unary partitions; each
                    // product touches at most the surviving class rows.
                    let mut rows = 0u64;
                    let mut p = (*self.partition(db, rel, *first)).clone();
                    for a in rest {
                        rows += p.error() as u64;
                        p = p.product(&self.partition(db, rel, *a));
                    }
                    (Arc::new(p), rows)
                }
            },
        )
    }

    /// Row-index groups (size ≥ 2) agreeing on `attrs` under **SQL
    /// semantics** — rows with a NULL in `attrs` are skipped, exactly
    /// like [`Database::fd_holds`]. Deterministically ordered, shared
    /// out of the cache.
    pub fn lhs_groups(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<Vec<Vec<usize>>> {
        let gen = db.generation(rel);
        self.cached(&self.lhs_groups, (rel, attrs.to_vec()), gen, || {
            (
                self.backend.lhs_groups(db, rel, attrs),
                db.table(rel).len() as u64,
            )
        })
    }

    /// Does `fd` hold in the extension? Same SQL NULL semantics and
    /// same answer as [`Database::fd_holds`], but the LHS grouping is
    /// cached — repeated `A → b` probes with a shared LHS (the shape
    /// RHS-Discovery generates) only rescan the grouped rows.
    pub fn fd_holds(&self, db: &Database, fd: &Fd) -> bool {
        // A streamed extension has no raw RHS columns to compare —
        // delegate the whole probe to the backend (the paged backend's
        // one-pass witness check), which answers from the spilled
        // pages.
        if !db.table(fd.rel).is_materialized() {
            return self.backend.fd_holds(db, fd);
        }
        let lhs: Vec<AttrId> = fd.lhs.iter().collect();
        let rhs: Vec<AttrId> = fd.rhs.iter().collect();
        let groups = self.lhs_groups(db, fd.rel, &lhs);
        if groups.is_empty() {
            // Key-like LHS: no group of agreeing rows, so no pair can
            // disagree on the RHS.
            return true;
        }
        // The RHS comparison is structural equality on the raw columns
        // (hoisted out of the loop): only the grouped rows are touched,
        // so interning whole RHS columns into codes would cost a full
        // table pass per probe just to cheapen these few comparisons.
        let table = db.table(fd.rel);
        let rcols: Vec<&[crate::value::Value]> = rhs.iter().map(|a| table.column(*a)).collect();
        for group in groups.iter() {
            self.rows_scanned
                .fetch_add(group.len() as u64, Ordering::Relaxed);
            let first = group[0];
            if group[1..]
                .iter()
                .any(|&i| rcols.iter().any(|c| c[i] != c[first]))
            {
                return false;
            }
        }
        true
    }

    /// Does `ind` hold in the extension? Same answer as
    /// [`Database::ind_holds`], served through the memoized join
    /// statistics (an inclusion is a join whose intersection has the
    /// full left cardinality).
    pub fn ind_holds(&self, db: &Database, ind: &Ind) -> bool {
        // An Ind guarantees equal side arity, so the struct literal
        // cannot violate the EquiJoin invariant.
        let join = EquiJoin {
            left: ind.lhs.clone(),
            right: ind.rhs.clone(),
        };
        let s = self.join_stats(db, &join);
        s.n_join == s.n_left
    }

    /// Prewarms `rel`: lets the backend build its internal structures
    /// while the rows are hot (e.g. right after a CSV import) and
    /// primes the unary count cache, so the first statistics query
    /// after an import is a cache hit instead of a rebuild.
    pub fn prewarm(&self, db: &Database, rel: RelId) {
        self.backend.prewarm(db, rel);
        for i in 0..db.table(rel).arity() {
            self.count_distinct(db, rel, &[AttrId(i as u16)]);
        }
    }

    /// A snapshot of the observability counters.
    pub fn counters(&self) -> StatsCounters {
        StatsCounters {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters (cache contents are kept).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.rows_scanned.store(0, Ordering::Relaxed);
    }

    /// The inner backend's execution counters ([`BackendExecStats`]) —
    /// the decorator adds nothing of its own, so a nonzero
    /// `fallback_failures` here is always the backend confessing.
    pub fn exec_stats(&self) -> BackendExecStats {
        self.backend.exec_stats()
    }

    /// The inner backend's page-cache counters
    /// ([`crate::bufpool::PageCacheStats`]) — all-zero unless the
    /// paged backend is underneath.
    pub fn page_stats(&self) -> crate::bufpool::PageCacheStats {
        self.backend.page_stats()
    }

    /// The inner backend's spill-cache counters
    /// ([`crate::spill::SpillCacheStats`]) — all-zero unless the
    /// paged backend adopted streamed-ingest tables.
    pub fn spill_stats(&self) -> crate::spill::SpillCacheStats {
        self.backend.spill_stats()
    }

    /// Carries this engine's caches across one committed [`Delta`] —
    /// the write path of [`crate::snapshot::SharedDb::apply`]. Every
    /// entry of the mutated relation still tagged with the pre-delta
    /// generation is either *maintained* — rewritten incrementally by
    /// [`crate::delta`] and re-tagged with the post-delta generation,
    /// with a result identical to a from-scratch recompute — or
    /// evicted. Entries of other relations, and the `Arc`ed payloads
    /// readers of older versions still hold, are untouched.
    ///
    /// Maintenance is a warm-cache optimization, never a correctness
    /// requirement: anything evicted here is rebuilt on demand, and
    /// the backend's own delta hook runs first so rebuilds land on
    /// maintained dictionaries. No hit/miss counters are charged —
    /// this is write-side upkeep, not a lookup.
    pub fn apply_delta(&self, before: &Database, after: &Database, delta: &Delta) {
        self.backend.apply_delta(before, after, delta);
        let rel = delta.rel();
        let old_gen = before.generation(rel);
        let new_gen = after.generation(rel);
        let table = after.table(rel);
        // A streamed extension has no raw columns to maintain from —
        // evict and let the backend rebuild from its pages.
        let maintainable = table.is_materialized();
        let old_rows = before.table(rel).len();
        let new_rows = table.len();

        // Partitions (mining convention), generic over arity: the
        // product of maintained unary partitions equals the direct
        // multi-attribute partition, so one maintenance step serves
        // both shapes.
        maintain(&self.partitions, rel, old_gen, new_gen, |attrs, p| {
            if !maintainable {
                return None;
            }
            Some(match delta {
                Delta::Append { .. } => {
                    let cols: Vec<&[crate::value::Value]> =
                        attrs.iter().map(|a| table.column(*a)).collect();
                    partition_append(p, &cols, old_rows, new_rows)
                }
                Delta::Delete { rows, .. } => partition_delete(p, rows),
            })
        });
        // LHS groups (SQL convention: NULL rows skipped).
        maintain(&self.lhs_groups, rel, old_gen, new_gen, |attrs, g| {
            if !maintainable {
                return None;
            }
            Some(match delta {
                Delta::Append { .. } => {
                    let cols: Vec<&[crate::value::Value]> =
                        attrs.iter().map(|a| table.column(*a)).collect();
                    lhs_groups_append(g, &cols, old_rows, new_rows)
                }
                Delta::Delete { rows, .. } => lhs_groups_delete(g, rows),
            })
        });
        // Distinct projections append-maintain; a delete can remove
        // the last witness of a tuple, which a set without
        // multiplicities cannot detect, so deletes evict.
        maintain(&self.projections, rel, old_gen, new_gen, |attrs, set| {
            if !maintainable {
                return None;
            }
            match delta {
                Delta::Append { .. } => {
                    let cols: Vec<&[crate::value::Value]> =
                        attrs.iter().map(|a| table.column(*a)).collect();
                    Some(projection_append(set, &cols, old_rows, new_rows))
                }
                Delta::Delete { .. } => None,
            }
        });
        // Counts re-derive from the just-maintained projection of the
        // same key when present; otherwise evict — the backend's
        // maintained distinct sets make the recount near-free anyway.
        {
            let projections = read_recover(&self.projections);
            maintain(&self.counts, rel, old_gen, new_gen, |attrs, _| {
                projections
                    .get(&(rel, attrs.to_vec()))
                    .filter(|p| p.gen == new_gen)
                    .map(|p| p.value.len())
            });
        }
        // Join statistics have no incremental form worth keeping (the
        // intersection can move either way on append or delete);
        // entries touching the mutated relation are evicted and
        // rebuilt on demand from the backend's maintained structures.
        write_recover(&self.joins).retain(|j, _| j.left.rel != rel && j.right.rel != rel);
    }
}

/// Rewrites one cache family for `rel` across a committed delta:
/// entries tagged `old_gen` are fed to `step` and re-inserted under
/// `new_gen` when it returns a maintained value; every other entry of
/// `rel` (stale tags, shapes `step` declines) is evicted. Entries of
/// other relations are untouched.
fn maintain<T>(
    cache: &AttrCache<T>,
    rel: RelId,
    old_gen: u64,
    new_gen: u64,
    mut step: impl FnMut(&[AttrId], &T) -> Option<T>,
) {
    let mut guard = write_recover(cache);
    let keys: Vec<(RelId, Vec<AttrId>)> =
        guard.keys().filter(|(r, _)| *r == rel).cloned().collect();
    for key in keys {
        let next = guard
            .get(&key)
            .filter(|e| e.gen == old_gen)
            .and_then(|e| step(&key.1, &e.value));
        match next {
            Some(v) => {
                guard.insert(
                    key,
                    Tagged {
                        gen: new_gen,
                        value: Arc::new(v),
                    },
                );
            }
            None => {
                guard.remove(&key);
            }
        }
    }
}

// Compile-time proof that the engine, every in-crate backend, the
// buffer pool under them, and the snapshot types stay `Send + Sync` —
// the concurrent service in `dbre-core` depends on it, and a stray
// `Rc` or `Cell` slipping into a cache would otherwise surface only as
// a distant trait-bound error there. (`dbre-sql` asserts the same for
// its `SqlBackend`.)
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<StatsEngine>();
    assert_send_sync::<crate::backend::ReferenceBackend>();
    assert_send_sync::<EncodedBackend>();
    assert_send_sync::<crate::pages::PagedBackend>();
    assert_send_sync::<crate::bufpool::BufferPool>();
    assert_send_sync::<crate::snapshot::SharedDb>();
    assert_send_sync::<crate::snapshot::DbSnapshot>();
};

/// The memoizing engine is itself a backend: consumers written against
/// the seam (`&dyn CountBackend`) can be handed a raw backend or a
/// caching engine interchangeably.
impl CountBackend for StatsEngine {
    fn name(&self) -> &'static str {
        self.backend.name()
    }

    fn count_distinct(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> usize {
        StatsEngine::count_distinct(self, db, rel, attrs)
    }

    fn join_stats(&self, db: &Database, join: &EquiJoin) -> JoinStats {
        StatsEngine::join_stats(self, db, join)
    }

    fn lhs_groups(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<Vec<Vec<usize>>> {
        StatsEngine::lhs_groups(self, db, rel, attrs)
    }

    fn projection(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<HashSet<ProjKey>> {
        StatsEngine::projection(self, db, rel, attrs)
    }

    fn fd_holds(&self, db: &Database, fd: &Fd) -> bool {
        StatsEngine::fd_holds(self, db, fd)
    }

    fn ind_holds(&self, db: &Database, ind: &Ind) -> bool {
        StatsEngine::ind_holds(self, db, ind)
    }

    fn partition1(&self, db: &Database, rel: RelId, attr: AttrId) -> Arc<StrippedPartition> {
        StatsEngine::partition(self, db, rel, attr)
    }

    fn prewarm(&self, db: &Database, rel: RelId) {
        StatsEngine::prewarm(self, db, rel);
    }

    fn column_dict(&self, db: &Database, rel: RelId, attr: AttrId) -> Option<Arc<ColumnDict>> {
        self.backend.column_dict(db, rel, attr)
    }

    fn column_sketch(&self, db: &Database, rel: RelId, attr: AttrId) -> Option<Arc<ColumnSketch>> {
        // Sketches are already memoized where they live (on the
        // backend's generation-cached dictionaries); forwarding keeps
        // the engine transparent and the hit/miss counters honest.
        self.backend.column_sketch(db, rel, attr)
    }

    fn exec_stats(&self) -> BackendExecStats {
        StatsEngine::exec_stats(self)
    }

    fn page_stats(&self) -> crate::bufpool::PageCacheStats {
        StatsEngine::page_stats(self)
    }

    fn spill_stats(&self) -> crate::spill::SpillCacheStats {
        StatsEngine::spill_stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrSet;
    use crate::backend::ReferenceBackend;
    use crate::counting::join_stats;
    use crate::deps::IndSide;
    use crate::schema::Relation;
    use crate::value::{Domain, Value};

    fn two_table_db() -> (Database, RelId, RelId) {
        let mut db = Database::new();
        let l = db
            .add_relation(Relation::of("L", &[("a", Domain::Int), ("b", Domain::Int)]))
            .unwrap();
        let r = db
            .add_relation(Relation::of("R", &[("c", Domain::Int)]))
            .unwrap();
        for (a, b) in [(1, 10), (1, 10), (2, 20), (3, 20), (4, 30)] {
            db.insert(l, vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        for c in [1, 2, 3, 9] {
            db.insert(r, vec![Value::Int(c)]).unwrap();
        }
        (db, l, r)
    }

    /// Engines over every in-crate backend (the cross-crate SQL
    /// backend joins this matrix in the `dbre-sql` differential).
    fn engines() -> Vec<StatsEngine> {
        vec![
            StatsEngine::with_backend(Box::new(ReferenceBackend)),
            StatsEngine::with_backend(Box::new(EncodedBackend::new())),
        ]
    }

    #[test]
    fn join_stats_matches_naive_and_hits_cache() {
        let (db, l, r) = two_table_db();
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        for engine in engines() {
            let first = engine.join_stats(&db, &join);
            assert_eq!(first, join_stats(&db, &join), "{}", engine.backend_name());
            let misses_after_first = engine.counters().cache_misses;
            let second = engine.join_stats(&db, &join);
            assert_eq!(second, first);
            let c = engine.counters();
            assert_eq!(
                c.cache_misses, misses_after_first,
                "second call must not rebuild"
            );
            assert!(c.cache_hits >= 1);
        }
    }

    #[test]
    fn insert_invalidates_served_counts() {
        let (mut db, l, r) = two_table_db();
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        let engine = StatsEngine::new();
        let before = engine.join_stats(&db, &join);
        db.insert(r, vec![Value::Int(4)]).unwrap();
        let after = engine.join_stats(&db, &join);
        assert_eq!(after, join_stats(&db, &join));
        assert_eq!(after.n_right, before.n_right + 1);
        assert_eq!(after.n_join, before.n_join + 1);
    }

    #[test]
    fn adding_a_new_relation_keeps_existing_entries_valid() {
        let (mut db, l, _) = two_table_db();
        let engine = StatsEngine::new();
        engine.projection(&db, l, &[AttrId(0)]);
        let misses = engine.counters().cache_misses;
        // Conceptualization mid-discovery adds relations; that must
        // not invalidate entries of untouched tables.
        db.add_relation(Relation::of("New", &[("x", Domain::Int)]))
            .unwrap();
        engine.projection(&db, l, &[AttrId(0)]);
        assert_eq!(engine.counters().cache_misses, misses);
    }

    #[test]
    fn fd_holds_agrees_with_database_including_null_lhs() {
        let mut db = Database::new();
        let t = db
            .add_relation(Relation::of("T", &[("x", Domain::Int), ("y", Domain::Int)]))
            .unwrap();
        for row in [
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Null, Value::Int(1)],
            vec![Value::Null, Value::Int(2)],
            vec![Value::Int(2), Value::Int(20)],
        ] {
            db.insert(t, row).unwrap();
        }
        let fd = Fd::new(
            t,
            AttrSet::from_indices([0u16]),
            AttrSet::from_indices([1u16]),
        );
        for engine in engines() {
            // NULL-LHS rows are skipped under SQL semantics, so x → y
            // holds.
            assert!(engine.fd_holds(&db, &fd), "{}", engine.backend_name());
            assert_eq!(engine.fd_holds(&db, &fd), db.fd_holds(&fd));
        }
        // Break it and confirm the engine notices (generation bump).
        let engine = StatsEngine::new();
        assert!(engine.fd_holds(&db, &fd));
        db.insert(t, vec![Value::Int(1), Value::Int(99)]).unwrap();
        assert!(!engine.fd_holds(&db, &fd));
        assert_eq!(engine.fd_holds(&db, &fd), db.fd_holds(&fd));
    }

    #[test]
    fn ind_holds_agrees_with_database() {
        let (db, l, r) = two_table_db();
        for engine in engines() {
            for (lhs, rhs) in [(l, r), (r, l)] {
                let ind = Ind::unary(lhs, AttrId(0), rhs, AttrId(0));
                assert_eq!(engine.ind_holds(&db, &ind), db.ind_holds(&ind), "{ind}");
            }
        }
    }

    #[test]
    fn partitions_match_direct_construction() {
        let (db, l, _) = two_table_db();
        for engine in engines() {
            let direct = StrippedPartition::for_attrs(db.table(l), &[AttrId(0), AttrId(1)]);
            let cached = engine.partition_for_attrs(&db, l, &[AttrId(0), AttrId(1)]);
            assert_eq!(*cached, direct, "{}", engine.backend_name());
            // Unary partitions were cached along the way.
            let before = engine.counters();
            engine.partition(&db, l, AttrId(0));
            let after = engine.counters();
            assert_eq!(after.cache_misses, before.cache_misses);
            assert_eq!(after.cache_hits, before.cache_hits + 1);
        }
    }

    #[test]
    fn engine_is_a_backend_itself() {
        let (db, l, r) = two_table_db();
        let engine = StatsEngine::new();
        let seam: &dyn CountBackend = &engine;
        assert_eq!(seam.name(), "encoded");
        assert_eq!(
            seam.count_distinct(&db, l, &[AttrId(0)]),
            db.table(l).count_distinct(&[AttrId(0)])
        );
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        assert_eq!(seam.join_stats(&db, &join), join_stats(&db, &join));
        // Probes through the trait land in the same caches.
        assert!(engine.counters().cache_misses > 0);
        seam.count_distinct(&db, l, &[AttrId(0)]);
        assert!(engine.counters().cache_hits > 0);
    }

    #[test]
    fn apply_delta_maintains_caches_identically() {
        let (db, l, r) = two_table_db();
        let engine = StatsEngine::new();
        let attrs = [AttrId(0), AttrId(1)];
        // Warm every cache family on L, plus a join touching L.
        engine.count_distinct(&db, l, &[AttrId(0)]);
        engine.projection(&db, l, &[AttrId(0)]);
        engine.partition_for_attrs(&db, l, &attrs);
        engine.lhs_groups(&db, l, &[AttrId(0)]);
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        engine.join_stats(&db, &join);

        let shared = crate::snapshot::SharedDb::new(db);
        let snap = shared
            .apply(
                &Delta::Append {
                    rel: l,
                    rows: vec![
                        vec![Value::Int(1), Value::Int(10)],
                        vec![Value::Int(9), Value::Int(30)],
                    ],
                },
                &[&engine],
            )
            .unwrap();
        let misses = engine.counters().cache_misses;
        // Maintained entries answer at the new generation without a
        // rebuild...
        let p = engine.partition_for_attrs(&snap, l, &attrs);
        let g = engine.lhs_groups(&snap, l, &[AttrId(0)]);
        let proj = engine.projection(&snap, l, &[AttrId(0)]);
        let n = engine.count_distinct(&snap, l, &[AttrId(0)]);
        assert_eq!(engine.counters().cache_misses, misses);
        // ...and agree exactly with a cold recompute on the new
        // version.
        let cold = StatsEngine::new();
        assert_eq!(*p, *cold.partition_for_attrs(&snap, l, &attrs));
        assert_eq!(*g, *cold.lhs_groups(&snap, l, &[AttrId(0)]));
        assert_eq!(*proj, *cold.projection(&snap, l, &[AttrId(0)]));
        assert_eq!(n, cold.count_distinct(&snap, l, &[AttrId(0)]));
        // The join entry was evicted (its relation was touched) and
        // rebuilds to the right answer.
        assert_eq!(engine.join_stats(&snap, &join), join_stats(&snap, &join));

        // Deletes: partitions and groups maintain in place,
        // projections/counts evict and rebuild correctly.
        let snap2 = shared
            .apply(
                &Delta::Delete {
                    rel: l,
                    rows: vec![0, 3],
                },
                &[&engine],
            )
            .unwrap();
        let cold = StatsEngine::new();
        assert_eq!(
            *engine.partition_for_attrs(&snap2, l, &attrs),
            *cold.partition_for_attrs(&snap2, l, &attrs)
        );
        assert_eq!(
            *engine.lhs_groups(&snap2, l, &[AttrId(0)]),
            *cold.lhs_groups(&snap2, l, &[AttrId(0)])
        );
        assert_eq!(
            engine.count_distinct(&snap2, l, &[AttrId(0)]),
            cold.count_distinct(&snap2, l, &[AttrId(0)])
        );
    }

    #[test]
    fn counters_reset() {
        let (db, l, _) = two_table_db();
        let engine = StatsEngine::new();
        engine.projection(&db, l, &[AttrId(0)]);
        assert!(engine.counters().cache_misses > 0);
        engine.reset_counters();
        assert_eq!(engine.counters(), StatsCounters::default());
    }
}
