//! The memoized `‖·‖` counting engine.
//!
//! Every step of the paper's method is driven by a handful of
//! extension statistics: distinct projections (`‖r[X]‖`, §2) for the
//! three IND-Discovery cardinalities, grouped LHS classes for the
//! `A → b` extension tests of RHS-Discovery (§6.2.2), and stripped
//! partitions for the mining baselines. The naive primitives in
//! [`crate::counting`] and [`crate::partitions`] rescan the table on
//! every call; a pipeline asks for the same projection dozens of times
//! (each join of `Q` twice, every candidate FD once per oracle round).
//!
//! [`StatsEngine`] memoizes these per `(relation, attribute-list)`,
//! tagged with the owning table's generation counter
//! ([`Database::generation`]), so conceptualization in IND-Discovery
//! and attribute drops in Restruct — both of which mutate the
//! database — can never cause a stale count to be served: a mutated
//! table's generation moves past the tag and the entry is rebuilt on
//! next use.
//!
//! Since PR 3 the engine runs on dictionary-encoded columns: each
//! *column* a probe touches is interned once per table generation into
//! a [`crate::encode::ColumnDict`] (cached per `(relation, attribute)`
//! like every other family), and the counting, partitioning, grouping,
//! and join kernels operate on dense `u32` codes instead of cloning
//! `Value` tuples per row. Encoding lazily per column matters on the
//! paper's workloads: a query set `Q` joins a handful of key columns
//! of wide denormalized relations, so encoding whole tables up front
//! would dominate the cold path the encoding is meant to speed up. The
//! `Value`-based primitives in [`crate::counting`] /
//! [`crate::partitions`] remain as the reference implementations the
//! differential tests compare against.
//!
//! Interior mutability (`RwLock` caches, atomic counters) keeps the
//! whole API on `&self`, so one engine can be shared by the parallel
//! workers of [`crate::par::par_map`] without cloning caches; the
//! encoded tables are immutable and shared read-only via `Arc`.
//!
//! NULL semantics are preserved exactly per entry point: projections
//! drop NULL-containing rows (SQL `COUNT(DISTINCT …)`), [`StatsEngine::fd_holds`]
//! skips NULL-LHS rows (SQL, matching [`Database::fd_holds`]), while
//! [`StatsEngine::partition_for_attrs`] keeps the mining convention
//! (NULL = NULL) of [`crate::partitions`]. The two families are cached
//! separately and never conflated.

use crate::attr::AttrId;
use crate::counting::{EquiJoin, JoinStats};
use crate::database::Database;
use crate::deps::{Fd, Ind};
use crate::encode::{
    decode_set_cols, distinct_codes_cols, intersect_count, lhs_groups_cols, partition1_col,
    ColumnDict, DictTable, EncodedSet,
};
use crate::partitions::StrippedPartition;
use crate::schema::RelId;
use crate::table::ProjKey;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Acquires a read guard, recovering from poisoning.
///
/// Cache entries are inserted fully formed (a single `insert` of a
/// complete `Tagged` value), so a thread that panicked while holding a
/// guard cannot have left a torn entry behind; recovering the lock is
/// always safe and keeps a degraded pipeline stage from cascading into
/// every later cache lookup.
fn read_recover<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Write twin of [`read_recover`]; same invariant.
fn write_recover<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A cache entry tagged with the table generation it was built from.
struct Tagged<T> {
    gen: u64,
    value: Arc<T>,
}

impl<T> Clone for Tagged<T> {
    fn clone(&self) -> Self {
        Tagged {
            gen: self.gen,
            value: Arc::clone(&self.value),
        }
    }
}

/// Cached [`JoinStats`], valid while both side tables keep their
/// generations.
#[derive(Clone, Copy)]
struct TaggedJoin {
    left_gen: u64,
    right_gen: u64,
    stats: JoinStats,
}

/// Cheap observability counters, readable at any time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsCounters {
    /// Lookups answered from cache.
    pub cache_hits: u64,
    /// Lookups that had to (re)build an entry.
    pub cache_misses: u64,
    /// Table rows scanned while building entries and running checks.
    pub rows_scanned: u64,
}

/// A cache family: one generation-tagged entry per `(rel, attrs)` key.
type AttrCache<T> = RwLock<HashMap<(RelId, Vec<AttrId>), Tagged<T>>>;

/// Memoized distinct-projection / partition / FD-group statistics over
/// one [`Database`] (see the module docs).
///
/// The engine must only be queried with the database it has been
/// serving — generations identify *versions of one table*, not table
/// contents, so feeding a different `Database` value whose tables
/// happen to share generation numbers would alias cache keys. Create
/// one engine per pipeline run.
#[derive(Default)]
pub struct StatsEngine {
    /// Per-column dictionary encodings — the substrate every other
    /// cache family is built from (see [`crate::encode`]). Keyed per
    /// `(relation, attribute)` so a probe touching two columns of a
    /// wide table pays for exactly those two builds.
    columns: RwLock<HashMap<(RelId, AttrId), Tagged<ColumnDict>>>,
    /// Encoded distinct-code sets per `(rel, attrs)`.
    encoded: AttrCache<EncodedSet>,
    projections: AttrCache<HashSet<ProjKey>>,
    partitions: AttrCache<StrippedPartition>,
    lhs_groups: AttrCache<Vec<Vec<usize>>>,
    joins: RwLock<HashMap<EquiJoin, TaggedJoin>>,
    hits: AtomicU64,
    misses: AtomicU64,
    rows_scanned: AtomicU64,
}

impl StatsEngine {
    /// An engine with empty caches and zeroed counters.
    pub fn new() -> Self {
        StatsEngine::default()
    }

    /// The dictionary encoding of one column of `rel`, built once per
    /// table generation and shared out of the cache. This is the
    /// substrate for every encoded kernel (see [`crate::encode`]); the
    /// returned `Arc` is safe to share read-only across parallel
    /// workers.
    pub fn column_dict(&self, db: &Database, rel: RelId, attr: AttrId) -> Arc<ColumnDict> {
        let gen = db.generation(rel);
        let key = (rel, attr);
        if let Some(entry) = read_recover(&self.columns).get(&key) {
            if entry.gen == gen {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.value);
            }
        }
        let table = db.table(rel);
        let value = Arc::new(ColumnDict::build(table.column(attr)));
        // Unlike the per-probe cache families, column keys are shared
        // *across* concurrent probes (two parallel join probes can hit
        // the same column), so re-check under the write lock: if a
        // concurrent prober beat us, adopt its entry as a hit and drop
        // ours. Counters then match the sequential schedule exactly —
        // one miss per cold column — keeping the `parallel` feature's
        // byte-identical-output guarantee. Building before locking
        // wastes the loser's pass but never serializes distinct
        // columns.
        let mut columns = write_recover(&self.columns);
        if let Some(entry) = columns.get(&key) {
            if entry.gen == gen {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.value);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.rows_scanned
            .fetch_add(table.len() as u64, Ordering::Relaxed);
        columns.insert(
            key,
            Tagged {
                gen,
                value: Arc::clone(&value),
            },
        );
        value
    }

    /// The cached column dictionaries of `attrs`, in order (repeats
    /// allowed — each repeat is a cache hit).
    fn attr_dicts(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Vec<Arc<ColumnDict>> {
        attrs
            .iter()
            .map(|a| self.column_dict(db, rel, *a))
            .collect()
    }

    /// The dictionary encoding of `rel`'s *whole* table, assembled
    /// from the per-column cache (cheap `Arc` clones for already-warm
    /// columns). Whole-table consumers — CSV import prewarming, batch
    /// FD checks via `check_encoded` — use this; statistic probes go
    /// through the per-column kernels and never force untouched
    /// columns to encode.
    pub fn dict(&self, db: &Database, rel: RelId) -> Arc<DictTable> {
        let table = db.table(rel);
        let columns = (0..table.arity())
            .map(|i| self.column_dict(db, rel, AttrId(i as u16)))
            .collect();
        Arc::new(DictTable::from_columns(columns, table.len()))
    }

    /// The distinct non-NULL projected code tuples `π_{attrs}(rel)` in
    /// encoded form, shared out of the cache.
    fn encoded_set(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<EncodedSet> {
        let gen = db.generation(rel);
        if let Some(entry) = read_recover(&self.encoded).get(&(rel, attrs.to_vec())) {
            if entry.gen == gen {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.value);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let dicts = self.attr_dicts(db, rel, attrs);
        let cols: Vec<&ColumnDict> = dicts.iter().map(Arc::as_ref).collect();
        let rows = db.table(rel).len();
        self.rows_scanned.fetch_add(rows as u64, Ordering::Relaxed);
        let value = Arc::new(distinct_codes_cols(&cols, rows));
        write_recover(&self.encoded).insert(
            (rel, attrs.to_vec()),
            Tagged {
                gen,
                value: Arc::clone(&value),
            },
        );
        value
    }

    /// The distinct projection `π_{attrs}(rel)` (NULL rows dropped) as
    /// decoded `Value` tuples, shared out of the cache. Kept for
    /// consumers that need the actual values (e.g. materializing a
    /// conceptualized intersection); counting paths stay encoded.
    pub fn projection(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<HashSet<ProjKey>> {
        let gen = db.generation(rel);
        if let Some(entry) = read_recover(&self.projections).get(&(rel, attrs.to_vec())) {
            if entry.gen == gen {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.value);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let set = self.encoded_set(db, rel, attrs);
        let dicts = self.attr_dicts(db, rel, attrs);
        let cols: Vec<&ColumnDict> = dicts.iter().map(Arc::as_ref).collect();
        let value = Arc::new(decode_set_cols(&cols, &set));
        write_recover(&self.projections).insert(
            (rel, attrs.to_vec()),
            Tagged {
                gen,
                value: Arc::clone(&value),
            },
        );
        value
    }

    /// `‖rel[attrs]‖` — the paper's cardinality query. Unary counts
    /// are `O(1)` off the dictionary after the encode pass.
    pub fn count_distinct(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> usize {
        self.encoded_set(db, rel, attrs).len()
    }

    /// The three IND-Discovery cardinalities for `join`, memoized at
    /// two levels: the full [`JoinStats`] per join, and the two side
    /// projections (shared with every other join touching them).
    pub fn join_stats(&self, db: &Database, join: &EquiJoin) -> JoinStats {
        let left_gen = db.generation(join.left.rel);
        let right_gen = db.generation(join.right.rel);
        if let Some(entry) = read_recover(&self.joins).get(join) {
            if entry.left_gen == left_gen && entry.right_gen == right_gen {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return entry.stats;
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let ldicts = self.attr_dicts(db, join.left.rel, &join.left.attrs);
        let rdicts = self.attr_dicts(db, join.right.rel, &join.right.attrs);
        let left = self.encoded_set(db, join.left.rel, &join.left.attrs);
        let right = self.encoded_set(db, join.right.rel, &join.right.attrs);
        self.rows_scanned
            .fetch_add(left.len().min(right.len()) as u64, Ordering::Relaxed);
        let lcols: Vec<&ColumnDict> = ldicts.iter().map(Arc::as_ref).collect();
        let rcols: Vec<&ColumnDict> = rdicts.iter().map(Arc::as_ref).collect();
        let n_join = intersect_count(&lcols, &left, &rcols, &right);
        let stats = JoinStats {
            n_left: left.len(),
            n_right: right.len(),
            n_join,
        };
        write_recover(&self.joins).insert(
            join.clone(),
            TaggedJoin {
                left_gen,
                right_gen,
                stats,
            },
        );
        stats
    }

    /// The stripped partition `π_{attr}` (mining convention:
    /// NULL = NULL), shared out of the cache.
    pub fn partition(&self, db: &Database, rel: RelId, attr: AttrId) -> Arc<StrippedPartition> {
        self.partition_for_attrs(db, rel, &[attr])
    }

    /// The stripped partition `π_{attrs}`, built by products of cached
    /// unary partitions and itself cached.
    pub fn partition_for_attrs(
        &self,
        db: &Database,
        rel: RelId,
        attrs: &[AttrId],
    ) -> Arc<StrippedPartition> {
        let gen = db.generation(rel);
        let key = (rel, attrs.to_vec());
        if let Some(entry) = read_recover(&self.partitions).get(&key) {
            if entry.gen == gen {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.value);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let table = db.table(rel);
        let value = match attrs {
            [] => {
                self.rows_scanned
                    .fetch_add(table.len() as u64, Ordering::Relaxed);
                Arc::new(StrippedPartition::single_class(table.len()))
            }
            [a] => {
                // Array-bucket build over the code domain — no hashing.
                self.rows_scanned
                    .fetch_add(table.len() as u64, Ordering::Relaxed);
                Arc::new(partition1_col(&self.column_dict(db, rel, *a)))
            }
            [first, rest @ ..] => {
                // Chain products of cached unary partitions; each
                // product touches at most the surviving class rows.
                let mut p = (*self.partition(db, rel, *first)).clone();
                for a in rest {
                    self.rows_scanned
                        .fetch_add(p.error() as u64, Ordering::Relaxed);
                    p = p.product(&self.partition(db, rel, *a));
                }
                Arc::new(p)
            }
        };
        write_recover(&self.partitions).insert(
            key,
            Tagged {
                gen,
                value: Arc::clone(&value),
            },
        );
        value
    }

    /// Row-index groups (size ≥ 2) agreeing on `attrs` under **SQL
    /// semantics** — rows with a NULL in `attrs` are skipped, exactly
    /// like [`Database::fd_holds`]. Deterministically ordered.
    fn groups(&self, db: &Database, rel: RelId, attrs: &[AttrId]) -> Arc<Vec<Vec<usize>>> {
        let gen = db.generation(rel);
        let key = (rel, attrs.to_vec());
        if let Some(entry) = read_recover(&self.lhs_groups).get(&key) {
            if entry.gen == gen {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&entry.value);
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let dicts = self.attr_dicts(db, rel, attrs);
        let cols: Vec<&ColumnDict> = dicts.iter().map(Arc::as_ref).collect();
        let rows = db.table(rel).len();
        self.rows_scanned.fetch_add(rows as u64, Ordering::Relaxed);
        let value = Arc::new(lhs_groups_cols(&cols, rows));
        write_recover(&self.lhs_groups).insert(
            key,
            Tagged {
                gen,
                value: Arc::clone(&value),
            },
        );
        value
    }

    /// Does `fd` hold in the extension? Same SQL NULL semantics and
    /// same answer as [`Database::fd_holds`], but the LHS grouping is
    /// cached — repeated `A → b` probes with a shared LHS (the shape
    /// RHS-Discovery generates) only rescan the grouped rows.
    pub fn fd_holds(&self, db: &Database, fd: &Fd) -> bool {
        let lhs: Vec<AttrId> = fd.lhs.iter().collect();
        let rhs: Vec<AttrId> = fd.rhs.iter().collect();
        let groups = self.groups(db, fd.rel, &lhs);
        if groups.is_empty() {
            // Key-like LHS: no group of agreeing rows, so no pair can
            // disagree on the RHS.
            return true;
        }
        // The RHS comparison is structural equality on the raw columns
        // (hoisted out of the loop): only the grouped rows are touched,
        // so interning whole RHS columns into codes would cost a full
        // table pass per probe just to cheapen these few comparisons.
        let table = db.table(fd.rel);
        let rcols: Vec<&[crate::value::Value]> = rhs.iter().map(|a| table.column(*a)).collect();
        for group in groups.iter() {
            self.rows_scanned
                .fetch_add(group.len() as u64, Ordering::Relaxed);
            let first = group[0];
            if group[1..]
                .iter()
                .any(|&i| rcols.iter().any(|c| c[i] != c[first]))
            {
                return false;
            }
        }
        true
    }

    /// Does `ind` hold in the extension? Same answer as
    /// [`Database::ind_holds`], via cached distinct projections.
    pub fn ind_holds(&self, db: &Database, ind: &Ind) -> bool {
        let left = self.encoded_set(db, ind.lhs.rel, &ind.lhs.attrs);
        let right = self.encoded_set(db, ind.rhs.rel, &ind.rhs.attrs);
        if left.len() > right.len() {
            return false;
        }
        self.rows_scanned
            .fetch_add(left.len() as u64, Ordering::Relaxed);
        let ldicts = self.attr_dicts(db, ind.lhs.rel, &ind.lhs.attrs);
        let rdicts = self.attr_dicts(db, ind.rhs.rel, &ind.rhs.attrs);
        let lcols: Vec<&ColumnDict> = ldicts.iter().map(Arc::as_ref).collect();
        let rcols: Vec<&ColumnDict> = rdicts.iter().map(Arc::as_ref).collect();
        intersect_count(&lcols, &left, &rcols, &right) == left.len()
    }

    /// A snapshot of the observability counters.
    pub fn counters(&self) -> StatsCounters {
        StatsCounters {
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            rows_scanned: self.rows_scanned.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the counters (cache contents are kept).
    pub fn reset_counters(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.rows_scanned.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::AttrSet;
    use crate::counting::join_stats;
    use crate::deps::IndSide;
    use crate::schema::Relation;
    use crate::value::{Domain, Value};

    fn two_table_db() -> (Database, RelId, RelId) {
        let mut db = Database::new();
        let l = db
            .add_relation(Relation::of("L", &[("a", Domain::Int), ("b", Domain::Int)]))
            .unwrap();
        let r = db
            .add_relation(Relation::of("R", &[("c", Domain::Int)]))
            .unwrap();
        for (a, b) in [(1, 10), (1, 10), (2, 20), (3, 20), (4, 30)] {
            db.insert(l, vec![Value::Int(a), Value::Int(b)]).unwrap();
        }
        for c in [1, 2, 3, 9] {
            db.insert(r, vec![Value::Int(c)]).unwrap();
        }
        (db, l, r)
    }

    #[test]
    fn join_stats_matches_naive_and_hits_cache() {
        let (db, l, r) = two_table_db();
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        let engine = StatsEngine::new();
        let first = engine.join_stats(&db, &join);
        assert_eq!(first, join_stats(&db, &join));
        let misses_after_first = engine.counters().cache_misses;
        let second = engine.join_stats(&db, &join);
        assert_eq!(second, first);
        let c = engine.counters();
        assert_eq!(
            c.cache_misses, misses_after_first,
            "second call must not rebuild"
        );
        assert!(c.cache_hits >= 1);
    }

    #[test]
    fn insert_invalidates_served_counts() {
        let (mut db, l, r) = two_table_db();
        let join = EquiJoin::try_new(IndSide::single(l, AttrId(0)), IndSide::single(r, AttrId(0)))
            .unwrap();
        let engine = StatsEngine::new();
        let before = engine.join_stats(&db, &join);
        db.insert(r, vec![Value::Int(4)]).unwrap();
        let after = engine.join_stats(&db, &join);
        assert_eq!(after, join_stats(&db, &join));
        assert_eq!(after.n_right, before.n_right + 1);
        assert_eq!(after.n_join, before.n_join + 1);
    }

    #[test]
    fn adding_a_new_relation_keeps_existing_entries_valid() {
        let (mut db, l, _) = two_table_db();
        let engine = StatsEngine::new();
        engine.projection(&db, l, &[AttrId(0)]);
        let misses = engine.counters().cache_misses;
        // Conceptualization mid-discovery adds relations; that must
        // not invalidate entries of untouched tables.
        db.add_relation(Relation::of("New", &[("x", Domain::Int)]))
            .unwrap();
        engine.projection(&db, l, &[AttrId(0)]);
        assert_eq!(engine.counters().cache_misses, misses);
    }

    #[test]
    fn fd_holds_agrees_with_database_including_null_lhs() {
        let mut db = Database::new();
        let t = db
            .add_relation(Relation::of("T", &[("x", Domain::Int), ("y", Domain::Int)]))
            .unwrap();
        for row in [
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Int(1), Value::Int(10)],
            vec![Value::Null, Value::Int(1)],
            vec![Value::Null, Value::Int(2)],
            vec![Value::Int(2), Value::Int(20)],
        ] {
            db.insert(t, row).unwrap();
        }
        let engine = StatsEngine::new();
        let fd = Fd::new(
            t,
            AttrSet::from_indices([0u16]),
            AttrSet::from_indices([1u16]),
        );
        // NULL-LHS rows are skipped under SQL semantics, so x → y holds.
        assert!(engine.fd_holds(&db, &fd));
        assert_eq!(engine.fd_holds(&db, &fd), db.fd_holds(&fd));
        // Break it and confirm the engine notices (generation bump).
        db.insert(t, vec![Value::Int(1), Value::Int(99)]).unwrap();
        assert!(!engine.fd_holds(&db, &fd));
        assert_eq!(engine.fd_holds(&db, &fd), db.fd_holds(&fd));
    }

    #[test]
    fn ind_holds_agrees_with_database() {
        let (db, l, r) = two_table_db();
        let engine = StatsEngine::new();
        for (lhs, rhs) in [(l, r), (r, l)] {
            let ind = Ind::unary(lhs, AttrId(0), rhs, AttrId(0));
            assert_eq!(engine.ind_holds(&db, &ind), db.ind_holds(&ind), "{ind}");
        }
    }

    #[test]
    fn partitions_match_direct_construction() {
        let (db, l, _) = two_table_db();
        let engine = StatsEngine::new();
        let direct = StrippedPartition::for_attrs(db.table(l), &[AttrId(0), AttrId(1)]);
        let cached = engine.partition_for_attrs(&db, l, &[AttrId(0), AttrId(1)]);
        assert_eq!(*cached, direct);
        // Unary partitions were cached along the way.
        let before = engine.counters();
        engine.partition(&db, l, AttrId(0));
        let after = engine.counters();
        assert_eq!(after.cache_misses, before.cache_misses);
        assert_eq!(after.cache_hits, before.cache_hits + 1);
    }

    #[test]
    fn counters_reset() {
        let (db, l, _) = two_table_db();
        let engine = StatsEngine::new();
        engine.projection(&db, l, &[AttrId(0)]);
        assert!(engine.counters().cache_misses > 0);
        engine.reset_counters();
        assert_eq!(engine.counters(), StatsCounters::default());
    }
}
