//! Classical functional-dependency theory: attribute-set closure,
//! implication, minimal covers and candidate keys.
//!
//! These operate on the FDs of a *single* relation; the `RelId` carried
//! by [`Fd`] is checked for consistency on entry. They back the
//! normal-form analysis ([`crate::normal_forms`]), the Bernstein
//! synthesis baseline ([`crate::synthesis`]) and the quality metrics of
//! the evaluation harness.

use crate::attr::{AttrId, AttrSet};
use crate::deps::Fd;
use crate::schema::RelId;

/// Computes the closure `X⁺` of an attribute set under a set of FDs.
///
/// Standard fixpoint algorithm with a "used" mask so every FD fires at
/// most once — `O(|fds| · |attrs|)` per pass, few passes in practice.
pub fn closure(attrs: &AttrSet, fds: &[Fd]) -> AttrSet {
    let mut result = attrs.clone();
    let mut used = vec![false; fds.len()];
    let mut changed = true;
    while changed {
        changed = false;
        for (i, fd) in fds.iter().enumerate() {
            if used[i] || !fd.lhs.is_subset(&result) {
                continue;
            }
            used[i] = true;
            let next = result.union(&fd.rhs);
            if next != result {
                result = next;
                changed = true;
            }
        }
    }
    result
}

/// Does `fds ⊨ target` (Armstrong implication)? Equivalent to
/// `target.rhs ⊆ closure(target.lhs, fds)`.
pub fn implies(fds: &[Fd], target: &Fd) -> bool {
    target.rhs.is_subset(&closure(&target.lhs, fds))
}

/// Are two FD sets equivalent (each implies every FD of the other)?
pub fn equivalent(a: &[Fd], b: &[Fd]) -> bool {
    a.iter().all(|f| implies(b, f)) && b.iter().all(|f| implies(a, f))
}

/// Computes a minimal (canonical) cover:
///
/// 1. split right-hand sides into singletons,
/// 2. remove extraneous left-hand-side attributes,
/// 3. remove redundant FDs.
///
/// The result is deterministic for a given input order.
pub fn minimal_cover(fds: &[Fd]) -> Vec<Fd> {
    // Step 1: singleton RHS, drop trivial.
    let mut work: Vec<Fd> = Vec::new();
    for fd in fds {
        for b in fd.rhs.iter() {
            if fd.lhs.contains(b) {
                continue;
            }
            let single = Fd::new(fd.rel, fd.lhs.clone(), AttrSet::single(b));
            if !work.contains(&single) {
                work.push(single);
            }
        }
    }

    // Step 2: remove extraneous LHS attributes.
    let snapshot = work.clone();
    for fd in work.iter_mut() {
        let mut lhs = fd.lhs.clone();
        for a in fd.lhs.iter() {
            if lhs.len() == 1 {
                break;
            }
            let mut reduced = lhs.clone();
            reduced.remove(a);
            // `a` is extraneous iff reduced -> rhs still follows.
            if fd.rhs.is_subset(&closure(&reduced, &snapshot)) {
                lhs = reduced;
            }
        }
        fd.lhs = lhs;
    }
    work.dedup();

    // Step 3: remove redundant FDs (re-evaluating after each removal).
    let mut i = 0;
    while i < work.len() {
        let candidate = work.remove(i);
        if implies(&work, &candidate) {
            // redundant — drop it, do not advance.
        } else {
            work.insert(i, candidate);
            i += 1;
        }
    }
    work
}

/// Computes all candidate keys of a relation with attribute universe
/// `universe` under `fds`.
///
/// Uses the classical core/exterior pruning: attributes appearing in no
/// RHS must be in every key; attributes appearing in no LHS and some RHS
/// can never be in a key. The remaining "floating" attributes are
/// enumerated smallest-subset-first with minimality filtering.
///
/// Exponential in the number of floating attributes — fine for the
/// relation sizes of schema reverse engineering (≲ 20 attributes).
pub fn candidate_keys(rel: RelId, universe: &AttrSet, fds: &[Fd]) -> Vec<AttrSet> {
    let fds: Vec<Fd> = fds
        .iter()
        .filter(|f| {
            debug_assert_eq!(f.rel, rel, "FDs must belong to the analysed relation");
            f.rel == rel
        })
        .cloned()
        .collect();

    let mut in_rhs = AttrSet::empty();
    let mut in_lhs = AttrSet::empty();
    for fd in &fds {
        in_rhs = in_rhs.union(&fd.rhs);
        in_lhs = in_lhs.union(&fd.lhs);
    }
    // Core: attributes never derived — must be in every key.
    let core = universe.difference(&in_rhs);
    // Floating: appear on both sides; candidates for key extension.
    let floating: Vec<AttrId> = universe
        .difference(&core)
        .intersection(&in_lhs)
        .iter()
        .collect();

    if closure(&core, &fds).is_subset(universe) && universe.is_subset(&closure(&core, &fds)) {
        return vec![core];
    }

    let mut keys: Vec<AttrSet> = Vec::new();
    // Enumerate subsets of floating by increasing size (bitmasks grouped
    // by popcount); subset-minimality is enforced against already-found
    // keys, which is sound because smaller subsets are visited first.
    let n = floating.len();
    assert!(
        n < 26,
        "candidate-key enumeration supports < 26 floating attributes"
    );
    let mut masks: Vec<u32> = (1u32..(1 << n)).collect();
    masks.sort_by_key(|m| m.count_ones());
    for mask in masks {
        let ext =
            AttrSet::from_iter_ids((0..n).filter(|i| mask & (1 << i) != 0).map(|i| floating[i]));
        let cand = core.union(&ext);
        if keys.iter().any(|k| k.is_subset(&cand)) {
            continue; // a strictly smaller key already covers this set
        }
        if universe.is_subset(&closure(&cand, &fds)) {
            keys.push(cand);
        }
    }
    if keys.is_empty() {
        // No FD-derived key: the whole attribute set is the only key.
        keys.push(universe.clone());
    }
    keys.sort();
    keys
}

/// Is `attrs` a superkey of the relation (`closure(attrs) = universe`)?
pub fn is_superkey(attrs: &AttrSet, universe: &AttrSet, fds: &[Fd]) -> bool {
    universe.is_subset(&closure(attrs, fds))
}

/// The set of *prime* attributes: members of at least one candidate key.
pub fn prime_attributes(rel: RelId, universe: &AttrSet, fds: &[Fd]) -> AttrSet {
    let mut primes = AttrSet::empty();
    for key in candidate_keys(rel, universe, fds) {
        primes = primes.union(&key);
    }
    primes
}

/// Projects a set of FDs onto a subset of attributes: all nontrivial
/// `Y → b` with `Yb ⊆ target` implied by `fds`. Exponential in
/// `|target|`; used by the synthesis baseline on small relations.
pub fn project_fds(rel: RelId, fds: &[Fd], target: &AttrSet) -> Vec<Fd> {
    let attrs: Vec<AttrId> = target.iter().collect();
    let n = attrs.len();
    let mut out = Vec::new();
    for mask in 0u32..(1 << n) {
        let lhs = AttrSet::from_iter_ids((0..n).filter(|i| mask & (1 << i) != 0).map(|i| attrs[i]));
        let cl = closure(&lhs, fds);
        for b in target.iter() {
            if !lhs.contains(b) && cl.contains(b) {
                out.push(Fd::new(rel, lhs.clone(), AttrSet::single(b)));
            }
        }
    }
    minimal_cover(&out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: RelId = RelId(0);

    fn s(ids: &[u16]) -> AttrSet {
        AttrSet::from_indices(ids.iter().copied())
    }

    fn fd(lhs: &[u16], rhs: &[u16]) -> Fd {
        Fd::new(R, s(lhs), s(rhs))
    }

    #[test]
    fn closure_basic_chain() {
        // a -> b, b -> c : closure(a) = abc
        let fds = vec![fd(&[0], &[1]), fd(&[1], &[2])];
        assert_eq!(closure(&s(&[0]), &fds), s(&[0, 1, 2]));
        assert_eq!(closure(&s(&[2]), &fds), s(&[2]));
    }

    #[test]
    fn closure_composite_lhs() {
        // ab -> c fires only with both a and b present.
        let fds = vec![fd(&[0, 1], &[2])];
        assert_eq!(closure(&s(&[0]), &fds), s(&[0]));
        assert_eq!(closure(&s(&[0, 1]), &fds), s(&[0, 1, 2]));
    }

    #[test]
    fn implication() {
        let fds = vec![fd(&[0], &[1]), fd(&[1], &[2])];
        assert!(implies(&fds, &fd(&[0], &[2])));
        assert!(!implies(&fds, &fd(&[2], &[0])));
        // Reflexivity.
        assert!(implies(&[], &fd(&[0, 1], &[1])));
    }

    #[test]
    fn equivalence() {
        let a = vec![fd(&[0], &[1, 2])];
        let b = vec![fd(&[0], &[1]), fd(&[0], &[2])];
        assert!(equivalent(&a, &b));
        let c = vec![fd(&[0], &[1])];
        assert!(!equivalent(&a, &c));
    }

    #[test]
    fn minimal_cover_splits_and_prunes() {
        // { a -> bc, b -> c, ab -> c }: minimal cover is {a->b, b->c}
        // (a->c is transitively implied; ab->c has extraneous a and is
        // then redundant).
        let fds = vec![fd(&[0], &[1, 2]), fd(&[1], &[2]), fd(&[0, 1], &[2])];
        let cover = minimal_cover(&fds);
        assert!(equivalent(&cover, &fds));
        assert_eq!(cover.len(), 2);
        assert!(cover.contains(&fd(&[0], &[1])));
        assert!(cover.contains(&fd(&[1], &[2])));
    }

    #[test]
    fn minimal_cover_removes_extraneous_lhs() {
        // { a -> b, ab -> c } : b extraneous in ab -> c.
        let fds = vec![fd(&[0], &[1]), fd(&[0, 1], &[2])];
        let cover = minimal_cover(&fds);
        assert!(cover.contains(&fd(&[0], &[2])));
        assert!(equivalent(&cover, &fds));
    }

    #[test]
    fn minimal_cover_drops_trivial() {
        let fds = vec![fd(&[0, 1], &[1])];
        assert!(minimal_cover(&fds).is_empty());
    }

    #[test]
    fn candidate_keys_simple() {
        // R(a,b,c), a -> b, b -> c : key = {a}.
        let fds = vec![fd(&[0], &[1]), fd(&[1], &[2])];
        let keys = candidate_keys(R, &s(&[0, 1, 2]), &fds);
        assert_eq!(keys, vec![s(&[0])]);
    }

    #[test]
    fn candidate_keys_cyclic() {
        // a -> b, b -> a, ab universe plus c determined by a:
        // keys {a},{b} over universe abc with a->c.
        let fds = vec![fd(&[0], &[1]), fd(&[1], &[0]), fd(&[0], &[2])];
        let keys = candidate_keys(R, &s(&[0, 1, 2]), &fds);
        assert_eq!(keys, vec![s(&[0]), s(&[1])]);
    }

    #[test]
    fn candidate_keys_no_fds() {
        let keys = candidate_keys(R, &s(&[0, 1]), &[]);
        assert_eq!(keys, vec![s(&[0, 1])]);
    }

    #[test]
    fn candidate_keys_composite() {
        // R(a,b,c,d): ab -> c, c -> d. Key = {a,b}.
        let fds = vec![fd(&[0, 1], &[2]), fd(&[2], &[3])];
        let keys = candidate_keys(R, &s(&[0, 1, 2, 3]), &fds);
        assert_eq!(keys, vec![s(&[0, 1])]);
    }

    #[test]
    fn candidate_keys_multiple_composite() {
        // Classic: R(a,b,c), ab -> c, c -> b. Keys: {a,b} and {a,c}.
        let fds = vec![fd(&[0, 1], &[2]), fd(&[2], &[1])];
        let mut keys = candidate_keys(R, &s(&[0, 1, 2]), &fds);
        keys.sort();
        assert_eq!(keys, vec![s(&[0, 1]), s(&[0, 2])]);
    }

    #[test]
    fn prime_attributes_union_of_keys() {
        let fds = vec![fd(&[0, 1], &[2]), fd(&[2], &[1])];
        assert_eq!(prime_attributes(R, &s(&[0, 1, 2]), &fds), s(&[0, 1, 2]));
        let fds = vec![fd(&[0], &[1]), fd(&[1], &[2])];
        assert_eq!(prime_attributes(R, &s(&[0, 1, 2]), &fds), s(&[0]));
    }

    #[test]
    fn superkey_check() {
        let fds = vec![fd(&[0], &[1])];
        assert!(is_superkey(&s(&[0, 2]), &s(&[0, 1, 2]), &fds));
        assert!(!is_superkey(&s(&[0]), &s(&[0, 1, 2]), &fds));
    }

    #[test]
    fn project_fds_onto_subset() {
        // a -> b, b -> c ; project on {a, c}: a -> c survives.
        let fds = vec![fd(&[0], &[1]), fd(&[1], &[2])];
        let proj = project_fds(R, &fds, &s(&[0, 2]));
        assert!(implies(&proj, &fd(&[0], &[2])));
        assert!(proj
            .iter()
            .all(|f| f.lhs.is_subset(&s(&[0, 2])) && f.rhs.is_subset(&s(&[0, 2]))));
    }
}
