//! Snapshot isolation: immutable, `Arc`-published database versions.
//!
//! A [`SharedDb`] holds the *current* version of a database behind an
//! atomically swapped `Arc`. Readers take a [`DbSnapshot`] — a
//! momentary lock to clone the `Arc`, then no locks at all — and keep
//! a consistent view for as long as they hold it, no matter how many
//! writes land in the meantime. Writers build the next version as a
//! copy-on-write clone (tables sit behind `Arc`, so an append to one
//! relation shares every other table with the previous version),
//! run cache maintenance ([`crate::delta`],
//! [`crate::stats::StatsEngine::apply_delta`]), and publish by
//! swapping the `Arc`.
//!
//! Nothing is ever invalidated *in place*: an old version's tables
//! and cached statistics stay alive exactly as long as some reader's
//! `Arc` keeps them alive, and die with the last clone — eviction by
//! `Arc`. That is why readers never block writers (they hold no lock
//! while reading) and writers never corrupt readers (they mutate
//! fresh copies, never shared state).

use crate::database::Database;
use crate::delta::Delta;
use crate::error::RelationalError;
use crate::stats::StatsEngine;
use std::ops::Deref;
use std::sync::{Arc, Mutex, MutexGuard, RwLock};

/// One immutable version of a [`Database`], shared by `Arc`.
/// Dereferences to [`Database`]; cloning is O(1).
#[derive(Debug, Clone)]
pub struct DbSnapshot {
    inner: Arc<Database>,
}

impl DbSnapshot {
    /// Wraps an owned database as a snapshot (the version-zero path;
    /// later versions come from [`SharedDb::apply`]).
    pub fn new(db: Database) -> Self {
        DbSnapshot {
            inner: Arc::new(db),
        }
    }

    /// The underlying shared handle.
    pub fn as_arc(&self) -> &Arc<Database> {
        &self.inner
    }

    /// An owned copy-on-write clone — the starting point for a
    /// session that will mutate its private view (IND-Discovery adds
    /// relations, Restruct replaces tables). O(relations); table
    /// payloads are shared until first mutation.
    pub fn to_database(&self) -> Database {
        (*self.inner).clone()
    }
}

impl Deref for DbSnapshot {
    type Target = Database;

    fn deref(&self) -> &Database {
        &self.inner
    }
}

/// The current database version plus the write path that advances it.
///
/// Reads ([`SharedDb::snapshot`]) take the `current` lock only long
/// enough to clone an `Arc`. Writes serialize on `writer` (holding it
/// across clone → mutate → maintain → publish), and touch `current`
/// only for the final swap — so a slow writer never blocks readers,
/// and readers never block anyone.
#[derive(Debug)]
pub struct SharedDb {
    current: RwLock<Arc<Database>>,
    writer: Mutex<()>,
}

impl SharedDb {
    /// Publishes `db` as version zero.
    pub fn new(db: Database) -> Self {
        SharedDb {
            current: RwLock::new(Arc::new(db)),
            writer: Mutex::new(()),
        }
    }

    /// The current version. Lock held only for the `Arc` clone.
    pub fn snapshot(&self) -> DbSnapshot {
        let guard = match self.current.read() {
            Ok(g) => g,
            // The lock only ever guards an `Arc` clone/assign, which
            // cannot unwind mid-update; a poisoned flag still wraps a
            // fully published version.
            Err(poisoned) => poisoned.into_inner(),
        };
        DbSnapshot {
            inner: Arc::clone(&guard),
        }
    }

    fn writer_lock(&self) -> MutexGuard<'_, ()> {
        match self.writer.lock() {
            Ok(g) => g,
            // A writer that panicked never published (publish is the
            // last step), so the current version is intact and the
            // next writer may simply proceed.
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Applies one delta: clones the current version (copy-on-write),
    /// mutates the clone, runs incremental cache maintenance on every
    /// engine in `engines`, then publishes the new version by `Arc`
    /// swap. Returns the new snapshot. On error nothing is published
    /// and caches are untouched.
    ///
    /// Maintenance runs *before* the swap so the first reader of the
    /// new version finds warm caches; readers of older versions are
    /// unaffected either way, because cache entries are keyed by
    /// generation and their `Arc`ed payloads stay alive while held.
    pub fn apply(
        &self,
        delta: &Delta,
        engines: &[&StatsEngine],
    ) -> Result<DbSnapshot, RelationalError> {
        let _writer = self.writer_lock();
        let before = self.snapshot();
        let mut next = before.to_database();
        next.apply_delta(delta)?;
        for engine in engines {
            engine.apply_delta(&before, &next, delta);
        }
        let next = Arc::new(next);
        let mut guard = match self.current.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        *guard = Arc::clone(&next);
        Ok(DbSnapshot { inner: next })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Relation;
    use crate::value::{Domain, Value};

    fn one_rel_db() -> (Database, crate::schema::RelId) {
        let mut db = Database::new();
        let rel = db
            .add_relation(Relation::of("T", &[("x", Domain::Int)]))
            .unwrap();
        db.insert(rel, vec![Value::Int(1)]).unwrap();
        (db, rel)
    }

    #[test]
    fn snapshots_are_isolated_from_later_writes() {
        let (db, rel) = one_rel_db();
        let shared = SharedDb::new(db);
        let old = shared.snapshot();
        let old_gen = old.generation(rel);
        shared
            .apply(
                &Delta::Append {
                    rel,
                    rows: vec![vec![Value::Int(2)]],
                },
                &[],
            )
            .unwrap();
        // The old snapshot still sees one row under its old tag...
        assert_eq!(old.table(rel).len(), 1);
        assert_eq!(old.generation(rel), old_gen);
        // ...while a fresh snapshot sees the append under a new tag.
        let new = shared.snapshot();
        assert_eq!(new.table(rel).len(), 2);
        assert_ne!(new.generation(rel), old_gen);
    }

    #[test]
    fn failed_apply_publishes_nothing() {
        let (db, rel) = one_rel_db();
        let shared = SharedDb::new(db);
        let before = shared.snapshot();
        let err = shared.apply(
            &Delta::Append {
                rel,
                rows: vec![vec![Value::str("bad")]],
            },
            &[],
        );
        assert!(err.is_err());
        assert!(Arc::ptr_eq(before.as_arc(), shared.snapshot().as_arc()));
    }

    #[test]
    fn cow_clone_shares_untouched_tables() {
        let mut db = Database::new();
        let t1 = db
            .add_relation(Relation::of("A", &[("x", Domain::Int)]))
            .unwrap();
        let t2 = db
            .add_relation(Relation::of("B", &[("y", Domain::Int)]))
            .unwrap();
        db.insert(t2, vec![Value::Int(5)]).unwrap();
        let shared = SharedDb::new(db);
        let before = shared.snapshot();
        let after = shared
            .apply(
                &Delta::Append {
                    rel: t1,
                    rows: vec![vec![Value::Int(1)]],
                },
                &[],
            )
            .unwrap();
        // B untouched: both versions point at the same table payload.
        assert!(std::ptr::eq(before.table(t2), after.table(t2)));
        assert!(!std::ptr::eq(before.table(t1), after.table(t1)));
        assert_eq!(before.generation(t2), after.generation(t2));
    }
}
